"""§6.2 "Larger topologies" — permutation utilization as the FatTree grows."""

from benchmarks.conftest import print_table, run_cached
from repro.harness import figures


def test_scaling_utilization(benchmark, sim_cache):
    rows = run_cached(benchmark, sim_cache, figures.scaling_utilization, ks=(4, 6, 8))
    print_table("Permutation utilization vs FatTree size (8-packet buffers)", rows)

    benchmark.extra_info["util_k4"] = rows[0]["utilization_percent"]
    benchmark.extra_info["util_k8"] = rows[-1]["utilization_percent"]

    # eight-packet buffers sustain high utilization at every scale, with only
    # a gentle decrease as the topology grows (98% -> 90% in the paper)
    assert all(row["utilization_percent"] > 85 for row in rows)
    assert rows[-1]["utilization_percent"] > rows[0]["utilization_percent"] - 8
