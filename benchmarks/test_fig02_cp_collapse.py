"""Figure 2 — CP congestion collapse and phase effects vs the NDP switch."""

from benchmarks.conftest import print_table, run_cached
from repro.harness import figures
from repro.sim import units


def test_figure2_cp_collapse(benchmark, sim_cache):
    rows = run_cached(
        benchmark,
        sim_cache,
        figures.figure2_switch_overload,
        flow_counts=(4, 16, 64),
        duration_ps=units.milliseconds(10),
    )
    print_table("Figure 2: percent of fair-share goodput (unresponsive flows on one port)", rows)

    by_key = {(r["switch"], r["flows"]): r for r in rows}
    largest = max(r["flows"] for r in rows)
    ndp_large = by_key[("NDP", largest)]
    cp_large = by_key[("CP", largest)]
    benchmark.extra_info["ndp_mean_percent"] = ndp_large["mean_percent"]
    benchmark.extra_info["cp_mean_percent"] = cp_large["mean_percent"]

    # NDP's WRR keeps mean goodput high at every overload level...
    assert all(r["mean_percent"] > 85 for r in rows if r["switch"] == "NDP")
    # ...while CP's single FIFO collapses as headers crowd out data,
    assert cp_large["mean_percent"] < ndp_large["mean_percent"] - 20
    # and NDP's randomized trim choice keeps the unluckiest flows better off.
    assert ndp_large["worst10_percent"] > cp_large["worst10_percent"]
