"""Figure 13 — incast FCT with perfect versus measured pull spacing."""

from benchmarks.conftest import print_table, run_cached
from repro.harness import figures


def test_figure13_pull_jitter_incast(benchmark, sim_cache):
    rows = run_cached(
        benchmark,
        sim_cache,
        figures.figure13_incast_pull_jitter,
        flow_sizes=(15_000, 30_000, 60_000, 90_000, 120_000),
        senders=24,
    )
    print_table("Figure 13: incast completion time, perfect vs experimental pulls", rows)

    worst_ratio = max(row["experimental_us"] / row["perfect_us"] for row in rows)
    benchmark.extra_info["worst_ratio"] = worst_ratio

    # the paper finds "no discernible difference"; allow a few percent
    assert worst_ratio < 1.15
    # completion time grows with flow size in both configurations
    assert rows[-1]["perfect_us"] > rows[0]["perfect_us"]
    assert rows[-1]["experimental_us"] > rows[0]["experimental_us"]
