"""Microbenchmarks of the simulator's per-packet primitives.

The scenario benchmarks (:mod:`benchmarks.perf.scenarios`) time whole
seeded runs, which is the number that matters — but a 5% regression in one
primitive drowns in scenario noise.  These micros time each hot primitive
of the columnar packet core in isolation, with deterministic digests over
their structural counters, so ``tools/check_perf.py`` can gate them like
any other scenario row:

* ``micro_pool_cycle`` — the :class:`~repro.sim.pool.PacketPool`
  allocate/release cycle with the endpoints' inlined revive fast path and
  the full set of hot-path field writes, over a small in-flight window
  (the steady-state shape of a transfer).
* ``micro_raw_entry`` — raw-entry schedule/dispatch round-trips through
  :class:`~repro.sim.eventlist.EventList`: self-rescheduling arity-0
  callbacks at staggered periods, the shape of every recurring service.
* ``micro_queue_drain_batched`` / ``micro_queue_drain_singleton`` — a
  drop-tail port draining back-to-back bursts.  With small packets,
  consecutive completions land in the same timing-wheel slot and the
  queue's fast-forward drain services them inline (the batched path);
  oversized packets serialize longer than a wheel slot, so every
  completion is its own scheduler dispatch (the singleton path).  Timing
  both pins the batching win *and* the non-batched baseline.

Every micro is fully deterministic: the digest hashes the run's structural
counters (allocations, dispatches, bytes, final clock), so any change to
the primitives' observable behaviour — not just their speed — breaks the
baseline match.
"""

from __future__ import annotations

import hashlib
import time
from collections import deque
from typing import Deque

from benchmarks.perf.scenarios import PerfResult, _best_of
from repro.core.packets import NdpDataPacket
from repro.sim.eventlist import EventList
from repro.sim.packet import Packet, PacketPriority, Route
from repro.sim.pool import PacketPool
from repro.sim.queues import DropTailQueue

#: repetitions per micro (best run wins, digests must agree)
MICRO_REPEATS = 3

#: allocate/release cycles timed by ``micro_pool_cycle``
_POOL_CYCLES = 200_000
#: in-flight window of the pool cycle (packets live at any instant)
_POOL_WINDOW = 64

#: raw-entry schedule/dispatch round-trips timed by ``micro_raw_entry``
_RAW_EVENTS = 200_000
#: concurrently armed tickers (pending-entry working set)
_RAW_TICKERS = 64

#: packets per burst and bursts per run for the queue-drain micros
_DRAIN_BURST = 256
_DRAIN_BURSTS = 200
#: 10 Gbps port, buffer large enough that nothing drops
_DRAIN_RATE_BPS = 10_000_000_000
#: small enough that serialization (~0.4 µs) fits an 8.4 µs wheel slot
#: ~20 times over: the fast-forward drain engages and completions batch
_DRAIN_SMALL_BYTES = 500
#: oversized: serialization (~9.6 µs) exceeds the slot, so every
#: completion is its own scheduler dispatch (9 kB MTU packets, at 7.2 µs,
#: would still batch — the singleton path needs to overshoot the slot)
_DRAIN_OVERSIZE_BYTES = 12_000

_LOW = PacketPriority.LOW


def _digest(*counters: int) -> str:
    return hashlib.sha256(repr(counters).encode()).hexdigest()


def _write_data_fields(packet: NdpDataPacket, seqno: int, size: int) -> None:
    """The hot-path field writes of a revived data facade (cf. NdpSrc)."""
    packet.flow_id = 1
    packet.src = 0
    packet.dst = 1
    packet.size = size
    packet.original_size = size
    packet.seqno = seqno
    packet.route = None
    packet.hop = 0
    packet.priority = _LOW
    packet.is_header_only = False
    packet.bounced = False
    packet.ecn_capable = False
    packet.ecn_ce = False
    packet.path_id = 0
    packet.send_time = 0
    packet.syn = False
    packet.last = False
    packet.payload_bytes = size
    packet.src_endpoint = None
    packet.is_retransmit = False


def run_pool_cycle(seed: int = 1, repeats: int = MICRO_REPEATS) -> PerfResult:
    """Pool allocate/release over a sliding in-flight window."""

    def once() -> PerfResult:
        pool = PacketPool()
        free = pool.free_list(NdpDataPacket)
        generation = pool.generation
        live_cls = pool.live_cls
        ring: Deque[NdpDataPacket] = deque()
        wall_start = time.perf_counter()
        for index in range(_POOL_CYCLES):
            # the endpoints' inlined revive-or-adopt fast path, verbatim
            if free:
                packet = free.pop()
                packet._gen = generation[packet._handle]
                live_cls[packet._handle] = NdpDataPacket
                pool.reused += 1
            else:
                packet = NdpDataPacket.__new__(NdpDataPacket)
                pool.adopt(packet)
            _write_data_fields(packet, seqno=index, size=9000)
            ring.append(packet)
            if len(ring) > _POOL_WINDOW:
                pool.release(ring.popleft())
        while ring:
            pool.release(ring.popleft())
        wall = time.perf_counter() - wall_start
        return PerfResult(
            scenario="micro_pool_cycle",
            wall_seconds=wall,
            events_executed=_POOL_CYCLES,
            peak_pending_events=_POOL_WINDOW,
            completed_flows=0,
            total_flows=0,
            final_time_ps=0,
            flow_digest=_digest(
                pool.constructed, pool.reused, pool.freed, len(pool), pool.live()
            ),
        )

    return _best_of(once, repeats)


class _Ticker:
    """A self-rescheduling arity-0 raw callback (a recurring service's shape)."""

    __slots__ = ("eventlist", "period_ps", "remaining", "fired")

    def __init__(self, eventlist: EventList, period_ps: int, budget: int) -> None:
        self.eventlist = eventlist
        self.period_ps = period_ps
        self.remaining = budget
        self.fired = 0

    def tick(self) -> None:
        self.fired += 1
        if self.remaining:
            self.remaining -= 1
            self.eventlist.schedule_raw_in(self.period_ps, self.tick)


def run_raw_entry(seed: int = 1, repeats: int = MICRO_REPEATS) -> PerfResult:
    """Raw-entry schedule/dispatch round-trips at staggered periods."""

    def once() -> PerfResult:
        eventlist = EventList()
        budget = _RAW_EVENTS // _RAW_TICKERS - 1
        tickers = [
            # staggered sub-slot periods: entries spread over wheel slots
            # and spill/batch orders exactly like real recurring services
            _Ticker(eventlist, 900 + 37 * index, budget)
            for index in range(_RAW_TICKERS)
        ]
        for ticker in tickers:
            eventlist.schedule_raw_in(ticker.period_ps, ticker.tick)
        wall_start = time.perf_counter()
        eventlist.run()
        wall = time.perf_counter() - wall_start
        fired = sum(ticker.fired for ticker in tickers)
        return PerfResult(
            scenario="micro_raw_entry",
            wall_seconds=wall,
            events_executed=eventlist.events_executed,
            peak_pending_events=_RAW_TICKERS,
            completed_flows=0,
            total_flows=0,
            final_time_ps=eventlist.now(),
            flow_digest=_digest(
                fired, eventlist.events_executed, eventlist.now(),
                eventlist.entry_allocs,
            ),
        )

    return _best_of(once, repeats)


class _CountingSink:
    """Terminal route element: counts, then frees the slot (cf. NdpSink)."""

    __slots__ = ("received", "bytes")

    def __init__(self) -> None:
        self.received = 0
        self.bytes = 0

    def receive_packet(self, packet: Packet) -> None:
        self.received += 1
        self.bytes += packet.size
        packet.release()


def _run_queue_drain(scenario: str, packet_bytes: int, repeats: int) -> PerfResult:
    def once() -> PerfResult:
        eventlist = EventList()
        sink = _CountingSink()
        queue = DropTailQueue(
            eventlist,
            service_rate_bps=_DRAIN_RATE_BPS,
            max_queue_bytes=_DRAIN_BURST * packet_bytes + packet_bytes,
            name="micro-drain",
        )
        route = Route([queue, sink])
        pool = PacketPool()
        free = pool.free_list(NdpDataPacket)
        generation = pool.generation
        live_cls = pool.live_cls
        start_events = eventlist.events_executed
        peak_pending = 0
        wall_start = time.perf_counter()
        for burst in range(_DRAIN_BURSTS):
            for index in range(_DRAIN_BURST):
                if free:
                    packet = free.pop()
                    packet._gen = generation[packet._handle]
                    live_cls[packet._handle] = NdpDataPacket
                    pool.reused += 1
                else:
                    packet = NdpDataPacket.__new__(NdpDataPacket)
                    pool.adopt(packet)
                _write_data_fields(packet, seqno=index, size=packet_bytes)
                packet.route = route
                packet.hop = 1  # next element after the queue: the sink
                queue.receive_packet(packet)
            pending = eventlist.pending_events()
            if pending > peak_pending:
                peak_pending = pending
            eventlist.run()
        wall = time.perf_counter() - wall_start
        assert pool.live() == 0, "queue-drain micro leaked pool slots"
        return PerfResult(
            scenario=scenario,
            wall_seconds=wall,
            events_executed=eventlist.events_executed - start_events,
            peak_pending_events=peak_pending,
            completed_flows=0,
            total_flows=0,
            final_time_ps=eventlist.now(),
            flow_digest=_digest(
                sink.received, sink.bytes, queue.stats.packets_forwarded,
                queue.stats.packets_dropped, eventlist.events_executed,
                eventlist.now(), pool.constructed, pool.reused, pool.freed,
            ),
        )

    return _best_of(once, repeats)


def run_queue_drain_batched(seed: int = 1, repeats: int = MICRO_REPEATS) -> PerfResult:
    """Back-to-back small packets: the fast-forward drain batches them."""
    return _run_queue_drain("micro_queue_drain_batched", _DRAIN_SMALL_BYTES, repeats)


def run_queue_drain_singleton(seed: int = 1, repeats: int = MICRO_REPEATS) -> PerfResult:
    """Oversized packets: one scheduler dispatch per completion, no batching."""
    return _run_queue_drain("micro_queue_drain_singleton", _DRAIN_OVERSIZE_BYTES, repeats)


#: scenario name -> runner, merged into the perf harness by ``run_perf.py``
MICRO_SCENARIOS = {
    "micro_pool_cycle": run_pool_cycle,
    "micro_raw_entry": run_raw_entry,
    "micro_queue_drain_batched": run_queue_drain_batched,
    "micro_queue_drain_singleton": run_queue_drain_singleton,
}
