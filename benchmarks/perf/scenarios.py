"""The scheduler-stress scenarios the perf trajectory is measured on.

* ``run_permutation`` — a 128-host fat-tree permutation (Figure 14's shape):
  every host sends to exactly one other host, so every link is busy and the
  event list is dominated by steady-state serialization/propagation events.
* ``run_incast`` — a 432-flow incast into one receiver (Figure 16/20's
  shape): the first-RTT burst trims thousands of packets, the pull pacer
  serializes the retransmissions, and historically every data packet armed
  an RTO timer that lingered in the heap, making this the scheduler's
  worst case.
* ``run_transport_matrix`` — one seeded 8-sender incast per transport in
  the registry (NDP, TCP, DCTCP, MPTCP, DCQCN, pHost), so the bake-off
  matrix has a timing and behaviour-digest trail: a change to the shared
  simulation core that silently alters *any* protocol's packet-level
  behaviour shows up as a digest mismatch here.

All scenarios are fully seeded.  Besides timing, each run produces a SHA-256
digest of every flow record and the switch trim counters, so a scheduler
change can be checked for bit-identical protocol behaviour (the acceptance
bar for the fast-path rework).
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.config import NdpConfig
from repro.core.switch import NdpSwitchQueue
from repro.harness.experiment import start_incast, start_permutation
from repro.harness.ndp_network import NdpNetwork
from repro.sim.eventlist import _SHADOW_SEQ_BASE, EventList
from repro.sim.packet import construction_count
from repro.topology.fattree import FatTreeTopology
from repro.topology.leafspine import LeafSpineTopology
from repro.topology.simple import SingleSwitchTopology
from repro.transports import registry

#: events executed per chunk between pending-queue size samples
_CHUNK_EVENTS = 20_000

#: how many times each scenario is repeated; the fastest repetition is
#: reported (best-of-N filters out scheduler noise on shared machines; the
#: simulation itself is deterministic, so every repetition must produce the
#: same digest)
DEFAULT_REPEATS = 5


@dataclass
class PerfResult:
    """Outcome of one timed scenario run."""

    scenario: str
    wall_seconds: float
    events_executed: int
    peak_pending_events: int
    completed_flows: int
    total_flows: int
    final_time_ps: int
    flow_digest: str
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def events_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.events_executed / self.wall_seconds

    def as_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "wall_seconds": round(self.wall_seconds, 4),
            "events_executed": self.events_executed,
            "events_per_second": round(self.events_per_second, 1),
            "peak_pending_events": self.peak_pending_events,
            "completed_flows": self.completed_flows,
            "total_flows": self.total_flows,
            "final_time_ps": self.final_time_ps,
            "flow_digest": self.flow_digest,
            **self.extra,
        }


def _record_tuple(record) -> tuple:
    return (
        record.flow_id,
        record.src,
        record.dst,
        record.flow_size_bytes,
        record.start_time_ps,
        record.finish_time_ps,
        record.bytes_delivered,
        record.packets_delivered,
        record.headers_received,
        record.retransmissions,
        record.rtx_from_nack,
        record.rtx_from_bounce,
        record.rtx_from_timeout,
    )


def flow_digest(network: NdpNetwork) -> str:
    """SHA-256 over every flow record (both ends) and per-switch trim counters."""
    hasher = hashlib.sha256()
    for flow in network.flows:
        hasher.update(repr(_record_tuple(flow.record)).encode())
        hasher.update(repr(_record_tuple(flow.sender_record)).encode())
    for queue in network.topology.all_queues():
        if isinstance(queue, NdpSwitchQueue):
            hasher.update(
                f"{queue.name}:{queue.trimmed_arriving}:{queue.trimmed_from_tail}".encode()
            )
    return hasher.hexdigest()


def _timed_run(eventlist: EventList, flows, until_ps: int) -> tuple:
    """Run until every flow completes (or *until_ps*), sampling the pending queue.

    Chunks of ``max_events`` are used (rather than ``until``) so the loop can
    sample :meth:`EventList.pending_events` for the peak-heap metric; the
    stop point is deterministic because the chunk size is fixed.
    """
    peak_pending = eventlist.pending_events()
    start_events = eventlist.events_executed
    wall_start = time.perf_counter()
    while True:
        before = eventlist.events_executed
        eventlist.run(max_events=_CHUNK_EVENTS)
        peak_pending = max(peak_pending, eventlist.pending_events())
        if eventlist.events_executed == before:
            break  # quiescent
        if eventlist.now() >= until_ps:
            break  # safety horizon (a stuck run should not spin forever)
        if all(flow.complete for flow in flows):
            break
    wall = time.perf_counter() - wall_start
    return wall, eventlist.events_executed - start_events, peak_pending


def _alloc_metrics(eventlist: EventList, events: int, pool, constructions_before: int) -> Dict[str, float]:
    """Per-event allocation metrics for one scenario run.

    Exact, deterministic internal counters — not gc/tracemalloc statistics,
    which would be skewed by the gc being disabled inside ``run()`` and by
    interpreter-internal churn:

    * ``allocs_per_event`` — real allocations per executed event: scheduler
      entry-pool misses, packets built through ``__init__`` (unpooled
      transports), and packet-pool misses (``PacketPool.constructed``).
    * ``legacy_allocs_per_event`` — what the same (bit-identical) run
      allocated before the recycling pools: every scheduled entry (ordinary
      plus shadow sequence numbers) and every packet allocation whether it
      hit a pool or not.  A conservative lower bound — fast-forwarded
      service completions consume no sequence number here but each cost an
      entry in the legacy scheduler.
    """
    if events <= 0:
        return {}
    constructions = construction_count() - constructions_before
    pool_constructed = pool.constructed if pool is not None else 0
    pool_reused = pool.reused if pool is not None else 0
    allocs = eventlist.entry_allocs + constructions + pool_constructed
    entries_scheduled = eventlist._sequence + (
        eventlist._shadow_sequence - _SHADOW_SEQ_BASE
    )
    legacy = entries_scheduled + constructions + pool_constructed + pool_reused
    return {
        "allocs_per_event": round(allocs / events, 4),
        "legacy_allocs_per_event": round(legacy / events, 4),
    }


def _best_of(runner, repeats: int) -> PerfResult:
    """Run *runner* repeatedly; return the fastest, checking determinism."""
    best: PerfResult = runner()
    for _ in range(repeats - 1):
        result = runner()
        if result.flow_digest != best.flow_digest:
            raise AssertionError(
                f"{result.scenario}: non-deterministic digest across repetitions"
            )
        if result.wall_seconds < best.wall_seconds:
            best = result
    return best


def run_permutation(seed: int = 1, repeats: int = DEFAULT_REPEATS) -> PerfResult:
    """128-host fat-tree permutation, 180 kB per flow, run to completion."""

    def once() -> PerfResult:
        eventlist = EventList()
        network = NdpNetwork.build(
            eventlist, FatTreeTopology, config=NdpConfig(), seed=seed, k=8
        )
        import random

        flows = start_permutation(
            network, flow_size_bytes=180_000, rng=random.Random(seed)
        )
        constructions_before = construction_count()
        wall, events, peak = _timed_run(eventlist, flows, until_ps=20_000_000_000)
        return PerfResult(
            scenario="permutation_k8_180kB",
            wall_seconds=wall,
            events_executed=events,
            peak_pending_events=peak,
            completed_flows=sum(1 for f in flows if f.complete),
            total_flows=len(flows),
            final_time_ps=eventlist.now(),
            flow_digest=flow_digest(network),
            extra=_alloc_metrics(eventlist, events, network.pool, constructions_before),
        )

    return _best_of(once, repeats)


def run_incast(seed: int = 1, repeats: int = DEFAULT_REPEATS) -> PerfResult:
    """432 synchronized senders, 90 kB each, into one leaf-spine receiver."""

    def once() -> PerfResult:
        eventlist = EventList()
        network = NdpNetwork.build(
            eventlist,
            LeafSpineTopology,
            config=NdpConfig(),
            seed=seed,
            leaves=28,
            spines=8,
            hosts_per_leaf=16,
        )
        receiver = 0
        senders = [h for h in network.topology.hosts() if h != receiver][:432]
        flows = start_incast(network, receiver, senders, bytes_per_sender=90_000)
        constructions_before = construction_count()
        wall, events, peak = _timed_run(eventlist, flows, until_ps=60_000_000_000)
        return PerfResult(
            scenario="incast_432x90kB",
            wall_seconds=wall,
            events_executed=events,
            peak_pending_events=peak,
            completed_flows=sum(1 for f in flows if f.complete),
            total_flows=len(flows),
            final_time_ps=eventlist.now(),
            flow_digest=flow_digest(network),
            extra=_alloc_metrics(eventlist, events, network.pool, constructions_before),
        )

    return _best_of(once, repeats)


def generic_flow_digest(network) -> str:
    """Transport-agnostic digest: flow records plus fabric loss counters.

    Works for every ``*Network`` in the registry: receiver records always
    exist; sender-side records are hashed when the flow handle exposes them
    (MPTCP's subflow bundle does not).
    """
    hasher = hashlib.sha256()
    for flow in network.flows:
        hasher.update(repr(_record_tuple(flow.record)).encode())
        sender = getattr(flow, "sender_record", None)
        if sender is not None:
            hasher.update(repr(_record_tuple(sender)).encode())
    hasher.update(
        f"trimmed={network.topology.total_trimmed()}:"
        f"dropped={network.topology.total_dropped()}".encode()
    )
    return hasher.hexdigest()


def run_transport_matrix(seed: int = 1, repeats: int = 3) -> PerfResult:
    """One 8-sender, 45 kB incast per registered transport on a 9-host star.

    The aggregate digest chains every transport's behaviour digest, so a
    core change that perturbs any protocol — not just NDP — breaks the
    match; per-transport digests and event counts land in ``extra``.
    """

    def once() -> PerfResult:
        wall_total = 0.0
        events_total = 0
        peak_overall = 0
        completed = total = 0
        final_time = 0
        extra: Dict[str, float] = {}
        allocs_total = 0.0
        legacy_total = 0.0
        hasher = hashlib.sha256()
        for spec in registry.specs():
            eventlist = EventList()
            network = spec.build(eventlist, SingleSwitchTopology, seed=seed, hosts=9)
            flows = start_incast(network, 0, list(range(1, 9)), bytes_per_sender=45_000)
            constructions_before = construction_count()
            wall, events, peak = _timed_run(eventlist, flows, until_ps=60_000_000_000)
            metrics = _alloc_metrics(
                eventlist, events, getattr(network, "pool", None), constructions_before
            )
            allocs_total += metrics.get("allocs_per_event", 0.0) * events
            legacy_total += metrics.get("legacy_allocs_per_event", 0.0) * events
            digest = generic_flow_digest(network)
            hasher.update(f"{spec.display}:{digest}".encode())
            wall_total += wall
            events_total += events
            peak_overall = max(peak_overall, peak)
            completed += sum(1 for f in flows if f.complete)
            total += len(flows)
            final_time = max(final_time, eventlist.now())
            extra[f"events_{spec.name}"] = events
            extra[f"digest_{spec.name}"] = digest
        if events_total > 0:
            extra["allocs_per_event"] = round(allocs_total / events_total, 4)
            extra["legacy_allocs_per_event"] = round(legacy_total / events_total, 4)
        return PerfResult(
            scenario="transport_matrix_8x45kB",
            wall_seconds=wall_total,
            events_executed=events_total,
            peak_pending_events=peak_overall,
            completed_flows=completed,
            total_flows=total,
            final_time_ps=final_time,
            flow_digest=hasher.hexdigest(),
            extra=extra,
        )

    return _best_of(once, repeats)


def run_shard_scale(seed: int = 1, repeats: int = 2) -> PerfResult:
    """Sharded run: 16 workers over 16 disjoint host pairs, 15 MB flows.

    Measures the sharded harness's *aggregate* event capacity: total events
    over the slowest shard's CPU-busy seconds (``time.process_time`` metered
    inside each worker).  On a single-core runner the workers time-share, so
    wall-clock throughput stays near one core's rate while the aggregate
    figure projects the fabric's parallel capacity — the number a k=16/k=32
    run on a many-core box is gated on.  The digest is the merged global
    shard digest, so the determinism check across repetitions covers the
    whole marshalling/merge pipeline, and fewer repeats are needed because
    each repetition already runs 16 workers.
    """
    from repro.harness.shard import run_sharded

    kwargs = {"pairs": 16, "flows_per_pair": 4, "flow_size_bytes": 15_000_000}

    def once() -> PerfResult:
        result = run_sharded("pairs", 16, seed=seed, scenario_kwargs=kwargs)
        return PerfResult(
            scenario="shard_scale_16x4x15MB",
            wall_seconds=result.wall_seconds,
            events_executed=result.events_executed,
            peak_pending_events=result.peak_pending_events,
            completed_flows=result.completed_flows,
            total_flows=result.total_flows,
            final_time_ps=result.final_time_ps,
            flow_digest=result.digest,
            extra={
                "aggregate_events_per_second": round(
                    result.aggregate_events_per_second, 1
                ),
                "shards": result.num_shards,
                "windows": result.windows,
                "boundary_packets": result.boundary_packets,
                "max_shard_busy_seconds": round(max(result.busy_seconds), 4),
            },
        )

    return _best_of(once, repeats)


SCENARIOS = {
    "permutation": run_permutation,
    "incast": run_incast,
    "transport_matrix": run_transport_matrix,
    "shard_scale": run_shard_scale,
}
