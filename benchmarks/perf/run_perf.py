"""CLI driver for the scheduler micro-benchmarks.

Usage::

    # record the reference numbers for the *current* scheduler
    PYTHONPATH=src python benchmarks/perf/run_perf.py --capture-baseline

    # time the current scheduler, compare against the stored baseline and
    # write BENCH_perf.json at the repository root
    PYTHONPATH=src python benchmarks/perf/run_perf.py

The baseline lives in ``benchmarks/perf/baseline_seed.json`` and was captured
on the pre-rework (pure-heapq) scheduler; ``BENCH_perf.json`` reports both
sets of numbers, the speedup, and whether the seeded flow digests still
match bit-for-bit.

``BENCH_perf.json`` stays a single overwritten snapshot (compatibility
with everything that reads it), but each timed run now *also* appends one
schema-versioned record per scenario — keyed by scenario name and git SHA —
to ``BENCH_history.jsonl`` at the repository root, through the atomic
(lock + temp file + rename) writer in :mod:`repro.analysis.history`.  The
trajectory renders via ``python -m repro.cli render perf --out DIR`` and
gates CI via ``tools/check_perf.py``.  ``--history PATH`` redirects the
trail (tests use this); ``--no-history`` skips the append (baseline
captures never append — they are references, not trajectory points).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
_ROOT = os.path.dirname(os.path.dirname(_HERE))
_SRC = os.path.join(_ROOT, "src")
for path in (_ROOT, _SRC):
    if path not in sys.path:
        sys.path.insert(0, path)

from benchmarks.perf.micro import MICRO_SCENARIOS  # noqa: E402
from benchmarks.perf.scenarios import SCENARIOS  # noqa: E402

#: full benchmark matrix: the seeded scenario runs plus the primitive
#: micros (pool cycle, raw entries, batched/singleton queue drains)
ALL_SCENARIOS = {**SCENARIOS, **MICRO_SCENARIOS}

BASELINE_PATH = os.path.join(_HERE, "baseline_seed.json")
REPORT_PATH = os.path.join(_ROOT, "BENCH_perf.json")
HISTORY_PATH = os.path.join(_ROOT, "BENCH_history.jsonl")


def _git_sha() -> str:
    """HEAD's SHA, falling back to ``$GITHUB_SHA`` then ``"unknown"``."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=_ROOT, capture_output=True, text=True, timeout=10,
        )
        sha = completed.stdout.strip()
        if completed.returncode == 0 and sha:
            return sha
    except (OSError, subprocess.SubprocessError):
        pass
    return os.environ.get("GITHUB_SHA", "").strip() or "unknown"


def run_all(seed: int = 1) -> dict:
    results = {}
    for name, runner in ALL_SCENARIOS.items():
        result = runner(seed=seed)
        results[name] = result.as_dict()
        print(
            f"{result.scenario}: {result.events_executed} events in "
            f"{result.wall_seconds:.2f}s -> {result.events_per_second:,.0f} ev/s, "
            f"peak pending {result.peak_pending_events}, "
            f"{result.completed_flows}/{result.total_flows} flows done"
        )
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--capture-baseline",
        action="store_true",
        help="store the measurements as the reference baseline instead of comparing",
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--history", default=HISTORY_PATH, metavar="PATH",
        help="perf-history JSONL to append this capture to",
    )
    parser.add_argument(
        "--no-history", action="store_true",
        help="do not append this capture to the perf history",
    )
    args = parser.parse_args(argv)

    results = run_all(seed=args.seed)
    environment = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "seed": args.seed,
    }

    if args.capture_baseline:
        with open(BASELINE_PATH, "w") as fh:
            json.dump({"environment": environment, "scenarios": results}, fh, indent=2)
        print(f"baseline written to {BASELINE_PATH}")
        return 0

    report = {"environment": environment, "scenarios": results}
    if os.path.exists(BASELINE_PATH):
        with open(BASELINE_PATH) as fh:
            baseline = json.load(fh)
        comparison = {}
        for name, current in results.items():
            ref = baseline["scenarios"].get(name)
            if ref is None:
                continue
            speedup = (
                current["events_per_second"] / ref["events_per_second"]
                if ref["events_per_second"]
                else 0.0
            )
            comparison[name] = {
                "baseline_events_per_second": ref["events_per_second"],
                "events_per_second": current["events_per_second"],
                "speedup": round(speedup, 2),
                "baseline_peak_pending_events": ref["peak_pending_events"],
                "peak_pending_events": current["peak_pending_events"],
                "flow_digest_matches_baseline": ref["flow_digest"] == current["flow_digest"],
            }
        report["baseline"] = baseline
        report["comparison"] = comparison
        for name, row in comparison.items():
            print(
                f"{name}: speedup {row['speedup']}x, digest match: "
                f"{row['flow_digest_matches_baseline']}"
            )
    else:
        print("no baseline recorded; run with --capture-baseline first", file=sys.stderr)

    with open(REPORT_PATH, "w") as fh:
        json.dump(report, fh, indent=2)
    print(f"report written to {REPORT_PATH}")

    if not args.no_history:
        from repro.analysis import history

        records = history.make_records(
            results, environment, git_sha=_git_sha(), captured_at_unix=time.time()
        )
        total = history.append_history(args.history, records)
        print(
            f"history: {len(records)} record(s) appended to {args.history} "
            f"({total} total)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
