"""Scheduler micro-benchmarks (events/sec, wall-clock, peak heap size).

Unlike the per-figure benchmarks (which validate the *protocols* against the
paper), this package times the *simulator* itself so every future PR can be
checked against the perf trajectory.  See ``benchmarks/perf/README.md``.
"""
