"""Figure 22 — permutation throughput with a degraded (1 Gb/s) core link."""

from benchmarks.conftest import print_table, run_cached
from repro.harness import figures
from repro.sim import units


def test_figure22_asymmetry(benchmark, sim_cache):
    results = run_cached(
        benchmark,
        sim_cache,
        figures.figure22_asymmetry,
        k=4,
        degraded_rate_bps=units.gbps(1),
        duration_ps=units.milliseconds(3),
    )
    rows = []
    for name, result in results.items():
        goodputs = result.sorted_goodputs_gbps()
        rows.append(
            {
                "protocol": name,
                "utilization": result.utilization,
                "min_gbps": goodputs[0],
                "flows_below_5gbps": sum(1 for g in goodputs if g < 5.0),
            }
        )
    print_table("Figure 22: permutation with one core link degraded to 1 Gb/s", rows)

    util = {row["protocol"]: row["utilization"] for row in rows}
    worst = {row["protocol"]: row["min_gbps"] for row in rows}
    benchmark.extra_info.update({f"{k}_utilization": v for k, v in util.items()})

    # NDP and MPTCP route around the failure; single-path DCTCP cannot, and
    # its unlucky (ECMP-pinned) flows are badly hurt
    assert util["NDP"] > 0.8
    assert util["NDP"] >= util["MPTCP"] - 0.05
    assert worst["DCTCP"] < 3.0
    assert worst["NDP"] > worst["DCTCP"]
    # the path-penalty scoreboard is what protects NDP's unluckiest flows
    assert worst["NDP"] >= worst["NDP (no path penalty)"] - 0.3
    assert util["NDP"] >= util["NDP (no path penalty)"] - 0.02
