"""Figure 23 — Facebook-like web workload on a 4:1 oversubscribed FatTree."""

from benchmarks.conftest import print_table, run_cached
from repro.harness import figures
from repro.sim import units


def test_figure23_oversubscribed_web(benchmark, sim_cache):
    rows = run_cached(
        benchmark,
        sim_cache,
        figures.figure23_oversubscribed_web,
        k=4,
        oversubscription=4.0,
        connections_per_host=(2, 5),
        duration_ps=units.milliseconds(25),
        protocols=("NDP", "DCTCP"),
    )
    print_table("Figure 23: web workload FCTs on a 4:1 oversubscribed fabric", rows)

    def row(protocol, load):
        return next(
            r for r in rows if r["protocol"] == protocol and r["connections_per_host"] == load
        )

    benchmark.extra_info["ndp_median_high_load_us"] = row("NDP", 5)["median_fct_us"]
    benchmark.extra_info["dctcp_median_high_load_us"] = row("DCTCP", 5)["median_fct_us"]

    for load in (2, 5):
        ndp = row("NDP", load)
        dctcp = row("DCTCP", load)
        # both protocols keep completing flows under persistent overload
        assert ndp["completed_flows"] > 100
        assert dctcp["completed_flows"] > 100
        # NDP trims heavily on the oversubscribed uplinks yet still beats
        # DCTCP's median and tail FCT — no congestion collapse
        assert ndp["packets_trimmed"] > 0
        assert ndp["median_fct_us"] < dctcp["median_fct_us"]
        assert ndp["p99_fct_us"] < 1.5 * dctcp["p99_fct_us"]
    # higher load trims more packets
    assert row("NDP", 5)["packets_trimmed"] > row("NDP", 2)["packets_trimmed"]
