"""Figure 8 — 1 KB RPC latency over NDP, TCP Fast Open and TCP."""

from benchmarks.conftest import print_table, run_cached
from repro.harness import figures


def test_figure8_rpc_latency(benchmark, sim_cache):
    summary = run_cached(benchmark, sim_cache, figures.figure8_rpc_latency, samples=1000)
    rows = [{"stack": name, **stats} for name, stats in summary.items()]
    print_table("Figure 8: 1 KB RPC latency (microseconds)", rows)

    benchmark.extra_info["ndp_median_us"] = summary["NDP"]["median_us"]
    benchmark.extra_info["tcp_median_us"] = summary["TCP"]["median_us"]

    ndp = summary["NDP"]["median_us"]
    # the paper: NDP ~62 us; TFO ~4x and TCP ~5x slower with sleep states,
    # and still 2-3x slower with deep sleep states disabled
    assert 40 < ndp < 90
    assert summary["TFO"]["median_us"] > 3 * ndp
    assert summary["TCP"]["median_us"] > summary["TFO"]["median_us"]
    assert summary["TFO (no sleep)"]["median_us"] > 1.5 * ndp
    assert summary["TCP (no sleep)"]["median_us"] > summary["TFO (no sleep)"]["median_us"]
