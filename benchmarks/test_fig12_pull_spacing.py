"""Figure 12 — PULL spacing distribution for 1500 B and 9000 B packets."""

from benchmarks.conftest import print_table, run_cached
from repro.harness import figures


def test_figure12_pull_spacing(benchmark, sim_cache):
    result = run_cached(benchmark, sim_cache, figures.figure12_pull_spacing, samples=20_000)
    rows = [{"packet_bytes": size, **stats} for size, stats in result.items()]
    print_table("Figure 12: pull spacing (microseconds)", rows)

    benchmark.extra_info["median_1500_us"] = result[1500]["median_us"]
    benchmark.extra_info["median_9000_us"] = result[9000]["median_us"]

    # medians match the target spacing (1.2 us and 7.2 us)...
    assert abs(result[1500]["median_us"] - 1.2) < 0.1
    assert abs(result[9000]["median_us"] - 7.2) < 0.4
    # ...and, as measured on the prototype, the relative variance is larger
    # for 1500-byte packets than for 9 KB jumbograms
    spread_1500 = (result[1500]["p90_us"] - result[1500]["p10_us"]) / result[1500]["median_us"]
    spread_9000 = (result[9000]["p90_us"] - result[9000]["p10_us"]) / result[9000]["median_us"]
    assert spread_1500 > spread_9000
