"""Figure 17 — sensitivity of permutation throughput to IW and buffer size."""

from benchmarks.conftest import print_table, run_cached
from repro.harness import figures


def test_figure17_buffer_sensitivity(benchmark, sim_cache):
    rows = run_cached(
        benchmark,
        sim_cache,
        figures.figure17_buffer_sensitivity,
        windows=(5, 10, 15, 20, 30),
        configurations=(
            ("6pkt 9K MTU", 6, 9000),
            ("8pkt 9K MTU", 8, 9000),
            ("10pkt 9K MTU", 10, 9000),
            ("8pkt 1.5K MTU", 8, 1500),
        ),
    )
    print_table("Figure 17: permutation utilization (%) vs IW and buffers", rows)

    def util(configuration, window):
        return next(
            r["utilization_percent"]
            for r in rows
            if r["configuration"] == configuration and r["initial_window"] == window
        )

    benchmark.extra_info["util_8pkt9k_iw30"] = util("8pkt 9K MTU", 30)

    # small IWs cannot fill the network, larger IWs approach full utilization
    assert util("8pkt 9K MTU", 5) < util("8pkt 9K MTU", 20)
    assert util("8pkt 9K MTU", 30) > 85
    # with a small IW, the buffer size barely matters (the paper's point)
    assert abs(util("6pkt 9K MTU", 10) - util("10pkt 9K MTU", 10)) < 8
    # 1500-byte packets need a larger window to reach the same utilization
    assert util("8pkt 1.5K MTU", 15) < util("8pkt 9K MTU", 15)
