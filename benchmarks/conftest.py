"""Shared helpers for the per-figure benchmark harness.

Every benchmark module reproduces one table or figure of the paper: it runs
the corresponding generator from :mod:`repro.harness.figures` (timed once via
pytest-benchmark), prints the regenerated rows, stores headline numbers in
``benchmark.extra_info`` and asserts the qualitative "shape" of the result
(who wins, by roughly what factor) so regressions in the protocol
implementations are caught.

Simulation results are shared across the whole pytest session through the
session-scoped :func:`sim_cache` fixture, and across *sessions* through the
persistent on-disk result cache (:mod:`repro.harness.sweep`): the first
request for a given ``(generator, args)`` signature runs the experiment
under benchmark timing, any later request in the same session reuses the
in-memory result, and a later pytest session — or a ``python -m repro.cli``
invocation, which shares the same cache records — is served from
``$REPRO_CACHE_DIR`` (default ``~/.cache/repro``) without re-simulating.
Records are keyed on a fingerprint of the ``repro`` package source, so any
code change invalidates them; set ``REPRO_NO_CACHE=1`` to force fresh runs.
The scheduler perf benchmarks (``benchmarks/perf/``) never consult any
cache — they exist to time the simulator.

Run with ``pytest benchmarks/ --benchmark-only -s`` to see the tables.
"""

from __future__ import annotations

import os
import sys
from typing import Any, Callable, Dict, Iterable, Mapping, Sequence, Tuple

import pytest

# make `src/` importable when the package is not installed
_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.harness import sweep  # noqa: E402


class SimResultCache:
    """Session memo of figure results, keyed by call signature.

    Figure generators are deterministic (seeded), so a result computed once
    is valid for the rest of the session.  Keys combine the callable's
    qualified name with the ``repr`` of its arguments; values are returned
    by reference — benchmark assertions only read them.

    Persistence across sessions happens one layer down: the generators
    themselves run their specs through the shared
    :class:`repro.harness.sweep.ResultCache` (the same records the CLI
    writes), so a memory miss whose underlying runs are all on disk costs
    milliseconds, not a simulation.  :func:`run_cached` inspects that
    cache's counters to label each benchmark honestly.
    """

    def __init__(self) -> None:
        self._results: Dict[Tuple[str, str, str], Any] = {}
        self.hits = 0
        self.misses = 0

    @staticmethod
    def _key(function: Callable, args: tuple, kwargs: dict) -> Tuple[str, str, str]:
        name = getattr(function, "__qualname__", repr(function))
        module = getattr(function, "__module__", "")
        return (f"{module}.{name}", repr(args), repr(sorted(kwargs.items())))

    def fetch(self, function: Callable, *args, **kwargs):
        """Return the cached result, running *function* on the first request."""
        key = self._key(function, args, kwargs)
        try:
            result = self._results[key]
        except KeyError:
            self.misses += 1
            result = self._results[key] = function(*args, **kwargs)
            return result
        self.hits += 1
        return result

    def __contains__(self, item: Tuple[Callable, tuple, dict]) -> bool:
        function, args, kwargs = item
        return self._key(function, args, kwargs) in self._results


_SESSION_CACHE = SimResultCache()


@pytest.fixture(scope="session")
def sim_cache() -> SimResultCache:
    """The per-session simulation-result cache (ROADMAP: stop re-running
    whole experiments for every figure); the generators underneath it share
    the persistent disk cache with ``python -m repro.cli``."""
    return _SESSION_CACHE


def run_once(benchmark, function, *args, **kwargs):
    """Execute *function* exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


def run_cached(benchmark, cache: SimResultCache, function, *args, **kwargs):
    """Like :func:`run_once`, but consulting the session + disk caches first.

    The cache source is recorded in ``benchmark.extra_info`` (a cached
    timing reflects lookups, not simulation) so result tables stay honest:
    ``"hit"`` for a session-memory hit, ``"disk"`` when the generator ran
    but every underlying simulation was served from the persistent sweep
    cache (a previous session or CLI run), ``"miss"`` when at least one
    fresh simulation was executed.
    """
    memory_hit = (function, args, kwargs) in cache
    disk = sweep.default_cache()
    before = (disk.hits, disk.misses) if disk is not None else (0, 0)
    result = benchmark.pedantic(
        cache.fetch, args=(function, *args), kwargs=kwargs, rounds=1, iterations=1
    )
    if memory_hit:
        label = "hit"
    elif disk is not None and disk.hits > before[0] and disk.misses == before[1]:
        label = "disk"
    else:
        label = "miss"
    benchmark.extra_info["sim_cache"] = label
    return result


def print_table(title: str, rows: Sequence[Mapping[str, object]]) -> None:
    """Print a list of dict rows as an aligned table."""
    print(f"\n=== {title} ===")
    if not rows:
        print("(no rows)")
        return
    columns = list(rows[0].keys())
    widths = {
        column: max(len(str(column)), *(len(_fmt(row.get(column))) for row in rows))
        for column in columns
    }
    header = "  ".join(str(column).ljust(widths[column]) for column in columns)
    print(header)
    print("-" * len(header))
    for row in rows:
        print("  ".join(_fmt(row.get(column)).ljust(widths[column]) for column in columns))


def print_mapping(title: str, mapping: Mapping[str, object]) -> None:
    """Print a flat mapping as ``key: value`` lines."""
    print(f"\n=== {title} ===")
    for key, value in mapping.items():
        print(f"  {key}: {_fmt(value)}")


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
