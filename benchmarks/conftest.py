"""Shared helpers for the per-figure benchmark harness.

Every benchmark module reproduces one table or figure of the paper: it runs
the corresponding generator from :mod:`repro.harness.figures` (timed once via
pytest-benchmark), prints the regenerated rows, stores headline numbers in
``benchmark.extra_info`` and asserts the qualitative "shape" of the result
(who wins, by roughly what factor) so regressions in the protocol
implementations are caught.

Run with ``pytest benchmarks/ --benchmark-only -s`` to see the tables.
"""

from __future__ import annotations

import os
import sys
from typing import Iterable, Mapping, Sequence

# make `src/` importable when the package is not installed
_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


def run_once(benchmark, function, *args, **kwargs):
    """Execute *function* exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


def print_table(title: str, rows: Sequence[Mapping[str, object]]) -> None:
    """Print a list of dict rows as an aligned table."""
    print(f"\n=== {title} ===")
    if not rows:
        print("(no rows)")
        return
    columns = list(rows[0].keys())
    widths = {
        column: max(len(str(column)), *(len(_fmt(row.get(column))) for row in rows))
        for column in columns
    }
    header = "  ".join(str(column).ljust(widths[column]) for column in columns)
    print(header)
    print("-" * len(header))
    for row in rows:
        print("  ".join(_fmt(row.get(column)).ljust(widths[column]) for column in columns))


def print_mapping(title: str, mapping: Mapping[str, object]) -> None:
    """Print a flat mapping as ``key: value`` lines."""
    print(f"\n=== {title} ===")
    for key, value in mapping.items():
        print(f"  {key}: {_fmt(value)}")


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
