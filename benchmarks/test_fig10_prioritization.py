"""Figure 10 — prioritizing a short flow over six long flows to the same host."""

from benchmarks.conftest import print_mapping, run_cached
from repro.harness import figures


def test_figure10_prioritization(benchmark, sim_cache):
    result = run_cached(benchmark, sim_cache, figures.figure10_prioritization)
    print_mapping("Figure 10: 200 KB flow completion time (microseconds)", result)

    benchmark.extra_info.update(result)

    idle = result["idle_us"]
    prioritized = result["with_prioritization_us"]
    unprioritized = result["without_prioritization_us"]
    # prioritization keeps the short flow within tens of microseconds of its
    # idle-network completion time...
    assert prioritized - idle < 120
    # ...whereas without it the six long flows' fair share slows it down by
    # hundreds of microseconds
    assert unprioritized - idle > 300
    assert unprioritized > 2 * prioritized
