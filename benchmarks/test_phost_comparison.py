"""§6.2 "Who needs packet trimming?" — NDP versus pHost."""

from benchmarks.conftest import print_mapping, run_cached
from repro.harness import figures


def test_phost_comparison(benchmark, sim_cache):
    result = run_cached(
        benchmark,
        sim_cache,
        figures.phost_comparison,
        incast_senders=24,
        incast_bytes=270_000,
    )
    print_mapping("pHost comparison (no trimming, same 8-packet buffers)", result)

    benchmark.extra_info.update(result)

    # same shallow buffers, same receiver-driven idea — but without trimming
    # the receiver is blind to losses, so the incast takes much longer and the
    # permutation utilization is noticeably lower
    assert result["pHost_incast_ms"] > 1.25 * result["NDP_incast_ms"]
    assert result["NDP_permutation_utilization"] > 0.85
    assert (
        result["pHost_permutation_utilization"]
        < result["NDP_permutation_utilization"] - 0.04
    )
