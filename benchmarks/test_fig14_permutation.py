"""Figure 14 — per-flow throughput on a permutation matrix, all protocols."""

from benchmarks.conftest import print_table, run_cached
from repro.harness import figures
from repro.sim import units


def test_figure14_permutation_throughput(benchmark, sim_cache):
    results = run_cached(
        benchmark,
        sim_cache,
        figures.figure14_permutation_throughput,
        k=4,
        duration_ps=units.milliseconds(2),
    )
    rows = []
    for name, result in results.items():
        goodputs = result.sorted_goodputs_gbps()
        rows.append(
            {
                "protocol": name,
                "utilization": result.utilization,
                "min_gbps": goodputs[0],
                "median_gbps": goodputs[len(goodputs) // 2],
                "max_gbps": goodputs[-1],
            }
        )
    print_table("Figure 14: permutation traffic matrix, per-flow goodput", rows)

    util = {row["protocol"]: row["utilization"] for row in rows}
    benchmark.extra_info.update({f"{k}_utilization": v for k, v in util.items()})

    # headline ordering of the paper: NDP > MPTCP >> single-path DCTCP/DCQCN
    assert util["NDP"] > 0.85
    assert util["NDP"] > util["MPTCP"]
    assert util["MPTCP"] > util["DCTCP"]
    assert util["DCTCP"] < 0.75  # ECMP collisions waste capacity
    assert util["DCQCN"] < 0.75
    # NDP is also the fairest: its slowest flow still gets most of its share
    min_gbps = {row["protocol"]: row["min_gbps"] for row in rows}
    assert min_gbps["NDP"] > 7.0
    assert min_gbps["NDP"] > min_gbps["DCTCP"]
