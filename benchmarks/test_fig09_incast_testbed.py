"""Figure 9 — 7-to-1 incast on the 8-server testbed topology, NDP vs TCP."""

from benchmarks.conftest import print_table, run_cached
from repro.harness import figures


def test_figure9_testbed_incast(benchmark, sim_cache):
    rows = run_cached(
        benchmark,
        sim_cache,
        figures.figure9_testbed_incast,
        response_sizes=(10_000, 50_000, 100_000, 250_000, 500_000, 1_000_000),
    )
    print_table("Figure 9: 7:1 incast completion time vs response size", rows)

    largest = rows[-1]
    benchmark.extra_info["ndp_ms_at_1mb"] = largest["ndp_ms"]
    benchmark.extra_info["tcp_ms_at_1mb"] = largest["tcp_ms"]

    for row in rows:
        # NDP tracks the theoretical optimum closely at every response size
        assert row["ndp_ms"] < 1.25 * row["ideal_ms"] + 0.3
        # and completion time grows linearly with response size for NDP
    assert rows[-1]["ndp_ms"] > rows[0]["ndp_ms"] * 5
    # TCP is never faster than NDP and falls behind as responses grow
    assert all(row["tcp_ms"] >= 0.95 * row["ndp_ms"] for row in rows)
    assert sum(row["tcp_ms"] for row in rows) > sum(row["ndp_ms"] for row in rows)
