"""Figure 11 — throughput as a function of the initial window (host model)."""

from benchmarks.conftest import print_table, run_cached
from repro.harness import figures


def _both(windows):
    perfect = figures.figure11_initial_window_throughput(windows=windows, jittered=False)
    jittered = figures.figure11_initial_window_throughput(windows=windows, jittered=True)
    rows = []
    for ideal, real in zip(perfect, jittered):
        rows.append(
            {
                "initial_window": ideal["initial_window"],
                "perfect_gbps": ideal["throughput_gbps"],
                "jittered_gbps": real["throughput_gbps"],
            }
        )
    return rows


def test_figure11_initial_window(benchmark, sim_cache):
    rows = run_cached(benchmark, sim_cache, _both, windows=(1, 2, 4, 8, 16, 32, 64))
    print_table("Figure 11: back-to-back throughput vs initial window", rows)

    benchmark.extra_info["iw1_gbps"] = rows[0]["perfect_gbps"]
    benchmark.extra_info["iw64_gbps"] = rows[-1]["perfect_gbps"]

    # a one-packet window cannot fill the pipe; larger windows saturate it
    assert rows[0]["perfect_gbps"] < rows[-1]["perfect_gbps"]
    assert rows[-1]["perfect_gbps"] > 9.0
    # throughput is monotonically non-decreasing (within a small tolerance)
    for before, after in zip(rows, rows[1:]):
        assert after["perfect_gbps"] >= before["perfect_gbps"] - 0.2
    # the measured (jittered) pull spacing barely changes throughput, which is
    # the paper's point: the window covers small gaps in PULLs
    saturated = [r for r in rows if r["initial_window"] >= 16]
    for row in saturated:
        assert abs(row["jittered_gbps"] - row["perfect_gbps"]) < 0.5
