"""Figure 15 — FCT of 90 KB flows with long-running background traffic."""

from benchmarks.conftest import print_table, run_cached
from repro.harness import figures, metrics


def test_figure15_short_flow_fct(benchmark, sim_cache):
    results = run_cached(
        benchmark,
        sim_cache,
        figures.figure15_short_flow_fct,
        short_flows=8,
        background_bytes=20_000_000,
        background_flows_per_host=2,
        protocols=("NDP", "DCTCP", "MPTCP"),
    )
    rows = []
    for name, fcts in results.items():
        rows.append(
            {
                "protocol": name,
                "completed": len(fcts),
                "median_us": metrics.percentile(fcts, 0.5) if fcts else float("nan"),
                "p90_us": metrics.percentile(fcts, 0.9) if fcts else float("nan"),
            }
        )
    print_table("Figure 15: 90 KB flow completion times under background load", rows)

    medians = {row["protocol"]: row["median_us"] for row in rows}
    benchmark.extra_info.update({f"{k}_median_us": v for k, v in medians.items()})

    # every protocol completes the probes, but NDP's tiny switch buffers keep
    # the 90 KB transfers faster than the deep-buffered baselines (DCTCP's
    # standing queues show up directly in its median and tail)
    assert all(row["completed"] >= 6 for row in rows)
    assert medians["NDP"] < medians["DCTCP"]
    assert medians["NDP"] < 400  # microseconds: close to the unloaded time
    p90s = {row["protocol"]: row["p90_us"] for row in rows}
    assert p90s["NDP"] < p90s["DCTCP"]
