"""§"Congestion Control" — where packets get trimmed: sender vs switch load balancing."""

from benchmarks.conftest import print_table, run_cached
from repro.harness import figures


def test_uplink_trimming(benchmark, sim_cache):
    results = run_cached(benchmark, sim_cache, figures.uplink_trimming_study, k=4)
    rows = [
        {"path_selection": mode, **stats} for mode, stats in results.items()
    ]
    print_table("Uplink trimming: sender permutation vs per-packet random ECMP", rows)

    permutation = results["permutation"]
    random_mode = results["random"]
    benchmark.extra_info["permutation_uplink_trims"] = permutation["uplink_trimmed"]
    benchmark.extra_info["random_uplink_trims"] = random_mode["uplink_trimmed"]

    # with sender-driven permutation the core is essentially collision-free,
    # so packets are (almost) never trimmed above the ToR; per-packet random
    # choice concentrates transient bursts and trims noticeably more there
    assert permutation["uplink_trim_fraction"] <= 0.001
    assert random_mode["uplink_trimmed"] > permutation["uplink_trimmed"]
    # sender-driven load balancing also buys a little extra utilization
    assert permutation["utilization"] >= random_mode["utilization"]
