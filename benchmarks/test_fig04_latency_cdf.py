"""Figure 4 — delivery latency under permutation / random / incast matrices."""

from benchmarks.conftest import print_table, run_cached
from repro.harness import figures, metrics
from repro.sim import units


def test_figure4_latency_cdf(benchmark, sim_cache):
    samples = run_cached(
        benchmark,
        sim_cache,
        figures.figure4_latency_cdf,
        k=4,
        duration_ps=units.milliseconds(6),
    )
    rows = []
    for matrix, values in samples.items():
        rows.append(
            {
                "traffic_matrix": matrix,
                "packets": len(values),
                "median_us": metrics.percentile(values, 0.5),
                "p99_us": metrics.percentile(values, 0.99),
            }
        )
    print_table("Figure 4: packet delivery latency (send to ACK), microseconds", rows)

    by_matrix = {row["traffic_matrix"]: row for row in rows}
    benchmark.extra_info["permutation_median_us"] = by_matrix["permutation"]["median_us"]
    benchmark.extra_info["incast_median_us"] = by_matrix["incast"]["median_us"]

    # full-load permutation and random matrices keep latency in the
    # hundreds-of-microseconds range; an incast to one host is an order of
    # magnitude worse because the receiver link is the bottleneck
    assert by_matrix["permutation"]["median_us"] < 1_000
    assert by_matrix["random"]["median_us"] < 1_500
    assert by_matrix["incast"]["median_us"] > 2 * by_matrix["permutation"]["median_us"]
    # nothing is ever lost: every matrix delivers packets
    assert all(row["packets"] > 0 for row in rows)
