"""Figure 20 — very large incasts: overhead and retransmission mechanisms."""

from benchmarks.conftest import print_table, run_cached
from repro.harness import figures


def test_figure20_large_incast(benchmark, sim_cache):
    rows = run_cached(
        benchmark,
        sim_cache,
        figures.figure20_large_incast,
        sender_counts=(2, 8, 32, 128, 256),
        initial_windows=(1, 10, 23),
    )
    print_table("Figure 20: incast overhead and retransmissions per packet", rows)

    benchmark.extra_info["max_overhead_percent"] = max(r["overhead_percent"] for r in rows)

    iw23 = [r for r in rows if r["initial_window"] == 23]
    iw1 = [r for r in rows if r["initial_window"] == 1]
    # every incast completes, and with a sensible IW the overhead over the
    # perfect receiver-link schedule stays within a few percent
    assert all(r["all_complete"] for r in rows)
    assert all(r["overhead_percent"] < 8 for r in iw23)
    # a one-packet IW cannot fill the receiver link for incasts smaller than
    # the bandwidth-delay product (fewer than ~8 flows), so its overhead there
    # is clearly worse than IW=23 (the paper's observation)
    assert iw1[0]["senders"] < 8
    assert iw1[0]["overhead_percent"] > iw23[0]["overhead_percent"] + 5
    # NACKs dominate for small incasts; return-to-sender takes over for huge
    # ones once the header queue overflows
    small, huge = iw23[0], iw23[-1]
    assert small["rtx_per_packet_bounce"] == 0
    assert huge["rtx_per_packet_bounce"] > small["rtx_per_packet_bounce"]
    assert huge["rtx_per_packet_bounce"] > 0.05
    # even then, the mean number of retransmissions per packet stays near one
    assert all(
        r["rtx_per_packet_nack"] + r["rtx_per_packet_bounce"] < 1.5 for r in rows
    )
