"""Figure 21 — sender-limited traffic: A→{B,C,D,E} competing with F→E."""

from benchmarks.conftest import print_mapping, run_cached
from repro.harness import figures


def test_figure21_sender_limited(benchmark, sim_cache):
    result = run_cached(benchmark, sim_cache, figures.figure21_sender_limited)
    print_mapping("Figure 21: achieved throughput (Gb/s)", result)

    benchmark.extra_info["total_from_A"] = result["total_from_A"]
    benchmark.extra_info["total_to_E"] = result["total_to_E"]

    # both bottleneck links (A's uplink and E's downlink) end up saturated
    assert result["total_from_A"] > 9.0
    assert result["total_to_E"] > 9.0
    # A's four flows share its link roughly equally; F takes E's remainder
    flows_from_a = [result["A->B"], result["A->C"], result["A->D"], result["A->E"]]
    assert max(flows_from_a) < 1.8 * min(flows_from_a)
    assert result["F->E"] > 2 * result["A->E"]
