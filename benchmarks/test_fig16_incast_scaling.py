"""Figure 16 — incast completion time versus the number of senders."""

from benchmarks.conftest import print_table, run_cached
from repro.harness import figures


def test_figure16_incast_scaling(benchmark, sim_cache):
    rows = run_cached(
        benchmark,
        sim_cache,
        figures.figure16_incast_scaling,
        sender_counts=(4, 8, 16, 32),
        protocols=("NDP", "DCTCP", "DCQCN", "MPTCP"),
    )
    print_table("Figure 16: incast completion time (ms) vs number of senders", rows)

    largest = rows[-1]
    benchmark.extra_info["ndp_ms_at_max"] = largest["NDP"]
    benchmark.extra_info["mptcp_ms_at_max"] = largest["MPTCP"]

    for row in rows:
        # NDP tracks the optimum at every fan-in; DCTCP follows until its
        # buffers overflow at the largest incasts and timeouts creep in
        assert row["NDP"] < 1.25 * row["ideal_ms"]
        assert row["DCTCP"] < 4.0 * row["ideal_ms"]
        # MPTCP (tail-loss TCP) is crippled by synchronized losses / timeouts
        assert row["MPTCP"] > row["NDP"]
    assert largest["MPTCP"] > 3 * largest["NDP"]
    # completion time grows with the incast size for the well-behaved protocols
    assert rows[-1]["NDP"] > rows[0]["NDP"] * 4
