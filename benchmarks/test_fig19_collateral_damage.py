"""Figure 19 — collateral damage of an incast on a long flow to a neighbour."""

from benchmarks.conftest import print_table, run_cached
from repro.harness import figures
from repro.sim import units


INCAST_START = units.milliseconds(5)
INCAST_SETTLE = units.milliseconds(7)
INCAST_END = units.milliseconds(14)


def _mean_rate(series, start, end):
    values = [rate for time, rate in series if start <= time <= end]
    return sum(values) / len(values) if values else 0.0


def test_figure19_collateral_damage(benchmark, sim_cache):
    results = run_cached(
        benchmark,
        sim_cache,
        figures.figure19_collateral_damage,
        protocols=("NDP", "DCTCP", "DCQCN"),
        incast_senders=14,
        duration_ps=units.milliseconds(22),
    )
    rows = []
    for protocol, series in results.items():
        before = _mean_rate(series["long_flow"], units.milliseconds(2), INCAST_START)
        during = _mean_rate(series["long_flow"], INCAST_SETTLE, INCAST_END)
        incast_rate = _mean_rate(series["incast"], INCAST_SETTLE, INCAST_END)
        rows.append(
            {
                "protocol": protocol,
                "long_flow_before_gbps": before / 1e9,
                "long_flow_during_incast_gbps": during / 1e9,
                "incast_goodput_gbps": incast_rate / 1e9,
                "pause_events": series["pause_events"],
            }
        )
    print_table("Figure 19: long-flow goodput while a 14:1 incast hits a neighbour", rows)

    by_protocol = {row["protocol"]: row for row in rows}
    benchmark.extra_info["ndp_during_gbps"] = by_protocol["NDP"]["long_flow_during_incast_gbps"]
    benchmark.extra_info["dcqcn_during_gbps"] = by_protocol["DCQCN"]["long_flow_during_incast_gbps"]

    # before the incast everyone runs the long flow near line rate
    for row in rows:
        assert row["long_flow_before_gbps"] > 7.5
    # NDP isolates the long flow almost completely from the incast...
    assert by_protocol["NDP"]["long_flow_during_incast_gbps"] > 8.0
    # ...while DCQCN's PFC pauses punish it severely (collateral damage)
    assert by_protocol["DCQCN"]["pause_events"] > 0
    assert (
        by_protocol["DCQCN"]["long_flow_during_incast_gbps"]
        < 0.75 * by_protocol["NDP"]["long_flow_during_incast_gbps"]
    )
    # the incast itself still makes progress under every protocol
    for row in rows:
        assert row["incast_goodput_gbps"] > 0.5
