"""Fabric dynamics: link-state API, symbolic route table, FabricController.

Three layers under test:

1. the topology link-state API — fail/recover/degrade semantics, validation
   errors, subscriber notifications, and the physical effects on the
   underlying queue (backlog purge, serialization-memo refresh);
2. the :class:`~repro.topology.route_table.RouteTable` — pruning, path-id
   stability across failure/recovery, per-version caching;
3. the :class:`~repro.topology.dynamics.FabricController` — deterministic
   application of scheduled events on shadow timers, including the
   zero-perturbation guarantee asserted against the PR 3 perf baseline.
"""

from __future__ import annotations

import pytest

from repro.sim import units
from repro.sim.eventlist import EventList
from repro.sim.packet import Packet
from repro.sim.queues import DropTailQueue
from repro.topology import (
    FabricController,
    FatTreeTopology,
    LeafSpineTopology,
    SingleSwitchTopology,
)


@pytest.fixture
def eventlist():
    return EventList()


class TestLinkStateApi:
    def test_unknown_link_raises_clear_keyerror(self, eventlist):
        topo = SingleSwitchTopology(eventlist, hosts=3)
        with pytest.raises(KeyError, match="no link host0->host1 in SingleSwitchTopology"):
            topo.set_link_rate("host0", "host1", units.gbps(1))
        with pytest.raises(KeyError, match="no link nope->switch0"):
            topo.fail_link("nope", "switch0")
        with pytest.raises(KeyError, match="no link switch0->nope"):
            topo.set_link_delay_ps("switch0", "nope", 1000)

    def test_rate_and_delay_validation(self, eventlist):
        topo = SingleSwitchTopology(eventlist, hosts=2)
        with pytest.raises(ValueError, match="rate must be positive"):
            topo.set_link_rate("host0", "switch0", 0)
        with pytest.raises(ValueError, match="delay must be non-negative"):
            topo.set_link_delay_ps("host0", "switch0", -1)

    def test_set_link_rate_updates_record_and_queue(self, eventlist):
        topo = SingleSwitchTopology(eventlist, hosts=2)
        topo.set_link_rate("host0", "switch0", units.gbps(1))
        record = topo.link("host0", "switch0")
        assert record.rate_bps == units.gbps(1)
        assert record.queue.service_rate_bps == units.gbps(1)
        assert record.degraded
        assert not topo.link("switch0", "host0").degraded

    def test_set_link_delay_updates_pipe(self, eventlist):
        topo = SingleSwitchTopology(eventlist, hosts=2)
        topo.set_link_delay_ps("host0", "switch0", units.microseconds(7))
        record = topo.link("host0", "switch0")
        assert record.pipe.delay_ps == units.microseconds(7)
        assert record.delay_ps == units.microseconds(7)

    def test_mid_run_rate_change_slows_subsequent_serialization(self, eventlist):
        """Regression: re-rating must invalidate the serialization-time memo.

        The pre-dynamics ``set_link_rate`` mutated ``service_rate_bps`` in
        place; the queue's per-size memo (and its hoisted rounding half)
        kept serving every already-seen packet size at the old rate, so a
        mid-run degradation was silently ignored.
        """
        queue = DropTailQueue(eventlist, units.gbps(10), 10 * 9000, name="q")
        fast = queue.serialization_time(9000)
        # prime the memo at the fast rate, exactly as forwarding a packet does
        assert queue._ser_cache == {} or True
        queue._ser_cache[9000] = (9000 * 8 * units.SECOND + queue._rate_half) // queue.service_rate_bps
        queue.set_service_rate(units.gbps(1))
        assert queue.service_rate_bps == units.gbps(1)
        assert queue._ser_cache == {}  # memo flushed
        slow = queue.serialization_time(9000)
        assert slow == pytest.approx(10 * fast, rel=0.01)
        # the hoisted rounding half follows the new rate too
        assert queue._rate_half == units.gbps(1) // 2

    def test_mid_run_degrade_slows_a_live_transfer(self):
        """End-to-end regression: a mid-run re-rate must actually bite.

        The same seeded NDP transfer is run twice; in the second run the
        receiver's downlink renegotiates to 1 Gb/s halfway through.  Without
        the serialization-memo refresh the two runs would finish at the same
        time.
        """
        from repro.core.config import NdpConfig
        from repro.harness.ndp_network import NdpNetwork

        def run(degrade: bool) -> int:
            evl = EventList()
            network = NdpNetwork.build(
                evl, SingleSwitchTopology, config=NdpConfig(), seed=1, hosts=2
            )
            flow = network.create_flow(0, 1, 2_000_000)
            if degrade:
                controller = FabricController(network.topology)
                controller.schedule_degrade(
                    units.microseconds(800), "switch0", "host1", units.gbps(1),
                    bidirectional=False,
                )
            evl.run(until=units.milliseconds(60))
            assert flow.complete
            return flow.record.finish_time_ps

        healthy = run(False)
        degraded = run(True)
        assert degraded > 2 * healthy

    def test_fail_purges_backlog_and_drops_arrivals(self, eventlist):
        topo = SingleSwitchTopology(eventlist, hosts=2)
        queue = topo.queue("switch0", "host1")
        route = topo.get_paths(0, 1)[0]
        for seq in range(5):
            packet = Packet(flow_id=0, src=0, dst=1, size=9000, seqno=seq, route=route)
            packet.hop = 3  # as if it already traversed host0->switch0
            queue.receive_packet(packet)
        assert len(queue) == 5
        before_drops = queue.stats.packets_dropped
        topo.fail_link("switch0", "host1")
        assert len(queue._fifo) == 0
        assert queue.stats.packets_dropped == before_drops + 5
        # subsequent arrivals are dropped on the floor
        late = Packet(flow_id=0, src=0, dst=1, size=9000, seqno=9, route=route)
        late.hop = 3
        queue.receive_packet(late)
        assert queue.stats.packets_dropped == before_drops + 6
        assert len(queue._fifo) == 0
        # recovery restores the class admission path
        topo.recover_link("switch0", "host1")
        fresh = Packet(flow_id=0, src=0, dst=1, size=9000, seqno=10, route=route)
        fresh.hop = 3
        queue.receive_packet(fresh)
        assert len(queue) == 1

    def test_packet_in_upstream_pipe_does_not_cross_a_cut_link(self, eventlist):
        """Regression: the bound-method capture in the pipe fast path must not
        let a packet admitted after the cut cross the severed link.

        Pipes capture the downstream queue's ``receive_packet`` when a packet
        *enters* them, bypassing the severed queue's instance dropper on
        arrival.  Such bypassers must be held unserviced and die at restore
        time instead of being forwarded across the dead link.
        """
        from repro.sim.network import CountingSink

        topo = SingleSwitchTopology(eventlist, hosts=2)
        sink = CountingSink()
        route = topo.get_paths(0, 1)[0].extended(sink)
        packet = Packet(flow_id=0, src=0, dst=1, size=9000, seqno=0, route=route)
        packet.hop = 1
        route.elements[0].receive_packet(packet)  # host0->switch0 NIC queue
        # serialize onto the first pipe, then cut the downlink while the
        # packet is in flight towards the switch
        ser = route.elements[0].serialization_time(9000)
        eventlist.run(until=ser + 1)
        topo.fail_link("switch0", "host1")
        eventlist.run(until=units.milliseconds(1))
        down_queue = topo.queue("switch0", "host1")
        assert down_queue.stats.packets_forwarded == 0
        assert sink.packets_received == 0
        # the stray died with the link: restore drops it, service resumes clean
        topo.recover_link("switch0", "host1")
        assert len(down_queue._fifo) == 0
        assert down_queue.stats.packets_dropped >= 1

    def test_fail_and_recover_are_idempotent_and_versioned(self, eventlist):
        topo = SingleSwitchTopology(eventlist, hosts=2)
        v0 = topo.route_version
        topo.fail_link("switch0", "host1")
        topo.fail_link("switch0", "host1")  # no second event
        assert topo.route_version == v0 + 1
        assert topo.failed_links() == [("switch0", "host1")]
        topo.recover_link("switch0", "host1")
        topo.recover_link("switch0", "host1")
        assert topo.route_version == v0 + 2
        assert topo.failed_links() == []

    def test_subscribers_see_applied_events(self, eventlist):
        topo = SingleSwitchTopology(eventlist, hosts=2)
        seen = []
        callback = topo.subscribe_link_state(seen.append)
        topo.fail_link("switch0", "host1")
        topo.set_link_rate("host0", "switch0", units.gbps(2))
        topo.recover_link("switch0", "host1")
        assert [(e.kind, e.src_node, e.dst_node) for e in seen] == [
            ("fail", "switch0", "host1"),
            ("rate", "host0", "switch0"),
            ("recover", "switch0", "host1"),
        ]
        assert seen[1].rate_bps == units.gbps(2)
        topo.unsubscribe_link_state(callback)
        topo.fail_link("switch0", "host1")
        assert len(seen) == 3


class TestRouteTable:
    def test_resolution_matches_symbolic_enumeration(self, eventlist):
        topo = FatTreeTopology(eventlist, k=4)
        nodes = topo.route_table.node_paths(0, 15)
        routes = topo.get_paths(0, 15)
        assert len(nodes) == len(routes) == topo.core_count
        for path_id, (node_path, route) in enumerate(zip(nodes, routes)):
            assert route.path_id == path_id
            # queue+pipe per hop
            assert len(route) == 2 * (len(node_path) - 1)
            assert route.elements[0] is topo.queue(node_path[0], node_path[1])

    def test_static_fabric_resolves_once(self, eventlist):
        topo = FatTreeTopology(eventlist, k=4)
        first = topo.get_paths(0, 15)
        second = topo.get_paths(0, 15)
        assert first is second  # cached per link-state version

    def test_pruning_keeps_path_ids_stable(self, eventlist):
        topo = FatTreeTopology(eventlist, k=4)
        all_ids = [r.path_id for r in topo.get_paths(0, 15)]
        topo.fail_core_link(core=2, pod=3)
        surviving = topo.get_paths(0, 15)
        assert [r.path_id for r in surviving] == [i for i in all_ids if i != 2]
        # a second, different failure composes
        topo.fail_core_link(core=0, pod=3)
        assert [r.path_id for r in topo.get_paths(0, 15)] == [1, 3]
        topo.recover_core_link(core=2, pod=3)
        assert [r.path_id for r in topo.get_paths(0, 15)] == [1, 2, 3]
        topo.recover_core_link(core=0, pod=3)
        assert [r.path_id for r in topo.get_paths(0, 15)] == all_ids

    def test_failure_localized_to_affected_pod(self, eventlist):
        topo = FatTreeTopology(eventlist, k=4)
        topo.fail_core_link(core=0, pod=3)
        # pairs not touching pod 3 keep every path
        assert len(topo.get_paths(0, 7)) == topo.core_count
        # pairs into pod 3 lose exactly one
        assert len(topo.get_paths(0, 15)) == topo.core_count - 1

    def test_partition_yields_empty_path_set(self, eventlist):
        topo = SingleSwitchTopology(eventlist, hosts=3)
        topo.fail_link("switch0", "host1")
        assert topo.get_paths(0, 1) == []
        assert topo.get_paths(0, 2)  # other host unaffected
        topo.recover_link("switch0", "host1")
        assert len(topo.get_paths(0, 1)) == 1

    def test_leafspine_pruning(self, eventlist):
        topo = LeafSpineTopology(eventlist, leaves=4, spines=2, hosts_per_leaf=2)
        leaf, spine = topo.leaf_spine_pair(0, 1)
        topo.fail_link_pair(leaf, spine)
        paths = topo.get_paths(0, 7)
        assert [p.path_id for p in paths] == [0]


class TestLocalityHelpers:
    def test_leafspine_parity_with_fattree(self, eventlist):
        topo = LeafSpineTopology(eventlist, leaves=4, spines=2, hosts_per_leaf=2)
        assert topo.tor_of_host(5) == topo.leaf_of_host(5) == "leaf2"
        assert topo.host_tor_index(5) == 2
        assert topo.hosts_of_tor(2) == [4, 5]
        uplinks = topo.uplinks_of_node(topo.tor_of_host(5))
        assert uplinks == [("leaf2", "spine0"), ("leaf2", "spine1")]

    def test_fattree_hosts_of_tor(self, eventlist):
        topo = FatTreeTopology(eventlist, k=4)
        assert topo.hosts_of_tor(pod=0, tor_index=1) == [2, 3]
        assert topo.tor_of_host(2) == "pod0_tor1"
        uplinks = topo.uplinks_of_node("pod0_tor1")
        assert uplinks == [("pod0_tor1", "pod0_agg0"), ("pod0_tor1", "pod0_agg1")]

    def test_generic_tor_of_host_via_uplink(self, eventlist):
        topo = SingleSwitchTopology(eventlist, hosts=2)
        assert topo.tor_of_host(1) == "switch0"

    def test_core_agg_pair_validation(self, eventlist):
        topo = FatTreeTopology(eventlist, k=4)
        with pytest.raises(ValueError, match="core must be"):
            topo.core_agg_pair(core=99, pod=0)
        with pytest.raises(ValueError, match="pod must be"):
            topo.core_agg_pair(core=0, pod=99)


class TestFabricController:
    def test_events_apply_at_scheduled_times(self, eventlist):
        topo = FatTreeTopology(eventlist, k=4)
        controller = FabricController(topo)
        core_node, agg_node = topo.core_agg_pair(0, 3)
        controller.schedule_outage(core_node, agg_node, 1_000_000, 3_000_000)
        controller.schedule_degrade(2_000_000, *topo.core_agg_pair(1, 3), units.gbps(1))
        assert len(controller.pending()) == 6  # 3 bidirectional changes
        eventlist.run(until=1_500_000)
        assert set(topo.failed_links()) == {(core_node, agg_node), (agg_node, core_node)}
        eventlist.run(until=2_500_000)
        assert topo.link(*topo.core_agg_pair(1, 3)).rate_bps == units.gbps(1)
        eventlist.run(until=3_500_000)
        assert topo.failed_links() == []
        assert [e.action for e in controller.fired] == [
            "fail", "fail", "rate", "rate", "recover", "recover",
        ]
        assert not controller.pending()

    def test_unknown_link_fails_at_scheduling_time(self, eventlist):
        topo = SingleSwitchTopology(eventlist, hosts=2)
        controller = FabricController(topo)
        with pytest.raises(KeyError, match="no link"):
            controller.schedule_fail(1_000, "switch0", "nope")

    def test_outage_ordering_validated(self, eventlist):
        topo = SingleSwitchTopology(eventlist, hosts=2)
        controller = FabricController(topo)
        with pytest.raises(ValueError, match="recovery .* must come after"):
            controller.schedule_outage("host0", "switch0", 2_000, 1_000)

    def test_unidirectional_failure(self, eventlist):
        topo = SingleSwitchTopology(eventlist, hosts=2)
        controller = FabricController(topo)
        controller.schedule_fail(1_000, "switch0", "host1", bidirectional=False)
        eventlist.run(until=2_000)
        assert topo.failed_links() == [("switch0", "host1")]
        assert topo.link_is_up("host1", "switch0")

    def test_timeline_describes_events(self, eventlist):
        topo = SingleSwitchTopology(eventlist, hosts=2)
        controller = FabricController(topo)
        controller.schedule_degrade(5_000, "host0", "switch0", units.gbps(1),
                                    bidirectional=False)
        (event,) = controller.timeline()
        assert "rate host0->switch0" in event.describe()
        assert "1 Gb/s" in event.describe()


class TestZeroPerturbation:
    """With no FabricController events, runs are bit-identical to PR 3."""

    # PR 3 baseline (BENCH_perf.json at commit 8254c55): the 128-host
    # fat-tree permutation, 180 kB per flow, seed 1.
    PR3_PERMUTATION_DIGEST = (
        "acb029707a3f7247a3b480c0fe958a53f163abf4b71af681cb1bb59ecbdf5956"
    )
    PR3_PERMUTATION_EVENTS = 94_200

    def test_permutation_digest_matches_pr3_baseline(self):
        from benchmarks.perf.scenarios import run_permutation

        result = run_permutation(seed=1, repeats=1)
        assert result.flow_digest == self.PR3_PERMUTATION_DIGEST
        assert result.events_executed == self.PR3_PERMUTATION_EVENTS
        assert result.completed_flows == result.total_flows == 128

    def test_idle_controller_is_bit_identical(self):
        """Installing a controller that schedules nothing changes nothing."""
        from benchmarks.perf.scenarios import flow_digest

        import random

        from repro.core.config import NdpConfig
        from repro.harness.experiment import start_permutation
        from repro.harness.ndp_network import NdpNetwork

        def run(with_controller: bool):
            evl = EventList()
            network = NdpNetwork.build(
                evl, FatTreeTopology, config=NdpConfig(), seed=1, k=4
            )
            if with_controller:
                FabricController(network.topology)
            start_permutation(network, flow_size_bytes=90_000, rng=random.Random(1))
            evl.run(until=20_000_000_000)
            return flow_digest(network), evl.events_executed

        assert run(False) == run(True)
