"""Tests for the leaf-spine, single-switch and back-to-back topologies."""

from __future__ import annotations

import pytest

from repro.sim.queues import LosslessQueue
from repro.sim.units import gbps
from repro.topology.base import Topology
from repro.topology.leafspine import LeafSpineTopology
from repro.topology.simple import BackToBackTopology, SingleSwitchTopology


class TestLeafSpine:
    def test_testbed_dimensions(self, eventlist):
        # the paper's testbed: 8 servers, four leaves, two spines
        topo = LeafSpineTopology(eventlist, leaves=4, spines=2, hosts_per_leaf=2)
        assert topo.host_count == 8
        assert len(topo.get_paths(0, 2)) == 2  # via each spine
        assert len(topo.get_paths(0, 1)) == 1  # same leaf

    def test_path_structure(self, eventlist):
        topo = LeafSpineTopology(eventlist, leaves=3, spines=4, hosts_per_leaf=2)
        paths = topo.get_paths(0, 5)
        assert len(paths) == 4
        assert all(len(p) == 8 for p in paths)  # 4 hops of queue+pipe

    def test_invalid_parameters(self, eventlist):
        with pytest.raises(ValueError):
            LeafSpineTopology(eventlist, leaves=0)
        with pytest.raises(ValueError):
            LeafSpineTopology(eventlist, oversubscription=0.5)

    def test_same_host_rejected(self, eventlist):
        topo = LeafSpineTopology(eventlist)
        with pytest.raises(ValueError):
            topo.get_paths(2, 2)


class TestSingleSwitch:
    def test_single_path_through_switch(self, eventlist):
        topo = SingleSwitchTopology(eventlist, hosts=6)
        assert topo.host_count == 6
        paths = topo.get_paths(1, 4)
        assert len(paths) == 1
        assert len(paths[0]) == 4

    def test_downlink_queue_is_switch_output_port(self, eventlist):
        topo = SingleSwitchTopology(eventlist, hosts=3)
        assert topo.downlink_queue(2) is topo.queue("switch0", "host2")

    def test_needs_two_hosts(self, eventlist):
        with pytest.raises(ValueError):
            SingleSwitchTopology(eventlist, hosts=1)


class TestBackToBack:
    def test_direct_connection(self, eventlist):
        topo = BackToBackTopology(eventlist)
        assert topo.host_count == 2
        paths = topo.get_paths(0, 1)
        assert len(paths) == 1
        assert len(paths[0]) == 2  # NIC queue + cable

    def test_host_nic_queue_lookup(self, eventlist):
        topo = BackToBackTopology(eventlist)
        assert topo.host_nic_queue(0) is topo.queue("host0", "host1")


class TestBaseTopologyHelpers:
    def test_set_link_rate_validates(self, eventlist):
        topo = SingleSwitchTopology(eventlist, hosts=2)
        with pytest.raises(ValueError):
            topo.set_link_rate("host0", "switch0", 0)
        topo.set_link_rate("host0", "switch0", gbps(1))
        assert topo.queue("host0", "switch0").service_rate_bps == gbps(1)

    def test_duplicate_link_rejected(self, eventlist):
        topo = SingleSwitchTopology(eventlist, hosts=2)
        with pytest.raises(ValueError):
            topo.add_link("host0", "switch0")

    def test_wire_pfc_registers_inbound_ports(self, eventlist):
        def pfc_factory(evl, rate, name):
            return LosslessQueue(evl, rate, 20 * 9000, name=name)

        topo = SingleSwitchTopology(
            eventlist, hosts=3, queue_factory=pfc_factory, host_nic_factory=pfc_factory
        )
        wired = topo.wire_pfc()
        assert wired > 0
        # the switch->host0 port must pause the host NICs feeding the switch
        downlink = topo.queue("switch0", "host0")
        upstream_names = {q.name for q in downlink.upstream_queues()}
        assert "host1->switch0" in upstream_names
        assert "host2->switch0" in upstream_names

    def test_fabric_queues_excludes_host_nics(self, eventlist):
        topo = SingleSwitchTopology(eventlist, hosts=3)
        fabric = list(topo.fabric_queues())
        assert len(fabric) == 3  # switch->host ports only
        assert all(q.name.startswith("switch0->") for q in fabric)

    def test_base_get_paths_is_abstract(self, eventlist):
        topo = Topology(eventlist)
        with pytest.raises(NotImplementedError):
            topo.get_paths(0, 1)
