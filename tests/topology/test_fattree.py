"""Tests for the k-ary FatTree topology."""

from __future__ import annotations

import pytest

from repro.sim.eventlist import EventList
from repro.sim.pipe import Pipe
from repro.sim.queues import BaseQueue
from repro.sim.units import gbps
from repro.topology.fattree import FatTreeTopology


@pytest.fixture
def fattree(eventlist):
    return FatTreeTopology(eventlist, k=4)


class TestStructure:
    def test_host_count_is_k_cubed_over_4(self, eventlist):
        for k, hosts in [(2, 2), (4, 16), (6, 54), (8, 128)]:
            topo = FatTreeTopology(eventlist, k=k)
            assert topo.host_count == hosts == k**3 // 4

    def test_k_12_matches_paper_432_hosts(self, eventlist):
        topo = FatTreeTopology(eventlist, k=12)
        assert topo.host_count == 432

    def test_odd_or_tiny_k_rejected(self, eventlist):
        with pytest.raises(ValueError):
            FatTreeTopology(eventlist, k=5)
        with pytest.raises(ValueError):
            FatTreeTopology(eventlist, k=0)

    def test_link_count(self, fattree):
        # per k=4: 16 host links + (k pods * k/2 tors * k/2 aggs) tor-agg
        # + (k pods * k/2 aggs * k/2 cores-per-agg) agg-core, all bidirectional
        k = 4
        expected_undirected = 16 + k * (k // 2) ** 2 + k * (k // 2) ** 2
        assert len(fattree.links) == 2 * expected_undirected

    def test_pod_and_tor_assignment(self, fattree):
        assert fattree.host_pod(0) == 0
        assert fattree.host_pod(15) == 3
        assert fattree.host_tor_index(0) == 0
        assert fattree.host_tor_index(2) == 1
        assert fattree.tor_of_host(0) == "pod0_tor0"
        assert fattree.tor_of_host(5) == "pod1_tor0"


class TestPaths:
    def test_same_tor_has_single_path(self, fattree):
        paths = fattree.get_paths(0, 1)
        assert len(paths) == 1
        # host NIC queue+pipe, ToR queue+pipe
        assert len(paths[0]) == 4

    def test_same_pod_has_radix_paths(self, fattree):
        paths = fattree.get_paths(0, 2)
        assert len(paths) == 2  # k/2 aggregation switches

    def test_cross_pod_has_core_count_paths(self, fattree):
        paths = fattree.get_paths(0, 15)
        assert len(paths) == 4  # (k/2)^2 core switches
        assert sorted(p.path_id for p in paths) == [0, 1, 2, 3]
        # 6 hops: host->tor, tor->agg, agg->core, core->agg, agg->tor, tor->host
        assert all(len(p) == 12 for p in paths)

    def test_paths_alternate_queue_and_pipe(self, fattree):
        for path in fattree.get_paths(0, 15):
            for index, element in enumerate(path):
                if index % 2 == 0:
                    assert isinstance(element, BaseQueue)
                else:
                    assert isinstance(element, Pipe)

    def test_paths_start_at_source_nic(self, fattree):
        nic = fattree.host_nic_queue(3)
        for path in fattree.get_paths(3, 12):
            assert path[0] is nic

    def test_cross_pod_paths_are_disjoint_in_the_core(self, fattree):
        paths = fattree.get_paths(0, 15)
        core_queues = set()
        for path in paths:
            names = [getattr(e, "name", "") for e in path]
            core_hops = [n for n in names if n.startswith("core")]
            assert core_hops  # every cross-pod path crosses a core switch
            core_queues.add(core_hops[0])
        assert len(core_queues) == len(paths)

    def test_self_path_rejected(self, fattree):
        with pytest.raises(ValueError):
            fattree.get_paths(3, 3)

    def test_forward_and_reverse_path_counts_match(self, fattree):
        assert len(fattree.get_paths(0, 15)) == len(fattree.get_paths(15, 0))


class TestVariants:
    def test_oversubscription_reduces_uplink_rate(self, eventlist):
        topo = FatTreeTopology(eventlist, k=4, oversubscription=4.0)
        tor_uplink = topo.queue("pod0_tor0", "pod0_agg0")
        host_link = topo.queue("pod0_tor0", "host0")
        assert tor_uplink.service_rate_bps == host_link.service_rate_bps // 4

    def test_degrade_core_link(self, fattree):
        fattree.degrade_core_link(core=0, pod=3, new_rate_bps=gbps(1))
        assert fattree.queue("core0", "pod3_agg0").service_rate_bps == gbps(1)
        assert fattree.queue("pod3_agg0", "core0").service_rate_bps == gbps(1)
        # other links untouched
        assert fattree.queue("core1", "pod3_agg0").service_rate_bps == gbps(10)

    def test_uplink_and_downlink_queue_sets(self, fattree):
        uplinks = fattree.uplink_queues()
        downlinks = fattree.downlink_queues()
        assert len(downlinks) == fattree.host_count
        # ToR->agg: 4 pods * 2 tors * 2 aggs = 16; agg->core: 4 pods * 2 aggs * 2 = 16
        assert len(uplinks) == 32
        assert not set(id(q) for q in uplinks) & set(id(q) for q in downlinks)

    def test_describe_mentions_size(self, fattree):
        text = fattree.describe()
        assert "16 hosts" in text
