"""Tests for the load_fct experiment family (open-loop load sweeps).

The ISSUE 5 acceptance contract: a seeded load sweep whose cold, cached
and parallel executions are bit-identical (same seed => same arrival
sequence => same FlowRecords => same slowdown rows), decomposed into
RunSpec units the PR-3 sweep engine runs unchanged.
"""

from __future__ import annotations

import pytest

from repro.harness import figures, sweep
from repro.harness.sweep import ResultCache
from repro.sim import units

#: a parameterisation small enough for the unit-test budget (one load,
#: one protocol per test where possible, sub-millisecond windows)
TINY = dict(
    loads=(0.2,),
    fabric="fattree",
    k=4,
    workload="fbweb",
    warmup_ps=units.microseconds(200),
    measure_ps=units.microseconds(400),
    drain_ps=units.microseconds(400),
    seed=33,
)


class TestPlanShape:
    def test_one_spec_per_load_and_protocol(self):
        plan = figures.load_fct_plan(loads=(0.1, 0.5), protocols=["NDP", "TCP"])
        assert len(plan.specs) == 4
        assert plan.specs[0].experiment == "load_fct[NDP,load=0.1,fattree,fbweb]"

    def test_scalar_load_overrides_the_sweep(self):
        plan = figures.load_fct_plan(load=0.3, protocols=["NDP"])
        assert len(plan.specs) == 1
        assert plan.specs[0].kwargs["load"] == 0.3

    def test_protocol_names_resolve_case_insensitively(self):
        plan = figures.load_fct_plan(load=0.1, protocols=["ndp", "Dctcp", "PHOST"])
        assert [spec.experiment for spec in plan.specs] == [
            "load_fct[NDP,load=0.1,fattree,fbweb]",
            "load_fct[DCTCP,load=0.1,fattree,fbweb]",
            "load_fct[pHost,load=0.1,fattree,fbweb]",
        ]

    def test_scalar_protocol_overrides_the_roster(self):
        plan = figures.load_fct_plan(load=0.1, protocol="dcqcn")
        assert len(plan.specs) == 1
        assert plan.specs[0].experiment == "load_fct[DCQCN,load=0.1,fattree,fbweb]"

    def test_validation(self):
        with pytest.raises(ValueError):
            figures.load_fct_plan(loads=())
        with pytest.raises(ValueError):
            figures.load_fct_plan(loads=(0.0,))
        with pytest.raises(ValueError):
            # NaN must fail at plan construction, not inside a sweep worker
            figures.load_fct_plan(loads=(float("nan"),))
        with pytest.raises(ValueError):
            figures.load_fct_plan(load=float("inf"))
        with pytest.raises(ValueError):
            figures.load_fct_plan(fabric="torus")
        with pytest.raises(ValueError):
            figures.load_fct_plan(workload="uniform")
        with pytest.raises(ValueError):
            figures.load_fct_plan(protocols=["NDP", "CARRIER-PIGEON"])


class TestDeterminism:
    def test_cold_cached_and_parallel_runs_are_bit_identical(self, tmp_path):
        plan = figures.load_fct_plan(protocols=["NDP", "TCP"], **TINY)
        cache = ResultCache(str(tmp_path))

        cold = sweep.run_plan(plan, jobs=1, cache=None)
        populating = sweep.run_plan(plan, jobs=1, cache=cache)
        cached = sweep.run_plan(plan, jobs=1, cache=cache)
        parallel = sweep.run_plan(
            plan, jobs=2, cache=ResultCache(str(tmp_path / "fresh"))
        )

        assert cold == populating == cached == parallel
        assert cache.hits == len(plan.specs)  # third run was all disk hits

    def test_same_seed_same_arrivals_across_protocols(self):
        """The arrival clock is protocol-independent: one seed, one sequence."""
        rows = sweep.run_plan(
            figures.load_fct_plan(protocols=["NDP", "DCTCP"], **TINY), cache=None
        )
        ndp, dctcp = rows
        assert ndp["protocol"] == "NDP" and dctcp["protocol"] == "DCTCP"
        assert ndp["arrival_digest"] == dctcp["arrival_digest"]
        assert ndp["flows_offered"] == dctcp["flows_offered"] > 0

    def test_different_seed_different_arrivals(self):
        changed = dict(TINY, seed=34)
        base = sweep.run_plan(
            figures.load_fct_plan(protocols=["NDP"], **TINY), cache=None
        )[0]
        other = sweep.run_plan(
            figures.load_fct_plan(protocols=["NDP"], **changed), cache=None
        )[0]
        assert base["arrival_digest"] != other["arrival_digest"]


class TestRowContents:
    def test_row_reports_counts_and_binned_slowdowns(self):
        row = sweep.run_plan(
            figures.load_fct_plan(protocols=["NDP"], **TINY), cache=None
        )[0]
        assert row["hosts"] == 16
        assert row["flows_offered"] >= row["flows_measured"] > 0
        assert (
            row["flows_measured"]
            == row["measured_completed"] + row["measured_censored"]
        )
        slowdown = row["slowdown"]
        assert set(slowdown) == {"all", "small", "medium", "large"}
        assert slowdown["all"]["count"] == row["measured_completed"]
        for stats in slowdown.values():
            if stats["count"]:
                assert stats["p50"] <= stats["p99"] <= stats["p999"] <= stats["max"]
                assert stats["p50"] > 0.1  # a sane slowdown, not a unit bug

    def test_leafspine_fabric_and_per_host_matrix(self):
        row = sweep.run_plan(
            figures.load_fct_plan(
                protocols=["NDP"], matrix="per_host",
                **dict(TINY, fabric="leafspine"),
            ),
            cache=None,
        )[0]
        assert row["fabric"] == "leafspine"
        assert row["measured_completed"] > 0
