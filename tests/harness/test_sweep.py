"""Tests for the parallel sweep engine and its persistent result cache.

Covers the ISSUE 3 acceptance points: cache hit/miss behaviour,
corrupt-record recovery, concurrent-writer safety, and the determinism
contract — a cold serial run, a cached run and a parallel run of the same
figure must return bit-identical results.
"""

from __future__ import annotations

import json
import os
import pickle
import subprocess
import sys

import pytest

from repro.harness import experiment, figures, sweep
from repro.harness.sweep import Plan, ResultCache, RunSpec


# ---------------------------------------------------------------------------
# Result codec
# ---------------------------------------------------------------------------

class TestResultCodec:
    def test_scalars_round_trip(self):
        for value in (None, True, False, 0, -7, 3.141592653589793, 1e-300, "x", ""):
            assert sweep.normalize_result(value) == value

    def test_float_bits_survive_json(self):
        value = 0.1 + 0.2  # not representable as "0.3"
        assert sweep.normalize_result(value) == value

    def test_tuples_are_restored(self):
        value = {"series": [(1, 2.5), (3, 4.5)], "single": (0,)}
        restored = sweep.normalize_result(value)
        assert restored == value
        assert isinstance(restored["series"][0], tuple)
        assert isinstance(restored["single"], tuple)

    def test_non_string_dict_keys_are_restored(self):
        value = {1500: {"median_us": 1.2}, 9000: {"median_us": 7.2}}
        restored = sweep.normalize_result(value)
        assert restored == value
        assert all(isinstance(key, int) for key in restored)

    def test_throughput_result_round_trips(self):
        result = experiment.ThroughputResult(
            duration_ps=2_000_000,
            link_rate_bps=10_000_000_000,
            per_flow_goodput_bps=[1.5e9, 9.2e9],
            utilization=0.87,
            trimmed_packets=12,
            dropped_packets=0,
        )
        restored = sweep.normalize_result(result)
        assert isinstance(restored, experiment.ThroughputResult)
        assert restored == result
        assert restored.sorted_goodputs_gbps() == result.sorted_goodputs_gbps()

    def test_reserved_marker_key_round_trips(self):
        value = {"__repro__": "not a tag, just data"}
        assert sweep.normalize_result(value) == value

    def test_unsupported_types_are_rejected(self):
        with pytest.raises(TypeError):
            sweep.encode_result({"bad": {1, 2, 3}})

    def test_canonical_params_is_order_insensitive(self):
        a = sweep.canonical_params({"x": 1, "y": (2, 3)})
        b = sweep.canonical_params({"y": (2, 3), "x": 1})
        assert a == b


# ---------------------------------------------------------------------------
# Persistent cache
# ---------------------------------------------------------------------------

def _cheap_spec(samples: int = 50) -> RunSpec:
    return RunSpec(
        "fig12", figures._figure12_run,
        dict(packet_sizes=(1500, 9000), samples=samples, seed=1),
    )


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        spec = _cheap_spec()
        hit, _ = cache.lookup_spec(spec)
        assert not hit and cache.misses == 1
        result = spec.execute()
        cache.store_spec(spec, result)
        assert cache.stores == 1
        hit, value = cache.lookup_spec(spec)
        assert hit and cache.hits == 1
        assert value == sweep.normalize_result(result)

    def test_key_depends_on_experiment_kwargs_and_fingerprint(self):
        base = _cheap_spec(samples=50)
        assert base.cache_key() == _cheap_spec(samples=50).cache_key()
        assert base.cache_key() != _cheap_spec(samples=51).cache_key()
        renamed = RunSpec("other", base.fn, dict(base.kwargs))
        assert base.cache_key() != renamed.cache_key()
        assert base.cache_key() != base.cache_key(fingerprint="deadbeef")

    def test_fingerprint_covers_package_source(self):
        fingerprint = sweep.code_fingerprint()
        assert len(fingerprint) == 64
        assert fingerprint == sweep.code_fingerprint()  # memoized, stable

    def test_corrupt_record_recovers_as_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        spec = _cheap_spec()
        cache.store_spec(spec, spec.execute())
        path = cache._path(spec.cache_key())
        for garbage in ("{not json", json.dumps({"experiment": "fig12"}), ""):
            with open(path, "w") as fh:
                fh.write(garbage)
            hit, _ = cache.lookup_spec(spec)
            assert not hit
            assert not os.path.exists(path)  # corrupt record was dropped
            cache.store_spec(spec, spec.execute())  # cache heals itself
        hit, _ = cache.lookup_spec(spec)
        assert hit

    def test_unwritable_cache_degrades_to_no_op(self, tmp_path):
        blocked = tmp_path / "blocked"
        blocked.write_text("a file, not a directory")
        cache = ResultCache(str(blocked))
        spec = _cheap_spec()
        cache.store_spec(spec, spec.execute())  # must not raise
        assert cache.stores == 0
        hit, _ = cache.lookup_spec(spec)
        assert not hit

    def test_concurrent_writers_never_corrupt_records(self, tmp_path):
        """Several processes hammering the same record stay readable."""
        script = (
            "import sys\n"
            "sys.path.insert(0, sys.argv[2])\n"
            "from repro.harness.sweep import ResultCache, RunSpec\n"
            "from repro.harness import figures\n"
            "spec = RunSpec('fig12', figures._figure12_run,\n"
            "    dict(packet_sizes=(1500, 9000), samples=50, seed=1))\n"
            "cache = ResultCache(sys.argv[1])\n"
            "result = spec.execute()\n"
            "for _ in range(25):\n"
            "    cache.store_spec(spec, result)\n"
            "    hit, value = cache.lookup_spec(spec)\n"
            "    assert hit and value == result, 'read back a corrupt record'\n"
        )
        src = os.path.join(os.path.dirname(figures.__file__), "..", "..")
        processes = [
            subprocess.Popen(
                [sys.executable, "-c", script, str(tmp_path), os.path.abspath(src)],
                stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            )
            for _ in range(4)
        ]
        for process in processes:
            _out, err = process.communicate(timeout=120)
            assert process.returncode == 0, err.decode()
        # afterwards the record is a single valid JSON file
        cache = ResultCache(str(tmp_path))
        hit, value = cache.lookup_spec(_cheap_spec())
        assert hit and value == sweep.normalize_result(_cheap_spec().execute())
        leftovers = [f for f in os.listdir(tmp_path) if ".tmp." in f]
        assert leftovers == []

    def test_prune_reclaims_only_old_records(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        spec = _cheap_spec()
        cache.store_spec(spec, spec.execute())
        path = cache._path(spec.cache_key())
        assert cache.prune() == 0  # fresh record survives
        os.utime(path, (1, 1))  # pretend it is decades old
        stale_tmp = tmp_path / "deadbeef.tmp.123"
        stale_tmp.write_text("{}")
        os.utime(stale_tmp, (1, 1))
        assert cache.prune() == 2
        assert not os.path.exists(path) and not stale_tmp.exists()

    def test_hits_keep_records_young(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        spec = _cheap_spec()
        cache.store_spec(spec, spec.execute())
        path = cache._path(spec.cache_key())
        os.utime(path, (1, 1))
        hit, _ = cache.lookup_spec(spec)  # refreshes mtime
        assert hit
        assert cache.prune() == 0

    def test_maybe_prune_is_throttled_by_stamp(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.maybe_prune()
        stamp = tmp_path / ".last-prune"
        assert stamp.exists()
        spec = _cheap_spec()
        cache.store_spec(spec, spec.execute())
        os.utime(cache._path(spec.cache_key()), (1, 1))
        cache.maybe_prune()  # stamp is fresh: no walk, record survives
        assert os.path.exists(cache._path(spec.cache_key()))

    def test_default_cache_honors_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(sweep.CACHE_DIR_ENV, str(tmp_path))
        cache = sweep.default_cache()
        assert cache is not None and cache.root == str(tmp_path)
        monkeypatch.setenv(sweep.NO_CACHE_ENV, "1")
        assert sweep.default_cache() is None


# ---------------------------------------------------------------------------
# Determinism: cold vs cached vs parallel
# ---------------------------------------------------------------------------

class TestDeterminism:
    def test_cold_cached_and_parallel_runs_are_bit_identical(self, tmp_path):
        plan = figures.figure10_plan(long_flows=2)
        cache = ResultCache(str(tmp_path))

        cold = sweep.run_plan(plan, jobs=1, cache=None)
        populating = sweep.run_plan(plan, jobs=1, cache=cache)
        cached = sweep.run_plan(plan, jobs=1, cache=cache)
        parallel = sweep.run_plan(
            plan, jobs=2, cache=ResultCache(str(tmp_path / "fresh"))
        )

        assert cold == populating == cached == parallel
        assert cache.hits == len(plan.specs)  # third run was all disk hits

    def test_parallel_codec_figure_is_bit_identical(self, tmp_path):
        # fig12's result exercises int dict keys through worker pickling
        plan = figures.figure12_plan(samples=200)
        serial = sweep.run_plan(plan, cache=None)
        parallel = sweep.run_plan(plan, jobs=2, cache=None)
        assert serial == parallel
        assert list(serial) == [1500, 9000]

    def test_run_specs_reports_sources_in_order(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        specs = [_cheap_spec(50), _cheap_spec(60)]
        sweep.run_specs([specs[0]], cache=cache)
        seen = []
        sweep.run_specs(
            specs, cache=cache,
            on_result=lambda spec, index, source: seen.append((index, source)),
        )
        assert sorted(seen) == [(0, "cache"), (1, "run")]

    def test_failing_spec_raises_with_experiment_name(self):
        spec = RunSpec("boom", _always_failing, {})
        with pytest.raises(RuntimeError, match="boom"):
            sweep.run_specs([spec], cache=None)

    def test_completed_runs_are_persisted_before_a_later_spec_fails(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        good, bad = _cheap_spec(), RunSpec("boom", _always_failing, {})
        with pytest.raises(RuntimeError, match="boom"):
            sweep.run_specs([good, bad], cache=cache)
        hit, _ = cache.lookup_spec(good)  # the finished run survived
        assert hit

    def test_duplicate_specs_in_one_batch_simulate_once(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        specs = [_cheap_spec(70), _cheap_spec(70), _cheap_spec(70)]
        seen = []
        values = sweep.run_specs(
            specs, cache=cache,
            on_result=lambda _s, index, source: seen.append((index, source)),
        )
        assert values[0] == values[1] == values[2]
        assert cache.stores == 1  # one simulation, fanned out to all three
        assert sorted(seen) == [(0, "run"), (1, "run"), (2, "run")]


def _always_failing():
    raise ValueError("injected failure")


# ---------------------------------------------------------------------------
# Figure plan registry
# ---------------------------------------------------------------------------

class TestFigurePlans:
    def test_registry_matches_cli_catalogue(self):
        from repro import cli

        assert set(figures.FIGURE_PLANS) == set(cli.EXPERIMENTS)

    def test_every_plan_yields_executable_picklable_specs(self):
        for name, builder in figures.FIGURE_PLANS.items():
            plan = builder()
            assert isinstance(plan, Plan) and plan.specs, name
            for spec in plan.specs:
                # kwargs must canonicalize (stable cache keys) ...
                sweep.canonical_params(spec.kwargs)
                # ... and the unit fn must be picklable for worker processes
                assert pickle.loads(pickle.dumps(spec.fn)) is spec.fn, name

    def test_sweep_figures_decompose_per_point(self):
        assert len(figures.figure16_plan().specs) == 16  # 4 sender counts x 4 protos
        assert len(figures.figure17_plan().specs) == 24  # 4 configs x 6 windows
        assert len(figures.scaling_plan().specs) == 3    # one per k
