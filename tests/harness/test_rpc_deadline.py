"""Tests for the service-level experiment families (rpc_deadline, coflow_ct).

The PR 3 invariant applies to both: cold == cached == parallel runs are
bit-identical.  On top of that, one seeded incast-heavy point pins the
paper-level sanity claim — receiver-driven NDP meets partition-aggregate
SLOs that loss-based per-flow-ECMP TCP misses.
"""

from __future__ import annotations

import pytest

from repro.harness import figures, sweep
from repro.harness.sweep import ResultCache
from repro.sim import units

#: parameterisations small enough for the unit-test budget
TINY_RPC = dict(
    loads=(0.15,),
    fanout=4,
    request_bytes=2_000,
    response_bytes=30_000,
    deadline_us=800.0,
    warmup_ps=units.microseconds(200),
    measure_ps=units.microseconds(600),
    drain_ps=units.milliseconds(2),
    seed=41,
)
TINY_COFLOW = dict(
    loads=(0.15,),
    width=2,
    rounds=2,
    bytes_per_pair=30_000,
    warmup_ps=units.microseconds(200),
    measure_ps=units.microseconds(600),
    drain_ps=units.milliseconds(2),
    seed=43,
)


class TestPlanShape:
    def test_one_spec_per_load_and_protocol(self):
        plan = figures.rpc_deadline_plan(loads=(0.1, 0.3), protocols=["NDP", "TCP"])
        assert len(plan.specs) == 4
        assert plan.specs[0].experiment == "rpc_deadline[NDP,load=0.1,fanout=8]"

    def test_scalar_overrides(self):
        plan = figures.rpc_deadline_plan(load=0.2, protocol="dctcp")
        assert len(plan.specs) == 1
        assert plan.specs[0].experiment == "rpc_deadline[DCTCP,load=0.2,fanout=8]"

    def test_coflow_plan_shape(self):
        plan = figures.coflow_ct_plan(loads=(0.1,), protocols=["ndp"], width=3, rounds=2)
        assert [spec.experiment for spec in plan.specs] == [
            "coflow_ct[NDP,load=0.1,width=3x2]"
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            figures.rpc_deadline_plan(loads=())
        with pytest.raises(ValueError):
            figures.rpc_deadline_plan(load=float("nan"))
        with pytest.raises(ValueError):
            figures.rpc_deadline_plan(fanout=0)
        with pytest.raises(ValueError):
            figures.rpc_deadline_plan(deadline_us=0.0)
        with pytest.raises(ValueError):
            figures.rpc_deadline_plan(protocols=["NDP", "CARRIER-PIGEON"])
        with pytest.raises(ValueError):
            figures.coflow_ct_plan(width=0)
        with pytest.raises(ValueError):
            figures.coflow_ct_plan(bytes_per_pair=-1)


class TestDeterminism:
    @pytest.mark.parametrize(
        "build_plan",
        [
            lambda: figures.rpc_deadline_plan(protocols=["NDP", "TCP"], **TINY_RPC),
            lambda: figures.coflow_ct_plan(protocols=["NDP", "DCTCP"], **TINY_COFLOW),
        ],
        ids=["rpc_deadline", "coflow_ct"],
    )
    def test_cold_cached_and_parallel_runs_are_bit_identical(self, tmp_path, build_plan):
        plan = build_plan()
        cache = ResultCache(str(tmp_path))

        cold = sweep.run_plan(plan, jobs=1, cache=None)
        populating = sweep.run_plan(plan, jobs=1, cache=cache)
        cached = sweep.run_plan(plan, jobs=1, cache=cache)
        parallel = sweep.run_plan(
            plan, jobs=2, cache=ResultCache(str(tmp_path / "fresh"))
        )

        assert cold == populating == cached == parallel
        assert cache.hits == len(plan.specs)  # third run was all disk hits

    def test_same_seed_same_trace_across_protocols(self):
        """Request synthesis is protocol-independent: one seed, one trace."""
        rows = sweep.run_plan(
            figures.rpc_deadline_plan(protocols=["NDP", "TCP"], **TINY_RPC),
            cache=None,
        )
        ndp, tcp = rows
        assert ndp["protocol"] == "NDP" and tcp["protocol"] == "TCP"
        assert ndp["trace_digest"] == tcp["trace_digest"]
        assert ndp["requests_offered"] == tcp["requests_offered"] > 0
        # the execution timelines differ, and the digest sees that
        assert ndp["request_digest"] != tcp["request_digest"]

    def test_different_seed_different_trace(self):
        base = sweep.run_plan(
            figures.rpc_deadline_plan(protocols=["NDP"], **TINY_RPC), cache=None
        )[0]
        other = sweep.run_plan(
            figures.rpc_deadline_plan(protocols=["NDP"], **dict(TINY_RPC, seed=42)),
            cache=None,
        )[0]
        assert base["trace_digest"] != other["trace_digest"]


class TestRowContents:
    def test_rpc_row_reports_slo_and_latency_stats(self):
        row = sweep.run_plan(
            figures.rpc_deadline_plan(protocols=["NDP"], **TINY_RPC), cache=None
        )[0]
        assert row["hosts"] == 16
        assert row["template"] == "partition_aggregate"
        assert row["requests_offered"] >= row["requests_measured"] > 0
        assert (
            row["requests_measured"]
            == row["measured_completed"] + row["measured_censored"]
        )
        assert 0.0 <= row["slo_met_fraction"] <= 1.0
        stats = row["latency_us"]
        if stats["count"]:
            assert 0 < stats["p50"] <= stats["p99"] <= stats["max"]

    def test_coflow_row_reports_binned_ccts(self):
        row = sweep.run_plan(
            figures.coflow_ct_plan(protocols=["NDP"], **TINY_COFLOW), cache=None
        )[0]
        assert row["template"] == "shuffle"
        assert row["coflow_bytes"] == 2 * 2 * 2 * 30_000
        cct = row["cct_us"]
        assert set(cct) == {"all", "small", "medium", "large"}
        assert cct["all"]["count"] == row["measured_completed"] > 0
        # every coflow here totals 240 kB -> the "medium" bin, exactly
        assert cct["medium"]["count"] == cct["all"]["count"]
        assert cct["small"]["count"] == 0 and cct["large"]["count"] == 0


class TestSloSanity:
    def test_ndp_beats_tcp_on_an_incast_heavy_point(self):
        """Seeded 12-way 90 kB partition-aggregate at load 0.3: NDP's
        receiver-driven pulls meet a 1.5 ms SLO that TCP's incast
        behaviour misses for most requests."""
        rows = sweep.run_plan(
            figures.rpc_deadline_plan(
                load=0.3,
                protocols=["NDP", "TCP"],
                fanout=12,
                response_bytes=90_000,
                deadline_us=1_500.0,
                warmup_ps=units.microseconds(200),
                measure_ps=units.milliseconds(2),
                drain_ps=units.milliseconds(4),
                seed=41,
            ),
            cache=None,
        )
        ndp, tcp = rows
        assert ndp["requests_measured"] == tcp["requests_measured"] > 0
        assert ndp["slo_met_fraction"] > tcp["slo_met_fraction"]
        assert ndp["slo_met_fraction"] >= 0.5
        assert tcp["slo_met_fraction"] <= 0.5
