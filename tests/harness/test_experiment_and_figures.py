"""Tests for the workload runners and the (cheap) figure generators."""

from __future__ import annotations

import random

import pytest

from repro.harness import experiment, figures
from repro.harness.ndp_network import NdpNetwork
from repro.sim import units
from repro.sim.eventlist import EventList
from repro.topology import FatTreeTopology, SingleSwitchTopology


@pytest.fixture
def small_network():
    eventlist = EventList()
    return NdpNetwork.build(eventlist, FatTreeTopology, k=4)


class TestWorkloadRunners:
    def test_start_permutation_creates_one_flow_per_host(self, small_network):
        flows = experiment.start_permutation(small_network, 90_000, rng=random.Random(1))
        assert len(flows) == 16
        sources = {flow.src.node_id for flow in flows}
        destinations = {flow.sink.node_id for flow in flows}
        assert sources == set(range(16))
        assert destinations == set(range(16))

    def test_start_incast_marks_priority_sender(self, small_network):
        flows = experiment.start_incast(
            small_network, receiver=0, senders=[1, 2, 3], bytes_per_sender=9_000,
            priority_sender=2,
        )
        assert len(flows) == 3
        assert [flow.sink.priority for flow in flows] == [False, True, False]

    def test_measure_throughput_reports_utilization_and_counts(self, small_network):
        flows = experiment.start_permutation(small_network, 10_000_000, rng=random.Random(2))
        result = experiment.measure_throughput(
            small_network, flows, units.milliseconds(1)
        )
        assert 0.0 < result.utilization <= 1.0
        assert len(result.per_flow_goodput_bps) == 16
        assert result.sorted_goodputs_gbps() == sorted(result.sorted_goodputs_gbps())
        assert result.min_goodput_gbps() >= 0.0

    def test_run_until_complete_stops_early(self):
        eventlist = EventList()
        network = NdpNetwork.build(eventlist, SingleSwitchTopology, hosts=3)
        flows = [network.create_flow(1, 0, 90_000), network.create_flow(2, 0, 90_000)]
        result = experiment.run_until_complete(network, flows, units.seconds(1))
        assert all(record.completed for record in result.records)
        # far less than the full one-second horizon was simulated
        assert eventlist.now() < units.milliseconds(20)
        assert result.last_completion_us() > 0
        summary = result.summary()
        assert summary["count"] == 2

    def test_fct_result_requires_completions(self):
        result = experiment.FctResult(records=[])
        with pytest.raises(ValueError):
            result.last_completion_us()


class TestFigureGenerators:
    def test_figure21_saturates_both_bottlenecks(self):
        result = figures.figure21_sender_limited(duration_ps=units.milliseconds(2))
        assert result["total_from_A"] > 8.5
        assert result["total_to_E"] > 8.5
        assert set(result) >= {"A->B", "A->C", "A->D", "A->E", "F->E"}

    def test_figure12_pull_spacing_medians(self):
        result = figures.figure12_pull_spacing(samples=2000)
        assert abs(result[9000]["median_us"] - 7.2) < 0.5
        assert abs(result[1500]["median_us"] - 1.2) < 0.15

    def test_figure8_stack_ordering(self):
        summary = figures.figure8_rpc_latency(samples=200)
        assert summary["NDP"]["median_us"] < summary["TFO (no sleep)"]["median_us"]
        assert summary["TFO"]["median_us"] < summary["TCP"]["median_us"]

    def test_figure10_priority_is_effective(self):
        result = figures.figure10_prioritization(long_flows=4)
        assert result["with_prioritization_us"] < result["without_prioritization_us"]
        assert result["idle_us"] <= result["with_prioritization_us"]

    def test_uplink_trimming_study_shape(self):
        result = figures.uplink_trimming_study(
            k=4, flow_bytes=20_000_000, duration_ps=units.milliseconds(1)
        )
        assert result["permutation"]["uplink_trim_fraction"] <= result["random"][
            "uplink_trim_fraction"
        ] + 1e-9
        assert set(result) == {"permutation", "random"}

    def test_comparison_protocols_come_from_the_registry(self):
        from repro.transports import registry

        assert set(figures.COMPARISON_PROTOCOLS) == {"NDP", "MPTCP", "DCTCP", "DCQCN"}
        assert set(figures.COMPARISON_PROTOCOLS) <= set(registry.displays())

    def test_failures_experiments_registered(self):
        for name in ("failures_degraded", "failures_recovery", "failures_klinks"):
            assert name in figures.FIGURE_PLANS

    def test_failures_degraded_ndp_beats_per_flow_ecmp(self):
        rows = figures.failures_degraded(
            flow_bytes=200_000, cases=["NDP", "TCP"],
            timeout_ps=units.milliseconds(40),
        )
        by_case = {row["case"]: row for row in rows}
        assert by_case["NDP"]["completed"] == by_case["NDP"]["flows"]
        # the degraded core stretches the ECMP control's tail well past NDP's
        assert by_case["TCP"]["max_us"] > 2 * by_case["NDP"]["max_us"]

    def test_failures_klinks_validates_partitioning_grid(self):
        with pytest.raises(ValueError, match="links_down must be"):
            figures.failures_klinks_plan(links_down=4, k=4)

    def test_failures_recovery_timeline_records_link_events(self):
        result = figures.failures_recovery(
            flow_bytes=500_000,
            duration_ps=units.milliseconds(4),
            protocols=["NDP"],
        )
        ndp = result["NDP"]
        assert ndp["completed"] == ndp["flows"]
        kinds = [event.split(" ")[1] for event in ndp["link_events"]]
        assert kinds == ["fail", "fail", "recover", "recover"]
        assert len(ndp["goodput"]) > 0
