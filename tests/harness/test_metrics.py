"""Tests for the metrics helpers."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.harness import metrics
from repro.sim.logger import FlowRecord
from repro.sim.units import MICROSECOND, SECOND, gbps


class TestPercentiles:
    def test_median_of_odd_list(self):
        assert metrics.percentile([1, 5, 3], 0.5) == 3

    def test_interpolation(self):
        assert metrics.percentile([0, 10], 0.25) == 2.5

    def test_extremes(self):
        values = [4, 8, 15, 16, 23, 42]
        assert metrics.percentile(values, 0.0) == 4
        assert metrics.percentile(values, 1.0) == 42

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            metrics.percentile([], 0.5)

    def test_empty_iterator_raises(self):
        # validation must happen before (not after) sorting/consuming input
        with pytest.raises(ValueError):
            metrics.percentile(iter(()), 0.5)

    def test_out_of_range_fraction_raises(self):
        with pytest.raises(ValueError):
            metrics.percentile([1], 1.5)

    def test_invalid_fraction_checked_before_emptiness(self):
        with pytest.raises(ValueError, match="fraction"):
            metrics.percentile([], 2.0)

    def test_single_element_every_fraction(self):
        for fraction in (0.0, 0.5, 0.9, 0.99, 1.0):
            assert metrics.percentile([7], fraction) == 7.0

    def test_exact_index_hits_are_not_interpolated(self):
        values = [10, 20, 30, 40, 50]
        # positions 0.25*(n-1)=1, 0.5*(n-1)=2, 0.75*(n-1)=3 are exact indices
        assert metrics.percentile(values, 0.25) == 20
        assert metrics.percentile(values, 0.5) == 30
        assert metrics.percentile(values, 0.75) == 40

    def test_p50_p90_p99_on_known_distribution(self):
        values = list(range(101))  # 0..100, position == fraction * 100
        assert metrics.percentile(values, 0.5) == 50
        assert metrics.percentile(values, 0.9) == 90
        assert metrics.percentile(values, 0.99) == 99

    @given(st.lists(st.floats(min_value=-1e9, max_value=1e9), min_size=1, max_size=100))
    def test_percentile_bounded_by_min_max(self, values):
        for fraction in (0.0, 0.1, 0.5, 0.9, 1.0):
            result = metrics.percentile(values, fraction)
            assert min(values) <= result <= max(values)

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=2, max_size=50))
    def test_percentile_monotone_in_fraction(self, values):
        assert metrics.percentile(values, 0.25) <= metrics.percentile(values, 0.75)


class TestCdf:
    def test_cdf_points_are_monotone_and_end_at_one(self):
        points = metrics.cdf_points([3, 1, 2])
        values = [v for v, _ in points]
        fractions = [f for _, f in points]
        assert values == [1, 2, 3]
        assert fractions == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_mean_of_empty_is_zero(self):
        assert metrics.mean([]) == 0.0
        assert metrics.mean([2, 4]) == 3.0


class TestIdealTimes:
    def test_ideal_transfer_accounts_for_header_overhead(self):
        # 8936-byte payloads in 9000-byte packets at 10 Gb/s
        one_packet = metrics.ideal_transfer_time_ps(8936, gbps(10), 9000, 64)
        assert one_packet == 7_200_000  # 7.2 us

    def test_ideal_incast_scales_with_senders(self):
        single = metrics.ideal_transfer_time_ps(450_000, gbps(10), 9000, 64)
        incast = metrics.ideal_incast_completion_ps(7, 450_000, gbps(10), 9000, 64)
        assert incast == pytest.approx(7 * single, rel=0.01)

    def test_base_rtt_added(self):
        without = metrics.ideal_transfer_time_ps(9000, gbps(10), 9000, 64)
        with_rtt = metrics.ideal_transfer_time_ps(9000, gbps(10), 9000, 64, base_rtt_ps=1000)
        assert with_rtt == without + 1000


class TestUtilization:
    def _record(self, delivered, flow_id=0):
        record = FlowRecord(flow_id=flow_id, src=0, dst=1, flow_size_bytes=delivered)
        record.bytes_delivered = delivered
        return record

    def test_full_utilization(self):
        # one receiver at 10 Gb/s for 1 ms can absorb 1.25 MB
        records = [self._record(1_250_000)]
        util = metrics.utilization_from_records(records, SECOND // 1000, gbps(10), 1)
        assert util == pytest.approx(1.0)

    def test_half_utilization(self):
        records = [self._record(625_000)]
        util = metrics.utilization_from_records(records, SECOND // 1000, gbps(10), 1)
        assert util == pytest.approx(0.5)

    def test_multiple_receivers(self):
        records = [self._record(1_250_000, flow_id=i) for i in range(4)]
        util = metrics.utilization_from_records(records, SECOND // 1000, gbps(10), 4)
        assert util == pytest.approx(1.0)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            metrics.utilization_from_records([], 0, gbps(10), 1)
        with pytest.raises(ValueError):
            metrics.utilization_from_records([], 1000, gbps(10), 0)

    def test_fair_share_fraction(self):
        assert metrics.fair_share_fraction(gbps(5), gbps(10), 2) == pytest.approx(1.0)
        assert metrics.fair_share_fraction(gbps(1), gbps(10), 2) == pytest.approx(0.2)
        with pytest.raises(ValueError):
            metrics.fair_share_fraction(1.0, gbps(10), 0)

    def test_goodput_bps(self):
        record = self._record(1_250_000)
        assert metrics.goodput_bps(record, SECOND // 1000) == pytest.approx(gbps(10))


class TestFlowRecord:
    def test_completion_time_and_throughput(self):
        record = FlowRecord(flow_id=1, src=0, dst=1, flow_size_bytes=1000)
        record.start_time_ps = 0
        record.finish_time_ps = 8 * MICROSECOND
        record.bytes_delivered = 1000
        assert record.completed
        assert record.completion_time_ps() == 8 * MICROSECOND
        assert record.throughput_bps() == pytest.approx(1e9)

    def test_incomplete_record_raises(self):
        record = FlowRecord(flow_id=1, src=0, dst=1, flow_size_bytes=1000)
        assert not record.completed
        with pytest.raises(ValueError):
            record.completion_time_ps()

    def test_summarize_fcts(self):
        records = []
        for i, fct_us in enumerate([10, 20, 30, 40]):
            r = FlowRecord(flow_id=i, src=0, dst=1, flow_size_bytes=1)
            r.start_time_ps = 0
            r.finish_time_ps = fct_us * MICROSECOND
            records.append(r)
        summary = metrics.summarize_fcts_us(records)
        assert summary["count"] == 4
        assert summary["median_us"] == pytest.approx(25.0)
        assert summary["max_us"] == pytest.approx(40.0)

    def test_summarize_empty(self):
        assert metrics.summarize_fcts_us([]) == {"count": 0}


class TestSlowdowns:
    """The load_fct analysis layer: FCT / ideal, binned by flow size."""

    LINK = gbps(10)
    MTU, HEADER = 9000, 64

    def _completed(self, size_bytes, fct_ps, flow_id=0):
        record = FlowRecord(flow_id=flow_id, src=0, dst=1, flow_size_bytes=size_bytes)
        record.start_time_ps = 0
        record.finish_time_ps = fct_ps
        record.bytes_delivered = size_bytes
        return record

    def test_hand_computed_slowdown(self):
        # 8936 payload bytes -> exactly one 9000-byte packet on the wire:
        # 9000 B at 10 Gb/s serializes in exactly 7.2 us
        size = self.MTU - self.HEADER
        ideal_ps = 7_200_000
        assert metrics.ideal_transfer_time_ps(size, self.LINK, self.MTU, self.HEADER) == ideal_ps
        record = self._completed(size, 2 * ideal_ps)
        assert metrics.flow_slowdown(record, self.LINK, self.MTU, self.HEADER) == pytest.approx(2.0)

    def test_base_rtt_enters_the_denominator(self):
        size = self.MTU - self.HEADER
        record = self._completed(size, 14_400_000)
        with_rtt = metrics.flow_slowdown(
            record, self.LINK, self.MTU, self.HEADER, base_rtt_ps=7_200_000
        )
        assert with_rtt == pytest.approx(1.0)

    def test_slowdown_below_one_is_not_clamped(self):
        # an overestimated RTT baseline must stay visible, not be floored
        size = self.MTU - self.HEADER
        record = self._completed(size, 7_200_000)
        value = metrics.flow_slowdown(
            record, self.LINK, self.MTU, self.HEADER, base_rtt_ps=7_200_000
        )
        assert value == pytest.approx(0.5)

    def test_incomplete_flow_raises(self):
        record = FlowRecord(flow_id=0, src=0, dst=1, flow_size_bytes=1000)
        with pytest.raises(ValueError):
            metrics.flow_slowdown(record, self.LINK, self.MTU, self.HEADER)

    def test_bin_boundaries_are_inclusive_upper_bounds(self):
        assert metrics.slowdown_bin(1) == "small"
        assert metrics.slowdown_bin(100_000) == "small"
        assert metrics.slowdown_bin(100_001) == "medium"
        assert metrics.slowdown_bin(1_000_000) == "medium"
        assert metrics.slowdown_bin(1_000_001) == "large"
        assert metrics.slowdown_bin(10**12) == "large"

    def test_bounded_custom_bins_reject_the_overflowing_tail(self):
        bins = (("tiny", 100), ("bigger", 1000))
        assert metrics.slowdown_bin(100, bins) == "tiny"
        with pytest.raises(ValueError):
            metrics.slowdown_bin(1001, bins)

    def test_binned_summary_hand_computed(self):
        size = self.MTU - self.HEADER  # ideal 7.2 us, "small" bin
        ideal_ps = 7_200_000
        records = [
            self._completed(size, m * ideal_ps, flow_id=m) for m in (1, 2, 3, 4)
        ]
        # a "large" flow at exactly 2x ideal
        big = 10 * 8936 * 14  # 1.25 MB, 140 packets
        big_ideal = metrics.ideal_transfer_time_ps(big, self.LINK, self.MTU, self.HEADER)
        records.append(self._completed(big, 2 * big_ideal, flow_id=99))
        summary = metrics.binned_slowdown_summary(records, self.LINK, self.MTU, self.HEADER)
        assert summary["small"]["count"] == 4
        assert summary["small"]["p50"] == pytest.approx(2.5)
        assert summary["small"]["mean"] == pytest.approx(2.5)
        assert summary["small"]["max"] == pytest.approx(4.0)
        assert summary["medium"] == {"count": 0}
        assert summary["large"]["count"] == 1
        assert summary["large"]["p50"] == pytest.approx(2.0)
        assert summary["all"]["count"] == 5
        assert set(summary["all"]) == {"count", "p50", "p99", "p999", "mean", "max"}

    def test_incomplete_records_are_skipped_not_fatal(self):
        size = self.MTU - self.HEADER
        records = [
            self._completed(size, 14_400_000),
            FlowRecord(flow_id=1, src=0, dst=1, flow_size_bytes=size),  # censored
        ]
        summary = metrics.binned_slowdown_summary(records, self.LINK, self.MTU, self.HEADER)
        assert summary["all"]["count"] == 1

    def test_empty_population(self):
        summary = metrics.binned_slowdown_summary([], self.LINK, self.MTU, self.HEADER)
        assert summary == {
            "all": {"count": 0}, "small": {"count": 0},
            "medium": {"count": 0}, "large": {"count": 0},
        }


class TestBinEdgeConsistency:
    """The slowdown bins and the CCT bins must never disagree on an edge.

    Both layers bin by bytes with *inclusive* upper bounds at 100 kB and
    1 MB.  These tests pin the boundary semantics on each side and — the
    real invariant — that the two defaults are the same object, so a future
    edit cannot change one without the other.
    """

    def test_cct_bins_are_the_slowdown_bins(self):
        assert metrics.DEFAULT_CCT_BINS is metrics.DEFAULT_SLOWDOWN_BINS

    @pytest.mark.parametrize(
        "size,expected",
        [
            (1, "small"),
            (99_999, "small"),
            (100_000, "small"),  # inclusive upper bound
            (100_001, "medium"),
            (999_999, "medium"),
            (1_000_000, "medium"),  # inclusive upper bound
            (1_000_001, "large"),
            (10**12, "large"),
        ],
    )
    def test_boundary_sizes(self, size, expected):
        assert metrics.slowdown_bin(size) == expected
        summary = metrics.binned_cct_summary([(size, 1.0)])
        assert summary[expected]["count"] == 1
        for label in ("small", "medium", "large"):
            if label != expected:
                assert summary[label]["count"] == 0

    def test_cct_summary_shape_matches_slowdown_summary(self):
        summary = metrics.binned_cct_summary(
            [(50_000, 10.0), (100_000, 20.0), (100_001, 30.0), (2_000_000, 40.0)]
        )
        assert set(summary) == {"all", "small", "medium", "large"}
        assert summary["all"]["count"] == 4
        assert summary["small"]["count"] == 2
        assert summary["medium"]["count"] == 1
        assert summary["large"]["count"] == 1
        assert set(summary["all"]) == {"count", "p50", "p99", "p999", "mean", "max"}

    def test_cct_empty_population(self):
        assert metrics.binned_cct_summary([]) == {
            "all": {"count": 0}, "small": {"count": 0},
            "medium": {"count": 0}, "large": {"count": 0},
        }

    def test_oversized_flow_fails_loudly_in_custom_bins(self):
        bins = (("small", 100_000), ("medium", 1_000_000))  # no unbounded tail
        with pytest.raises(ValueError):
            metrics.binned_cct_summary([(2_000_000, 1.0)], bins=bins)


class TestSloFraction:
    def test_fraction_counts_censored_as_misses(self):
        # 3 completed (2 within deadline), 5 measured -> 2/5
        assert metrics.slo_met_fraction([10, 20, 99], deadline_ps=25, total=5) == 0.4

    def test_deadline_is_inclusive(self):
        assert metrics.slo_met_fraction([25], deadline_ps=25) == 1.0
        assert metrics.slo_met_fraction([26], deadline_ps=25) == 0.0

    def test_empty_population_is_zero(self):
        assert metrics.slo_met_fraction([], deadline_ps=10) == 0.0
        assert metrics.slo_met_fraction([], deadline_ps=10, total=0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            metrics.slo_met_fraction([1], deadline_ps=0)
        with pytest.raises(ValueError):
            metrics.slo_met_fraction([1, 2, 3], deadline_ps=10, total=2)
