"""Determinism guard for the scheduler fast-path.

Runs the same seeded workload twice in fresh simulators and requires
bit-identical flow records and switch trim counters.  This is the regression
net under the hybrid event engine: any change that perturbs event ordering
(tie-breaking, timer eviction, recurring-service fast paths) shows up here
as a diff long before it corrupts a paper figure.
"""

from __future__ import annotations

import random

from repro.core.config import NdpConfig
from repro.core.switch import NdpSwitchQueue
from repro.harness.experiment import start_incast, start_permutation
from repro.harness.ndp_network import NdpNetwork
from repro.sim.eventlist import EventList
from repro.topology.fattree import FatTreeTopology


def _record_tuple(record):
    return (
        record.flow_id,
        record.src,
        record.dst,
        record.flow_size_bytes,
        record.start_time_ps,
        record.finish_time_ps,
        record.bytes_delivered,
        record.packets_delivered,
        record.headers_received,
        record.retransmissions,
        record.rtx_from_nack,
        record.rtx_from_bounce,
        record.rtx_from_timeout,
    )


def _run_permutation(seed: int):
    eventlist = EventList()
    network = NdpNetwork.build(
        eventlist, FatTreeTopology, config=NdpConfig(), seed=seed, k=4
    )
    flows = start_permutation(
        network, flow_size_bytes=90_000, rng=random.Random(seed)
    )
    eventlist.run(until=20_000_000_000)
    records = [
        (_record_tuple(f.record), _record_tuple(f.sender_record)) for f in flows
    ]
    trims = [
        (q.name, q.trimmed_arriving, q.trimmed_from_tail)
        for q in network.topology.all_queues()
        if isinstance(q, NdpSwitchQueue)
    ]
    return records, trims, eventlist.events_executed


def _run_incast(seed: int):
    eventlist = EventList()
    network = NdpNetwork.build(
        eventlist, FatTreeTopology, config=NdpConfig(), seed=seed, k=4
    )
    hosts = network.topology.hosts()
    flows = start_incast(network, hosts[0], hosts[1:9], bytes_per_sender=45_000)
    eventlist.run(until=20_000_000_000)
    records = [
        (_record_tuple(f.record), _record_tuple(f.sender_record)) for f in flows
    ]
    trims = [
        (q.name, q.trimmed_arriving, q.trimmed_from_tail)
        for q in network.topology.all_queues()
        if isinstance(q, NdpSwitchQueue)
    ]
    return records, trims, eventlist.events_executed


class TestSeededDeterminism:
    def test_permutation_is_bit_identical_across_runs(self):
        first = _run_permutation(seed=7)
        second = _run_permutation(seed=7)
        assert first[0] == second[0]  # flow records, both endpoints
        assert first[1] == second[1]  # per-switch trim counters
        assert first[2] == second[2]  # executed event count

    def test_permutation_flows_complete(self):
        records, _trims, _ = _run_permutation(seed=7)
        assert all(sink[5] is not None for sink, _src in records)  # finish time

    def test_incast_is_bit_identical_across_runs(self):
        first = _run_incast(seed=3)
        second = _run_incast(seed=3)
        assert first == second
        # the 8:1 incast overflows the 8-packet data queues, so the trim
        # counters this test guards are actually exercised
        assert sum(t[1] + t[2] for t in first[1]) > 0

    def test_different_seeds_differ(self):
        # sanity check that the digest actually depends on the seed (guards
        # against a digest that ignores its inputs)
        base = _run_permutation(seed=7)
        other = _run_permutation(seed=8)
        assert base[0] != other[0]
