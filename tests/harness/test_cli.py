"""Tests for the ``python -m repro.cli`` front end (list / run / sweep)."""

from __future__ import annotations

import pytest

from repro import cli
from repro.harness import sweep


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Point the persistent cache at a throwaway directory for every test."""
    monkeypatch.setenv(sweep.CACHE_DIR_ENV, str(tmp_path / "cache"))
    monkeypatch.delenv(sweep.NO_CACHE_ENV, raising=False)
    yield


class TestCatalogue:
    def test_list_prints_every_experiment(self, capsys):
        assert cli.main(["list"]) == 0
        out = capsys.readouterr().out
        for name in cli.EXPERIMENTS:
            assert name in out
        assert "sweep" in out

    def test_no_arguments_means_list(self, capsys):
        assert cli.main([]) == 0
        assert "available experiments" in capsys.readouterr().out

    def test_unknown_experiment_fails(self, capsys):
        assert cli.main(["nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestRun:
    def test_single_figure_runs_and_caches(self, capsys):
        assert cli.main(["fig12"]) == 0
        out = capsys.readouterr().out
        assert "fig12" in out and "1 runs" in out and "simulated" in out
        # second invocation is served from the persistent cache
        assert cli.main(["fig12"]) == 0
        assert "1 from cache, 0 simulated" in capsys.readouterr().out

    def test_no_cache_flag_bypasses_cache(self, capsys):
        assert cli.main(["fig12", "--no-cache"]) == 0
        assert "cache bypassed" in capsys.readouterr().out
        assert cli.main(["fig12", "--no-cache"]) == 0
        assert "cache bypassed" in capsys.readouterr().out

    def test_parallel_jobs_produce_the_same_rows(self, capsys):
        assert cli.main(["fig10", "--jobs", "2", "-q"]) == 0
        parallel_out = capsys.readouterr().out
        assert cli.main(["fig10", "--no-cache", "-q"]) == 0
        serial_out = capsys.readouterr().out
        parallel_rows = [l for l in parallel_out.splitlines() if l.startswith("  ")]
        serial_rows = [l for l in serial_out.splitlines() if l.startswith("  ")]
        assert parallel_rows == serial_rows

    def test_invalid_jobs_rejected(self, capsys):
        assert cli.main(["fig12", "--jobs", "0"]) == 2

    def test_all_combined_with_other_names_rejected(self, capsys):
        assert cli.main(["all", "figg14"]) == 2
        assert "all" in capsys.readouterr().err
        assert cli.main(["fig12", "all"]) == 2

    def test_set_on_one_experiment_is_sweep_shorthand(self, capsys):
        assert cli.main(["fig12", "--set", "samples=10", "-q"]) == 0
        out = capsys.readouterr().out
        assert "### fig12 [samples=10]" in out

    def test_set_with_several_experiments_rejected(self, capsys):
        assert cli.main(["fig12", "fig10", "--set", "samples=10"]) == 2
        assert "sweep" in capsys.readouterr().err


class TestSweep:
    def test_grid_runs_every_combination(self, capsys):
        assert cli.main(
            ["sweep", "fig12", "--set", "samples=50,60", "--set", "seed=1,2", "-q"]
        ) == 0
        out = capsys.readouterr().out
        assert out.count("### fig12 [") == 4
        assert "samples=50, seed=2" in out

    def test_json_list_value_is_a_single_grid_point(self, capsys):
        assert cli.main(
            ["sweep", "fig12", "--set", "packet_sizes=[1500,9000]", "-q"]
        ) == 0
        assert capsys.readouterr().out.count("### fig12 [") == 1

    def test_unknown_parameter_rejected(self, capsys):
        assert cli.main(["sweep", "fig12", "--set", "bogus=1"]) == 2
        assert "bogus" in capsys.readouterr().err

    def test_unknown_experiment_rejected(self, capsys):
        assert cli.main(["sweep", "nope", "--set", "seed=1"]) == 2

    def test_malformed_set_rejected(self, capsys):
        assert cli.main(["sweep", "fig12", "--set", "samples"]) == 2

    def test_wrong_shaped_value_fails_cleanly(self, capsys):
        # 'protocols' is a valid kwarg name but a bare string is the wrong
        # shape: the engine error must surface as a clean exit, no traceback
        code = cli.main(["sweep", "fig14", "--set", "protocols=NDP", "-q"])
        captured = capsys.readouterr()
        assert code in (1, 2)
        assert "error" in captured.err or "could not build" in captured.err

    def test_unknown_protocol_lists_registered_transports(self, capsys):
        code = cli.main(
            ["sweep", "load_fct", "--set", "protocol=carrier-pigeon", "-q"]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "registered transports" in captured.err
        assert "dcqcn" in captured.err

    def test_incompatible_grid_point_is_skipped_not_fatal(self, capsys):
        args = [
            "sweep", "failures_klinks",
            "--set", "protocol=ndp,dcqcn",
            "--set", "flow_bytes=45000",
            "--set", "timeout_ps=40000000000",
            "-q",
        ]
        assert cli.main(args) == 0
        out = capsys.readouterr().out
        assert "### failures_klinks [protocol=ndp" in out
        assert "protocol=dcqcn" in out and "skipped:" in out
        assert "1 of 2 grid points skipped" in out
        # the skip decision and its message are deterministic across runs
        assert cli.main(args) == 0
        rerun = capsys.readouterr().out
        skip_lines = [l for l in out.splitlines() if "skipped:" in l]
        assert skip_lines == [l for l in rerun.splitlines() if "skipped:" in l]

    def test_all_points_skipped_still_exits_zero(self, capsys):
        assert cli.main(
            ["sweep", "failures_recovery", "--set", "protocol=dcqcn", "-q"]
        ) == 0
        out = capsys.readouterr().out
        assert "skipped:" in out and "1 of 1 grid points skipped" in out


class TestGridParsing:
    def test_scalars_parse_as_json(self):
        grid = cli._parse_grid(["seed=1,2.5,true,name"])
        assert grid == {"seed": [1, 2.5, True, "name"]}

    def test_brackets_group_commas(self):
        grid = cli._parse_grid(["windows=[1,2],[4,8]"])
        assert grid == {"windows": [[1, 2], [4, 8]]}

    def test_repeated_key_extends_the_grid(self):
        grid = cli._parse_grid(["seed=1", "seed=2,3"])
        assert grid == {"seed": [1, 2, 3]}

    def test_quoted_strings_group_commas(self):
        grid = cli._parse_grid(['label="a,b","c"'])
        assert grid == {"label": ["a,b", "c"]}

    def test_single_quoted_bare_string(self):
        grid = cli._parse_grid(["label='x,y'"])
        assert grid == {"label": ["x,y"]}

    def test_stray_closing_bracket_does_not_disable_splitting(self):
        grid = cli._parse_grid(["v=],1,2"])
        assert grid == {"v": ["]", 1, 2]}
