"""Tests for NdpConfig validation and derived quantities."""

from __future__ import annotations

import pytest

from repro.core.config import NdpConfig
from repro.sim import units


class TestDefaults:
    def test_paper_defaults(self):
        config = NdpConfig()
        assert config.mtu_bytes == 9000
        assert config.header_bytes == 64
        assert config.initial_window_packets == 30
        assert config.data_queue_packets == 8
        assert config.wrr_headers_per_data == 10
        assert config.return_to_sender is True
        assert config.rto_ps == units.milliseconds(1)

    def test_data_queue_bytes(self):
        config = NdpConfig()
        assert config.data_queue_bytes == 8 * 9000

    def test_header_queue_capacity_matches_paper_figure(self):
        # §3.2.4: the same memory as eight 9KB packets holds 1125 64-byte headers
        config = NdpConfig()
        assert config.header_queue_capacity_packets() == 1125


class TestValidation:
    def test_mtu_must_exceed_header(self):
        with pytest.raises(ValueError):
            NdpConfig(mtu_bytes=64, header_bytes=64)

    def test_initial_window_positive(self):
        with pytest.raises(ValueError):
            NdpConfig(initial_window_packets=0)

    def test_data_queue_positive(self):
        with pytest.raises(ValueError):
            NdpConfig(data_queue_packets=0)

    def test_trim_probability_range(self):
        with pytest.raises(ValueError):
            NdpConfig(trim_arriving_probability=1.5)

    def test_wrr_ratio_positive(self):
        with pytest.raises(ValueError):
            NdpConfig(wrr_headers_per_data=0)

    def test_pull_rate_fraction_range(self):
        with pytest.raises(ValueError):
            NdpConfig(pull_rate_fraction=0.0)
        with pytest.raises(ValueError):
            NdpConfig(pull_rate_fraction=1.5)

    def test_path_mode_validated(self):
        with pytest.raises(ValueError):
            NdpConfig(path_selection_mode="round-robin")


class TestOverrides:
    def test_with_overrides_returns_new_config(self):
        base = NdpConfig()
        small = base.with_overrides(mtu_bytes=1500, initial_window_packets=12)
        assert small.mtu_bytes == 1500
        assert small.initial_window_packets == 12
        assert base.mtu_bytes == 9000  # original untouched
        assert small.data_queue_packets == base.data_queue_packets

    def test_with_overrides_validates(self):
        with pytest.raises(ValueError):
            NdpConfig().with_overrides(initial_window_packets=-3)
