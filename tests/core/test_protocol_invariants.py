"""Property-based tests of NDP's end-to-end invariants.

These use hypothesis to vary flow sizes, fan-in and configuration knobs and
check the properties that must hold for *any* parameter choice:

* exactly the flow's bytes are delivered (no loss, no duplication in the
  goodput accounting);
* the receiver never records more distinct packets than the sender has;
* trimming never turns into silent loss (data packets are never dropped by
  an NDP switch);
* the pull pacer never emits pulls faster than the configured rate.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.config import NdpConfig
from repro.harness.ndp_network import NdpNetwork
from repro.sim import units
from repro.sim.eventlist import EventList
from repro.topology import SingleSwitchTopology


@settings(max_examples=12, deadline=None)
@given(
    size=st.integers(min_value=1, max_value=400_000),
    initial_window=st.integers(min_value=1, max_value=40),
)
def test_single_flow_delivers_exactly_once(size, initial_window):
    eventlist = EventList()
    config = NdpConfig(initial_window_packets=initial_window)
    network = NdpNetwork.build(eventlist, SingleSwitchTopology, hosts=2, config=config)
    flow = network.create_flow(0, 1, size)
    eventlist.run(until=units.milliseconds(100))
    assert flow.complete
    assert flow.record.bytes_delivered == size
    assert flow.src.complete
    assert flow.sink.packets_received() == flow.src.total_packets


@settings(max_examples=8, deadline=None)
@given(
    senders=st.integers(min_value=2, max_value=12),
    packets_per_flow=st.integers(min_value=1, max_value=12),
)
def test_incast_conserves_every_byte(senders, packets_per_flow):
    eventlist = EventList()
    config = NdpConfig()
    size = packets_per_flow * (config.mtu_bytes - config.header_bytes)
    network = NdpNetwork.build(
        eventlist, SingleSwitchTopology, hosts=senders + 1, config=config
    )
    flows = [network.create_flow(src, 0, size) for src in range(1, senders + 1)]
    eventlist.run(until=units.milliseconds(300))
    assert all(flow.complete for flow in flows)
    assert sum(flow.record.bytes_delivered for flow in flows) == senders * size
    # the NDP fabric never silently drops data packets: everything that is
    # not delivered full-size arrives as a trimmed header, a bounce, or is
    # retransmitted — drops only ever happen to control packets
    for queue in network.topology.fabric_queues():
        assert queue.stats.packets_dropped == queue.control_dropped


@settings(max_examples=8, deadline=None)
@given(requests=st.integers(min_value=2, max_value=60))
def test_pull_pacer_never_exceeds_line_rate(requests):
    from repro.core.pull_queue import NdpPullPacer

    eventlist = EventList()
    pacer = NdpPullPacer(eventlist, link_rate_bps=units.gbps(10), mtu_bytes=9000)
    times = []

    class Sink:
        flow_id = 1
        priority = False

        def emit_pull(self):
            times.append(eventlist.now())

    sink = Sink()
    for _ in range(requests):
        pacer.request_pull(sink)
    eventlist.run()
    assert len(times) == requests
    gaps = [b - a for a, b in zip(times, times[1:])]
    assert all(gap >= pacer.pull_interval_ps for gap in gaps)
