"""Tests for sender-side path permutation and the path scoreboard."""

from __future__ import annotations

import random
from collections import Counter

import pytest
from hypothesis import given, strategies as st

from repro.core.path_manager import PathManager, PathScore
from repro.sim.network import CountingSink
from repro.sim.packet import Route


def make_routes(n):
    return [Route([CountingSink(f"path{i}")], path_id=i) for i in range(n)]


class TestPermutation:
    def test_each_round_uses_every_path_once(self):
        manager = PathManager(make_routes(8), rng=random.Random(1))
        for _round in range(5):
            used = [manager.next_route().path_id for _ in range(8)]
            assert sorted(used) == list(range(8))

    def test_rounds_are_shuffled_differently(self):
        manager = PathManager(make_routes(16), rng=random.Random(2))
        first = [manager.next_route().path_id for _ in range(16)]
        second = [manager.next_route().path_id for _ in range(16)]
        assert first != second  # vanishingly unlikely to collide

    def test_single_path_always_returned(self):
        manager = PathManager(make_routes(1), rng=random.Random(3))
        assert all(manager.next_route().path_id == 0 for _ in range(10))

    def test_random_mode_covers_all_paths_but_not_uniformly_per_round(self):
        manager = PathManager(make_routes(4), rng=random.Random(4), mode="random")
        counts = Counter(manager.next_route().path_id for _ in range(400))
        assert set(counts) == {0, 1, 2, 3}

    def test_empty_routes_rejected(self):
        with pytest.raises(ValueError):
            PathManager([], rng=random.Random(0))

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            PathManager(make_routes(2), mode="weird")

    @given(st.integers(min_value=1, max_value=64), st.integers(min_value=0, max_value=10**6))
    def test_permutation_property_every_path_once_per_round(self, n_paths, seed):
        manager = PathManager(make_routes(n_paths), rng=random.Random(seed))
        used = [manager.next_route().path_id for _ in range(n_paths)]
        assert sorted(used) == list(range(n_paths))


class TestAlternativeRoutes:
    def test_alternative_avoids_given_path(self):
        manager = PathManager(make_routes(4), rng=random.Random(5))
        for _ in range(20):
            assert manager.alternative_route(2).path_id != 2

    def test_alternative_with_single_path_returns_it(self):
        manager = PathManager(make_routes(1), rng=random.Random(6))
        assert manager.alternative_route(0).path_id == 0

    def test_route_for_path_lookup(self):
        manager = PathManager(make_routes(3), rng=random.Random(7))
        assert manager.route_for_path(1).path_id == 1


class TestScoreboard:
    def test_counters_update(self):
        manager = PathManager(make_routes(2), rng=random.Random(8))
        manager.record_ack(0)
        manager.record_nack(0)
        manager.record_nack(1)
        manager.record_loss(1)
        assert manager.scores[0].acks == 1
        assert manager.scores[0].nacks == 1
        assert manager.scores[1].losses == 1
        assert manager.nack_fraction(1) == 1.0

    def test_unknown_path_feedback_is_ignored(self):
        manager = PathManager(make_routes(2), rng=random.Random(9))
        manager.record_ack(99)  # e.g. feedback for a path that was reconfigured
        assert all(score.acks == 0 for score in manager.scores.values())

    def test_bad_path_is_excluded_from_permutations(self):
        manager = PathManager(make_routes(4), rng=random.Random(10), min_samples=10)
        # paths 0-2 are healthy, path 3 sees 50% trimming
        for path in range(3):
            for _ in range(50):
                manager.record_ack(path)
        for _ in range(25):
            manager.record_ack(3)
            manager.record_nack(3)
        used = {manager.next_route().path_id for _ in range(12)}
        assert 3 not in used
        assert manager.currently_excluded == [3]

    def test_penalty_disabled_keeps_all_paths(self):
        manager = PathManager(
            make_routes(4), rng=random.Random(11), penalize=False, min_samples=10
        )
        for _ in range(25):
            manager.record_ack(3)
            manager.record_nack(3)
        for path in range(3):
            for _ in range(50):
                manager.record_ack(path)
        used = {manager.next_route().path_id for _ in range(12)}
        assert used == {0, 1, 2, 3}

    def test_min_samples_boundary_exactly_at_threshold_is_judged(self):
        # samples == min_samples must be enough to judge a path; one fewer
        # must not be (the comparison is `samples >= min_samples`)
        manager = PathManager(make_routes(4), rng=random.Random(30), min_samples=10)
        for path in range(3):
            for _ in range(10):
                manager.record_ack(path)
        for _ in range(5):
            manager.record_ack(3)
            manager.record_nack(3)
        manager.next_route()  # refresh the scoreboard
        assert manager.currently_excluded == [3]

    def test_min_samples_boundary_one_below_threshold_is_not_judged(self):
        manager = PathManager(make_routes(4), rng=random.Random(31), min_samples=11)
        for path in range(3):
            for _ in range(11):
                manager.record_ack(path)
        # path 3: 10 samples, all negative — still one short of judgement
        for _ in range(10):
            manager.record_nack(3)
        manager.next_route()
        assert manager.currently_excluded == []

    def test_nack_ratio_boundary_exactly_at_ratio_is_kept(self):
        # exclusion requires the NACK fraction to strictly *exceed*
        # nack_ratio times the mean.  With paths at 0% and 20% the mean is
        # 10%, so the bad path sits exactly at 2.0x the mean (the halving
        # and doubling are exact in binary) and must stay in play.
        manager = PathManager(
            make_routes(2), rng=random.Random(32), min_samples=10, nack_ratio=2.0
        )
        for _ in range(100):
            manager.record_ack(0)
        for _ in range(80):
            manager.record_ack(1)
        for _ in range(20):
            manager.record_nack(1)
        manager.next_route()
        assert manager.currently_excluded == []
        # the equality is structural: with one clean path, the bad path's
        # fraction always equals 2x the mean, so more NACKs never tip it
        manager.record_nack(1)
        manager._permutation = []  # force a scoreboard refresh
        manager.next_route()
        assert manager.currently_excluded == []

    def test_nack_fraction_below_absolute_floor_never_excluded(self):
        # the scoreboard ignores NACK fractions under its 5% floor even when
        # they are many multiples of the (tiny) mean
        manager = PathManager(
            make_routes(2), rng=random.Random(33), min_samples=10, nack_ratio=2.0
        )
        for _ in range(1000):
            manager.record_ack(0)
        for _ in range(960):
            manager.record_ack(1)
        for _ in range(40):  # 4% NACKs: an outlier by ratio, under the floor
            manager.record_nack(1)
        manager.next_route()
        assert manager.currently_excluded == []

    def test_paths_below_min_samples_are_not_judged(self):
        manager = PathManager(make_routes(3), rng=random.Random(12), min_samples=100)
        for _ in range(20):
            manager.record_nack(2)
            manager.record_ack(0)
            manager.record_ack(1)
        used = {manager.next_route().path_id for _ in range(9)}
        assert used == {0, 1, 2}

    def test_never_excludes_every_path(self):
        manager = PathManager(make_routes(2), rng=random.Random(13), min_samples=4)
        for _ in range(20):
            manager.record_nack(0)
            manager.record_nack(1)
        # both look terrible; the manager must still return something
        assert manager.next_route().path_id in (0, 1)

    def test_loss_outlier_excluded(self):
        manager = PathManager(make_routes(4), rng=random.Random(14), min_samples=8)
        for path in range(4):
            for _ in range(20):
                manager.record_ack(path)
        for _ in range(10):
            manager.record_loss(1)
        used = {manager.next_route().path_id for _ in range(12)}
        assert 1 not in used


class TestSetRoutes:
    def test_set_routes_preserves_scores(self):
        manager = PathManager(make_routes(2), rng=random.Random(15))
        manager.record_ack(0)
        manager.set_routes(make_routes(3))
        assert manager.scores[0].acks == 1
        assert manager.path_count() == 3

    def test_set_routes_rejects_empty(self):
        manager = PathManager(make_routes(2), rng=random.Random(16))
        with pytest.raises(ValueError):
            manager.set_routes([])


class TestPathScore:
    def test_nack_fraction_handles_no_samples(self):
        assert PathScore().nack_fraction == 0.0
        assert PathScore(acks=3, nacks=1).nack_fraction == 0.25
