"""Tests for the per-host pull queue / pacer."""

from __future__ import annotations

import pytest

from repro.core.pull_queue import NdpPullPacer
from repro.sim.eventlist import EventList
from repro.sim.units import gbps, serialization_time_ps


class FakeSink:
    """Minimal stand-in for NdpSink: records when its pulls are emitted."""

    def __init__(self, eventlist, flow_id, priority=False):
        self.eventlist = eventlist
        self.flow_id = flow_id
        self.priority = priority
        self.pull_times = []

    def emit_pull(self):
        self.pull_times.append(self.eventlist.now())


@pytest.fixture
def pacer(eventlist):
    return NdpPullPacer(eventlist, link_rate_bps=gbps(10), mtu_bytes=9000)


class TestPacing:
    def test_pull_interval_matches_mtu_serialization(self, pacer):
        assert pacer.pull_interval_ps == serialization_time_ps(9000, gbps(10))

    def test_first_pull_sent_immediately(self, eventlist, pacer):
        sink = FakeSink(eventlist, 1)
        pacer.request_pull(sink)
        eventlist.run()
        assert sink.pull_times == [0]

    def test_pulls_are_spaced_at_link_rate(self, eventlist, pacer):
        sink = FakeSink(eventlist, 1)
        for _ in range(5):
            pacer.request_pull(sink)
        eventlist.run()
        interval = pacer.pull_interval_ps
        assert sink.pull_times == [0, interval, 2 * interval, 3 * interval, 4 * interval]

    def test_rate_fraction_slows_the_clock(self, eventlist):
        pacer = NdpPullPacer(eventlist, gbps(10), mtu_bytes=9000, rate_fraction=0.5)
        assert pacer.pull_interval_ps == 2 * serialization_time_ps(9000, gbps(10))

    def test_idle_period_does_not_accumulate_credit(self, eventlist, pacer):
        sink = FakeSink(eventlist, 1)
        pacer.request_pull(sink)
        eventlist.run()
        # much later, two more requests: they must still be spaced
        eventlist.schedule(10 * pacer.pull_interval_ps, pacer.request_pull, sink)
        eventlist.schedule(10 * pacer.pull_interval_ps, pacer.request_pull, sink)
        eventlist.run()
        assert sink.pull_times[1] == 10 * pacer.pull_interval_ps
        assert sink.pull_times[2] == 11 * pacer.pull_interval_ps

    def test_invalid_rate_fraction(self, eventlist):
        with pytest.raises(ValueError):
            NdpPullPacer(eventlist, gbps(10), rate_fraction=0.0)

    def test_rate_fraction_interval_rounds_half_up(self, eventlist):
        # Regression: int() truncation made the pacer run slightly *fast* at
        # fractional rates.  At Figure 12's operating point (0.95) with a
        # 1.5 kB MTU the exact interval is 1_200_000 / 0.95 = 1_263_157.89 ps;
        # round-half-up gives ..158, truncation gave ..157.
        pacer = NdpPullPacer(eventlist, gbps(10), mtu_bytes=1500, rate_fraction=0.95)
        assert pacer.pull_interval_ps == 1_263_158

    def test_rate_fraction_095_is_never_faster_than_configured(self, eventlist):
        # the paced rate must be <= 0.95 of the link rate, i.e. the interval
        # must be >= the exact (real-valued) spacing
        for mtu in (1500, 9000):
            pacer = NdpPullPacer(eventlist, gbps(10), mtu_bytes=mtu, rate_fraction=0.95)
            exact = serialization_time_ps(mtu, gbps(10)) / 0.95
            assert pacer.pull_interval_ps >= exact - 0.5


class TestFairness:
    def test_round_robin_between_flows(self, eventlist, pacer):
        a = FakeSink(eventlist, 1)
        b = FakeSink(eventlist, 2)
        for _ in range(4):
            pacer.request_pull(a)
            pacer.request_pull(b)
        eventlist.run()
        assert len(a.pull_times) == 4
        assert len(b.pull_times) == 4
        # interleaved service: neither flow waits for the other to finish
        assert max(a.pull_times) > min(b.pull_times)
        assert max(b.pull_times) > min(a.pull_times)

    def test_aggregate_rate_shared_across_flows(self, eventlist, pacer):
        sinks = [FakeSink(eventlist, i) for i in range(4)]
        for sink in sinks:
            for _ in range(3):
                pacer.request_pull(sink)
        eventlist.run()
        all_times = sorted(t for s in sinks for t in s.pull_times)
        assert len(all_times) == 12
        diffs = [b - a for a, b in zip(all_times, all_times[1:])]
        assert all(d == pacer.pull_interval_ps for d in diffs)


class TestPriority:
    def test_priority_flow_served_first(self, eventlist, pacer):
        normal = FakeSink(eventlist, 1, priority=False)
        urgent = FakeSink(eventlist, 2, priority=True)
        for _ in range(5):
            pacer.request_pull(normal)
        for _ in range(5):
            pacer.request_pull(urgent)
        eventlist.run()
        assert max(urgent.pull_times) < min(normal.pull_times) + 5 * pacer.pull_interval_ps
        # the urgent flow's five pulls occupy the first five slots
        assert urgent.pull_times == [i * pacer.pull_interval_ps for i in range(5)]

    def test_priority_change_is_respected_for_queued_requests(self, eventlist, pacer):
        flow = FakeSink(eventlist, 1, priority=False)
        other = FakeSink(eventlist, 2, priority=False)
        for _ in range(3):
            pacer.request_pull(other)
            pacer.request_pull(flow)
        flow.priority = True
        eventlist.run()
        # once promoted, the flow's remaining pulls beat the other's
        assert flow.pull_times[-1] <= other.pull_times[-1]


class TestPurge:
    def test_purge_removes_outstanding_requests(self, eventlist, pacer):
        sink = FakeSink(eventlist, 1)
        for _ in range(5):
            pacer.request_pull(sink)
        pacer.purge(sink.flow_id)
        eventlist.run()
        assert sink.pull_times == []
        assert pacer.pulls_purged == 5
        assert pacer.outstanding(sink.flow_id) == 0

    def test_purge_leaves_other_flows_untouched(self, eventlist, pacer):
        a = FakeSink(eventlist, 1)
        b = FakeSink(eventlist, 2)
        for _ in range(3):
            pacer.request_pull(a)
            pacer.request_pull(b)
        pacer.purge(a.flow_id)
        eventlist.run()
        assert a.pull_times == []
        assert len(b.pull_times) == 3

    def test_requests_after_purge_are_served(self, eventlist, pacer):
        sink = FakeSink(eventlist, 1)
        pacer.request_pull(sink)
        pacer.purge(sink.flow_id)
        pacer.request_pull(sink)
        eventlist.run()
        assert len(sink.pull_times) == 1

    def test_unregister_forgets_flow(self, eventlist, pacer):
        sink = FakeSink(eventlist, 1)
        pacer.register(sink)
        pacer.request_pull(sink)
        pacer.unregister(sink)
        eventlist.run()
        assert sink.pull_times == []
        assert pacer.outstanding() == 0


class TestAccounting:
    def test_outstanding_counts(self, eventlist, pacer):
        a = FakeSink(eventlist, 1)
        b = FakeSink(eventlist, 2)
        pacer.request_pull(a)
        pacer.request_pull(a)
        pacer.request_pull(b)
        assert pacer.outstanding(a.flow_id) == 2
        assert pacer.outstanding(b.flow_id) == 1
        assert pacer.outstanding() == 3

    def test_pulls_sent_counter(self, eventlist, pacer):
        sink = FakeSink(eventlist, 1)
        for _ in range(7):
            pacer.request_pull(sink)
        eventlist.run()
        assert pacer.pulls_sent == 7
