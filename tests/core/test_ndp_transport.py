"""End-to-end tests of the NDP transport protocol on small topologies."""

from __future__ import annotations

import pytest

from repro.core.config import NdpConfig
from repro.harness import NdpNetwork, metrics
from repro.harness.ndp_network import NdpFlow
from repro.sim import units
from repro.sim.eventlist import EventList
from repro.topology import (
    BackToBackTopology,
    FatTreeTopology,
    LeafSpineTopology,
    SingleSwitchTopology,
)


def run_single_flow(topology_cls, size_bytes, until_ms=20, config=None, **topo_kwargs):
    eventlist = EventList()
    network = NdpNetwork.build(eventlist, topology_cls, config=config, **topo_kwargs)
    dst = network.topology.host_count - 1
    flow = network.create_flow(0, dst, size_bytes)
    eventlist.run(until=units.milliseconds(until_ms))
    return network, flow


class TestSingleFlow:
    def test_short_flow_completes_back_to_back(self):
        _net, flow = run_single_flow(BackToBackTopology, 90_000)
        assert flow.complete
        assert flow.record.bytes_delivered == 90_000
        assert flow.src.complete  # every packet also ACKed at the sender

    def test_large_flow_achieves_near_line_rate(self):
        _net, flow = run_single_flow(BackToBackTopology, 10_000_000)
        assert flow.complete
        goodput = flow.record.throughput_bps()
        assert goodput > 0.9 * units.gbps(10)

    def test_flow_through_fattree_completes(self):
        net, flow = run_single_flow(FatTreeTopology, 900_000, k=4)
        assert flow.complete
        assert net.topology.total_dropped() == 0

    def test_no_packet_delivered_twice_counts(self):
        # receiver-side goodput never exceeds the flow size
        _net, flow = run_single_flow(FatTreeTopology, 500_000, k=4)
        assert flow.record.bytes_delivered == 500_000

    def test_sub_mtu_flow(self):
        _net, flow = run_single_flow(BackToBackTopology, 1_000)
        assert flow.complete
        assert flow.src.total_packets == 1
        assert flow.record.bytes_delivered == 1_000

    def test_zero_size_flow_rejected(self):
        eventlist = EventList()
        network = NdpNetwork.build(eventlist, BackToBackTopology)
        with pytest.raises(ValueError):
            network.create_flow(0, 1, 0)

    def test_first_rtt_packets_carry_syn(self):
        eventlist = EventList()
        network = NdpNetwork.build(eventlist, BackToBackTopology)
        flow = network.create_flow(0, 1, 500_000)
        eventlist.run(until=units.microseconds(50))
        # the sink learned the source from SYN packets before being told
        assert flow.sink.record.src == 0


class TestMultipath:
    def test_packets_spread_across_all_core_paths(self):
        eventlist = EventList()
        network = NdpNetwork.build(eventlist, FatTreeTopology, k=4)
        flow = network.create_flow(0, 15, 2_000_000)
        eventlist.run(until=units.milliseconds(10))
        assert flow.complete
        # every one of the four core switches carried some of the flow
        used_cores = {
            name.split("->")[0]
            for (name, record) in (
                (f"{src}->{dst}", network.topology.link(src, dst))
                for (src, dst) in network.topology.links
                if src.startswith("core")
            )
            if record.queue.stats.packets_forwarded > 0
        }
        assert len(used_cores) == 4

    def test_reordering_does_not_stall_delivery(self):
        # per-packet spraying over paths of equal length still reorders at
        # queue level; the transfer must complete without retransmissions
        net, flow = run_single_flow(FatTreeTopology, 1_000_000, k=4)
        assert flow.complete
        assert flow.sender_record.rtx_from_timeout == 0


class TestIncast:
    def make_incast(self, senders, bytes_per_sender, hosts=None, until_ms=80, config=None):
        eventlist = EventList()
        hosts = hosts if hosts is not None else senders + 1
        network = NdpNetwork.build(
            eventlist, SingleSwitchTopology, hosts=hosts, config=config
        )
        flows = [
            network.create_flow(src, 0, bytes_per_sender)
            for src in range(1, senders + 1)
        ]
        eventlist.run(until=units.milliseconds(until_ms))
        return network, flows

    def test_all_flows_complete(self):
        _net, flows = self.make_incast(20, 90_000)
        assert all(flow.complete for flow in flows)

    def test_completion_close_to_theoretical_optimum(self):
        net, flows = self.make_incast(20, 450_000)
        last = max(f.record.finish_time_ps for f in flows)
        ideal = metrics.ideal_incast_completion_ps(
            20, 450_000, units.gbps(10), 9000, 64
        )
        assert last < 1.10 * ideal  # the paper reports within a few percent

    def test_fairness_across_incast_flows(self):
        _net, flows = self.make_incast(16, 450_000)
        fcts = [f.record.completion_time_ps() for f in flows]
        # paper: slowest flow takes at most ~20% longer than the fastest
        assert max(fcts) < 1.5 * min(fcts)

    def test_trimming_happens_but_nothing_is_lost(self):
        net, flows = self.make_incast(24, 270_000)
        bottleneck = net.topology.downlink_queue(0)
        assert bottleneck.stats.packets_trimmed > 0
        assert all(f.complete for f in flows)
        total = sum(f.record.bytes_delivered for f in flows)
        assert total == 24 * 270_000

    def test_first_rtt_trims_then_pulls_avoid_further_trimming(self):
        net, flows = self.make_incast(16, 900_000)
        bottleneck = net.topology.downlink_queue(0)
        trims = bottleneck.stats.packets_trimmed
        total_packets = sum(f.src.packets_sent for f in flows)
        # trimming is confined to (roughly) the first-window burst
        first_window_packets = 16 * 30
        assert trims <= first_window_packets
        assert trims < 0.25 * total_packets

    def test_small_initial_window_reduces_trimming(self):
        net_big, _ = self.make_incast(16, 270_000, config=NdpConfig(initial_window_packets=30))
        net_small, _ = self.make_incast(16, 270_000, config=NdpConfig(initial_window_packets=5))
        trims_big = net_big.topology.downlink_queue(0).stats.packets_trimmed
        trims_small = net_small.topology.downlink_queue(0).stats.packets_trimmed
        assert trims_small < trims_big


class TestPriority:
    def test_prioritized_flow_finishes_first(self):
        eventlist = EventList()
        network = NdpNetwork.build(eventlist, SingleSwitchTopology, hosts=9)
        long_flows = [network.create_flow(src, 0, 2_000_000) for src in range(2, 8)]
        short = network.create_flow(1, 0, 200_000, priority=True)
        eventlist.run(until=units.milliseconds(30))
        assert short.complete
        assert short.record.finish_time_ps < min(
            f.record.finish_time_ps or units.milliseconds(30) for f in long_flows
        )

    def test_priority_flow_fct_close_to_idle(self):
        # Figure 10: with prioritization the short flow's FCT is within tens
        # of microseconds of its FCT on an idle network.  The testbed uses
        # 1500-byte packets, so the collateral of the long flows' first-RTT
        # bursts is small compared to the short flow's pulled phase.
        config = NdpConfig(mtu_bytes=1500, header_queue_bytes=8 * 1500)

        def short_fct(with_background):
            eventlist = EventList()
            network = NdpNetwork.build(
                eventlist, SingleSwitchTopology, hosts=9, config=config
            )
            if with_background:
                for src in range(2, 8):
                    network.create_flow(src, 0, 2_000_000)
            short = network.create_flow(1, 0, 200_000, priority=True)
            eventlist.run(until=units.milliseconds(30))
            assert short.complete
            return short.record.completion_time_ps()

        idle = short_fct(False)
        contended = short_fct(True)
        assert contended - idle < units.microseconds(120)


class TestRobustness:
    def test_degraded_path_is_avoided(self):
        eventlist = EventList()
        config = NdpConfig(path_penalty=True)
        network = NdpNetwork.build(eventlist, FatTreeTopology, k=4, config=config)
        network.topology.degrade_core_link(core=0, pod=3, new_rate_bps=units.gbps(1))
        flow = network.create_flow(0, 15, 20_000_000)
        eventlist.run(until=units.milliseconds(30))
        assert flow.complete
        goodput = flow.record.throughput_bps()
        # without path penalty the flow would be dragged down towards the
        # 1 Gb/s path; with it, throughput stays close to line rate
        assert goodput > 0.75 * units.gbps(10)

    def test_return_to_sender_used_in_extreme_incast(self):
        eventlist = EventList()
        config = NdpConfig(header_queue_bytes=64 * 16)  # tiny header queue
        network = NdpNetwork.build(
            eventlist, SingleSwitchTopology, hosts=41, config=config
        )
        flows = [network.create_flow(src, 0, 270_000) for src in range(1, 41)]
        eventlist.run(until=units.milliseconds(150))
        bounces = sum(f.src.bounces_received for f in flows)
        assert bounces > 0
        assert all(f.complete for f in flows)

    def test_completion_callback_fires(self):
        eventlist = EventList()
        network = NdpNetwork.build(eventlist, BackToBackTopology)
        finished = []
        network.create_flow(0, 1, 100_000, on_complete=lambda src: finished.append(src.flow_id))
        eventlist.run(until=units.milliseconds(10))
        assert finished == [0]

    def test_packet_latency_recording(self):
        eventlist = EventList()
        network = NdpNetwork.build(eventlist, BackToBackTopology)
        flow = network.create_flow(0, 1, 450_000, record_packet_latencies=True)
        eventlist.run(until=units.milliseconds(10))
        assert flow.complete
        assert len(flow.src.packet_latencies_ps) == flow.src.total_packets
        assert all(lat > 0 for lat in flow.src.packet_latencies_ps)


class TestSenderLimited:
    def test_pull_fair_queuing_fills_both_bottlenecks(self):
        """Figure 21: A→{B,C,D,E} plus F→E saturates both A's and E's links."""
        eventlist = EventList()
        network = NdpNetwork.build(eventlist, SingleSwitchTopology, hosts=6)
        # hosts: 0=A, 1=B, 2=C, 3=D, 4=E, 5=F
        size = 6_000_000
        flows_from_a = [network.create_flow(0, dst, size) for dst in (1, 2, 3, 4)]
        flow_f_to_e = network.create_flow(5, 4, 12_000_000)
        duration = units.milliseconds(4)
        eventlist.run(until=duration)
        goodput_a = sum(
            metrics.goodput_bps(f.record, duration) for f in flows_from_a
        )
        goodput_e = metrics.goodput_bps(flows_from_a[3].record, duration) + metrics.goodput_bps(
            flow_f_to_e.record, duration
        )
        assert goodput_a > 0.9 * units.gbps(10)
        assert goodput_e > 0.9 * units.gbps(10)
        # A's four flows share its link roughly equally.  As in the paper's
        # Figure 21 table, A->E comes out slightly below A->{B,C,D} because it
        # shares E's pull queue with the big F->E flow.
        rates = [metrics.goodput_bps(f.record, duration) for f in flows_from_a]
        assert max(rates) < 1.6 * min(rates)
        assert min(rates) > 0.15 * units.gbps(10)
