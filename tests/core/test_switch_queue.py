"""Tests for the NDP trimming switch queue and the CP baseline queue."""

from __future__ import annotations

import random

import pytest

from repro.core.config import NdpConfig
from repro.core.packets import NdpAck, NdpDataPacket, NdpPull
from repro.core.switch import CpSwitchQueue, NdpSwitchQueue
from repro.sim.eventlist import EventList
from repro.sim.network import CountingSink, NetworkEndpoint
from repro.sim.packet import Route
from repro.sim.units import gbps, serialization_time_ps


class FakeSender(NetworkEndpoint):
    """Collects packets bounced back by return-to-sender."""

    def __init__(self, eventlist):
        super().__init__(eventlist, node_id=0, name="fake-sender")
        self.bounced = []

    def receive_packet(self, packet):
        self.bounced.append(packet)


def data_packet(seq, size=9000, src_endpoint=None):
    return NdpDataPacket(
        flow_id=1,
        src=0,
        dst=1,
        seqno=seq,
        payload_bytes=size - 64,
        src_endpoint=src_endpoint,
    )


def push(queue, packets, sink=None):
    sink = sink if sink is not None else CountingSink()
    route = Route([queue, sink])
    for packet in packets:
        packet.set_route(route)
        packet.send_to_next_hop()
    return sink


class TestTrimming:
    def test_no_trimming_below_capacity(self, eventlist):
        queue = NdpSwitchQueue(eventlist, gbps(10), NdpConfig(), random.Random(1))
        sink = push(queue, [data_packet(i) for i in range(8)])
        eventlist.run()
        assert queue.stats.packets_trimmed == 0
        assert sink.packets_received == 8
        assert all(not p.is_header_only for p in [sink.last_packet])

    def test_overflow_trims_but_never_drops_data(self, eventlist):
        queue = NdpSwitchQueue(eventlist, gbps(10), NdpConfig(), random.Random(2))
        packets = [data_packet(i) for i in range(30)]
        sink = push(queue, packets)
        eventlist.run()
        # one in service + 8 queued can stay full size; the rest are trimmed
        assert queue.stats.packets_trimmed == 21
        assert sink.packets_received == 30
        assert queue.stats.packets_dropped == 0

    def test_trimmed_packets_keep_sequence_numbers(self, eventlist):
        queue = NdpSwitchQueue(eventlist, gbps(10), NdpConfig(), random.Random(3))
        packets = [data_packet(i) for i in range(20)]
        push(queue, packets)
        eventlist.run()
        trimmed = [p for p in packets if p.is_header_only]
        assert trimmed
        assert all(p.size == 64 for p in trimmed)
        assert len({p.seqno for p in trimmed}) == len(trimmed)

    def test_trim_choice_uses_both_arriving_and_tail(self, eventlist):
        queue = NdpSwitchQueue(eventlist, gbps(10), NdpConfig(), random.Random(4))
        push(queue, [data_packet(i) for i in range(200)])
        eventlist.run()
        # with 50% probability both victims should occur over 190 trims
        assert queue.trimmed_arriving > 0
        assert queue.trimmed_from_tail > 0
        assert queue.trimmed_arriving + queue.trimmed_from_tail == queue.stats.packets_trimmed

    def test_trim_probability_one_always_trims_arrival(self, eventlist):
        config = NdpConfig(trim_arriving_probability=1.0)
        queue = NdpSwitchQueue(eventlist, gbps(10), config, random.Random(5))
        push(queue, [data_packet(i) for i in range(50)])
        eventlist.run()
        assert queue.trimmed_from_tail == 0
        assert queue.trimmed_arriving == 41


class TestPriorityScheduling:
    def test_control_packets_bypass_data_backlog(self, eventlist):
        queue = NdpSwitchQueue(eventlist, gbps(10), NdpConfig(), random.Random(6))
        sink = CountingSink()
        arrival_order = []

        class Recorder(CountingSink):
            def receive_packet(self, packet):
                super().receive_packet(packet)
                arrival_order.append(packet)

        recorder = Recorder()
        data = [data_packet(i) for i in range(6)]
        push(queue, data, sink=recorder)
        ack = NdpAck(flow_id=2, src=1, dst=0, seqno=0)
        push(queue, [ack], sink=recorder)
        eventlist.run()
        # the ACK arrived last but overtakes all queued data packets (only the
        # packet already in service precedes it)
        assert arrival_order.index(ack) == 1

    def test_wrr_prevents_header_starvation_of_data(self, eventlist):
        config = NdpConfig(wrr_headers_per_data=10)
        queue = NdpSwitchQueue(eventlist, gbps(10), config, random.Random(7))
        recorder = []

        class Recorder(CountingSink):
            def receive_packet(self, packet):
                super().receive_packet(packet)
                recorder.append(packet)

        sink = Recorder()
        # big backlog of control packets plus a couple of data packets
        controls = [NdpPull(flow_id=3, src=1, dst=0, pull_counter=i) for i in range(50)]
        data = [data_packet(i) for i in range(3)]
        push(queue, data, sink=sink)
        push(queue, controls, sink=sink)
        eventlist.run()
        # data packets must not wait for all 50 control packets: each can be
        # preceded by at most wrr_headers_per_data control packets (plus the
        # one in service / already counted).
        second_data_position = [i for i, p in enumerate(recorder) if isinstance(p, NdpDataPacket)][1]
        assert second_data_position <= 2 + 2 * config.wrr_headers_per_data

    def test_headers_get_share_even_under_data_load(self, eventlist):
        config = NdpConfig()
        queue = NdpSwitchQueue(eventlist, gbps(10), config, random.Random(8))
        order = []

        class Recorder(CountingSink):
            def receive_packet(self, packet):
                order.append(packet)

        sink = Recorder()
        data = [data_packet(i) for i in range(8)]
        push(queue, data, sink=sink)
        acks = [NdpAck(flow_id=4, src=1, dst=0, seqno=i) for i in range(4)]
        push(queue, acks, sink=sink)
        eventlist.run()
        ack_positions = [i for i, p in enumerate(order) if isinstance(p, NdpAck)]
        # all ACKs leave before the data backlog is drained
        assert max(ack_positions) < len(order) - 4


class TestReturnToSender:
    def _tiny_header_queue_config(self):
        # a header queue that only holds two 64-byte headers
        return NdpConfig(header_queue_bytes=128, data_queue_packets=2)

    def test_headers_bounced_when_header_queue_overflows(self, eventlist):
        sender = FakeSender(eventlist)
        config = self._tiny_header_queue_config()
        queue = NdpSwitchQueue(eventlist, gbps(10), config, random.Random(9))
        packets = [data_packet(i, src_endpoint=sender) for i in range(20)]
        push(queue, packets)
        eventlist.run()
        assert queue.headers_bounced > 0
        assert len(sender.bounced) == queue.headers_bounced
        assert all(p.bounced and p.is_header_only for p in sender.bounced)

    def test_bounce_disabled_drops_headers(self, eventlist):
        config = self._tiny_header_queue_config().with_overrides(return_to_sender=False)
        queue = NdpSwitchQueue(eventlist, gbps(10), config, random.Random(10))
        packets = [data_packet(i) for i in range(20)]
        push(queue, packets)
        eventlist.run()
        assert queue.headers_bounced == 0
        assert queue.stats.packets_dropped > 0

    def test_control_packets_dropped_not_bounced_on_overflow(self, eventlist):
        config = self._tiny_header_queue_config()
        queue = NdpSwitchQueue(eventlist, gbps(10), config, random.Random(11))
        acks = [NdpAck(flow_id=5, src=1, dst=0, seqno=i) for i in range(40)]
        push(queue, acks)
        eventlist.run()
        assert queue.control_dropped > 0
        assert queue.headers_bounced == 0


class TestCpQueue:
    def test_cp_trims_into_single_fifo(self, eventlist):
        queue = CpSwitchQueue(eventlist, gbps(10), NdpConfig())
        order = []

        class Recorder(CountingSink):
            def receive_packet(self, packet):
                order.append(packet)

        packets = [data_packet(i) for i in range(20)]
        push(queue, packets, sink=Recorder())
        eventlist.run()
        assert queue.stats.packets_trimmed > 0
        trimmed_positions = [i for i, p in enumerate(order) if p.is_header_only]
        full_positions = [i for i, p in enumerate(order) if not p.is_header_only]
        # FIFO: trimmed headers do NOT overtake the data queued before them
        assert min(trimmed_positions) > min(full_positions)
        assert max(full_positions) < min(trimmed_positions) + len(trimmed_positions) + len(full_positions)

    def test_cp_drops_when_completely_full(self, eventlist):
        config = NdpConfig(data_queue_packets=2, header_queue_bytes=128)
        queue = CpSwitchQueue(eventlist, gbps(10), config)
        push(queue, [data_packet(i) for i in range(50)])
        eventlist.run()
        assert queue.stats.packets_dropped > 0


class TestTiming:
    def test_trimmed_header_forwarded_quickly(self, eventlist):
        """A trimmed header leaves far sooner than the data queue drain time."""
        config = NdpConfig()
        queue = NdpSwitchQueue(eventlist, gbps(10), config, random.Random(12))
        arrivals = {}

        class Recorder(CountingSink):
            def __init__(self, eventlist):
                super().__init__()
                self.eventlist = eventlist

            def receive_packet(self, packet):
                arrivals[(packet.seqno, packet.is_header_only)] = self.eventlist.now()

        sink = Recorder(eventlist)
        packets = [data_packet(i) for i in range(10, 20)]  # 10 packets: 1 trim expected
        config = NdpConfig(trim_arriving_probability=1.0)
        queue.config = config
        push(queue, packets, sink=sink)
        eventlist.run()
        header_times = [t for (seq, hdr), t in arrivals.items() if hdr]
        data_times = [t for (seq, hdr), t in arrivals.items() if not hdr]
        assert header_times
        # the header escapes after at most a couple of data serializations,
        # well before the full 9-packet backlog drains
        assert min(header_times) < 3 * serialization_time_ps(9000, gbps(10))
        assert max(data_times) > 8 * serialization_time_ps(9000, gbps(10))
