"""Round-trip and corruption property tests for the JSONL trace format.

The contract: synthesize -> write -> read gives bit-identical request
records and trace digest; replaying the read-back specs through the engine
reproduces identical per-request latencies; and every untrustworthy input
(corrupt, truncated, unknown schema or version) raises a clear ValueError
rather than half-loading.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.harness.ndp_network import NdpNetwork
from repro.sim import units
from repro.sim.eventlist import EventList
from repro.topology import SingleSwitchTopology
from repro.workloads.services import (
    PartitionAggregateTemplate,
    ServiceEngine,
    ServiceRequestSpec,
    TaskSpec,
    synthesize_requests,
)
from repro.workloads.trace import (
    TRACE_SCHEMA,
    TRACE_VERSION,
    read_trace,
    trace_digest,
    write_trace,
)

MS = units.milliseconds(1)


def _specs(seed: int = 11, deadline_ps=2 * MS):
    return synthesize_requests(
        list(range(10)),
        [PartitionAggregateTemplate(4, 2_000, 30_000)],
        target_load=0.2,
        link_rate_bps=units.DEFAULT_LINK_RATE_BPS,
        warmup_ps=units.microseconds(100),
        measure_ps=units.microseconds(400),
        drain_ps=units.microseconds(200),
        rng=random.Random(seed),
        deadline_ps=deadline_ps,
    )


def _execute(specs):
    """Run specs on a fresh identically-seeded network; return the engine."""
    eventlist = EventList()
    network = NdpNetwork(SingleSwitchTopology(eventlist, hosts=10), seed=1)
    engine = ServiceEngine(eventlist, network)
    engine.submit_all(specs)
    engine.run_until(10 * MS)
    return engine


class TestRoundTrip:
    def test_write_read_is_bit_identical(self, tmp_path):
        specs = _specs()
        path = str(tmp_path / "workload.trace")
        written_digest = write_trace(path, specs, meta={"seed": 11, "load": 0.2})

        trace = read_trace(path)
        assert trace.requests == specs
        assert trace.sha256 == written_digest == trace_digest(specs)
        assert trace.meta == {"seed": 11, "load": 0.2}

        # writing the read-back specs again produces the identical file
        second = str(tmp_path / "again.trace")
        write_trace(second, trace.requests, meta=trace.meta)
        assert open(path).read() == open(second).read()

    def test_replay_reproduces_identical_latencies(self, tmp_path):
        specs = _specs()
        path = str(tmp_path / "workload.trace")
        write_trace(path, specs)

        recorded = _execute(specs)
        replayed = _execute(read_trace(path).requests)

        assert recorded.request_digest() == replayed.request_digest()
        assert [run.latency_ps for run in recorded.requests] == [
            run.latency_ps for run in replayed.requests
        ]
        assert any(run.completed for run in recorded.requests)

    def test_empty_trace_round_trips(self, tmp_path):
        path = str(tmp_path / "empty.trace")
        digest = write_trace(path, [])
        trace = read_trace(path)
        assert trace.requests == [] and trace.sha256 == digest

    def test_single_request_round_trips(self, tmp_path):
        spec = ServiceRequestSpec(
            0, "solo", arrival_ps=5, stages=((TaskSpec(0, 1, 9_000),),)
        )
        path = str(tmp_path / "one.trace")
        write_trace(path, [spec])
        assert read_trace(path).requests == [spec]

    def test_digest_ignores_file_provenance(self):
        """The digest is a property of the specs, not of any file."""
        assert trace_digest(_specs(11)) == trace_digest(_specs(11))
        assert trace_digest(_specs(11)) != trace_digest(_specs(12))


class TestRejection:
    @pytest.fixture
    def trace_path(self, tmp_path):
        path = str(tmp_path / "workload.trace")
        write_trace(path, _specs(), meta={"seed": 11})
        return path

    def test_empty_file(self, tmp_path):
        path = tmp_path / "void.trace"
        path.write_text("")
        with pytest.raises(ValueError, match="empty trace"):
            read_trace(str(path))

    def test_unknown_schema(self, tmp_path):
        path = tmp_path / "foreign.trace"
        path.write_text(json.dumps({"schema": "something-else", "version": 1}) + "\n")
        with pytest.raises(ValueError, match="not a service trace"):
            read_trace(str(path))

    def test_missing_schema(self, tmp_path):
        path = tmp_path / "headerless.trace"
        path.write_text(json.dumps({"rows": 3}) + "\n")
        with pytest.raises(ValueError, match="no schema header"):
            read_trace(str(path))

    def test_unknown_version(self, trace_path):
        lines = open(trace_path).read().splitlines()
        header = json.loads(lines[0])
        header["version"] = TRACE_VERSION + 1
        lines[0] = json.dumps(header)
        open(trace_path, "w").write("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="unsupported trace version"):
            read_trace(trace_path)

    def test_truncated_no_footer(self, trace_path):
        lines = open(trace_path).read().splitlines()
        open(trace_path, "w").write("\n".join(lines[:-1]) + "\n")
        with pytest.raises(ValueError, match="truncated trace"):
            read_trace(trace_path)

    def test_truncated_missing_request(self, trace_path):
        lines = open(trace_path).read().splitlines()
        del lines[1]  # drop the first request record, keep the footer
        open(trace_path, "w").write("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="truncated trace"):
            read_trace(trace_path)

    def test_corrupt_value_fails_the_digest(self, trace_path):
        lines = open(trace_path).read().splitlines()
        record = json.loads(lines[1])
        record["arrival_ps"] += 1
        lines[1] = json.dumps(record, sort_keys=True, separators=(",", ":"))
        open(trace_path, "w").write("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="digest mismatch"):
            read_trace(trace_path)

    def test_malformed_json_record(self, trace_path):
        lines = open(trace_path).read().splitlines()
        lines[1] = lines[1][:-5]  # break the JSON mid-token
        open(trace_path, "w").write("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="malformed trace"):
            read_trace(trace_path)

    def test_invalid_record_content(self, trace_path):
        lines = open(trace_path).read().splitlines()
        record = json.loads(lines[1])
        record["stages"][0][0][2] = 0  # a zero-byte task is never valid
        lines[1] = json.dumps(record, sort_keys=True, separators=(",", ":"))
        open(trace_path, "w").write("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="malformed trace record"):
            read_trace(trace_path)
