"""Tests for traffic matrices, flow-size distributions and generators."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.harness.ndp_network import NdpNetwork
from repro.sim import units
from repro.sim.eventlist import EventList
from repro.topology import SingleSwitchTopology
from repro.workloads.flowsize import (
    DataMiningFlowSizes,
    EmpiricalFlowSizes,
    FacebookWebFlowSizes,
    FixedFlowSizes,
    WebSearchFlowSizes,
)
from repro.workloads.generators import (
    MAX_ARRIVAL_GAP_PS,
    ClosedLoopGenerator,
    PoissonArrivals,
)
from repro.workloads.traffic_matrices import incast_pairs, permutation_pairs, random_pairs


class TestPermutationPairs:
    def test_is_a_derangement(self):
        pairs = permutation_pairs(range(20), random.Random(1))
        sources = [s for s, _ in pairs]
        destinations = [d for _, d in pairs]
        assert sorted(sources) == list(range(20))
        assert sorted(destinations) == list(range(20))
        assert all(s != d for s, d in pairs)

    def test_needs_two_hosts(self):
        with pytest.raises(ValueError):
            permutation_pairs([1])

    def test_two_hosts_swap(self):
        assert permutation_pairs([0, 1], random.Random(0)) == [(0, 1), (1, 0)]

    @given(st.integers(min_value=2, max_value=64), st.integers(min_value=0, max_value=1000))
    @settings(max_examples=30)
    def test_every_host_sends_and_receives_exactly_once(self, n, seed):
        pairs = permutation_pairs(range(n), random.Random(seed))
        assert len(pairs) == n
        assert len({d for _, d in pairs}) == n
        assert all(s != d for s, d in pairs)


class TestRandomAndIncastPairs:
    def test_random_pairs_avoid_self(self):
        pairs = random_pairs(range(10), random.Random(2), flows_per_host=3)
        assert len(pairs) == 30
        assert all(s != d for s, d in pairs)

    def test_random_pairs_validation(self):
        with pytest.raises(ValueError):
            random_pairs([1])
        with pytest.raises(ValueError):
            random_pairs(range(4), flows_per_host=0)

    def test_incast_pairs(self):
        pairs = incast_pairs(0, range(8), fan_in=5)
        assert len(pairs) == 5
        assert all(d == 0 for _, d in pairs)
        assert 0 not in [s for s, _ in pairs]

    def test_incast_excludes_receiver_and_validates(self):
        assert len(incast_pairs(3, range(5))) == 4
        with pytest.raises(ValueError):
            incast_pairs(0, [0])
        with pytest.raises(ValueError):
            incast_pairs(0, range(4), fan_in=10)


class TestFlowSizes:
    def test_fixed_distribution(self):
        dist = FixedFlowSizes(42_000)
        assert dist.sample(random.Random(0)) == 42_000
        assert dist.sample_many(random.Random(0), 5) == [42_000] * 5
        with pytest.raises(ValueError):
            FixedFlowSizes(0)

    def test_empirical_validation(self):
        with pytest.raises(ValueError):
            EmpiricalFlowSizes([(100, 1.0)])
        with pytest.raises(ValueError):
            EmpiricalFlowSizes([(100, 0.5), (50, 1.0)])
        with pytest.raises(ValueError):
            EmpiricalFlowSizes([(100, 0.2), (200, 0.8)])

    def test_facebook_web_shape(self):
        """Heavy tail: median well under 1 kB, mean dominated by large flows."""
        rng = random.Random(3)
        dist = FacebookWebFlowSizes()
        samples = dist.sample_many(rng, 5000)
        samples.sort()
        median = samples[len(samples) // 2]
        mean = sum(samples) / len(samples)
        assert median < 2_000
        assert mean > 5 * median
        assert max(samples) > 500_000
        assert min(samples) >= 1

    def test_samples_within_cdf_support(self):
        rng = random.Random(4)
        dist = FacebookWebFlowSizes()
        assert all(64 <= s <= 3_000_000 for s in dist.sample_many(rng, 1000))

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=25)
    def test_empirical_sampling_is_bounded(self, seed):
        dist = EmpiricalFlowSizes([(10, 0.0), (100, 0.5), (1000, 1.0)])
        value = dist.sample(random.Random(seed))
        assert 1 <= value <= 1000

    def test_mean_bytes_is_exact_for_the_interpolated_distribution(self):
        # one segment, uniform on [100, 300]: mean is the midpoint
        dist = EmpiricalFlowSizes([(100, 0.0), (300, 1.0)])
        assert dist.mean_bytes() == 200.0
        assert FixedFlowSizes(9_000).mean_bytes() == 9_000.0

    def test_mean_bytes_tracks_sampling(self):
        """The analytic mean must match the sampled mean (rate sizing relies on it)."""
        for dist in (FacebookWebFlowSizes(), WebSearchFlowSizes(), DataMiningFlowSizes()):
            rng = random.Random(11)
            sampled = sum(dist.sample_many(rng, 40_000)) / 40_000
            assert abs(sampled - dist.mean_bytes()) / dist.mean_bytes() < 0.25

    def test_empirical_mix_shapes(self):
        """Web-search and data-mining keep their published character."""
        websearch, datamining = WebSearchFlowSizes(), DataMiningFlowSizes()
        # web-search: megabyte-scale mean, tens-of-kB median
        assert 1_000_000 < websearch.mean_bytes() < 5_000_000
        rng = random.Random(12)
        ws_median = sorted(websearch.sample_many(rng, 4001))[2000]
        assert 30_000 < ws_median < 200_000
        # data-mining: sub-2kB median yet a mean thousands of times larger
        assert datamining.mean_bytes() > 5_000_000
        dm_median = sorted(datamining.sample_many(rng, 4001))[2000]
        assert dm_median < 2_000


class TestGenerators:
    def _network(self, hosts=4):
        eventlist = EventList()
        network = NdpNetwork.build(eventlist, SingleSwitchTopology, hosts=hosts)
        return eventlist, network

    def test_closed_loop_keeps_flows_coming(self):
        eventlist, network = self._network()
        generator = ClosedLoopGenerator(
            eventlist,
            network,
            hosts=network.topology.hosts(),
            flow_sizes=FixedFlowSizes(90_000),
            connections_per_host=1,
            think_time_ps=units.microseconds(10),
            rng=random.Random(5),
        )
        generator.start()
        eventlist.run(until=units.milliseconds(5))
        assert generator.flows_started > len(network.topology.hosts())
        assert generator.flows_completed > 0
        assert len(generator.completed_records()) == generator.flows_completed

    def test_closed_loop_respects_max_flows(self):
        eventlist, network = self._network()
        generator = ClosedLoopGenerator(
            eventlist,
            network,
            hosts=network.topology.hosts(),
            flow_sizes=FixedFlowSizes(9_000),
            max_flows=6,
            rng=random.Random(6),
        )
        generator.start()
        eventlist.run(until=units.milliseconds(10))
        assert generator.flows_started <= 6

    def test_closed_loop_validation(self):
        eventlist, network = self._network()
        with pytest.raises(ValueError):
            ClosedLoopGenerator(
                eventlist, network, hosts=[0], flow_sizes=FixedFlowSizes(100)
            )
        with pytest.raises(ValueError):
            ClosedLoopGenerator(
                eventlist,
                network,
                hosts=network.topology.hosts(),
                flow_sizes=FixedFlowSizes(100),
                connections_per_host=0,
            )

    def test_poisson_arrivals(self):
        eventlist, network = self._network(hosts=6)
        arrivals = PoissonArrivals(
            eventlist,
            network,
            hosts=network.topology.hosts(),
            flow_sizes=FixedFlowSizes(9_000),
            arrival_rate_per_second=200_000,
            rng=random.Random(7),
            max_flows=50,
        )
        arrivals.start()
        eventlist.run(until=units.milliseconds(2))
        assert arrivals.flows_started > 10
        assert arrivals.flows_started <= 50

    def test_poisson_validation(self):
        eventlist, network = self._network()
        for bad_rate in (0, -5, float("inf"), float("nan")):
            with pytest.raises(ValueError):
                PoissonArrivals(
                    eventlist,
                    network,
                    hosts=network.topology.hosts(),
                    flow_sizes=FixedFlowSizes(100),
                    arrival_rate_per_second=bad_rate,
                )

    def _poisson(self, network, eventlist, rate, seed=21, max_flows=None):
        return PoissonArrivals(
            eventlist,
            network,
            hosts=network.topology.hosts(),
            flow_sizes=FixedFlowSizes(9_000),
            arrival_rate_per_second=rate,
            rng=random.Random(seed),
            max_flows=max_flows,
        )

    def test_poisson_gap_is_always_at_least_one_picosecond(self):
        """Extreme rates must not schedule two arrivals at the same instant."""
        eventlist, network = self._network()
        arrivals = self._poisson(network, eventlist, rate=1e30)
        assert all(arrivals._next_gap() >= 1 for _ in range(1000))

    def test_poisson_gap_is_capped_under_extreme_low_rates(self):
        """Rates near float underflow used to overflow int(seconds * 1e12)."""
        eventlist, network = self._network()
        arrivals = self._poisson(network, eventlist, rate=1e-300)
        gaps = [arrivals._next_gap() for _ in range(100)]
        assert all(gap == MAX_ARRIVAL_GAP_PS for gap in gaps)
        # a merely-low rate clamps the tail but still terminates
        slow = self._poisson(network, eventlist, rate=1e-6)
        assert all(1 <= slow._next_gap() <= MAX_ARRIVAL_GAP_PS for _ in range(100))

    def test_poisson_arrival_sequence_is_seed_reproducible(self):
        """Same seed, same hosts => byte-identical arrival sequences."""
        def sequence(seed):
            eventlist, network = self._network(hosts=6)
            arrivals = PoissonArrivals(
                eventlist,
                network,
                hosts=network.topology.hosts(),
                flow_sizes=FacebookWebFlowSizes(),
                arrival_rate_per_second=300_000,
                rng=random.Random(seed),
                max_flows=40,
            )
            arrivals.start()
            eventlist.run(until=units.milliseconds(2))
            return [
                (f.record.start_time_ps, f.record.src, f.record.dst,
                 f.record.flow_size_bytes)
                for f in arrivals.flows
            ]

        first, second = sequence(33), sequence(33)
        assert first and first == second
        assert sequence(34) != first
