"""Tests for traffic matrices, flow-size distributions and generators."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.harness.ndp_network import NdpNetwork
from repro.sim import units
from repro.sim.eventlist import EventList
from repro.topology import SingleSwitchTopology
from repro.workloads.flowsize import (
    EmpiricalFlowSizes,
    FacebookWebFlowSizes,
    FixedFlowSizes,
)
from repro.workloads.generators import ClosedLoopGenerator, PoissonArrivals
from repro.workloads.traffic_matrices import incast_pairs, permutation_pairs, random_pairs


class TestPermutationPairs:
    def test_is_a_derangement(self):
        pairs = permutation_pairs(range(20), random.Random(1))
        sources = [s for s, _ in pairs]
        destinations = [d for _, d in pairs]
        assert sorted(sources) == list(range(20))
        assert sorted(destinations) == list(range(20))
        assert all(s != d for s, d in pairs)

    def test_needs_two_hosts(self):
        with pytest.raises(ValueError):
            permutation_pairs([1])

    def test_two_hosts_swap(self):
        assert permutation_pairs([0, 1], random.Random(0)) == [(0, 1), (1, 0)]

    @given(st.integers(min_value=2, max_value=64), st.integers(min_value=0, max_value=1000))
    @settings(max_examples=30)
    def test_every_host_sends_and_receives_exactly_once(self, n, seed):
        pairs = permutation_pairs(range(n), random.Random(seed))
        assert len(pairs) == n
        assert len({d for _, d in pairs}) == n
        assert all(s != d for s, d in pairs)


class TestRandomAndIncastPairs:
    def test_random_pairs_avoid_self(self):
        pairs = random_pairs(range(10), random.Random(2), flows_per_host=3)
        assert len(pairs) == 30
        assert all(s != d for s, d in pairs)

    def test_random_pairs_validation(self):
        with pytest.raises(ValueError):
            random_pairs([1])
        with pytest.raises(ValueError):
            random_pairs(range(4), flows_per_host=0)

    def test_incast_pairs(self):
        pairs = incast_pairs(0, range(8), fan_in=5)
        assert len(pairs) == 5
        assert all(d == 0 for _, d in pairs)
        assert 0 not in [s for s, _ in pairs]

    def test_incast_excludes_receiver_and_validates(self):
        assert len(incast_pairs(3, range(5))) == 4
        with pytest.raises(ValueError):
            incast_pairs(0, [0])
        with pytest.raises(ValueError):
            incast_pairs(0, range(4), fan_in=10)


class TestFlowSizes:
    def test_fixed_distribution(self):
        dist = FixedFlowSizes(42_000)
        assert dist.sample(random.Random(0)) == 42_000
        assert dist.sample_many(random.Random(0), 5) == [42_000] * 5
        with pytest.raises(ValueError):
            FixedFlowSizes(0)

    def test_empirical_validation(self):
        with pytest.raises(ValueError):
            EmpiricalFlowSizes([(100, 1.0)])
        with pytest.raises(ValueError):
            EmpiricalFlowSizes([(100, 0.5), (50, 1.0)])
        with pytest.raises(ValueError):
            EmpiricalFlowSizes([(100, 0.2), (200, 0.8)])

    def test_facebook_web_shape(self):
        """Heavy tail: median well under 1 kB, mean dominated by large flows."""
        rng = random.Random(3)
        dist = FacebookWebFlowSizes()
        samples = dist.sample_many(rng, 5000)
        samples.sort()
        median = samples[len(samples) // 2]
        mean = sum(samples) / len(samples)
        assert median < 2_000
        assert mean > 5 * median
        assert max(samples) > 500_000
        assert min(samples) >= 1

    def test_samples_within_cdf_support(self):
        rng = random.Random(4)
        dist = FacebookWebFlowSizes()
        assert all(64 <= s <= 3_000_000 for s in dist.sample_many(rng, 1000))

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=25)
    def test_empirical_sampling_is_bounded(self, seed):
        dist = EmpiricalFlowSizes([(10, 0.0), (100, 0.5), (1000, 1.0)])
        value = dist.sample(random.Random(seed))
        assert 1 <= value <= 1000


class TestGenerators:
    def _network(self, hosts=4):
        eventlist = EventList()
        network = NdpNetwork.build(eventlist, SingleSwitchTopology, hosts=hosts)
        return eventlist, network

    def test_closed_loop_keeps_flows_coming(self):
        eventlist, network = self._network()
        generator = ClosedLoopGenerator(
            eventlist,
            network,
            hosts=network.topology.hosts(),
            flow_sizes=FixedFlowSizes(90_000),
            connections_per_host=1,
            think_time_ps=units.microseconds(10),
            rng=random.Random(5),
        )
        generator.start()
        eventlist.run(until=units.milliseconds(5))
        assert generator.flows_started > len(network.topology.hosts())
        assert generator.flows_completed > 0
        assert len(generator.completed_records()) == generator.flows_completed

    def test_closed_loop_respects_max_flows(self):
        eventlist, network = self._network()
        generator = ClosedLoopGenerator(
            eventlist,
            network,
            hosts=network.topology.hosts(),
            flow_sizes=FixedFlowSizes(9_000),
            max_flows=6,
            rng=random.Random(6),
        )
        generator.start()
        eventlist.run(until=units.milliseconds(10))
        assert generator.flows_started <= 6

    def test_closed_loop_validation(self):
        eventlist, network = self._network()
        with pytest.raises(ValueError):
            ClosedLoopGenerator(
                eventlist, network, hosts=[0], flow_sizes=FixedFlowSizes(100)
            )
        with pytest.raises(ValueError):
            ClosedLoopGenerator(
                eventlist,
                network,
                hosts=network.topology.hosts(),
                flow_sizes=FixedFlowSizes(100),
                connections_per_host=0,
            )

    def test_poisson_arrivals(self):
        eventlist, network = self._network(hosts=6)
        arrivals = PoissonArrivals(
            eventlist,
            network,
            hosts=network.topology.hosts(),
            flow_sizes=FixedFlowSizes(9_000),
            arrival_rate_per_second=200_000,
            rng=random.Random(7),
            max_flows=50,
        )
        arrivals.start()
        eventlist.run(until=units.milliseconds(2))
        assert arrivals.flows_started > 10
        assert arrivals.flows_started <= 50

    def test_poisson_validation(self):
        eventlist, network = self._network()
        with pytest.raises(ValueError):
            PoissonArrivals(
                eventlist,
                network,
                hosts=network.topology.hosts(),
                flow_sizes=FixedFlowSizes(100),
                arrival_rate_per_second=0,
            )
