"""Tests for the open-loop load-targeted workload engine.

Covers the ISSUE 5 tentpole contract: arrival-rate sizing from a target
load, warmup/measurement/drain window tagging (warmup exclusion), seeded
determinism of the arrival sequence (digest equality), per-host vs
all-to-all matrices, and empty-measurement-window handling.
"""

from __future__ import annotations

import random

import pytest

from repro.harness import metrics
from repro.harness.ndp_network import NdpNetwork
from repro.sim import units
from repro.sim.eventlist import EventList
from repro.topology import SingleSwitchTopology
from repro.workloads.flowsize import FacebookWebFlowSizes, FixedFlowSizes
from repro.workloads.openloop import (
    ALL_TO_ALL,
    DRAIN,
    MEASURE,
    PER_HOST,
    WARMUP,
    OpenLoopGenerator,
)


def _network(hosts=4):
    eventlist = EventList()
    network = NdpNetwork.build(eventlist, SingleSwitchTopology, hosts=hosts)
    return eventlist, network


def _generator(eventlist, network, **overrides):
    kwargs = dict(
        hosts=network.topology.hosts(),
        flow_sizes=FixedFlowSizes(90_000),
        target_load=0.2,
        link_rate_bps=network.topology.link_rate_bps,
        warmup_ps=units.microseconds(100),
        measure_ps=units.microseconds(300),
        drain_ps=units.microseconds(100),
        rng=random.Random(5),
    )
    kwargs.update(overrides)
    return OpenLoopGenerator(eventlist, network, **kwargs)


class TestRateSizing:
    def test_arrival_rate_follows_the_load_equation(self):
        eventlist, network = _network(hosts=4)
        generator = _generator(eventlist, network, target_load=0.5)
        hosts, rate_bps = 4, network.topology.link_rate_bps
        expected = 0.5 * hosts * rate_bps / (8 * 90_000)
        assert generator.arrival_rate_per_second == pytest.approx(expected)
        assert generator.offered_load_bps == pytest.approx(0.5 * hosts * rate_bps)

    def test_rate_scales_inversely_with_mean_flow_size(self):
        eventlist, network = _network()
        small = _generator(eventlist, network, flow_sizes=FixedFlowSizes(9_000))
        large = _generator(eventlist, network, flow_sizes=FixedFlowSizes(90_000))
        assert small.arrival_rate_per_second == pytest.approx(
            10 * large.arrival_rate_per_second
        )

    def test_validation(self):
        eventlist, network = _network()
        for bad in (dict(target_load=0), dict(target_load=float("inf")),
                    dict(measure_ps=0), dict(warmup_ps=-1),
                    dict(matrix="ring"), dict(hosts=[0])):
            with pytest.raises(ValueError):
                _generator(eventlist, network, **bad)
        with pytest.raises(RuntimeError):
            generator = _generator(eventlist, network)
            generator.start()
            generator.start()  # double start


class TestWindows:
    def test_flows_are_tagged_by_arrival_window(self):
        eventlist, network = _network()
        generator = _generator(eventlist, network, target_load=0.8)
        generator.start()
        generator.run()
        assert generator.flows_started > 0
        warmup_end = generator.warmup_ps
        measure_end = generator.warmup_ps + generator.measure_ps
        for entry in generator.flows:
            if entry.arrival_ps < warmup_end:
                assert entry.window == WARMUP
            elif entry.arrival_ps < measure_end:
                assert entry.window == MEASURE
            else:
                assert entry.window == DRAIN

    def test_warmup_flows_are_excluded_from_measured_records(self):
        """The warmup-window exclusion contract of the slowdown pipeline."""
        eventlist, network = _network()
        generator = _generator(eventlist, network, target_load=0.8)
        generator.start()
        generator.run()
        warmup_flows = generator.flows_in_window(WARMUP)
        assert warmup_flows, "expected at least one warmup arrival"
        measured_ids = {record.flow_id for record in generator.measured_records()}
        assert measured_ids  # sanity: the measurement window saw arrivals
        assert not measured_ids & {f.record.flow_id for f in warmup_flows}

    def test_windows_are_relative_to_start_time(self):
        eventlist, network = _network()
        offset = units.microseconds(50)
        generator = _generator(eventlist, network, target_load=0.8)
        generator.start(at_time_ps=offset)
        generator.run()
        assert eventlist.now() >= offset + generator.horizon_ps
        assert generator.window_of(offset) == WARMUP
        assert generator.window_of(offset + generator.warmup_ps) == MEASURE

    def test_empty_measurement_window_is_legal(self):
        """No arrivals inside the window => empty records, 0-count summary."""
        eventlist, network = _network()
        # a load so low the first arrival lands far beyond the horizon
        generator = _generator(eventlist, network, target_load=1e-9)
        generator.start()
        generator.run()
        assert generator.measured_records() == []
        summary = metrics.binned_slowdown_summary(
            generator.measured_records(),
            link_rate_bps=network.topology.link_rate_bps,
            mtu_bytes=9000, header_bytes=64,
        )
        assert summary["all"] == {"count": 0}

    def test_arrivals_stop_at_the_horizon_and_max_flows(self):
        eventlist, network = _network()
        generator = _generator(eventlist, network, target_load=0.8, max_flows=5)
        generator.start()
        eventlist.run(until=units.milliseconds(5))  # far past the horizon
        assert generator.flows_started <= 5
        for entry in generator.flows:
            assert entry.arrival_ps < generator.horizon_ps


class TestDeterminism:
    def _digest(self, seed, matrix=ALL_TO_ALL, hosts=4):
        eventlist, network = _network(hosts=hosts)
        generator = _generator(
            eventlist, network, matrix=matrix, rng=random.Random(seed),
            flow_sizes=FacebookWebFlowSizes(), target_load=0.5,
        )
        generator.start()
        generator.run()
        return generator.arrival_digest(), [
            (f.arrival_ps, f.src, f.dst, f.size_bytes, f.window)
            for f in generator.flows
        ]

    def test_same_seed_same_arrival_sequence(self):
        (digest_a, flows_a) = self._digest(7)
        (digest_b, flows_b) = self._digest(7)
        assert flows_a and flows_a == flows_b
        assert digest_a == digest_b

    def test_different_seed_different_sequence(self):
        assert self._digest(7)[0] != self._digest(8)[0]

    def test_per_host_matrix_is_deterministic_too(self):
        (digest_a, flows_a) = self._digest(9, matrix=PER_HOST)
        (digest_b, flows_b) = self._digest(9, matrix=PER_HOST)
        assert flows_a and flows_a == flows_b
        assert digest_a == digest_b

    def test_per_host_sources_cover_every_host(self):
        eventlist, network = _network(hosts=4)
        generator = _generator(
            eventlist, network, matrix=PER_HOST, target_load=0.8,
            flow_sizes=FixedFlowSizes(9_000),
        )
        generator.start()
        generator.run()
        sources = {entry.src for entry in generator.flows}
        assert sources == set(network.topology.hosts())
        assert all(entry.src != entry.dst for entry in generator.flows)
