"""Conformance tests for the service-DAG layer (ISSUE 7 tentpole).

The contract under test: a service request is stages of flow tasks with
barrier semantics — stage N+1 must not start before every stage-N flow has
completed (asserted against event timestamps), the request completes when
its slowest final-stage leaf is delivered, deadlines tag SLO misses
(censored requests count as misses), and seeded synthesis is deterministic
(same seed => identical request digest, different seeds => different
arrival order).

The latency hand-computation is compositional and bit-exact: a chained
request's completion must equal the finish time of the same flows launched
manually, stage by stage, at the independently-measured barrier times.
"""

from __future__ import annotations

import random

import pytest

from repro.harness.ndp_network import NdpNetwork
from repro.sim import units
from repro.sim.eventlist import EventList
from repro.topology import SingleSwitchTopology
from repro.workloads.openloop import DRAIN, MEASURE, WARMUP
from repro.workloads.services import (
    CoflowShuffleTemplate,
    PartitionAggregateTemplate,
    ReplicationFanoutTemplate,
    ServiceEngine,
    ServiceRequestSpec,
    TaskSpec,
    partition_aggregate_stages,
    replication_stages,
    shuffle_stages,
    synthesize_requests,
    window_of,
)

MS = units.milliseconds(1)


def _ndp_network(hosts: int = 10, seed: int = 1):
    eventlist = EventList()
    topology = SingleSwitchTopology(eventlist, hosts=hosts)
    return eventlist, NdpNetwork(topology, seed=seed)


def _run_one(spec: ServiceRequestSpec, hosts: int = 10, horizon_ps: int = 50 * MS):
    eventlist, network = _ndp_network(hosts)
    engine = ServiceEngine(eventlist, network)
    run = engine.submit(spec)
    engine.run_until(horizon_ps)
    return engine, run


class TestSpecs:
    def test_task_validation(self):
        with pytest.raises(ValueError):
            TaskSpec(src=1, dst=1, size_bytes=100)
        with pytest.raises(ValueError):
            TaskSpec(src=1, dst=2, size_bytes=0)

    def test_request_validation(self):
        task = TaskSpec(0, 1, 100)
        with pytest.raises(ValueError):
            ServiceRequestSpec(0, "t", arrival_ps=0, stages=())
        with pytest.raises(ValueError):
            ServiceRequestSpec(0, "t", arrival_ps=0, stages=((task,), ()))
        with pytest.raises(ValueError):
            ServiceRequestSpec(0, "t", arrival_ps=-1, stages=((task,),))
        with pytest.raises(ValueError):
            ServiceRequestSpec(0, "t", arrival_ps=0, stages=((task,),), deadline_ps=0)

    def test_totals(self):
        spec = ServiceRequestSpec(
            0, "t", 0,
            stages=((TaskSpec(0, 1, 100), TaskSpec(0, 2, 200)), (TaskSpec(2, 0, 50),)),
        )
        assert spec.total_bytes() == 350
        assert spec.task_count() == 3

    def test_partition_aggregate_builder_flat(self):
        stages = partition_aggregate_stages(0, [1, 2, 3], 1_000, 9_000)
        assert len(stages) == 2
        assert [t.dst for t in stages[0]] == [1, 2, 3]  # scatter
        assert all(t.src == 0 and t.size_bytes == 1_000 for t in stages[0])
        assert all(t.dst == 0 and t.size_bytes == 9_000 for t in stages[1])  # gather

    def test_partition_aggregate_builder_two_level(self):
        stages = partition_aggregate_stages(
            0, [3, 4, 5, 6], 1_000, 9_000, aggregators=[1, 2]
        )
        assert len(stages) == 4
        assert {t.dst for t in stages[0]} == {1, 2}  # frontend -> aggregators
        assert {t.dst for t in stages[1]} == {3, 4, 5, 6}  # aggregators -> leaves
        assert {t.src for t in stages[2]} == {3, 4, 5, 6}  # leaves respond
        assert {(t.src, t.dst) for t in stages[3]} == {(1, 0), (2, 0)}

    def test_shuffle_builder(self):
        stages = shuffle_stages([0, 1], [2, 3], 5_000, rounds=3)
        assert len(stages) == 3
        assert len(stages[0]) == 4  # full bipartite
        assert all(t.src in (0, 1) and t.dst in (2, 3) for t in stages[0])
        assert all(t.src in (2, 3) and t.dst in (0, 1) for t in stages[1])  # reversed
        assert all(t.src in (0, 1) for t in stages[2])
        with pytest.raises(ValueError):
            shuffle_stages([0, 1], [1, 2], 5_000)  # overlapping groups

    def test_replication_builder(self):
        (stage,) = replication_stages(7, [1, 2, 3], 4_000)
        assert {(t.src, t.dst) for t in stage} == {(7, 1), (7, 2), (7, 3)}

    def test_template_validation_and_sizing(self):
        template = PartitionAggregateTemplate(4, 1_000, 9_000)
        assert template.min_hosts() == 5
        assert template.mean_request_bytes() == 4 * 10_000
        shuffle = CoflowShuffleTemplate(3, 5_000, rounds=2)
        assert shuffle.min_hosts() == 6
        assert shuffle.mean_request_bytes() == 9 * 5_000 * 2
        replication = ReplicationFanoutTemplate(3, 4_000)
        assert replication.min_hosts() == 4
        with pytest.raises(ValueError):
            PartitionAggregateTemplate(0, 1_000, 9_000)
        with pytest.raises(ValueError):
            CoflowShuffleTemplate(2, 0)
        with pytest.raises(ValueError):
            template.build(random.Random(1), hosts=[0, 1, 2])  # too few hosts


class TestDagSemantics:
    def test_barriers_hold_against_event_timestamps(self):
        """No stage-N+1 flow may start before every stage-N flow finished."""
        spec = ServiceRequestSpec(
            0, "partition_aggregate", arrival_ps=0,
            stages=partition_aggregate_stages(
                0, [3, 4, 5, 6], 2_000, 90_000, aggregators=[1, 2]
            ),
        )
        engine, run = _run_one(spec)
        assert run.completed
        assert len(run.tasks) == 4
        for earlier, later in zip(run.tasks, run.tasks[1:]):
            last_finish = max(t.record.finish_time_ps for t in earlier)
            first_start = min(t.record.start_time_ps for t in later)
            assert first_start >= last_finish
        # the engine's stage bookkeeping agrees with the record timestamps:
        # each stage launches exactly at the previous stage's barrier event
        assert run.stage_start_ps[1:] == run.stage_done_ps[:-1]
        for done, stage in zip(run.stage_done_ps, run.tasks):
            assert done >= max(t.record.finish_time_ps for t in stage)

    def test_two_level_tree_latency_decomposition(self):
        """Request FCT == time to the slowest leaf + the aggregation stage."""
        spec = ServiceRequestSpec(
            0, "partition_aggregate", arrival_ps=0,
            stages=partition_aggregate_stages(
                0, [3, 4, 5, 6], 2_000, 90_000, aggregators=[1, 2]
            ),
        )
        engine, run = _run_one(spec)
        assert run.completed
        # the slowest leaf response gates the aggregation stage...
        leaf_barrier = run.stage_done_ps[2]
        assert leaf_barrier >= max(t.record.finish_time_ps for t in run.tasks[2])
        assert run.stage_start_ps[3] == leaf_barrier
        # ...and the request completes when the slowest aggregator delivers
        assert run.completion_ps == max(t.record.finish_time_ps for t in run.tasks[3])
        assert run.completion_ps == run.slowest_leaf_ps()
        assert run.latency_ps == (leaf_barrier - spec.arrival_ps) + (
            run.completion_ps - leaf_barrier
        )

    def test_chain_latency_matches_manual_stage_by_stage_execution(self):
        """Bit-exact hand-composition: the engine's completion time equals
        the same flows launched manually at independently measured barriers.

        Disjoint host pairs per stage keep the flows contention-free, and
        creating flows in the same order keeps the network's seeded path
        draws identical — so the times must match exactly, not roughly.
        """
        sizes = (180_000, 45_000)
        # manual run: launch stage 0, note its completion callback time,
        # launch stage 1 there by scheduled event, note its finish
        eventlist, network = _ndp_network()
        barrier: list = []
        finish: list = []
        network.create_flow(
            0, 1, sizes[0], start_time_ps=0,
            on_complete=lambda _s: barrier.append(eventlist.now()),
        )
        eventlist.run(until=50 * MS)
        assert barrier, "stage-0 flow never completed"

        eventlist, network = _ndp_network()
        network.create_flow(
            0, 1, sizes[0], start_time_ps=0,
            on_complete=lambda _s: None,
        )
        second = network.create_flow(
            2, 3, sizes[1], start_time_ps=barrier[0],
            on_complete=lambda _s: finish.append(eventlist.now()),
        )
        eventlist.run(until=50 * MS)
        assert finish and second.record.completed

        # engine run: the same two tasks as a two-stage chain
        spec = ServiceRequestSpec(
            0, "chain", arrival_ps=0,
            stages=((TaskSpec(0, 1, sizes[0]),), (TaskSpec(2, 3, sizes[1]),)),
        )
        engine, run = _run_one(spec)
        assert run.completed
        assert run.stage_start_ps[1] == barrier[0]
        assert run.completion_ps == second.record.finish_time_ps

    def test_slowest_leaf_wins(self):
        """Completion is the max over final-stage deliveries, not the first."""
        spec = ServiceRequestSpec(
            0, "fanout", arrival_ps=0,
            stages=((TaskSpec(0, 1, 3_000), TaskSpec(2, 3, 900_000)),),
        )
        engine, run = _run_one(spec)
        finishes = sorted(t.record.finish_time_ps for t in run.tasks[0])
        assert finishes[0] < finishes[1]
        assert run.completion_ps == finishes[1]

    def test_submit_in_the_past_is_rejected(self):
        eventlist, network = _ndp_network()
        engine = ServiceEngine(eventlist, network)
        engine.submit(
            ServiceRequestSpec(0, "t", MS, ((TaskSpec(0, 1, 1_000),),))
        )
        engine.run_until(5 * MS)
        with pytest.raises(ValueError):
            engine.submit(
                ServiceRequestSpec(1, "t", MS, ((TaskSpec(2, 3, 1_000),),))
            )


class TestDeadlines:
    def test_deadline_accounting(self):
        tight = ServiceRequestSpec(
            0, "t", 0, ((TaskSpec(0, 1, 90_000),),), deadline_ps=1
        )
        engine, run = _run_one(tight)
        assert run.completed and run.deadline_met is False

        generous = ServiceRequestSpec(
            0, "t", 0, ((TaskSpec(0, 1, 90_000),),), deadline_ps=40 * MS
        )
        engine, run = _run_one(generous)
        assert run.completed and run.deadline_met is True

    def test_censored_request_is_a_miss(self):
        spec = ServiceRequestSpec(
            0, "t", 0, ((TaskSpec(0, 1, 50_000_000),),), deadline_ps=10 * MS
        )
        engine, run = _run_one(spec, horizon_ps=units.microseconds(100))
        assert not run.completed
        assert run.latency_ps is None
        assert run.deadline_met is False

    def test_no_deadline_means_no_verdict(self):
        spec = ServiceRequestSpec(0, "t", 0, ((TaskSpec(0, 1, 9_000),),))
        engine, run = _run_one(spec)
        assert run.completed and run.deadline_met is None


class TestSynthesisDeterminism:
    HOSTS = list(range(10))
    TEMPLATE = PartitionAggregateTemplate(4, 2_000, 30_000)

    def _synthesize(self, seed: int):
        return synthesize_requests(
            self.HOSTS, [self.TEMPLATE], target_load=0.2,
            link_rate_bps=units.DEFAULT_LINK_RATE_BPS,
            warmup_ps=units.microseconds(100),
            measure_ps=units.microseconds(400),
            drain_ps=units.microseconds(200),
            rng=random.Random(seed),
            deadline_ps=2 * MS,
        )

    def test_same_seed_identical_specs_and_request_digest(self):
        first, second = self._synthesize(7), self._synthesize(7)
        assert first == second and len(first) > 2

        digests = []
        for specs in (first, second):
            eventlist, network = _ndp_network()
            engine = ServiceEngine(eventlist, network)
            engine.submit_all(specs)
            engine.run_until(10 * MS)
            digests.append(engine.request_digest())
        assert digests[0] == digests[1]

    def test_different_seed_different_arrival_order(self):
        base, other = self._synthesize(7), self._synthesize(8)
        assert [s.arrival_ps for s in base] != [s.arrival_ps for s in other]

    def test_window_tagging(self):
        warmup, measure = units.microseconds(100), units.microseconds(400)
        assert window_of(0, warmup, measure) == WARMUP
        assert window_of(warmup - 1, warmup, measure) == WARMUP
        assert window_of(warmup, warmup, measure) == MEASURE
        assert window_of(warmup + measure - 1, warmup, measure) == MEASURE
        assert window_of(warmup + measure, warmup, measure) == DRAIN

    def test_synthesis_validation(self):
        good = dict(
            hosts=self.HOSTS, templates=[self.TEMPLATE], target_load=0.2,
            link_rate_bps=units.DEFAULT_LINK_RATE_BPS,
            warmup_ps=0, measure_ps=units.microseconds(100), drain_ps=0,
            rng=random.Random(1),
        )
        with pytest.raises(ValueError):
            synthesize_requests(**dict(good, target_load=0.0))
        with pytest.raises(ValueError):
            synthesize_requests(**dict(good, templates=[]))
        with pytest.raises(ValueError):
            synthesize_requests(**dict(good, measure_ps=0))
        with pytest.raises(ValueError):
            synthesize_requests(**dict(good, hosts=[0, 1]))  # fanout needs 5

    def test_max_requests_cap(self):
        specs = synthesize_requests(
            self.HOSTS, [self.TEMPLATE], target_load=0.5,
            link_rate_bps=units.DEFAULT_LINK_RATE_BPS,
            warmup_ps=0, measure_ps=MS, drain_ps=0,
            rng=random.Random(1), max_requests=3,
        )
        assert len(specs) == 3
        assert [s.request_id for s in specs] == [0, 1, 2]
