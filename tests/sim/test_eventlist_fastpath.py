"""Tests for the hybrid-scheduler additions: Timer, raw entries, eviction.

The classic ``EventList`` semantics (ordering, ties, run control) are covered
by ``test_eventlist.py``; this module exercises the APIs added by the
fast-path rework and the invariants the rework must preserve.
"""

from __future__ import annotations

import pytest

from repro.sim.eventlist import (
    _WHEEL_SHIFT,
    _WHEEL_SLOTS,
    EventList,
    Timer,
)

#: one wheel slot / beyond-the-horizon delays, derived so the tests keep
#: working if the tuning constants change
SLOT = 1 << _WHEEL_SHIFT
HORIZON = SLOT * _WHEEL_SLOTS


class TestTimer:
    def test_timer_fires_at_scheduled_time(self, eventlist):
        fired = []
        timer = eventlist.new_timer(lambda: fired.append(eventlist.now()))
        timer.schedule_at(1000)
        eventlist.run()
        assert fired == [1000]
        assert not timer.armed

    def test_timer_args_passed(self, eventlist):
        fired = []
        timer = eventlist.new_timer(fired.append, "payload")
        timer.schedule_in(5)
        eventlist.run()
        assert fired == ["payload"]

    def test_cancel_prevents_fire(self, eventlist):
        fired = []
        timer = eventlist.new_timer(fired.append, 1)
        timer.schedule_at(10)
        timer.cancel()
        eventlist.run()
        assert fired == []
        assert not timer.armed

    def test_reschedule_supersedes_previous_arm(self, eventlist):
        fired = []
        timer = eventlist.new_timer(lambda: fired.append(eventlist.now()))
        timer.schedule_at(10)
        timer.schedule_at(30)  # supersedes; must NOT fire at 10
        eventlist.run()
        assert fired == [30]

    def test_reschedule_earlier_works(self, eventlist):
        fired = []
        timer = eventlist.new_timer(lambda: fired.append(eventlist.now()))
        timer.schedule_at(100)
        timer.schedule_at(20)
        eventlist.run()
        assert fired == [20]

    def test_timer_is_reusable_after_firing(self, eventlist):
        fired = []
        timer = eventlist.new_timer(lambda: fired.append(eventlist.now()))
        timer.schedule_at(10)
        eventlist.run()
        timer.schedule_at(50)
        eventlist.run()
        assert fired == [10, 50]

    def test_scheduling_in_past_raises(self, eventlist):
        eventlist.schedule(100, lambda: None)
        eventlist.run()
        timer = eventlist.new_timer(lambda: None)
        with pytest.raises(ValueError):
            timer.schedule_at(50)

    def test_cancel_when_idle_is_noop(self, eventlist):
        timer = eventlist.new_timer(lambda: None)
        timer.cancel()  # never armed
        assert not timer.armed


class TestRawEntries:
    def test_schedule_raw_runs_in_order_with_events(self, eventlist):
        order = []
        eventlist.schedule(20, order.append, "event")
        eventlist.schedule_raw(10, order.append, ("raw-early",))
        eventlist.schedule_raw_in(30, order.append, ("raw-late",))
        eventlist.run()
        assert order == ["raw-early", "event", "raw-late"]

    def test_raw_past_raises(self, eventlist):
        eventlist.schedule(10, lambda: None)
        eventlist.run()
        with pytest.raises(ValueError):
            eventlist.schedule_raw(5, lambda: None)

    def test_ties_between_raw_and_events_break_by_insertion(self, eventlist):
        order = []
        eventlist.schedule(5, order.append, 1)
        eventlist.schedule_raw(5, order.append, (2,))
        eventlist.schedule(5, order.append, 3)
        eventlist.run()
        assert order == [1, 2, 3]


class TestTiers:
    def test_far_future_events_cross_the_horizon_correctly(self):
        eventlist = EventList()
        order = []
        eventlist.schedule(2 * HORIZON, order.append, "far")
        eventlist.schedule(SLOT // 2, order.append, "near")
        eventlist.schedule(2 * HORIZON + 1, order.append, "far+1")
        eventlist.run()
        assert order == ["near", "far", "far+1"]
        assert eventlist.pending_events() == 0

    def test_same_slot_inserts_during_drain_keep_order(self, eventlist):
        order = []

        def chain(n):
            order.append(n)
            if n < 20:
                # shorter than one slot: lands in the slot being drained
                eventlist.schedule_in(SLOT // 64, chain, n + 1)

        eventlist.schedule(0, chain, 0)
        eventlist.run()
        assert order == list(range(21))

    def test_run_until_mid_slot_then_resume(self, eventlist):
        order = []
        for t in (100, 200, 300, 400):
            eventlist.schedule(t, order.append, t)
        eventlist.run(until=250)
        assert order == [100, 200]
        assert eventlist.pending_events() == 2
        eventlist.run()
        assert order == [100, 200, 300, 400]

    def test_interleaved_timescales(self):
        # mix of sub-slot, multi-slot and beyond-horizon delays
        eventlist = EventList()
        seen = []
        times = [1, SLOT - 1, SLOT + 1, 7 * SLOT, HORIZON - 1, HORIZON + 5, 3 * HORIZON]
        for t in reversed(times):
            eventlist.schedule(t, seen.append, t)
        eventlist.run()
        assert seen == sorted(times)


class TestInlinedInsertParity:
    """The per-packet producers (queues, switch, pipe, Timer) inline the
    EventList._insert tier routing; this exercises the same boundary deltas
    through those producers and checks ordering/accounting parity."""

    def test_boundary_deltas_execute_in_order(self, eventlist):
        order = []
        # deltas around every tier edge: current slot, first future slot,
        # last wheel slot, first far-heap slot, and deep far heap
        deltas = [0, 1, SLOT - 1, SLOT, HORIZON - SLOT, HORIZON - 1, HORIZON, HORIZON + 1]
        for delta in sorted(deltas, reverse=True):
            eventlist.schedule_raw(delta, order.append, (delta,))
        pending = eventlist.pending_events()
        assert pending == len(deltas)
        eventlist.run()
        assert order == sorted(deltas)
        assert eventlist.pending_events() == 0

    def test_queue_and_pipe_produce_identical_ordering_to_insert(self, eventlist):
        # drive a packet through queue -> pipe -> sink while raw control
        # entries straddle the same timestamps; merged order must be global
        from repro.sim.network import CountingSink
        from repro.sim.packet import Packet, Route
        from repro.sim.pipe import Pipe
        from repro.sim.queues import DropTailQueue

        queue = DropTailQueue(eventlist, 10_000_000_000, 1_000_000)
        pipe = Pipe(eventlist, SLOT + 3)  # delivery crosses a slot edge
        sink = CountingSink()
        order = []
        packet = Packet(flow_id=0, src=0, dst=1, size=9000)
        packet.set_route(Route([queue, pipe, sink]))
        ser = queue.serialization_time(9000)
        # markers directly before/after the serialization and delivery times
        for t in (ser - 1, ser + 1, ser + SLOT + 2, ser + SLOT + 4):
            eventlist.schedule_raw(t, order.append, (t,))
        packet.send_to_next_hop()
        eventlist.run()
        assert sink.packets_received == 1
        assert order == [ser - 1, ser + 1, ser + SLOT + 2, ser + SLOT + 4]
        # delivery happened between the 2nd and 3rd marker
        assert eventlist.now() == ser + SLOT + 4


class TestEagerEviction:
    def test_mass_cancellation_is_evicted_before_surfacing(self, eventlist):
        # arm many timers far enough out that they linger, then cancel all:
        # the scheduler must shrink the pending queue without executing them
        timers = [eventlist.new_timer(lambda: None) for _ in range(500)]
        for i, timer in enumerate(timers):
            timer.schedule_at(10 * SLOT + i)
        assert eventlist.pending_events() == 500
        for timer in timers:
            timer.cancel()
        # eager eviction triggers during cancellation once stale entries
        # dominate; no run() needed
        assert eventlist.pending_events() < 500
        fired_before = eventlist.events_executed
        eventlist.run()
        assert eventlist.events_executed == fired_before
        assert eventlist.pending_events() == 0

    def test_cancelled_event_evicted_eventually(self, eventlist):
        events = [eventlist.schedule(5 * SLOT, lambda: None) for _ in range(200)]
        for event in events:
            event.cancel()
        keeper = eventlist.schedule(6 * SLOT, lambda: None)
        eventlist.run()
        assert eventlist.now() == 6 * SLOT
        assert keeper.cancelled is False


class TestPendingAccounting:
    def test_pending_events_counts_live_entries(self, eventlist):
        eventlist.schedule(10, lambda: None)
        eventlist.schedule_raw(20, lambda: None)
        timer = eventlist.new_timer(lambda: None)
        timer.schedule_at(30)
        assert eventlist.pending_events() == 3
        eventlist.run()
        assert eventlist.pending_events() == 0

    def test_events_executed_excludes_cancelled(self, eventlist):
        event = eventlist.schedule(10, lambda: None)
        eventlist.schedule(20, lambda: None)
        event.cancel()
        eventlist.run()
        assert eventlist.events_executed == 1

    def test_run_until_alias(self, eventlist):
        seen = []
        eventlist.schedule(10, seen.append, "a")
        eventlist.schedule(100, seen.append, "b")
        assert eventlist.run_until(50) == 50
        assert seen == ["a"]


class TestShadowTimer:
    """Shadow timers (liveness watchdogs) must never perturb ordinary order."""

    def test_shadow_timer_fires_and_cancels_like_a_timer(self, eventlist):
        fired = []
        timer = eventlist.new_timer(fired.append, "tick", shadow=True)
        timer.schedule_at(100)
        eventlist.run()
        assert fired == ["tick"]
        timer.schedule_at(eventlist.now() + 50)
        timer.cancel()
        eventlist.run()
        assert fired == ["tick"]

    def test_shadow_timer_does_not_consume_ordinary_sequence_numbers(self, eventlist):
        timer = eventlist.new_timer(lambda: None, shadow=True)
        before = eventlist._sequence
        timer.schedule_at(500)
        timer.schedule_at(600)  # re-arm
        timer.cancel()
        assert eventlist._sequence == before

    def test_shadow_entry_loses_timestamp_ties_to_ordinary_entries(self, eventlist):
        order = []
        timer = eventlist.new_timer(order.append, "shadow", shadow=True)
        timer.schedule_at(10)  # armed first...
        eventlist.schedule(10, order.append, "ordinary")
        eventlist.run()
        # ...but ordinary events always win the tie, deterministically
        assert order == ["ordinary", "shadow"]

    def test_arming_shadow_timers_leaves_execution_order_identical(self):
        def run(with_shadow):
            evl = EventList()
            order = []
            evl.schedule(5, order.append, "a")
            if with_shadow:
                watchdog = evl.new_timer(lambda: None, shadow=True)
                watchdog.schedule_at(7)
                watchdog.cancel()
            # same timestamps as the first batch: tie-breaking by sequence
            evl.schedule(5, order.append, "b")
            evl.schedule(7, order.append, "c")
            evl.run()
            return order, evl.events_executed

        assert run(False) == run(True)

    def test_far_heap_and_wheel_paths(self, eventlist):
        fired = []
        timer_near = eventlist.new_timer(fired.append, "near", shadow=True)
        timer_far = eventlist.new_timer(fired.append, "far", shadow=True)
        timer_near.schedule_at(SLOT // 2)
        timer_far.schedule_at(HORIZON + SLOT)
        eventlist.run()
        assert fired == ["near", "far"]
