"""Tests for the base packet and route abstractions."""

from __future__ import annotations

import pytest

from repro.sim.network import CountingSink
from repro.sim.packet import Packet, PacketPriority, Route
from repro.sim.units import HEADER_BYTES


class TestRoute:
    def test_route_preserves_order_and_length(self):
        sinks = [CountingSink(f"s{i}") for i in range(4)]
        route = Route(sinks, path_id=3)
        assert len(route) == 4
        assert list(route) == sinks
        assert route[0] is sinks[0]
        assert route.destination() is sinks[-1]
        assert route.path_id == 3

    def test_extended_appends_without_mutating(self):
        first = CountingSink("a")
        extra = CountingSink("b")
        route = Route([first], path_id=7)
        longer = route.extended(extra)
        assert len(route) == 1
        assert len(longer) == 2
        assert longer.destination() is extra
        assert longer.path_id == 7


class TestPacketForwarding:
    def test_send_to_next_hop_walks_the_route(self):
        sinks = [CountingSink(f"s{i}") for i in range(3)]
        packet = Packet(flow_id=1, src=0, dst=1, size=1500)
        packet.set_route(Route(sinks))
        packet.send_to_next_hop()
        assert sinks[0].packets_received == 1
        assert sinks[1].packets_received == 0
        packet.send_to_next_hop()
        packet.send_to_next_hop()
        assert [s.packets_received for s in sinks] == [1, 1, 1]
        assert packet.remaining_hops() == 0

    def test_running_off_route_raises(self):
        packet = Packet(flow_id=1, src=0, dst=1, size=100)
        packet.set_route(Route([CountingSink()]))
        packet.send_to_next_hop()
        with pytest.raises(RuntimeError):
            packet.send_to_next_hop()

    def test_packet_without_route_raises(self):
        packet = Packet(flow_id=1, src=0, dst=1, size=100)
        with pytest.raises(RuntimeError):
            packet.send_to_next_hop()

    def test_set_route_updates_path_id(self):
        packet = Packet(flow_id=1, src=0, dst=1, size=100)
        packet.set_route(Route([CountingSink()], path_id=9))
        assert packet.path_id == 9


class TestPacketOperations:
    def test_size_must_be_positive(self):
        with pytest.raises(ValueError):
            Packet(flow_id=1, src=0, dst=1, size=0)

    def test_trim_reduces_to_header_and_raises_priority(self):
        packet = Packet(flow_id=1, src=0, dst=1, size=9000)
        assert packet.priority == PacketPriority.LOW
        packet.trim()
        assert packet.size == HEADER_BYTES
        assert packet.original_size == 9000
        assert packet.is_header_only
        assert packet.priority == PacketPriority.HIGH

    def test_double_trim_keeps_original_size(self):
        packet = Packet(flow_id=1, src=0, dst=1, size=9000)
        packet.trim()
        packet.trim()
        assert packet.original_size == 9000
        assert packet.size == HEADER_BYTES

    def test_ecn_mark_requires_capability(self):
        plain = Packet(flow_id=1, src=0, dst=1, size=100)
        plain.mark_ecn()
        assert not plain.ecn_ce
        capable = Packet(flow_id=1, src=0, dst=1, size=100, ecn_capable=True)
        capable.mark_ecn()
        assert capable.ecn_ce

    def test_base_packet_is_not_control(self):
        packet = Packet(flow_id=1, src=0, dst=1, size=100)
        assert not packet.is_control()
