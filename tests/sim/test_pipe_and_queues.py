"""Tests for pipes and the drop-tail / ECN / PFC queue disciplines."""

from __future__ import annotations

import pytest

from repro.sim.eventlist import EventList
from repro.sim.network import CountingSink
from repro.sim.packet import Packet, Route
from repro.sim.pipe import Pipe
from repro.sim.queues import DropTailQueue, ECNQueue, LosslessQueue
from repro.sim.units import gbps, microseconds, serialization_time_ps


def _packet(size=9000, flow=1, ecn=False, seq=0):
    return Packet(flow_id=flow, src=0, dst=1, size=size, seqno=seq, ecn_capable=ecn)


def _send_through(eventlist, elements, packets):
    """Push packets through a route made of *elements* ending in a sink."""
    sink = CountingSink()
    route = Route(list(elements) + [sink])
    for packet in packets:
        packet.set_route(route)
        packet.send_to_next_hop()
    return sink


class TestPipe:
    def test_delivery_is_delayed_by_propagation(self, eventlist):
        pipe = Pipe(eventlist, delay_ps=microseconds(1))
        sink = _send_through(eventlist, [pipe], [_packet()])
        assert sink.packets_received == 0
        eventlist.run()
        assert sink.packets_received == 1
        assert eventlist.now() == microseconds(1)

    def test_pipe_does_not_serialize(self, eventlist):
        # two packets entering together leave together: pipes add latency only
        pipe = Pipe(eventlist, delay_ps=1000)
        sink = _send_through(eventlist, [pipe], [_packet(), _packet()])
        eventlist.run()
        assert sink.packets_received == 2
        assert eventlist.now() == 1000

    def test_negative_delay_rejected(self, eventlist):
        with pytest.raises(ValueError):
            Pipe(eventlist, delay_ps=-1)


class TestDropTailQueue:
    def test_serialization_time_at_line_rate(self, eventlist):
        queue = DropTailQueue(eventlist, gbps(10), 100 * 9000)
        sink = _send_through(eventlist, [queue], [_packet(9000)])
        eventlist.run()
        assert sink.packets_received == 1
        assert eventlist.now() == serialization_time_ps(9000, gbps(10))

    def test_back_to_back_packets_are_serialized_sequentially(self, eventlist):
        queue = DropTailQueue(eventlist, gbps(10), 100 * 9000)
        sink = _send_through(eventlist, [queue], [_packet(9000) for _ in range(5)])
        eventlist.run()
        assert sink.packets_received == 5
        assert eventlist.now() == 5 * serialization_time_ps(9000, gbps(10))

    def test_overflow_drops_arriving_packet(self, eventlist):
        queue = DropTailQueue(eventlist, gbps(10), max_queue_bytes=2 * 9000)
        packets = [_packet(9000, seq=i) for i in range(5)]
        sink = _send_through(eventlist, [queue], packets)
        eventlist.run()
        # one packet enters service immediately, two fit in the buffer
        assert sink.packets_received == 3
        assert queue.stats.packets_dropped == 2
        assert queue.stats.bytes_dropped == 2 * 9000

    def test_forwarded_counters(self, eventlist):
        queue = DropTailQueue(eventlist, gbps(10), 100 * 9000)
        _send_through(eventlist, [queue], [_packet(1500), _packet(9000)])
        eventlist.run()
        assert queue.stats.packets_forwarded == 2
        assert queue.stats.bytes_forwarded == 1500 + 9000

    def test_pause_and_resume(self, eventlist):
        queue = DropTailQueue(eventlist, gbps(10), 100 * 9000)
        queue.pause()
        sink = _send_through(eventlist, [queue], [_packet(9000)])
        eventlist.run()
        assert sink.packets_received == 0
        queue.resume()
        eventlist.run()
        assert sink.packets_received == 1

    def test_invalid_parameters_rejected(self, eventlist):
        with pytest.raises(ValueError):
            DropTailQueue(eventlist, 0, 9000)
        with pytest.raises(ValueError):
            DropTailQueue(eventlist, gbps(10), 0)


class TestECNQueue:
    def test_marks_only_above_threshold(self, eventlist):
        queue = ECNQueue(
            eventlist, gbps(10), max_queue_bytes=100 * 9000, marking_threshold_bytes=3 * 9000
        )
        packets = [_packet(9000, ecn=True, seq=i) for i in range(6)]
        _send_through(eventlist, [queue], packets)
        eventlist.run()
        marked = [p for p in packets if p.ecn_ce]
        # the first packet goes straight into service, so the backlog seen by
        # arrivals is 0,1,2,3,4 packets: only the last two arrivals find more
        # than the 3-packet threshold already queued
        assert len(marked) == 2
        assert queue.stats.packets_marked == 2

    def test_non_ecn_packets_never_marked(self, eventlist):
        queue = ECNQueue(
            eventlist, gbps(10), max_queue_bytes=100 * 9000, marking_threshold_bytes=9000
        )
        packets = [_packet(9000, ecn=False) for _ in range(5)]
        _send_through(eventlist, [queue], packets)
        eventlist.run()
        assert not any(p.ecn_ce for p in packets)
        assert queue.stats.packets_marked == 0

    def test_threshold_must_be_positive(self, eventlist):
        with pytest.raises(ValueError):
            ECNQueue(eventlist, gbps(10), 9000, 0)


class TestLosslessQueue:
    def test_never_drops(self, eventlist):
        queue = LosslessQueue(eventlist, gbps(10), max_queue_bytes=4 * 9000)
        packets = [_packet(9000) for _ in range(20)]
        sink = _send_through(eventlist, [queue], packets)
        eventlist.run()
        assert sink.packets_received == 20
        assert queue.stats.packets_dropped == 0
        assert queue.overflow_events > 0  # we overfilled it on purpose

    def test_pauses_upstream_above_threshold_and_resumes(self, eventlist):
        upstream = DropTailQueue(eventlist, gbps(10), 100 * 9000, name="upstream")
        queue = LosslessQueue(
            eventlist,
            gbps(10),
            max_queue_bytes=10 * 9000,
            pause_threshold_bytes=3 * 9000,
            resume_threshold_bytes=1 * 9000,
        )
        queue.register_upstream(upstream)
        packets = [_packet(9000) for _ in range(6)]
        _send_through(eventlist, [queue], packets)
        assert upstream.paused  # backlog exceeded the pause threshold
        eventlist.run()
        assert not upstream.paused  # resumed once drained
        assert upstream.stats.pause_events >= 1

    def test_ecn_marking_when_configured(self, eventlist):
        queue = LosslessQueue(
            eventlist,
            gbps(10),
            max_queue_bytes=100 * 9000,
            marking_threshold_bytes=2 * 9000,
        )
        packets = [_packet(9000, ecn=True) for _ in range(6)]
        _send_through(eventlist, [queue], packets)
        eventlist.run()
        assert any(p.ecn_ce for p in packets)

    def test_resume_threshold_must_be_below_pause(self, eventlist):
        with pytest.raises(ValueError):
            LosslessQueue(
                eventlist,
                gbps(10),
                max_queue_bytes=9000 * 10,
                pause_threshold_bytes=9000,
                resume_threshold_bytes=9000,
            )


class TestWorkConservation:
    def test_queue_is_work_conserving(self, eventlist):
        """Every admitted byte is eventually forwarded (none lost internally)."""
        queue = DropTailQueue(eventlist, gbps(10), max_queue_bytes=8 * 9000)
        packets = [_packet(9000, seq=i) for i in range(50)]
        sink = _send_through(eventlist, [queue], packets)
        eventlist.run()
        admitted = queue.stats.packets_enqueued
        assert sink.packets_received == admitted
        assert admitted + queue.stats.packets_dropped == 50
