"""Tests for the discrete-event scheduler."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.sim.eventlist import EventList


class TestScheduling:
    def test_events_run_in_time_order(self, eventlist):
        order = []
        eventlist.schedule(30, order.append, "c")
        eventlist.schedule(10, order.append, "a")
        eventlist.schedule(20, order.append, "b")
        eventlist.run()
        assert order == ["a", "b", "c"]

    def test_ties_broken_by_insertion_order(self, eventlist):
        order = []
        eventlist.schedule(5, order.append, 1)
        eventlist.schedule(5, order.append, 2)
        eventlist.schedule(5, order.append, 3)
        eventlist.run()
        assert order == [1, 2, 3]

    def test_now_advances_to_event_time(self, eventlist):
        seen = []
        eventlist.schedule(42, lambda: seen.append(eventlist.now()))
        eventlist.run()
        assert seen == [42]

    def test_schedule_in_is_relative(self, eventlist):
        seen = []
        eventlist.schedule(100, lambda: eventlist.schedule_in(50, seen.append, eventlist.now()))
        eventlist.run()
        # the inner callback records its own scheduling time; it runs at 150
        assert eventlist.now() == 150

    def test_schedule_in_past_raises(self, eventlist):
        eventlist.schedule(10, lambda: None)
        eventlist.run()
        with pytest.raises(ValueError):
            eventlist.schedule(5, lambda: None)

    def test_negative_delay_raises(self, eventlist):
        with pytest.raises(ValueError):
            eventlist.schedule_in(-1, lambda: None)

    def test_events_can_schedule_more_events(self, eventlist):
        order = []

        def chain(n):
            order.append(n)
            if n < 5:
                eventlist.schedule_in(10, chain, n + 1)

        eventlist.schedule(0, chain, 0)
        eventlist.run()
        assert order == [0, 1, 2, 3, 4, 5]
        assert eventlist.now() == 50


class TestRunControl:
    def test_run_until_leaves_later_events_pending(self, eventlist):
        executed = []
        eventlist.schedule(10, executed.append, "early")
        eventlist.schedule(1000, executed.append, "late")
        eventlist.run(until=500)
        assert executed == ["early"]
        assert eventlist.now() == 500
        assert eventlist.pending_events() == 1

    def test_run_until_then_continue(self, eventlist):
        executed = []
        eventlist.schedule(10, executed.append, "a")
        eventlist.schedule(100, executed.append, "b")
        eventlist.run(until=50)
        eventlist.run()
        assert executed == ["a", "b"]

    def test_stop_halts_processing(self, eventlist):
        executed = []
        eventlist.schedule(10, executed.append, "a")
        eventlist.schedule(20, eventlist.stop)
        eventlist.schedule(30, executed.append, "b")
        eventlist.run()
        assert executed == ["a"]
        eventlist.run()
        assert executed == ["a", "b"]

    def test_max_events_limit(self, eventlist):
        for i in range(10):
            eventlist.schedule(i, lambda: None)
        eventlist.run(max_events=3)
        assert eventlist.events_executed == 3
        assert eventlist.pending_events() == 7

    def test_cancelled_events_do_not_run(self, eventlist):
        executed = []
        event = eventlist.schedule(10, executed.append, "cancelled")
        eventlist.schedule(20, executed.append, "kept")
        event.cancel()
        eventlist.run()
        assert executed == ["kept"]

    def test_empty_run_returns_current_time(self, eventlist):
        assert eventlist.run() == 0
        assert eventlist.run(until=123) == 123


class TestEventListProperties:
    @given(st.lists(st.integers(min_value=0, max_value=10**9), min_size=1, max_size=200))
    def test_execution_order_is_sorted(self, times):
        eventlist = EventList()
        seen = []
        for t in times:
            eventlist.schedule(t, lambda t=t: seen.append(t))
        eventlist.run()
        assert seen == sorted(times)
        assert eventlist.now() == max(times)

    @given(
        st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=100),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_run_until_executes_exactly_events_before_cutoff(self, times, cutoff):
        eventlist = EventList()
        for t in times:
            eventlist.schedule(t, lambda: None)
        eventlist.run(until=cutoff)
        assert eventlist.events_executed == sum(1 for t in times if t <= cutoff)
