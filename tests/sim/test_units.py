"""Tests for unit conversions and serialization-time arithmetic."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.sim import units


class TestTimeConversions:
    def test_constants_are_consistent(self):
        assert units.SECOND == 1000 * units.MILLISECOND
        assert units.MILLISECOND == 1000 * units.MICROSECOND
        assert units.MICROSECOND == 1000 * units.NANOSECOND
        assert units.NANOSECOND == 1000 * units.PICOSECOND

    def test_conversion_helpers(self):
        assert units.microseconds(1.5) == 1_500_000
        assert units.milliseconds(2) == 2_000_000_000
        assert units.seconds(0.001) == units.milliseconds(1)
        assert units.nanoseconds(1) == 1000

    def test_round_trips(self):
        assert units.to_microseconds(units.microseconds(7.25)) == pytest.approx(7.25)
        assert units.to_milliseconds(units.milliseconds(3)) == pytest.approx(3.0)
        assert units.to_seconds(units.seconds(1.25)) == pytest.approx(1.25)


class TestSerializationTime:
    def test_one_byte_at_10g_is_800ps(self):
        assert units.serialization_time_ps(1, units.gbps(10)) == 800

    def test_jumbo_frame_at_10g_is_7_2us(self):
        # the paper: "each packet takes 7.2us to serialize" for 9KB at 10Gb/s
        assert units.serialization_time_ps(9000, units.gbps(10)) == units.microseconds(7.2)

    def test_1500_byte_at_10g_is_1_2us(self):
        assert units.serialization_time_ps(1500, units.gbps(10)) == units.microseconds(1.2)

    def test_rate_must_be_positive(self):
        with pytest.raises(ValueError):
            units.serialization_time_ps(100, 0)

    def test_bytes_in_time_inverse(self):
        duration = units.serialization_time_ps(9000, units.gbps(10))
        assert units.bytes_in_time(duration, units.gbps(10)) == 9000

    @given(
        st.integers(min_value=1, max_value=10**7),
        st.sampled_from([units.gbps(1), units.gbps(10), units.gbps(40), units.gbps(100)]),
    )
    def test_serialization_scales_linearly(self, size, rate):
        single = units.serialization_time_ps(size, rate)
        double = units.serialization_time_ps(2 * size, rate)
        assert abs(double - 2 * single) <= 1  # rounding tolerance

    @given(st.integers(min_value=1, max_value=10**6))
    def test_faster_links_are_never_slower(self, size):
        slow = units.serialization_time_ps(size, units.gbps(1))
        fast = units.serialization_time_ps(size, units.gbps(10))
        assert fast <= slow


class TestRatesAndSizes:
    def test_rate_helpers(self):
        assert units.gbps(10) == 10_000_000_000
        assert units.mbps(100) == 100_000_000
        assert units.DEFAULT_LINK_RATE_BPS == units.gbps(10)

    def test_size_constants(self):
        assert units.JUMBO_MTU_BYTES == 9000
        assert units.ETHERNET_MTU_BYTES == 1500
        assert units.HEADER_BYTES == 64
