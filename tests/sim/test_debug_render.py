"""Debug renderers versus flyweight packets.

``Event.__repr__`` / ``Timer.__repr__`` and
:func:`repro.sim.logger.describe_packet` are the places a packet gets
rendered *outside* the protocol hot path — post-mortems, assertion
messages, log lines.  With the slot pool recycling facades, any of these
can legitimately be handed a packet whose slot has since been freed (and
possibly re-lived or debug-poisoned); none of them may read field values
through such a stale handle.
"""

from __future__ import annotations

from repro.core.packets import NdpDataPacket
from repro.sim.eventlist import Event, EventList, Timer
from repro.sim.logger import describe_packet
from repro.sim.packet import Packet, PacketPriority
from repro.sim.pool import PacketPool


def _pooled_data(pool: PacketPool, seqno: int = 5) -> NdpDataPacket:
    packet = pool.get(NdpDataPacket)
    packet.flow_id = 9
    packet.src = 0
    packet.dst = 1
    packet.size = 9000
    packet.original_size = 9000
    packet.seqno = seqno
    packet.route = None
    packet.hop = 2
    packet.priority = PacketPriority.LOW
    packet.is_header_only = False
    packet.bounced = False
    packet.ecn_capable = False
    packet.ecn_ce = False
    packet.path_id = 0
    packet.send_time = 0
    return packet


class TestDescribePacket:
    def test_live_pooled_packet_renders_through_facade(self):
        pool = PacketPool()
        packet = _pooled_data(pool, seqno=5)
        text = describe_packet(packet)
        assert "flow=9" in text and "seq=5" in text and "FREED" not in text

    def test_unpooled_packet_renders_through_facade(self):
        packet = Packet(flow_id=2, src=0, dst=1, size=1500, seqno=3)
        text = describe_packet(packet)
        assert "flow=2" in text and "seq=3" in text

    def test_freed_packet_renders_audit_columns_not_attributes(self):
        pool = PacketPool(debug=True)  # poison on free: attribute reads lie
        packet = _pooled_data(pool, seqno=77)
        packet.release()
        text = describe_packet(packet)
        # the poisoned facade says seqno == -1; the audit columns keep the
        # real last on-wire state
        assert "FREED" in text and "seq=77" in text and "9000B" in text
        assert packet.seqno == -1  # the facade really is poisoned

    def test_freed_trimmed_packet_reports_header_flag(self):
        pool = PacketPool()
        packet = _pooled_data(pool)
        packet.trim(64)
        packet.release()
        text = describe_packet(packet)
        assert "64B hdr" in text


class TestSchedulerReprs:
    def test_event_repr_with_freed_packet_arg(self):
        pool = PacketPool()
        packet = _pooled_data(pool, seqno=13)
        eventlist = EventList()
        event = eventlist.schedule(50, lambda p: None, packet)
        packet.release()
        text = repr(event)
        assert "freed slot" in text and "13" not in text
        assert "pending" in text

    def test_event_repr_states(self):
        eventlist = EventList()
        event = eventlist.schedule(10, lambda: None)
        assert "pending" in repr(event)
        event.cancel()
        assert "cancelled" in repr(event)

    def test_timer_repr_with_freed_packet_arg(self):
        pool = PacketPool()
        packet = _pooled_data(pool, seqno=21)
        eventlist = EventList()
        timer = Timer(eventlist, lambda p: None, packet)
        timer.schedule_at(100)
        packet.release()
        text = repr(timer)
        assert "freed slot" in text and "armed@100" in text
        timer.cancel()
        assert "idle" in repr(timer)
