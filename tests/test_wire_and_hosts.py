"""Tests for the wire codec, the host models and routing helpers."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, strategies as st

from repro.core.packets import NdpAck, NdpDataPacket, NdpNack, NdpPull
from repro.hosts.processing import (
    HostProcessingModel,
    JitteredPullPacer,
    PullSpacingJitter,
    RpcStackModel,
)
from repro.routing import EcmpFlowSelector, RandomPacketSelector, ecmp_path, flow_hash
from repro.sim import units
from repro.sim.eventlist import EventList
from repro.sim.network import CountingSink
from repro.sim.packet import Packet, Route
from repro.wire import (
    HEADER_LENGTH,
    NdpHeader,
    NdpPacketType,
    NdpWireError,
    decode_header,
    encode_header,
    header_from_packet,
    internet_checksum,
)


class TestWireCodec:
    def test_header_length_is_24_bytes(self):
        assert HEADER_LENGTH == 24

    def test_roundtrip_basic(self):
        header = NdpHeader(
            packet_type=NdpPacketType.DATA,
            flow_id=7,
            seqno=123,
            path_id=3,
            payload_length=8936,
            syn=True,
            last=False,
        )
        assert decode_header(encode_header(header)) == header

    def test_all_flags_roundtrip(self):
        header = NdpHeader(
            packet_type=NdpPacketType.DATA,
            flow_id=1,
            seqno=2,
            syn=True,
            last=True,
            trimmed=True,
            bounced=True,
        )
        decoded = decode_header(encode_header(header))
        assert decoded.syn and decoded.last and decoded.trimmed and decoded.bounced

    def test_bad_magic_rejected(self):
        data = bytearray(encode_header(NdpHeader(NdpPacketType.ACK, 1, 2)))
        data[0] = 0x00
        with pytest.raises(NdpWireError):
            decode_header(bytes(data))

    def test_corrupted_header_fails_checksum(self):
        data = bytearray(encode_header(NdpHeader(NdpPacketType.ACK, 1, 2)))
        data[9] ^= 0xFF  # flip bits in the flow id
        with pytest.raises(NdpWireError):
            decode_header(bytes(data))

    def test_truncated_header_rejected(self):
        with pytest.raises(NdpWireError):
            decode_header(b"\x4e\x01")

    def test_out_of_range_fields_rejected(self):
        with pytest.raises(NdpWireError):
            NdpHeader(NdpPacketType.DATA, flow_id=2**32, seqno=0)
        with pytest.raises(NdpWireError):
            NdpHeader(NdpPacketType.DATA, flow_id=0, seqno=0, payload_length=70_000)

    def test_checksum_of_zero_block(self):
        assert internet_checksum(b"\x00" * 8) == 0xFFFF

    def test_header_from_simulator_packets(self):
        data = NdpDataPacket(flow_id=1, src=0, dst=1, seqno=5, payload_bytes=1000, syn=True)
        ack = NdpAck(flow_id=1, src=1, dst=0, seqno=5, data_path_id=2)
        nack = NdpNack(flow_id=1, src=1, dst=0, seqno=6, data_path_id=3)
        pull = NdpPull(flow_id=1, src=1, dst=0, pull_counter=9)
        assert header_from_packet(data).packet_type == NdpPacketType.DATA
        assert header_from_packet(data).payload_length == 1000
        assert header_from_packet(ack).path_id == 2
        assert header_from_packet(nack).packet_type == NdpPacketType.NACK
        assert header_from_packet(pull).pull_counter == 9

    def test_trimmed_packet_encodes_zero_payload(self):
        data = NdpDataPacket(flow_id=1, src=0, dst=1, seqno=5, payload_bytes=8936)
        data.trim()
        header = header_from_packet(data)
        assert header.trimmed
        assert header.payload_length == 0

    def test_unknown_packet_type_rejected(self):
        with pytest.raises(NdpWireError):
            header_from_packet(Packet(flow_id=1, src=0, dst=1, size=100))

    @given(
        st.sampled_from(list(NdpPacketType)),
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=0, max_value=2**16 - 1),
        st.integers(min_value=0, max_value=2**16 - 1),
        st.booleans(),
        st.booleans(),
        st.booleans(),
        st.booleans(),
    )
    def test_roundtrip_property(
        self, ptype, flow_id, seqno, pull, path_id, payload, syn, last, trimmed, bounced
    ):
        header = NdpHeader(
            packet_type=ptype,
            flow_id=flow_id,
            seqno=seqno,
            pull_counter=pull,
            path_id=path_id,
            payload_length=payload,
            syn=syn,
            last=last,
            trimmed=trimmed,
            bounced=bounced,
        )
        encoded = encode_header(header)
        assert len(encoded) == HEADER_LENGTH
        assert decode_header(encoded) == header

    @given(st.binary(min_size=HEADER_LENGTH, max_size=HEADER_LENGTH))
    def test_random_bytes_never_crash(self, blob):
        try:
            decode_header(blob)
        except NdpWireError:
            pass  # rejection is the expected outcome for random garbage


class TestHostModels:
    def test_dpdk_model_has_no_sleep_penalty(self):
        model = HostProcessingModel.ndp_dpdk()
        rng = random.Random(1)
        samples = [model.sample(rng) for _ in range(200)]
        # no interrupt / sleep-state spikes: all samples stay near the ~28 us
        # protocol+application processing cost
        assert max(samples) < units.microseconds(40)
        assert max(samples) - min(samples) < units.microseconds(15)

    def test_kernel_model_shows_sleep_spikes(self):
        model = HostProcessingModel.kernel_tcp(deep_sleep=True)
        rng = random.Random(2)
        samples = [model.sample(rng) for _ in range(200)]
        assert max(samples) > units.microseconds(150)
        no_sleep = HostProcessingModel.kernel_tcp(deep_sleep=False)
        samples_awake = [no_sleep.sample(rng) for _ in range(200)]
        assert max(samples_awake) < units.microseconds(100)

    def test_validation(self):
        with pytest.raises(ValueError):
            HostProcessingModel(sleep_wake_probability=1.5)
        with pytest.raises(ValueError):
            PullSpacingJitter(sigma=-1)

    def test_rpc_model_orders_the_stacks_like_figure_8(self):
        rng = random.Random(3)
        rtt = units.microseconds(22)  # measured DPDK ping-pong time in §5.1
        ndp = RpcStackModel(HostProcessingModel.ndp_dpdk(), handshake_rtts=0)
        tfo = RpcStackModel(HostProcessingModel.kernel_tfo(), handshake_rtts=0)
        tcp = RpcStackModel(HostProcessingModel.kernel_tcp(), handshake_rtts=1)
        median = lambda xs: sorted(xs)[len(xs) // 2]
        ndp_med = median(ndp.sample_many(rtt, rng, 300))
        tfo_med = median(tfo.sample_many(rtt, rng, 300))
        tcp_med = median(tcp.sample_many(rtt, rng, 300))
        assert ndp_med < tfo_med < tcp_med
        assert tfo_med > 3 * ndp_med  # the paper: TFO is ~4x slower than NDP

    def test_pull_jitter_median_near_target(self):
        jitter = PullSpacingJitter(sigma=0.25, rng=random.Random(4))
        target = units.microseconds(7.2)
        samples = jitter.sample_many(target, 2000)
        samples.sort()
        median = samples[len(samples) // 2]
        assert 0.9 * target < median < 1.1 * target
        assert min(samples) >= 0.2 * target

    def test_jittered_pacer_spacing_varies(self):
        eventlist = EventList()
        pacer = JitteredPullPacer(
            eventlist,
            link_rate_bps=units.gbps(10),
            mtu_bytes=9000,
            jitter=PullSpacingJitter(sigma=0.3, rng=random.Random(5)),
        )

        class FakeSink:
            flow_id = 1
            priority = False
            times = []

            def emit_pull(self):
                FakeSink.times.append(eventlist.now())

        sink = FakeSink()
        for _ in range(20):
            pacer.request_pull(sink)
        eventlist.run()
        gaps = {b - a for a, b in zip(FakeSink.times, FakeSink.times[1:])}
        assert len(gaps) > 3  # not perfectly periodic


class TestRouting:
    def _routes(self, n):
        return [Route([CountingSink(f"p{i}")], path_id=i) for i in range(n)]

    def test_flow_hash_is_stable_and_spreads(self):
        assert flow_hash(1) == flow_hash(1)
        assert flow_hash(1) != flow_hash(2)
        buckets = {flow_hash(i) % 4 for i in range(100)}
        assert buckets == {0, 1, 2, 3}

    def test_ecmp_path_is_deterministic(self):
        routes = self._routes(8)
        assert ecmp_path(routes, 42).path_id == ecmp_path(routes, 42).path_id
        with pytest.raises(ValueError):
            ecmp_path([], 1)

    def test_flow_selector_collisions_exist(self):
        routes = self._routes(4)
        selector = EcmpFlowSelector(routes)
        chosen = [selector.path_for_flow(i).path_id for i in range(32)]
        # with 32 flows over 4 paths there must be collisions (pigeonhole)
        assert len(set(chosen)) <= 4
        assert max(chosen.count(p) for p in set(chosen)) >= 8 - 4

    def test_random_packet_selector_uses_all_paths(self):
        routes = self._routes(4)
        selector = RandomPacketSelector(routes, rng=random.Random(9))
        used = {selector.next_route().path_id for _ in range(200)}
        assert used == {0, 1, 2, 3}

    def test_selector_validation(self):
        with pytest.raises(ValueError):
            EcmpFlowSelector([])
        with pytest.raises(ValueError):
            RandomPacketSelector([])
