"""Determinism conformance for sharded simulation.

The contract under test: for a fixed scenario and seed, the merged global
digest of an N-shard run is **bit-identical** to the single-process
reference — flow-by-flow transmit/receive records and per-switch trim and
bounce counters all included — for every shard count, on both the
degenerate no-boundary topology (independent host pairs) and a real
pod-partitioned k=4 fat-tree where every flow crosses shard boundaries.

These runs fork worker processes; configs are sized to keep each case in
the low seconds while still pushing thousands of events (and, for the
incast cases, trims and return-to-sender bounces) across shard boundaries.
"""

from __future__ import annotations

import pytest

from repro.harness.shard import (
    digest_entries,
    merge_digest,
    run_reference,
    run_sharded,
)

#: fast fat-tree config: ~6k events, ~260 conservative windows at 2 shards
FATTREE_KW = {"flow_size_bytes": 60_000}

#: incast with a shrunken header queue: trims AND bounces on the digest path
INCAST_KW = {
    "pattern": "incast",
    "flows_per_pod": 8,
    "flow_size_bytes": 100_000,
    "stagger_ps": 400_000,
    "header_queue_bytes": 6 * 64,
}

PAIRS_KW = {"pairs": 4, "flows_per_pair": 1, "flow_size_bytes": 200_000}


def _queue_counters(scenario):
    entries = digest_entries(scenario.network, scenario.partition, None)
    trims = sum(e[2] + e[3] for e in entries if e[0] == "queue")
    bounces = sum(e[4] for e in entries if e[0] == "queue")
    return trims, bounces


class TestPairsConformance:
    """Degenerate topology: disjoint cables, zero boundary links."""

    def test_one_shard_matches_reference(self) -> None:
        reference, _scn = run_reference("pairs", seed=3, scenario_kwargs=PAIRS_KW)
        result = run_sharded("pairs", 1, seed=3, scenario_kwargs=PAIRS_KW)
        assert result.digest == reference
        assert result.completed_flows == result.total_flows
        assert result.boundary_packets == 0

    def test_worker_count_invariance(self) -> None:
        reference, _scn = run_reference("pairs", seed=3, scenario_kwargs=PAIRS_KW)
        two = run_sharded("pairs", 2, seed=3, scenario_kwargs=PAIRS_KW)
        four = run_sharded("pairs", 4, seed=3, scenario_kwargs=PAIRS_KW)
        assert two.digest == reference
        assert four.digest == reference
        assert two.events_executed == four.events_executed

    def test_zero_lookahead_runs_single_window(self) -> None:
        result = run_sharded("pairs", 2, seed=3, scenario_kwargs=PAIRS_KW)
        assert result.lookahead_ps == 0
        assert result.windows == 1


class TestFatTreeConformance:
    """Real partition: pod-sharded k=4 fat-tree, all flows cross the core."""

    @pytest.mark.parametrize("seed", [1, 2])
    def test_sharded_matches_reference(self, seed: int) -> None:
        reference, _scn = run_reference("fattree", seed=seed, scenario_kwargs=FATTREE_KW)
        two = run_sharded("fattree", 2, seed=seed, scenario_kwargs=FATTREE_KW)
        four = run_sharded("fattree", 4, seed=seed, scenario_kwargs=FATTREE_KW)
        assert two.digest == reference, "2-shard digest diverged from reference"
        assert four.digest == reference, "4-shard digest diverged from reference"
        # the partition actually cut the traffic: every flow crosses the core
        assert two.boundary_packets > 0
        assert two.windows > 1, "conservative windowing was not exercised"
        assert two.lookahead_ps > 0
        assert two.completed_flows == two.total_flows

    def test_worker_counts_agree_on_event_totals(self) -> None:
        two = run_sharded("fattree", 2, seed=1, scenario_kwargs=FATTREE_KW)
        four = run_sharded("fattree", 4, seed=1, scenario_kwargs=FATTREE_KW)
        assert two.events_executed == four.events_executed
        # final_time_ps is NOT asserted: the clock parks at the last window
        # edge, which depends on the partition's lookahead — the digest is
        # the invariant, not the parked clock.
        assert two.per_shard_digests != four.per_shard_digests

    def test_repeat_run_is_bit_stable(self) -> None:
        first = run_sharded("fattree", 2, seed=2, scenario_kwargs=FATTREE_KW)
        second = run_sharded("fattree", 2, seed=2, scenario_kwargs=FATTREE_KW)
        assert first.digest == second.digest
        assert first.per_shard_digests == second.per_shard_digests

    def test_different_seeds_differ(self) -> None:
        one = run_sharded("fattree", 2, seed=1, scenario_kwargs=FATTREE_KW)
        two = run_sharded("fattree", 2, seed=2, scenario_kwargs=FATTREE_KW)
        assert one.digest != two.digest


class TestIncastConformance:
    """Trims and return-to-sender bounces on the digest path."""

    def test_incast_with_bounces_matches_reference(self) -> None:
        reference, scenario = run_reference(
            "fattree", seed=1, scenario_kwargs=INCAST_KW
        )
        trims, bounces = _queue_counters(scenario)
        assert trims > 0, "incast config no longer trims; digest check is vacuous"
        assert bounces > 0, (
            "incast config no longer bounces headers; the cross-shard "
            "return-to-sender proxy is not on the digest path"
        )
        result = run_sharded("fattree", 2, seed=1, scenario_kwargs=INCAST_KW)
        assert result.digest == reference

    def test_incast_worker_count_invariance(self) -> None:
        two = run_sharded("fattree", 2, seed=2, scenario_kwargs=INCAST_KW)
        four = run_sharded("fattree", 4, seed=2, scenario_kwargs=INCAST_KW)
        assert two.digest == four.digest


class TestDigestMerge:
    def test_merge_is_order_insensitive_input_sorted(self) -> None:
        entries_a = [("flow", 1, "tx", (1, 2, 3)), ("queue", "q0", 5, 1, 0)]
        entries_b = list(reversed(entries_a))
        assert merge_digest(entries_a) == merge_digest(entries_b)

    def test_merge_is_content_sensitive(self) -> None:
        base = [("flow", 1, "tx", (1, 2, 3))]
        changed = [("flow", 1, "tx", (1, 2, 4))]
        assert merge_digest(base) != merge_digest(changed)
