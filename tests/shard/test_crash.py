"""Crash robustness: a dead worker must fail the run loudly, not hang it.

``run_sharded`` exposes fault-injection hooks (`_fail_shard` /
`_fail_window`) that make the chosen worker ``os._exit(1)`` mid-window,
exactly as if it had been OOM-killed.  The driver must detect the dead
process via its sentinel and raise :class:`ShardFailedError` carrying the
shard id and the start timestamp of the window in flight.
"""

from __future__ import annotations

import pytest

from repro.harness.shard import ShardFailedError, run_sharded

FATTREE_KW = {"flow_size_bytes": 60_000}


class TestWorkerCrash:
    def test_crash_mid_window_raises_with_context(self) -> None:
        with pytest.raises(ShardFailedError) as excinfo:
            run_sharded(
                "fattree", 2, seed=1, scenario_kwargs=FATTREE_KW,
                _fail_shard=0, _fail_window=2,
            )
        error = excinfo.value
        assert error.shard_id == 0
        # window 2 starts two lookaheads into the run
        assert error.window_start_ps > 0
        assert "shard 0" in str(error)
        assert "window starting at" in str(error)

    def test_crash_in_other_shard_attributes_correctly(self) -> None:
        with pytest.raises(ShardFailedError) as excinfo:
            run_sharded(
                "fattree", 2, seed=1, scenario_kwargs=FATTREE_KW,
                _fail_shard=1, _fail_window=1,
            )
        assert excinfo.value.shard_id == 1

    def test_crash_during_first_window(self) -> None:
        with pytest.raises(ShardFailedError) as excinfo:
            run_sharded(
                "fattree", 2, seed=1, scenario_kwargs=FATTREE_KW,
                _fail_shard=0, _fail_window=0,
            )
        assert excinfo.value.shard_id == 0

    def test_healthy_run_after_crashed_run(self) -> None:
        """A crashed run leaves no stuck children; the next run is clean."""
        with pytest.raises(ShardFailedError):
            run_sharded(
                "fattree", 2, seed=1, scenario_kwargs=FATTREE_KW,
                _fail_shard=0, _fail_window=1,
            )
        result = run_sharded("fattree", 2, seed=1, scenario_kwargs=FATTREE_KW)
        assert result.completed_flows == result.total_flows
