"""Window-boundary delivery order and the lookahead invariant.

Cross-shard packets arriving at the same picosecond must be scheduled in
an order that no shard count can perturb: the canonical entry key breaks
``(time, ...)`` ties with fields intrinsic to the packet and its boundary
link (flow id, kind, seqno, path id, retransmit flag, hop, per-link
departure sequence), never with anything that depends on which worker
produced the entry.
"""

from __future__ import annotations

import pytest

from repro.sim.eventlist import EventList
from repro.sim.packet import Packet, Route
from repro.sim.shardlink import (
    ShardEgressPipe,
    ShardIngressPipe,
    canonical_entry_key,
)

# marshal layout prefix: (deliver_at, flow_id, kind, seqno, path_id,
#                         is_retransmit, next_hop, link_seq, payload)
KIND_DATA, KIND_ACK, KIND_NACK, KIND_PULL = 0, 1, 2, 3


def entry(deliver_at, flow_id, kind, seqno, path_id=0, rtx=0, hop=1, link_seq=0):
    return (deliver_at, flow_id, kind, seqno, path_id, rtx, hop, link_seq, ())


class TestCanonicalOrder:
    def test_time_dominates(self) -> None:
        early = entry(100, 9, KIND_PULL, 50)
        late = entry(101, 1, KIND_DATA, 0)
        assert sorted([late, early], key=canonical_entry_key) == [early, late]

    def test_exact_time_tie_breaks_on_flow_then_kind_then_seqno(self) -> None:
        t = 7_000
        tie = [
            entry(t, 2, KIND_DATA, 0),
            entry(t, 1, KIND_NACK, 5),
            entry(t, 1, KIND_DATA, 5),
            entry(t, 1, KIND_DATA, 3),
        ]
        ordered = sorted(tie, key=canonical_entry_key)
        assert ordered == [
            entry(t, 1, KIND_DATA, 3),
            entry(t, 1, KIND_DATA, 5),
            entry(t, 1, KIND_NACK, 5),
            entry(t, 2, KIND_DATA, 0),
        ]

    def test_full_tie_breaks_on_link_departure_sequence(self) -> None:
        # identical packet resent on the same path in the same picosecond:
        # only the per-link egress sequence separates them, and it is
        # assigned in serialization order, identically in every execution.
        first = entry(5, 1, KIND_DATA, 7, link_seq=0)
        second = entry(5, 1, KIND_DATA, 7, link_seq=1)
        assert sorted([second, first], key=canonical_entry_key) == [first, second]

    def test_key_ignores_payload(self) -> None:
        a = (5, 1, KIND_DATA, 7, 0, 0, 1, 0, ("payload-a",))
        b = (5, 1, KIND_DATA, 7, 0, 0, 1, 0, ("payload-b",))
        assert canonical_entry_key(a) == canonical_entry_key(b)

    def test_sort_is_deterministic_under_shuffle(self) -> None:
        import random

        entries = [
            entry(t, f, k, s, link_seq=q)
            for t in (10, 11)
            for f in (1, 2)
            for k in (KIND_DATA, KIND_ACK)
            for s in (0, 1)
            for q in (0, 1)
        ]
        baseline = sorted(entries, key=canonical_entry_key)
        rng = random.Random(99)
        for _ in range(20):
            shuffled = entries[:]
            rng.shuffle(shuffled)
            assert sorted(shuffled, key=canonical_entry_key) == baseline


class _RecordingSink:
    def __init__(self) -> None:
        self.received = []
        self.name = "sink"

    def receive_packet(self, packet) -> None:
        self.received.append(packet.seqno)


class TestIngressPipe:
    def test_delivers_at_marshalled_time(self, eventlist: EventList) -> None:
        sink = _RecordingSink()
        ingress = ShardIngressPipe(eventlist)
        packet = Packet(flow_id=1, src=0, dst=1, size=64, seqno=42,
                        route=Route([sink]))
        ingress.deliver(1_000, packet)
        assert packet.hop == 1
        eventlist.run(until=2_000)
        assert sink.received == [42]
        assert eventlist.now() >= 1_000
        assert ingress.packets_delivered == 1

    def test_past_delivery_violates_lookahead(self, eventlist: EventList) -> None:
        sink = _RecordingSink()
        ingress = ShardIngressPipe(eventlist)
        eventlist.schedule_raw_in(5_000, lambda: None, ())
        eventlist.run(until=5_000)
        packet = Packet(flow_id=1, src=0, dst=1, size=64, seqno=0,
                        route=Route([sink]))
        with pytest.raises(RuntimeError, match="lookahead"):
            ingress.deliver(4_999, packet)


class TestEgressPipe:
    def test_captures_instead_of_scheduling(self, eventlist: EventList) -> None:
        captured = []

        def capture(packet, next_hop, deliver_at, link_seq):
            captured.append((packet.seqno, next_hop, deliver_at, link_seq))

        egress = ShardEgressPipe(eventlist, delay_ps=250, capture=capture)
        sink = _RecordingSink()
        for seqno in (1, 2):
            packet = Packet(flow_id=1, src=0, dst=1, size=64, seqno=seqno,
                            route=Route([egress, sink]))
            packet.hop = 1  # as left by the upstream queue's forwarding
            egress.receive_packet(packet)
        # arrival time preserved exactly; link_seq increments per departure
        assert captured == [(1, 1, 250, 0), (2, 1, 250, 1)]
        assert egress.departures == 2
        assert sink.received == []  # nothing was scheduled locally
