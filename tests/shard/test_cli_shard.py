"""The ``shard`` CLI subcommand: argument handling and the reference diff."""

from __future__ import annotations

from repro import cli

FAST = ["--set", "pairs=2", "--set", "flows_per_pair=1",
        "--set", "flow_size_bytes=150000"]


class TestShardSubcommand:
    def test_run_prints_digest_and_summary(self, capsys) -> None:
        code = cli.main(["shard", "pairs", "--shards", "2", *FAST])
        out = capsys.readouterr().out
        assert code == 0
        assert "digest: " in out
        assert "2 shard(s)" in out
        assert "ev/s aggregate" in out
        assert "slowdown[all]" in out

    def test_reference_flag_verifies_digest(self, capsys) -> None:
        code = cli.main(["shard", "pairs", "--shards", "2", "--reference", *FAST])
        out = capsys.readouterr().out
        assert code == 0
        assert "reference digest matches" in out

    def test_unknown_scenario_is_usage_error(self, capsys) -> None:
        code = cli.main(["shard", "nonsense"])
        err = capsys.readouterr().err
        assert code == 2
        assert "scenarios: pairs, fattree" in err

    def test_unknown_parameter_is_usage_error(self, capsys) -> None:
        code = cli.main(["shard", "pairs", "--set", "bogus=1"])
        err = capsys.readouterr().err
        assert code == 2
        assert "unknown parameter(s) for pairs: bogus" in err

    def test_multi_value_set_is_usage_error(self, capsys) -> None:
        code = cli.main(["shard", "pairs", "--set", "pairs=2,4"])
        err = capsys.readouterr().err
        assert code == 2
        assert "single value per --set key" in err

    def test_shard_listed_in_catalogue(self, capsys) -> None:
        assert cli.main(["list"]) == 0
        assert "shard" in capsys.readouterr().out
