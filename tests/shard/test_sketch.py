"""Property tests for the streaming percentile sketch.

Two guarantees are load-bearing for sharded metrics and pinned here with
hypothesis:

* **Rank-error bound** — for any stream, ``quantile(q)`` is within
  relative ``alpha`` of the exact order statistic at rank
  ``int(q * (n - 1))``, the lower interpolation anchor of
  :func:`repro.harness.metrics.percentile` at the same fraction.
* **Exact merge** — ``merge(a, b)`` equals the sketch of the concatenated
  stream (bucket counts are integers, so merging per-shard sketches in any
  order cannot change a reported percentile).
"""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.harness.metrics import (
    binned_slowdown_summary,
    flow_slowdown,
    percentile,
    slowdown_bin,
)
from repro.harness.sketch import QuantileSketch, StreamingSlowdownBins
from repro.sim.logger import FlowRecord

ALPHA = 0.005

#: positive magnitudes spanning nine decades — adversarial for log-bucketing
#: (values straddling bucket boundaries), safe from float overflow
positive_values = st.floats(
    min_value=1e-3, max_value=1e9, allow_nan=False, allow_infinity=False
)
#: streams may also contain exact zeros (the dedicated zero bucket)
stream_values = st.one_of(st.just(0.0), positive_values)

#: integer-valued streams: float addition over them is exact, so merged
#: totals match concatenated-stream totals bit-for-bit
integer_values = st.integers(min_value=0, max_value=2**40).map(float)


def exact_rank_anchor(values, fraction):
    """The order statistic the sketch quantile must approximate."""
    return sorted(values)[int(fraction * (len(values) - 1))]


class TestRankErrorBound:
    @given(
        values=st.lists(stream_values, min_size=1, max_size=400),
        fraction=st.sampled_from([0.0, 0.5, 0.9, 0.99, 0.999, 1.0]),
    )
    @settings(max_examples=200, deadline=None)
    def test_quantile_within_alpha_of_order_statistic(self, values, fraction):
        sketch = QuantileSketch(alpha=ALPHA)
        sketch.extend(values)
        estimate = sketch.quantile(fraction)
        exact = exact_rank_anchor(values, fraction)
        if exact == 0.0:
            assert estimate == 0.0
        else:
            assert abs(estimate - exact) <= ALPHA * exact * (1 + 1e-9)

    @given(values=st.lists(positive_values, min_size=2, max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_median_tracks_metrics_percentile(self, values):
        """Against the production percentile: the sketch's p50 must sit
        within alpha of at least the interpolation anchors around it."""
        sketch = QuantileSketch(alpha=ALPHA)
        sketch.extend(values)
        estimate = sketch.quantile(0.5)
        exact = percentile(values, 0.5)
        ordered = sorted(values)
        low = ordered[int(0.5 * (len(values) - 1))]
        high = ordered[min(int(0.5 * (len(values) - 1)) + 1, len(values) - 1)]
        # interpolated percentile lies in [low, high]; the sketch answers
        # for the lower anchor, so it must be within alpha of that range
        assert low * (1 - ALPHA) <= estimate <= high * (1 + ALPHA)
        assert min(low, exact) * (1 - ALPHA) <= estimate

    def test_adversarial_bucket_boundary_stream(self):
        """Values planted exactly at bucket representatives and boundaries."""
        sketch = QuantileSketch(alpha=ALPHA)
        gamma = (1 + ALPHA) / (1 - ALPHA)
        values = []
        for i in range(-50, 51):
            values.append(gamma ** i)            # bucket boundary
            values.append(2 * gamma ** i / (gamma + 1))  # representative
        sketch.extend(values)
        for fraction in (0.0, 0.25, 0.5, 0.75, 0.99, 1.0):
            exact = exact_rank_anchor(values, fraction)
            assert abs(sketch.quantile(fraction) - exact) <= ALPHA * exact * (1 + 1e-9)

    def test_seeded_lognormal_stream(self):
        rng = random.Random(7)
        values = [math.exp(rng.gauss(1.0, 2.0)) for _ in range(20_000)]
        sketch = QuantileSketch(alpha=ALPHA)
        sketch.extend(values)
        for fraction in (0.5, 0.9, 0.99, 0.999):
            exact = exact_rank_anchor(values, fraction)
            assert abs(sketch.quantile(fraction) - exact) <= ALPHA * exact * (1 + 1e-9)


class TestExactMerge:
    @given(
        left=st.lists(integer_values, max_size=150),
        right=st.lists(integer_values, max_size=150),
    )
    @settings(max_examples=150, deadline=None)
    def test_merge_equals_concatenated_stream(self, left, right):
        merged = QuantileSketch(alpha=ALPHA)
        merged.extend(left)
        other = QuantileSketch(alpha=ALPHA)
        other.extend(right)
        merged.merge(other)

        concatenated = QuantileSketch(alpha=ALPHA)
        concatenated.extend(left + right)
        assert merged == concatenated

    @given(
        parts=st.lists(
            st.lists(stream_values, max_size=60), min_size=2, max_size=5
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_merge_order_never_changes_quantiles(self, parts):
        """Float totals may differ in the last ulp across merge orders, but
        counts, buckets and therefore every quantile are exactly equal."""
        sketches = []
        for part in parts:
            sketch = QuantileSketch(alpha=ALPHA)
            sketch.extend(part)
            sketches.append(sketch)

        forward = QuantileSketch(alpha=ALPHA)
        for sketch in sketches:
            forward.merge(sketch)
        backward = QuantileSketch(alpha=ALPHA)
        for sketch in reversed(sketches):
            backward.merge(sketch)

        assert forward.buckets == backward.buckets
        assert forward.count == backward.count
        assert forward.zero_count == backward.zero_count
        if forward.count:
            for fraction in (0.5, 0.99, 0.999):
                assert forward.quantile(fraction) == backward.quantile(fraction)

    def test_merge_rejects_mismatched_alpha(self):
        with pytest.raises(ValueError, match="alpha"):
            QuantileSketch(alpha=0.005).merge(QuantileSketch(alpha=0.01))


class TestStatefulRoundTrip:
    @given(values=st.lists(stream_values, max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_state_round_trip(self, values):
        sketch = QuantileSketch(alpha=ALPHA)
        sketch.extend(values)
        assert QuantileSketch.from_state(sketch.state()) == sketch

    def test_empty_sketch_raises(self):
        sketch = QuantileSketch()
        with pytest.raises(ValueError):
            sketch.quantile(0.5)
        with pytest.raises(ValueError):
            _ = sketch.mean
        with pytest.raises(ValueError):
            _ = sketch.max

    def test_rejects_negative_values(self):
        with pytest.raises(ValueError, match="non-negative"):
            QuantileSketch().add(-1.0)


def _record(flow_id, size, start, finish):
    record = FlowRecord(flow_id=flow_id, src=0, dst=1, flow_size_bytes=size)
    record.start_time_ps = start
    record.finish_time_ps = finish
    record.bytes_delivered = size
    return record


class TestStreamingSlowdownBins:
    def test_matches_binned_summary_shape_and_counts(self):
        rng = random.Random(3)
        records = []
        for flow_id in range(300):
            size = rng.choice([20_000, 500_000, 3_000_000])
            start = rng.randrange(10**9)
            finish = start + rng.randrange(10**7, 10**9)
            records.append(_record(flow_id, size, start, finish))

        link_rate, mtu, header = 10**10, 9000, 64
        exact = binned_slowdown_summary(records, link_rate, mtu, header)
        streaming = StreamingSlowdownBins()
        samples = {label: [] for label in exact}
        for record in records:
            assert streaming.add_record(record, link_rate, mtu, header)
            value = flow_slowdown(record, link_rate, mtu, header)
            samples["all"].append(value)
            samples[slowdown_bin(record.flow_size_bytes)].append(value)
        sketched = streaming.summary()

        assert set(sketched) == set(exact)
        for label, stats in exact.items():
            assert sketched[label]["count"] == stats["count"]
            if stats["count"] == 0:
                assert sketched[label] == {"count": 0}
                continue
            assert sketched[label]["mean"] == pytest.approx(stats["mean"])
            assert sketched[label]["max"] == stats["max"]
            for key, fraction in (("p50", 0.5), ("p99", 0.99), ("p999", 0.999)):
                # the sketch answers for the lower interpolation anchor of
                # the production percentile, within relative alpha
                anchor = exact_rank_anchor(samples[label], fraction)
                assert sketched[label][key] == pytest.approx(
                    anchor, rel=ALPHA * (1 + 1e-9)
                )

    def test_incomplete_flow_not_counted(self):
        streaming = StreamingSlowdownBins()
        record = FlowRecord(flow_id=1, src=0, dst=1, flow_size_bytes=100)
        assert not streaming.add_record(record, 10**10, 9000, 64)
        assert streaming.summary()["all"] == {"count": 0}

    def test_merge_matches_single_stream(self):
        rng = random.Random(11)
        samples = [
            (rng.choice([10_000, 800_000]), rng.uniform(1.0, 40.0))
            for _ in range(500)
        ]
        whole = StreamingSlowdownBins()
        left, right = StreamingSlowdownBins(), StreamingSlowdownBins()
        for index, (size, slowdown) in enumerate(samples):
            whole.add(size, slowdown)
            (left if index % 2 else right).add(size, slowdown)
        left.merge(right)
        whole_summary, merged_summary = whole.summary(), left.summary()
        for label in whole_summary:
            if whole_summary[label]["count"] == 0:
                assert merged_summary[label] == {"count": 0}
                continue
            for key in ("count", "p50", "p99", "p999", "max"):
                assert merged_summary[label][key] == whole_summary[label][key]

    def test_state_round_trip(self):
        streaming = StreamingSlowdownBins()
        streaming.add(10_000, 2.5)
        streaming.add(2_000_000, 7.0)
        restored = StreamingSlowdownBins.from_state(streaming.state())
        assert restored.summary() == streaming.summary()
