"""Unit tests for topology partitioning (`repro.topology.partition`)."""

from __future__ import annotations

import pytest

from repro.sim.eventlist import EventList
from repro.topology.fattree import FatTreeTopology
from repro.topology.partition import (
    ShardPartition,
    boundary_links,
    min_boundary_delay_ps,
    partition_fattree,
    partition_pairs,
    partition_topology,
)
from repro.topology.simple import BackToBackTopology, IndependentPairsTopology


class TestFatTreePartition:
    def test_contiguous_pod_blocks(self) -> None:
        topology = FatTreeTopology(EventList(), k=4)
        partition = partition_fattree(topology, 2)
        # k=4: 4 pods, 4 hosts/pod -> shard 0 owns hosts 0..7, shard 1 owns 8..15
        for host in range(topology.host_count):
            expected = 0 if host < 8 else 1
            assert partition.owner_of_host(host) == expected
            assert partition.owner_of_node(topology.host_name(host)) == expected

    def test_every_node_assigned(self) -> None:
        topology = FatTreeTopology(EventList(), k=4)
        partition = partition_fattree(topology, 4)
        nodes = set()
        for src, dst in topology.links:
            nodes.add(src)
            nodes.add(dst)
        for node in nodes:
            assert partition.owner_of_node(node) in range(4)

    def test_pod_switches_follow_their_pod(self) -> None:
        topology = FatTreeTopology(EventList(), k=4)
        partition = partition_fattree(topology, 4)
        for pod in range(topology.pods):
            for tor in range(topology.tors_per_pod):
                assert partition.owner_of_node(topology._tor_name(pod, tor)) == pod
            for agg in range(topology.aggs_per_pod):
                assert partition.owner_of_node(topology._agg_name(pod, agg)) == pod

    def test_shards_must_divide_pods(self) -> None:
        topology = FatTreeTopology(EventList(), k=4)
        with pytest.raises(ValueError, match="divide"):
            partition_fattree(topology, 3)

    def test_boundary_links_are_agg_core_only(self) -> None:
        topology = FatTreeTopology(EventList(), k=4)
        partition = partition_fattree(topology, 2)
        boundary = boundary_links(topology, partition)
        assert boundary, "a pod partition of a fat-tree must cut some links"
        for (src, dst), _record in boundary:
            assert src.startswith("core") or dst.startswith("core"), (
                f"unexpected boundary link {src}->{dst}"
            )
            assert "agg" in src or "agg" in dst, (
                f"boundary link {src}->{dst} does not touch an aggregation tier"
            )

    def test_boundary_is_symmetric(self) -> None:
        topology = FatTreeTopology(EventList(), k=4)
        partition = partition_fattree(topology, 2)
        keys = {key for key, _record in boundary_links(topology, partition)}
        assert keys == {(dst, src) for src, dst in keys}


class TestPairsPartition:
    def test_round_robin_keeps_pairs_whole(self) -> None:
        topology = IndependentPairsTopology(EventList(), pairs=5)
        partition = partition_pairs(topology, 2)
        for pair in range(5):
            left = partition.owner_of_host(2 * pair)
            right = partition.owner_of_host(2 * pair + 1)
            assert left == right == pair % 2

    def test_no_boundary_links(self) -> None:
        topology = IndependentPairsTopology(EventList(), pairs=4)
        partition = partition_pairs(topology, 4)
        assert boundary_links(topology, partition) == []

    def test_more_shards_than_pairs_rejected(self) -> None:
        topology = IndependentPairsTopology(EventList(), pairs=2)
        with pytest.raises(ValueError, match="host pairs"):
            partition_pairs(topology, 3)


class TestDispatchAndLookahead:
    def test_dispatcher_matches_type(self) -> None:
        fattree = FatTreeTopology(EventList(), k=4)
        assert isinstance(partition_topology(fattree, 2), ShardPartition)
        pairs = IndependentPairsTopology(EventList(), pairs=2)
        assert isinstance(partition_topology(pairs, 2), ShardPartition)

    def test_dispatcher_rejects_unknown_topology(self) -> None:
        topology = BackToBackTopology(EventList())
        with pytest.raises(TypeError, match="no partitioner"):
            partition_topology(topology, 2)

    def test_lookahead_is_min_boundary_delay(self) -> None:
        topology = FatTreeTopology(EventList(), k=4)
        partition = partition_fattree(topology, 2)
        boundary = boundary_links(topology, partition)
        expected = min(record.delay_ps for _key, record in boundary)
        assert min_boundary_delay_ps(boundary) == expected
        assert expected > 0

    def test_empty_boundary_has_zero_lookahead(self) -> None:
        assert min_boundary_delay_ps([]) == 0

    def test_zero_delay_boundary_rejected(self) -> None:
        topology = FatTreeTopology(EventList(), k=4)
        partition = partition_fattree(topology, 2)
        boundary = boundary_links(topology, partition)
        (src, dst), _record = boundary[0]
        topology.set_link_delay_ps(src, dst, 0)
        with pytest.raises(ValueError, match="lookahead"):
            min_boundary_delay_ps(boundary_links(topology, partition))
