"""Property-style tests for the canonical CSV/JSON serialization layer.

The contract under test: any value that can come out of the sweep engine's
tagged JSON codec serializes to *identical bytes* no matter whether it was
computed in-process, read back from the result cache, or produced by a
worker — i.e. canonicalization is invariant under the codec round-trip,
float formatting is exact (shortest repr), key order can never leak into
the output, and awkward values (NaN, infinities, ``None``, empty
measurement bins) have a stable spelling.
"""

from __future__ import annotations

import csv
import io
import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.canonical import (
    canonical_cell,
    canonical_float,
    canonical_json,
    flatten_row,
    rows_to_csv,
)
from repro.harness import sweep

# scalars the result codec supports and a CSV cell must render
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=True, allow_infinity=True),
    st.text(max_size=20),
)

column_names = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126, exclude_characters="."),
    min_size=1,
    max_size=12,
)


class TestFloatFormatting:
    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_finite_floats_round_trip_exactly(self, value):
        assert float(canonical_float(value)) == value

    def test_nonfinite_spellings(self):
        assert canonical_float(float("nan")) == "NaN"
        assert canonical_float(float("inf")) == "Infinity"
        assert canonical_float(float("-inf")) == "-Infinity"
        assert math.isnan(float("NaN"))
        assert float("Infinity") == math.inf

    @given(st.floats(allow_nan=True, allow_infinity=True))
    def test_codec_round_trip_does_not_drift(self, value):
        """cold == cached: formatting after the codec equals formatting before."""
        recovered = sweep.normalize_result(value)
        assert canonical_float(recovered) == canonical_float(value)

    def test_shortest_repr_not_fixed_precision(self):
        # the classic: 0.1 + 0.2 must keep all its bits, not round to "0.3"
        assert canonical_float(0.1 + 0.2) == "0.30000000000000004"


class TestCells:
    def test_awkward_cells(self):
        assert canonical_cell(None) == ""
        assert canonical_cell(True) == "true"
        assert canonical_cell(False) == "false"
        assert canonical_cell(7) == "7"
        assert canonical_cell("x") == "x"
        assert canonical_cell([1, 2]) == "[1,2]"
        assert canonical_cell((1, 2)) == "[1,2]"
        assert canonical_cell({"b": 1, "a": 2}) == '{"a":2,"b":1}'

    @given(scalars)
    def test_every_scalar_has_a_deterministic_cell(self, value):
        assert canonical_cell(value) == canonical_cell(value)
        recovered = sweep.normalize_result(value)
        assert canonical_cell(recovered) == canonical_cell(value)


class TestRowsToCsv:
    @given(
        st.lists(
            st.dictionaries(column_names, scalars, min_size=1, max_size=5),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=60)
    def test_codec_round_trip_produces_identical_bytes(self, rows):
        """The golden-artifact property: cached results -> the same CSV."""
        recovered = sweep.normalize_result(rows)
        assert rows_to_csv(recovered) == rows_to_csv(rows)

    @given(st.dictionaries(column_names, scalars, min_size=2, max_size=6))
    @settings(max_examples=60)
    def test_key_insertion_order_never_leaks(self, row):
        reversed_row = dict(reversed(list(row.items())))
        assert rows_to_csv([reversed_row]) == rows_to_csv([row])

    def test_header_is_sorted_union_of_all_rows(self):
        text = rows_to_csv([{"b": 1}, {"a": 2, "c": None}])
        lines = text.splitlines()
        assert lines[0] == "a,b,c"
        assert lines[1] == ",1,"  # absent and None cells are both empty
        assert lines[2] == "2,,"

    @given(
        st.lists(
            st.dictionaries(
                column_names,
                st.text(max_size=15),  # arbitrary text: exercises quoting
                min_size=1,
                max_size=4,
            ),
            min_size=1,
            max_size=4,
        )
    )
    @settings(max_examples=60)
    def test_quoting_round_trips_through_a_csv_parser(self, rows):
        flat = [flatten_row(row) for row in rows]
        columns = sorted({name for row in flat for name in row})
        parsed = list(csv.reader(io.StringIO(rows_to_csv(rows))))
        assert parsed[0] == columns
        assert len(parsed) == len(flat) + 1
        for row, cells in zip(flat, parsed[1:]):
            if cells == [] and len(columns) == 1:
                cells = [""]  # csv.reader yields [] for a blank line
            assert cells == [row.get(name, "") for name in columns]

    def test_fixed_columns_survive_empty_rows(self):
        assert rows_to_csv([], columns=("a", "b")) == "a,b\n"
        assert rows_to_csv([]) == "\n"  # no schema, no rows: header is empty


class TestFlattenRow:
    def test_nested_mappings_become_dotted_columns(self):
        row = {"protocol": "NDP", "slowdown": {"all": {"p99": 3.5, "count": 10}}}
        assert flatten_row(row) == {
            "protocol": "NDP",
            "slowdown.all.p99": 3.5,
            "slowdown.all.count": 10,
        }

    def test_empty_bin_summaries_stay_representable(self):
        """A window with no completions ({'count': 0}) must not be lossy."""
        row = {"load": 0.9, "slowdown": {"small": {"count": 0}}}
        text = rows_to_csv([sweep.normalize_result(row)])
        assert text == rows_to_csv([row])
        assert "slowdown.small.count" in text.splitlines()[0]

    def test_non_string_keys_are_stringified(self):
        # fig12's result is keyed by int packet size; the codec preserves
        # the int, the CSV layer spells it canonically
        row = {"sizes": {1500: 1.2, 9000: 7.2}}
        flat = flatten_row(sweep.normalize_result(row))
        assert flat == {"sizes.1500": 1.2, "sizes.9000": 7.2}

    @given(
        st.recursive(
            st.dictionaries(column_names, scalars, max_size=3),
            lambda children: st.dictionaries(column_names, children, max_size=3),
            max_leaves=6,
        )
    )
    @settings(max_examples=60)
    def test_flattening_is_idempotent(self, row):
        flat = flatten_row(row)
        assert flatten_row(flat) == flat
