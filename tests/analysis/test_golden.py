"""Golden-artifact suite: render output is byte-locked, three ways.

``tests/analysis/golden/`` holds the checked-in artifacts of::

    PYTHONPATH=src python -m repro.cli render fig10 fig12 \\
        --out tests/analysis/golden --no-cache -q

(that one command is also how to regenerate them after an *intentional*
simulator or pipeline change — rerun it and commit the diff).

The suite renders the same two families three independent ways — cold
(fresh cache), cached (reusing the cold run's cache), and ``--jobs 2``
(parallel, another fresh cache) — and asserts every written byte is
identical across all three *and* equal to the goldens.  This is the
repository's determinism contract made enforceable: a change that alters
seeded simulation results, float formatting, column ordering, or
serialization shows up here as a byte diff, not as a silent drift in
published figures.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

GOLDEN_FIGURES = ("fig10", "fig12")
GOLDEN_ARTIFACTS = (
    "fig10.csv",
    "fig10.vl.json",
    "fig12.csv",
    "fig12.vl.json",
    "index.html",
)

_HERE = os.path.dirname(os.path.abspath(__file__))
GOLDEN_DIR = os.path.join(_HERE, "golden")
_ROOT = os.path.dirname(os.path.dirname(_HERE))


def _render(out_dir, cache_dir, extra=()):
    """Run the real CLI in a subprocess with an isolated cache."""
    env = dict(os.environ)
    env["REPRO_CACHE_DIR"] = cache_dir
    env.pop("REPRO_NO_CACHE", None)
    env["PYTHONPATH"] = os.path.join(_ROOT, "src")
    completed = subprocess.run(
        [sys.executable, "-m", "repro.cli", "render", *GOLDEN_FIGURES,
         "--out", out_dir, "-q", *extra],
        capture_output=True, text=True, cwd=_ROOT, timeout=300, env=env,
    )
    assert completed.returncode == 0, completed.stderr
    return completed


def _read_all(directory):
    artifacts = {}
    for name in sorted(os.listdir(directory)):
        with open(os.path.join(directory, name), "rb") as fh:
            artifacts[name] = fh.read()
    return artifacts


@pytest.fixture(scope="module")
def renders(tmp_path_factory):
    """The three renders the determinism contract quantifies over."""
    base = tmp_path_factory.mktemp("renders")
    cold_cache = str(base / "cache")
    _render(str(base / "cold"), cold_cache)
    _render(str(base / "cached"), cold_cache)  # same cache: served from disk
    _render(str(base / "parallel"), str(base / "cache2"), extra=("--jobs", "2"))
    return {
        "cold": _read_all(str(base / "cold")),
        "cached": _read_all(str(base / "cached")),
        "parallel": _read_all(str(base / "parallel")),
    }


class TestByteIdentity:
    def test_cold_cached_and_parallel_are_byte_identical(self, renders):
        assert renders["cold"] == renders["cached"]
        assert renders["cold"] == renders["parallel"]

    def test_renders_match_the_checked_in_goldens(self, renders):
        golden = _read_all(GOLDEN_DIR)
        assert sorted(golden) == sorted(GOLDEN_ARTIFACTS)
        for name in GOLDEN_ARTIFACTS:
            assert renders["cold"][name] == golden[name], (
                f"{name} drifted from tests/analysis/golden/{name} — if the "
                f"change is intentional, regenerate with: PYTHONPATH=src "
                f"python -m repro.cli render fig10 fig12 --out "
                f"tests/analysis/golden --no-cache -q"
            )

    def test_no_stray_artifacts(self, renders):
        for label in ("cold", "cached", "parallel"):
            assert sorted(renders[label]) == sorted(GOLDEN_ARTIFACTS), label


class TestGoldenContents:
    """Cheap sanity checks that the goldens themselves stay meaningful."""

    def test_goldens_are_lf_only_with_trailing_newline(self):
        for name, data in _read_all(GOLDEN_DIR).items():
            assert b"\r" not in data, name
            assert data.endswith(b"\n"), name

    def test_golden_csvs_have_data_rows(self):
        for name in ("fig10.csv", "fig12.csv"):
            with open(os.path.join(GOLDEN_DIR, name), "rb") as fh:
                lines = fh.read().decode().splitlines()
            assert len(lines) >= 2, f"{name} is header-only"

    def test_prioritization_ordering_survives_in_the_golden(self):
        # the actual paper claim behind fig10: prioritized short flows
        # complete far faster than unprioritized ones
        with open(os.path.join(GOLDEN_DIR, "fig10.csv"), "r") as fh:
            rows = dict(
                (line.split(",")[1], float(line.split(",")[0]))
                for line in fh.read().splitlines()[1:]
            )
        assert rows["with_prioritization"] < rows["without_prioritization"]
