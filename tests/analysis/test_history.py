"""Perf-history store: atomic appends, strict reads, concurrent writers."""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.analysis import history, perf
from repro.analysis.canonical import canonical_json


def _capture(events_per_second=100_000.0, digest="d" * 64):
    return {
        "permutation": {
            "scenario": "permutation_k8_180kB",
            "wall_seconds": 0.25,
            "events_executed": 94200,
            "events_per_second": events_per_second,
            "peak_pending_events": 4725,
            "completed_flows": 128,
            "total_flows": 128,
            "final_time_ps": 266304000,
            "flow_digest": digest,
        }
    }


ENV = {"python": "3.11.7", "machine": "x86_64", "seed": 1}


class TestAppendAndRead:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        records = history.make_records(_capture(), ENV, "abc123", 1700000000.5)
        assert history.append_history(path, records) == 1
        read = history.read_history(path)
        assert read == records
        assert read[0]["schema"] == history.SCHEMA
        assert read[0]["schema_version"] == history.SCHEMA_VERSION
        assert read[0]["scenario"] == "permutation"
        assert read[0]["git_sha"] == "abc123"
        assert read[0]["environment"] == ENV

    def test_appends_accumulate_in_order(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        for sha in ("aaa", "bbb", "ccc"):
            history.append_history(
                path, history.make_records(_capture(), ENV, sha, 0.0)
            )
        assert [r["git_sha"] for r in history.read_history(path)] == [
            "aaa", "bbb", "ccc",
        ]

    def test_append_leaves_no_staging_or_lock_files(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        history.append_history(path, history.make_records(_capture(), ENV, "x", 0.0))
        assert sorted(os.listdir(tmp_path)) == ["history.jsonl"]

    def test_append_nothing_is_a_no_op(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        assert history.append_history(path, []) == 0
        assert not os.path.exists(path)

    def test_missing_measurement_field_is_rejected(self):
        capture = _capture()
        del capture["permutation"]["flow_digest"]
        with pytest.raises(history.HistoryError, match="flow_digest"):
            history.make_records(capture, ENV, "x", 0.0)

    def test_records_are_canonical_json_lines(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        records = history.make_records(_capture(), ENV, "x", 0.0)
        history.append_history(path, records)
        with open(path, "r", encoding="utf-8") as fh:
            line = fh.readline().rstrip("\n")
        assert line == canonical_json(records[0])


class TestStrictReads:
    def test_corrupt_json_line_names_the_line(self, tmp_path):
        path = tmp_path / "history.jsonl"
        records = history.make_records(_capture(), ENV, "x", 0.0)
        history.append_history(str(path), records)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("{truncated\n")
        with pytest.raises(history.HistoryError, match="line 2"):
            history.read_history(str(path))

    def test_foreign_schema_is_rejected(self, tmp_path):
        path = tmp_path / "history.jsonl"
        path.write_text(json.dumps({"schema": "someone.else", "scenario": "x"}) + "\n")
        with pytest.raises(history.HistoryError, match="not a repro.perf_history"):
            history.read_history(str(path))

    def test_future_version_is_rejected(self, tmp_path):
        path = tmp_path / "history.jsonl"
        record = dict(
            history.make_records(_capture(), ENV, "x", 0.0)[0],
            schema_version=history.SCHEMA_VERSION + 1,
        )
        path.write_text(json.dumps(record) + "\n")
        with pytest.raises(history.HistoryError, match="schema_version"):
            history.read_history(str(path))

    def test_blank_lines_are_tolerated(self, tmp_path):
        path = tmp_path / "history.jsonl"
        records = history.make_records(_capture(), ENV, "x", 0.0)
        path.write_text("\n" + canonical_json(records[0]) + "\n\n")
        assert history.read_history(str(path)) == records

    def test_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            history.read_history(str(tmp_path / "absent.jsonl"))

    def test_torn_trailing_line_is_preserved_not_merged(self, tmp_path):
        """An interrupted legacy writer's torn tail must not swallow appends."""
        path = tmp_path / "history.jsonl"
        path.write_text('{"schema": "repro.perf_history", "scenario"')  # no newline
        records = history.make_records(_capture(), ENV, "x", 0.0)
        history.append_history(str(path), records)
        lines = path.read_text().splitlines()
        assert len(lines) == 2  # torn line stays its own (detectably bad) line
        assert json.loads(lines[1])["git_sha"] == "x"


class TestConcurrentWriters:
    def test_parallel_appends_all_land(self, tmp_path):
        """N processes hammering the same history lose no records."""
        path = str(tmp_path / "history.jsonl")
        script = (
            "import sys\n"
            "sys.path.insert(0, sys.argv[3])\n"
            "from repro.analysis import history\n"
            "capture = {'s': {'scenario': 's', 'wall_seconds': 0.1,\n"
            "    'events_executed': 10, 'events_per_second': 100.0,\n"
            "    'peak_pending_events': 1, 'completed_flows': 1,\n"
            "    'total_flows': 1, 'final_time_ps': 1, 'flow_digest': 'f'}}\n"
            "for index in range(10):\n"
            "    history.append_history(sys.argv[1], history.make_records(\n"
            "        capture, {}, f'writer{sys.argv[2]}-{index}', 0.0))\n"
        )
        src = os.path.join(
            os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
            "src",
        )
        processes = [
            subprocess.Popen(
                [sys.executable, "-c", script, path, str(writer), src],
                stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            )
            for writer in range(4)
        ]
        for process in processes:
            _out, err = process.communicate(timeout=120)
            assert process.returncode == 0, err.decode()
        records = history.read_history(path)
        shas = [record["git_sha"] for record in records]
        expected = {f"writer{w}-{i}" for w in range(4) for i in range(10)}
        assert len(shas) == 40 and set(shas) == expected
        leftovers = [f for f in os.listdir(tmp_path) if f != "history.jsonl"]
        assert leftovers == []


class TestTrajectoryRows:
    def test_rows_sequence_per_scenario(self, tmp_path, monkeypatch):
        path = str(tmp_path / "history.jsonl")
        for rate, sha in ((100.0, "aaa"), (120.0, "bbb")):
            history.append_history(
                path, history.make_records(_capture(rate), ENV, sha, 5.0)
            )
        monkeypatch.setenv(perf.HISTORY_ENV, path)
        rows = perf.trajectory_rows()
        assert [row["capture"] for row in rows] == [0, 1]
        assert [row["events_per_second"] for row in rows] == [100.0, 120.0]
        assert rows[0]["scenario"] == "permutation"
        assert rows[0]["python"] == "3.11.7" and rows[0]["machine"] == "x86_64"
        assert rows[1]["git_sha"] == "bbb"

    def test_missing_history_renders_empty(self, tmp_path, monkeypatch):
        monkeypatch.setenv(perf.HISTORY_ENV, str(tmp_path / "none.jsonl"))
        assert perf.trajectory_rows() == []
