"""Exhaustive decision-matrix tests for ``tools/check_perf.py``.

Every row of the gate's contract is pinned: the exact exit code *and* the
message a CI log would show, for regressions just under / just over the
threshold, digest drift, scenarios dropped from the report, and every
flavour of unusable input.  The synthetic fixtures are machine-independent
on purpose — this file is where the strict 10% default is enforceable,
unlike the cross-machine CI invocation (see ``benchmarks/perf/README.md``).
"""

from __future__ import annotations

import importlib.util
import json
import os

import pytest

from repro.analysis import history

_TOOL = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "tools",
    "check_perf.py",
)
_spec = importlib.util.spec_from_file_location("check_perf", _TOOL)
check_perf = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_perf)


def _scenario(events_per_second, digest="a" * 64):
    return {
        "scenario": "synthetic",
        "wall_seconds": 1.0,
        "events_executed": int(events_per_second),
        "events_per_second": events_per_second,
        "peak_pending_events": 10,
        "completed_flows": 4,
        "total_flows": 4,
        "final_time_ps": 1000,
        "flow_digest": digest,
    }


@pytest.fixture
def perf_dir(tmp_path):
    """Baseline (100k ev/s), matching report, one-capture history."""

    def write(name, scenarios):
        path = tmp_path / name
        path.write_text(json.dumps({"environment": {}, "scenarios": scenarios}))
        return str(path)

    baseline = write("baseline.json", {"incast": _scenario(100_000.0)})
    report = write("report.json", {"incast": _scenario(100_000.0)})
    hist = str(tmp_path / "history.jsonl")
    history.append_history(
        hist,
        history.make_records({"incast": _scenario(100_000.0)}, {}, "sha", 0.0),
    )
    return {"dir": tmp_path, "write": write, "baseline": baseline,
            "report": report, "history": hist}


def _run(perf_dir, capsys, report=None, **overrides):
    argv = [
        "--report", report or perf_dir["report"],
        "--baseline", perf_dir["baseline"],
        "--history", perf_dir["history"],
    ]
    for flag, value in overrides.items():
        argv.append("--" + flag.replace("_", "-"))
        if value is not True:
            argv.append(str(value))
    code = check_perf.main(argv)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestHealthyInputs:
    def test_identical_numbers_pass(self, perf_dir, capsys):
        code, out, err = _run(perf_dir, capsys)
        assert code == check_perf.EXIT_OK == 0
        assert "perf OK: 1 scenario(s) within 10% of baseline" in out
        assert "history has 1 capture(s)" in out
        assert err == ""

    def test_drop_just_under_threshold_passes(self, perf_dir, capsys):
        report = perf_dir["write"](
            "under.json", {"incast": _scenario(90_001.0)}  # -9.999%
        )
        code, out, _err = _run(perf_dir, capsys, report=report)
        assert code == 0
        assert "perf OK" in out

    def test_drop_of_exactly_threshold_passes(self, perf_dir, capsys):
        # the documented boundary: strictly-more-than, not at-least
        report = perf_dir["write"]("edge.json", {"incast": _scenario(90_000.0)})
        code, _out, err = _run(perf_dir, capsys, report=report)
        assert code == 0 and err == ""

    def test_speedup_passes(self, perf_dir, capsys):
        report = perf_dir["write"]("fast.json", {"incast": _scenario(250_000.0)})
        assert _run(perf_dir, capsys, report=report)[0] == 0

    def test_new_scenario_without_baseline_is_a_note_not_a_failure(
        self, perf_dir, capsys
    ):
        report = perf_dir["write"](
            "extra.json",
            {"incast": _scenario(100_000.0), "novel": _scenario(5.0, "b" * 64)},
        )
        code, out, err = _run(perf_dir, capsys, report=report)
        assert code == 0
        assert "note: scenario 'novel' has no baseline yet" in out
        assert err == ""


class TestRegression:
    def test_drop_just_over_threshold_fails(self, perf_dir, capsys):
        report = perf_dir["write"](
            "over.json", {"incast": _scenario(89_999.0)}  # -10.001%
        )
        code, _out, err = _run(perf_dir, capsys, report=report)
        assert code == check_perf.EXIT_REGRESSION == 1
        assert "regression: incast: events/sec fell 10.0% (> 10% allowed)" in err
        assert "baseline 100,000.0 -> current 89,999.0" in err

    def test_custom_threshold_is_respected(self, perf_dir, capsys):
        report = perf_dir["write"]("half.json", {"incast": _scenario(60_000.0)})
        assert _run(perf_dir, capsys, report=report, threshold=0.5)[0] == 0
        code, _out, err = _run(perf_dir, capsys, report=report, threshold=0.3)
        assert code == 1 and "(> 30% allowed)" in err

    def test_threshold_outside_range_is_a_usage_error(self, perf_dir, capsys):
        with pytest.raises(SystemExit) as excinfo:
            _run(perf_dir, capsys, threshold=1.5)
        assert excinfo.value.code == 2  # argparse usage error


class TestDigestDrift:
    def test_digest_mismatch_fails_even_with_fine_throughput(
        self, perf_dir, capsys
    ):
        report = perf_dir["write"](
            "drift.json", {"incast": _scenario(100_000.0, digest="f" * 64)}
        )
        code, _out, err = _run(perf_dir, capsys, report=report)
        assert code == check_perf.EXIT_DIGEST_DRIFT == 3
        assert (
            "digest drift: incast: seeded flow digest ffffffffffff != "
            "baseline aaaaaaaaaaaa — seeded behaviour changed" in err
        )

    def test_digest_check_ignores_threshold(self, perf_dir, capsys):
        # cross-machine CI runs with a wide threshold; drift must still fail
        report = perf_dir["write"](
            "drift2.json", {"incast": _scenario(99_000.0, digest="f" * 64)}
        )
        assert _run(perf_dir, capsys, report=report, threshold=0.9)[0] == 3


class TestMissingScenario:
    def test_scenario_dropped_from_report_fails(self, perf_dir, capsys):
        report = perf_dir["write"]("empty.json", {})
        code, _out, err = _run(perf_dir, capsys, report=report)
        assert code == check_perf.EXIT_MISSING_SCENARIO == 4
        assert (
            "missing scenario: 'incast' is in the baseline but absent "
            "from the report" in err
        )


class TestBadInputs:
    def test_missing_report_file(self, perf_dir, capsys):
        missing = str(perf_dir["dir"] / "nope.json")
        code, _out, err = _run(perf_dir, capsys, report=missing)
        assert code == check_perf.EXIT_BAD_INPUT == 5
        assert f"missing report: {missing} does not exist" in err
        assert "run benchmarks/perf/run_perf.py first" in err

    def test_corrupt_report_file(self, perf_dir, capsys):
        path = perf_dir["dir"] / "corrupt.json"
        path.write_text("{not json")
        code, _out, err = _run(perf_dir, capsys, report=str(path))
        assert code == 5 and "corrupt report:" in err

    def test_report_without_scenarios_key(self, perf_dir, capsys):
        path = perf_dir["dir"] / "hollow.json"
        path.write_text(json.dumps({"environment": {}}))
        code, _out, err = _run(perf_dir, capsys, report=str(path))
        assert code == 5 and "corrupt report:" in err

    def test_missing_history_file(self, perf_dir, capsys):
        os.remove(perf_dir["history"])
        code, _out, err = _run(perf_dir, capsys)
        assert code == 5
        assert "missing history:" in err

    def test_empty_history_file(self, perf_dir, capsys):
        with open(perf_dir["history"], "w"):
            pass
        code, _out, err = _run(perf_dir, capsys)
        assert code == 5
        assert "empty history:" in err
        assert "has no perf captures" in err

    def test_corrupt_history_file(self, perf_dir, capsys):
        with open(perf_dir["history"], "a") as fh:
            fh.write("{broken\n")
        code, _out, err = _run(perf_dir, capsys)
        assert code == 5 and "corrupt history:" in err

    def test_no_history_flag_skips_the_history_gate(self, perf_dir, capsys):
        os.remove(perf_dir["history"])
        code, out, _err = _run(perf_dir, capsys, no_history=True)
        assert code == 0
        assert "history has" not in out  # no history claim when skipped


def _shard_scenario(aggregate, events_per_second=100_000.0, digest="c" * 64):
    scenario = _scenario(events_per_second, digest)
    scenario["aggregate_events_per_second"] = aggregate
    scenario["shards"] = 16
    return scenario


class TestAggregateGate:
    def test_floor_violation_fails_without_baseline(self, perf_dir, capsys):
        # shard_scale has no baseline row yet: the absolute floor still holds
        report = perf_dir["write"](
            "agg.json",
            {"incast": _scenario(100_000.0),
             "shard_scale": _shard_scenario(999_999.0)},
        )
        code, _out, err = _run(perf_dir, capsys, report=report)
        assert code == check_perf.EXIT_REGRESSION == 1
        assert (
            "aggregate floor: shard_scale: 999,999.0 aggregate events/sec "
            "is below the 1,000,000 floor" in err
        )

    def test_floor_met_passes(self, perf_dir, capsys):
        report = perf_dir["write"](
            "agg-ok.json",
            {"incast": _scenario(100_000.0),
             "shard_scale": _shard_scenario(1_000_000.0)},
        )
        code, out, err = _run(perf_dir, capsys, report=report)
        assert code == 0
        assert "note: scenario 'shard_scale' has no baseline yet" in out
        assert err == ""

    def test_aggregate_regression_against_baseline(self, perf_dir, capsys):
        perf_dir["baseline"] = perf_dir["write"](
            "agg-base.json",
            {"shard_scale": _shard_scenario(2_600_000.0)},
        )
        report = perf_dir["write"](
            "agg-slow.json",
            # wall-rate steady, aggregate down 20%: the aggregate column
            # must be gated independently of events_per_second
            {"shard_scale": _shard_scenario(2_080_000.0)},
        )
        assert _run(perf_dir, capsys, report=report, threshold=0.3)[0] == 0
        code, _out, err = _run(perf_dir, capsys, report=report, threshold=0.1)
        assert code == 1
        assert "aggregate events/sec fell 20.0%" in err

    def test_aggregate_floor_beats_wide_ci_threshold(self, perf_dir, capsys):
        # cross-machine CI uses --threshold 0.5; the absolute floor is the
        # backstop that a slow capture cannot slip under
        perf_dir["baseline"] = perf_dir["write"](
            "agg-base2.json", {"shard_scale": _shard_scenario(2_600_000.0)}
        )
        report = perf_dir["write"](
            "agg-floor.json", {"shard_scale": _shard_scenario(900_000.0)}
        )
        code, _out, err = _run(perf_dir, capsys, report=report, threshold=0.9)
        assert code == 1
        assert "aggregate floor:" in err


class TestCombinedProblems:
    def test_highest_exit_code_wins_and_all_problems_print(
        self, perf_dir, capsys
    ):
        # regression (1) + drift (3) + empty history (5) -> exit 5, 3 lines
        report = perf_dir["write"](
            "worst.json", {"incast": _scenario(10_000.0, digest="f" * 64)}
        )
        with open(perf_dir["history"], "w"):
            pass
        code, _out, err = _run(perf_dir, capsys, report=report)
        assert code == 5
        for fragment in ("regression:", "digest drift:", "empty history:"):
            assert fragment in err
        assert "3 perf problem(s)" in err

    def test_drift_beats_regression(self, perf_dir, capsys):
        report = perf_dir["write"](
            "both.json", {"incast": _scenario(10_000.0, digest="f" * 64)}
        )
        code, _out, err = _run(perf_dir, capsys, report=report)
        assert code == 3
        assert "regression:" in err and "digest drift:" in err
