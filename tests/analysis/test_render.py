"""Behavioural tests for the ``render`` pipeline and its CLI front end.

Byte-determinism across cold/cached/parallel renders is golden-locked in
``test_golden.py``; this file covers everything else: name resolution,
artifact layout, the perf figure's history plumbing, the HTML index, the
Vega-Lite specs, and the optional-matplotlib gating.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import cli
from repro.analysis import (
    REGISTERED_FIGURES,
    UnknownFigureError,
    render_figures,
    vega_lite_spec,
)
from repro.analysis import history
from repro.analysis.perf import HISTORY_ENV, PERF_COLUMNS
from repro.harness import sweep
from repro.harness.figures import FIGURE_META


@pytest.fixture(autouse=True)
def isolated_environment(tmp_path, monkeypatch):
    """Throwaway result cache + empty perf history for every test."""
    monkeypatch.setenv(sweep.CACHE_DIR_ENV, str(tmp_path / "cache"))
    monkeypatch.delenv(sweep.NO_CACHE_ENV, raising=False)
    monkeypatch.setenv(HISTORY_ENV, str(tmp_path / "history.jsonl"))
    yield


def _synthetic_history(path, captures=2):
    for index in range(captures):
        measurement = {
            "scenario": "incast_fanin32",
            "wall_seconds": 1.0,
            "events_executed": 1000 * (index + 1),
            "events_per_second": 1000.0 * (index + 1),
            "peak_pending_events": 5,
            "completed_flows": 32,
            "total_flows": 32,
            "final_time_ps": 999,
            "flow_digest": "c" * 64,
        }
        history.append_history(path, history.make_records(
            {"incast": measurement},
            {"python": "3.11.7", "machine": "x86_64", "seed": 1},
            f"sha{index}",
            float(index),
        ))


class TestResolution:
    def test_unknown_name_raises_before_touching_disk(self, tmp_path):
        out = tmp_path / "artifacts"
        with pytest.raises(UnknownFigureError) as excinfo:
            render_figures(["fig12", "figments"], str(out))
        assert "figments" in str(excinfo.value)
        assert "fig12" in str(excinfo.value)  # lists the registered names
        assert not out.exists()  # fails before any simulation or write

    def test_cli_unknown_figure_exits_2_and_lists_registry(self, capsys):
        assert cli.main(["render", "nope", "--out", "/tmp/unused"]) == 2
        err = capsys.readouterr().err
        assert "unknown figure(s): nope" in err
        for name in REGISTERED_FIGURES:
            assert name in err

    def test_cli_render_requires_out(self, capsys):
        assert cli.main(["render", "fig12"]) == 2
        assert "--out" in capsys.readouterr().err


class TestArtifacts:
    def test_layout_and_report(self, tmp_path):
        report = render_figures(["fig12", "perf"], str(tmp_path / "a"))
        assert report.figures == ["fig12", "perf"]
        assert report.artifacts == [
            "fig12.csv", "fig12.vl.json", "perf.csv", "perf.vl.json",
            "index.html",
        ]
        for artifact in report.artifacts:
            assert os.path.exists(os.path.join(report.out_dir, artifact))
        assert report.rows_per_figure["fig12"] > 0
        assert report.rows_per_figure["perf"] == 0  # empty history
        assert not report.png_written and report.png_note is None

    def test_csv_is_canonical_lf_with_sorted_header(self, tmp_path):
        render_figures(["fig12"], str(tmp_path / "a"))
        with open(tmp_path / "a" / "fig12.csv", "rb") as fh:
            data = fh.read()
        assert b"\r" not in data and data.endswith(b"\n")
        header = data.decode().splitlines()[0].split(",")
        assert header == sorted(header)
        assert "packet_bytes" in header

    def test_cli_render_writes_and_reports(self, tmp_path, capsys):
        out = str(tmp_path / "artifacts")
        assert cli.main(["render", "fig12", "--out", out, "-q"]) == 0
        stdout = capsys.readouterr().out
        assert "fig12: " in stdout and "fig12.csv" in stdout
        assert "index: " in stdout and "index.html" in stdout
        assert os.path.exists(os.path.join(out, "index.html"))

    def test_png_flag_without_matplotlib_notes_and_continues(
        self, tmp_path, capsys
    ):
        with pytest.raises(ImportError):  # precondition: matplotlib absent
            import matplotlib  # noqa: F401
        out = str(tmp_path / "artifacts")
        assert cli.main(["render", "fig12", "--out", out, "--png", "-q"]) == 0
        assert "matplotlib is not installed" in capsys.readouterr().err
        assert not os.path.exists(os.path.join(out, "fig12.png"))


class TestPerfFigure:
    def test_empty_history_yields_header_only_csv(self, tmp_path):
        render_figures(["perf"], str(tmp_path / "a"))
        text = (tmp_path / "a" / "perf.csv").read_text()
        assert text == ",".join(PERF_COLUMNS) + "\n"

    def test_history_rows_flow_into_the_csv(self, tmp_path):
        _synthetic_history(os.environ[HISTORY_ENV], captures=2)
        render_figures(["perf"], str(tmp_path / "a"))
        lines = (tmp_path / "a" / "perf.csv").read_text().splitlines()
        assert lines[0] == ",".join(PERF_COLUMNS)
        assert len(lines) == 3
        first = dict(zip(PERF_COLUMNS, lines[1].split(",")))
        assert first["scenario"] == "incast"
        assert first["capture"] == "0" and first["git_sha"] == "sha0"
        assert first["events_per_second"] == "1000.0"
        second = dict(zip(PERF_COLUMNS, lines[2].split(",")))
        assert second["capture"] == "1" and second["git_sha"] == "sha1"


class TestVegaLite:
    def test_spec_file_matches_generator(self, tmp_path):
        render_figures(["fig12"], str(tmp_path / "a"))
        with open(tmp_path / "a" / "fig12.vl.json", "r", encoding="utf-8") as fh:
            on_disk = json.load(fh)
        assert on_disk == vega_lite_spec(FIGURE_META["fig12"], "fig12.csv")
        assert on_disk["data"] == {"url": "fig12.csv", "format": {"type": "csv"}}
        assert on_disk["$schema"].endswith("vega-lite/v5.json")

    def test_line_marks_get_points_and_series_gets_color(self):
        spec = vega_lite_spec(FIGURE_META["fig16"], "fig16.csv")
        assert spec["mark"] == {"type": "line", "point": True}
        assert spec["encoding"]["color"]["field"] == "protocol"
        bar = vega_lite_spec(FIGURE_META["fig12"], "fig12.csv")
        assert bar["mark"] == "bar"
        assert "color" not in bar["encoding"]


class TestIndex:
    def test_index_links_every_figure_and_inlines_the_table(self, tmp_path):
        _synthetic_history(os.environ[HISTORY_ENV], captures=1)
        render_figures(["fig12", "perf"], str(tmp_path / "a"))
        text = (tmp_path / "a" / "index.html").read_text()
        for name in ("fig12", "perf"):
            assert f'<section id="{name}">' in text
            assert f'<a href="{name}.csv">' in text
            assert f"vegaEmbed('#vis-{name}', '{name}.vl.json')" in text
        assert "<table>" in text  # inline data table
        assert "sha0" in text  # perf rows are inlined too
