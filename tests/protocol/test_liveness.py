"""Liveness subsystem: pull-retry watchdog and sender keepalive.

The scenarios here surround the deadlock documented in the ROADMAP: when the
*final* PULLs of a transfer are lost, the sender sits forever on a non-empty
retransmission queue because the NACKs already cancelled its per-seqno RTOs.
Each mechanism is exercised in isolation by disabling the other through its
config knob, and the deadlock itself is reproduced as a negative control by
disabling both.
"""

from __future__ import annotations

from repro.core.config import NdpConfig
from repro.harness.experiment import assert_all_complete, liveness_report
from repro.sim.faults import FaultInjector

from tests.protocol.scenarios import assert_no_leaks, build_incast, run_to_quiescence


class TestPullRetry:
    def test_transient_pull_loss_recovered_by_retry(self):
        # Drop a finite window of flow 0's PULLs — including the retried
        # ones, until the rule exhausts — with the sender keepalive off, so
        # only the receiver watchdog can restart the transfer.
        injector = FaultInjector(seed=5)
        rule = injector.drop(classes={"pull"}, flow_id=0, skip=1, max_count=12)
        eventlist, network, flows = build_incast(
            config=NdpConfig(sender_keepalive=False), injector=injector
        )
        run_to_quiescence(eventlist)
        report = assert_all_complete(flows)
        assert rule.injected == 12
        assert report.pull_retries >= 1
        assert report.keepalive_retransmits == 0
        assert_no_leaks(network)

    def test_retry_rounds_give_up_after_max_pull_retries(self):
        # A permanent PULL blackhole with the keepalive disabled cannot be
        # recovered; the watchdog must retry its bounded number of rounds,
        # then disarm and leave a clean (if incomplete) simulation.
        injector = FaultInjector(seed=5)
        injector.drop(classes={"pull"}, flow_id=0, skip=1)
        config = NdpConfig(sender_keepalive=False, max_pull_retries=3)
        eventlist, network, flows = build_incast(config=config, injector=injector)
        run_to_quiescence(eventlist)
        report = liveness_report(flows)
        assert report.incomplete_flow_ids == [0]
        assert flows[0].record.pull_retries == 3
        assert_no_leaks(network)

    def test_retry_inert_on_healthy_run(self):
        eventlist, network, flows = build_incast()
        run_to_quiescence(eventlist)
        report = assert_all_complete(flows)
        assert report.pull_retries == 0
        assert report.keepalive_retransmits == 0
        assert_no_leaks(network)

    def test_max_pull_retries_zero_disables_watchdog(self):
        eventlist, network, flows = build_incast(config=NdpConfig(max_pull_retries=0))
        run_to_quiescence(eventlist)
        assert_all_complete(flows)
        assert all(flow.sink._retry_timer is None for flow in flows)
        assert_no_leaks(network)


class TestSenderKeepalive:
    def test_pull_blackhole_recovered_by_keepalive(self):
        # Every PULL of flow 0 after the first is lost forever, so the pull
        # clock — including the receiver's retries — is dead.  The keepalive
        # must drain the retransmission queue directly.
        injector = FaultInjector(seed=5)
        injector.drop(classes={"pull"}, flow_id=0, skip=1)
        eventlist, network, flows = build_incast(
            config=NdpConfig(max_pull_retries=0), injector=injector
        )
        run_to_quiescence(eventlist)
        report = assert_all_complete(flows)
        assert report.keepalive_retransmits >= 1
        assert flows[0].src.retransmit_queue_depth() == 0
        assert_no_leaks(network)

    def test_pull_blackhole_with_unsent_tail_recovered_by_keepalive(self):
        # A transfer larger than the initial window stalls under PULL loss
        # with an *empty* retransmission queue: the tail was never sent, so
        # no per-seqno RTO exists for it and the receiver's retries are
        # swallowed too.  The keepalive must push the unsent tail itself.
        injector = FaultInjector(seed=6)
        injector.drop(classes={"pull"}, skip=1)
        eventlist, network, flows = build_incast(
            senders=2, bytes_per_sender=300_000, injector=injector
        )
        run_to_quiescence(eventlist)
        report = assert_all_complete(flows)
        assert report.keepalive_retransmits >= 1
        assert_no_leaks(network)

    def test_keepalive_inert_on_healthy_run(self):
        eventlist, network, flows = build_incast(config=NdpConfig(max_pull_retries=0))
        run_to_quiescence(eventlist)
        report = assert_all_complete(flows)
        assert report.keepalive_retransmits == 0
        assert_no_leaks(network)


class TestDeadlockNegativeControl:
    def test_pull_loss_deadlocks_without_liveness_subsystem(self):
        # The original bug, reproduced on purpose: both mechanisms disabled,
        # flow 0's PULLs blackholed.  The sender must end up stuck with a
        # non-empty retransmission queue while the event list drains dry —
        # exactly the 4-of-432 signature from the incast benchmark.
        injector = FaultInjector(seed=5)
        injector.drop(classes={"pull"}, flow_id=0, skip=1)
        config = NdpConfig(max_pull_retries=0, sender_keepalive=False)
        eventlist, network, flows = build_incast(config=config, injector=injector)
        run_to_quiescence(eventlist)
        report = liveness_report(flows)
        assert not report.all_complete
        assert report.incomplete_flow_ids == [0]
        assert report.stuck_senders == [0]
        assert flows[0].src.retransmit_queue_depth() > 0
        # the deadlock is quiescent, not livelocked: nothing leaks either
        assert_no_leaks(network)

    def test_liveness_subsystem_closes_the_same_scenario(self):
        injector = FaultInjector(seed=5)
        injector.drop(classes={"pull"}, flow_id=0, skip=1)
        eventlist, network, flows = build_incast(injector=injector)
        run_to_quiescence(eventlist)
        assert_all_complete(flows)
        assert_no_leaks(network)
