"""Adversarial protocol-conformance scenarios.

Each test injects a different fault pattern — loss, forced trims, delay,
header-queue overflow — into a seeded incast and asserts the two suite
invariants: every transfer completes exactly (no lost and no double-counted
bytes) and the simulation drains without leaking timers or pulls.  The class
names the recovery mechanism each scenario is expected to exercise.
"""

from __future__ import annotations

from repro.core.config import NdpConfig
from repro.core.switch import NdpSwitchQueue
from repro.harness.experiment import assert_all_complete
from repro.sim.faults import FaultInjector
from repro.sim.units import milliseconds

from tests.protocol.scenarios import (
    assert_no_leaks,
    build_incast,
    record_tuples,
    run_to_quiescence,
)

FLOW_BYTES = 45_000


def assert_exact_delivery(flows):
    """Every sink got its full transfer exactly once, duplicates discarded."""
    for flow in flows:
        assert flow.record.bytes_delivered == flow.record.flow_size_bytes, (
            f"flow {flow.flow_id}: {flow.record.bytes_delivered} bytes delivered "
            f"of {flow.record.flow_size_bytes}"
        )


class TestAckLoss:
    def test_dropped_acks_recovered_by_per_seqno_rto(self):
        injector = FaultInjector(seed=11)
        injector.drop(classes={"ack"}, every_kth=3)
        eventlist, network, flows = build_incast(injector=injector)
        run_to_quiescence(eventlist)
        assert_all_complete(flows)
        assert_exact_delivery(flows)
        # the lost ACKs leave RTOs armed, so duplicates are retransmitted
        # and the receivers must deduplicate them
        assert sum(f.sender_record.rtx_from_timeout for f in flows) > 0
        assert_no_leaks(network)


class TestNackLoss:
    def test_dropped_nacks_recovered_by_per_seqno_rto(self):
        # A lost NACK means the sender never learns its packet was trimmed;
        # the per-seqno RTO (which the NACK would have cancelled) recovers.
        injector = FaultInjector(seed=12)
        injector.drop(classes={"nack"}, every_kth=2)
        eventlist, network, flows = build_incast(injector=injector)
        run_to_quiescence(eventlist)
        assert_all_complete(flows)
        assert_exact_delivery(flows)
        assert sum(f.sender_record.rtx_from_timeout for f in flows) > 0
        assert_no_leaks(network)


class TestHeaderLoss:
    def test_dropped_trimmed_headers_recovered(self):
        # The trimmed header never reaches the sink, so neither ACK nor NACK
        # is generated — only the still-armed RTO knows the packet existed.
        injector = FaultInjector(seed=13)
        injector.drop(classes={"header"}, every_kth=2)
        eventlist, network, flows = build_incast(injector=injector)
        run_to_quiescence(eventlist)
        assert_all_complete(flows)
        assert_exact_delivery(flows)
        assert_no_leaks(network)


class TestForcedTrims:
    def test_injected_trims_follow_nack_retransmit_path(self):
        injector = FaultInjector(seed=14)
        injector.trim(classes={"data"}, every_kth=4)
        eventlist, network, flows = build_incast(injector=injector)
        run_to_quiescence(eventlist)
        assert_all_complete(flows)
        assert_exact_delivery(flows)
        assert injector.trimmed.get("data", 0) > 0
        assert sum(f.record.headers_received for f in flows) > 0
        assert_no_leaks(network)


class TestDelay:
    def test_delayed_pulls_slow_but_do_not_break_the_transfer(self):
        injector = FaultInjector(seed=15)
        injector.delay(milliseconds(2), classes={"pull"}, every_kth=5)
        eventlist, network, flows = build_incast(injector=injector)
        run_to_quiescence(eventlist)
        assert_all_complete(flows)
        assert_exact_delivery(flows)
        assert_no_leaks(network)

    def test_delayed_acks_cause_only_harmless_duplicates(self):
        injector = FaultInjector(seed=16)
        injector.delay(milliseconds(2), classes={"ack"}, every_kth=4)
        eventlist, network, flows = build_incast(injector=injector)
        run_to_quiescence(eventlist)
        assert_all_complete(flows)
        assert_exact_delivery(flows)
        assert_no_leaks(network)


class TestHeaderQueueOverflow:
    """The return-to-sender path under real (not synthetic) overflow."""

    def test_rts_bounces_recover_the_transfer(self):
        # Shrink the header queue so the first-RTT trim storm overflows it:
        # excess trimmed headers must bounce back to their senders and be
        # retransmitted directly.
        config = NdpConfig(header_queue_bytes=16 * 64)
        eventlist, network, flows = build_incast(senders=12, config=config)
        run_to_quiescence(eventlist)
        assert_all_complete(flows)
        assert_exact_delivery(flows)
        bounced = sum(
            q.headers_bounced
            for q in network.topology.all_queues()
            if isinstance(q, NdpSwitchQueue)
        )
        assert bounced > 0, "scenario failed to overflow the header queue"
        assert sum(f.sender_record.rtx_from_bounce for f in flows) > 0
        assert_no_leaks(network)

    def test_control_drops_without_rts_recovered_by_liveness(self):
        # With return-to-sender disabled an overflowing header queue silently
        # drops control packets — the exact loss pattern behind the 4-of-432
        # incast deadlock.  The liveness subsystem must still complete every
        # flow.
        config = NdpConfig(header_queue_bytes=16 * 64, return_to_sender=False)
        eventlist, network, flows = build_incast(senders=12, config=config)
        run_to_quiescence(eventlist)
        assert_all_complete(flows)
        assert_exact_delivery(flows)
        dropped = sum(
            q.stats.packets_dropped
            for q in network.topology.all_queues()
            if isinstance(q, NdpSwitchQueue)
        )
        assert dropped > 0, "scenario failed to overflow the header queue"
        assert_no_leaks(network)


class TestChaos:
    def test_probabilistic_multi_class_loss_is_survived(self):
        injector = FaultInjector(seed=17)
        injector.drop(
            classes={"data", "header", "ack", "nack", "pull"}, probability=0.05
        )
        eventlist, network, flows = build_incast(injector=injector)
        run_to_quiescence(eventlist)
        assert_all_complete(flows)
        assert_exact_delivery(flows)
        assert injector.injected_total() > 0
        assert_no_leaks(network)

    def test_chaos_scenario_is_deterministic(self):
        def run():
            injector = FaultInjector(seed=17)
            injector.drop(
                classes={"data", "header", "ack", "nack", "pull"}, probability=0.05
            )
            eventlist, network, flows = build_incast(injector=injector)
            run_to_quiescence(eventlist)
            return record_tuples(flows), injector.injected_total()

        first = run()
        second = run()
        assert first == second
