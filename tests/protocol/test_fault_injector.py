"""Unit tests for the fault-injection layer itself.

Covers packet classification, rule gating semantics (skip / every_kth /
max_count / probability), the three tap types (endpoint FaultPoint,
TappedPipe, TappedQueue) and the layer's cardinal property: an installed
injector that faults nothing leaves a seeded simulation bit-for-bit
identical.
"""

from __future__ import annotations

import pytest

from repro.core.packets import NdpAck, NdpDataPacket, NdpNack, NdpPull
from repro.sim.eventlist import EventList
from repro.sim.faults import DELAY, DROP, PASS, FaultInjector, FaultRule, classify
from repro.sim.network import CountingSink
from repro.sim.packet import Packet, Route
from repro.sim.pipe import TappedPipe
from repro.sim.queues import TappedQueue
from repro.sim.units import gbps, microseconds

from tests.protocol.scenarios import build_incast, record_tuples, run_to_quiescence


def data_packet(seqno=0, flow_id=1):
    return NdpDataPacket(flow_id, 0, 1, seqno, payload_bytes=8936)


class TestClassification:
    def test_all_packet_classes(self):
        assert classify(NdpPull(1, 0, 1, pull_counter=3)) == "pull"
        assert classify(NdpAck(1, 0, 1, 0)) == "ack"
        assert classify(NdpNack(1, 0, 1, 0)) == "nack"  # not misread as "ack"
        packet = data_packet()
        assert classify(packet) == "data"
        packet.trim(64)
        assert classify(packet) == "header"

    def test_unknown_class_in_rule_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector().drop(classes={"pulls"})  # typo must not be silent


class TestRuleGating:
    def test_skip_and_max_count(self):
        injector = FaultInjector()
        rule = injector.drop(classes={"data"}, skip=2, max_count=3)
        verdicts = [injector.inspect(data_packet(i))[0] for i in range(8)]
        assert verdicts == [PASS, PASS, DROP, DROP, DROP, PASS, PASS, PASS]
        # matching stops counting once the rule is exhausted
        assert rule.matched == 5
        assert rule.injected == 3
        assert rule.exhausted

    def test_every_kth(self):
        injector = FaultInjector()
        injector.drop(classes={"data"}, every_kth=3)
        verdicts = [injector.inspect(data_packet(i))[0] for i in range(6)]
        assert verdicts == [DROP, PASS, PASS, DROP, PASS, PASS]

    def test_flow_and_predicate_selectors(self):
        injector = FaultInjector()
        injector.drop(classes={"pull"}, flow_id=7, predicate=lambda p: p.pull_counter >= 3)
        keep = injector.inspect(NdpPull(7, 0, 1, pull_counter=2))
        wrong_flow = injector.inspect(NdpPull(8, 0, 1, pull_counter=5))
        dropped = injector.inspect(NdpPull(7, 0, 1, pull_counter=3))
        assert keep == (PASS, 0)
        assert wrong_flow == (PASS, 0)
        assert dropped == (DROP, 0)

    def test_probability_is_seeded_and_partial(self):
        def count(seed):
            injector = FaultInjector(seed=seed)
            injector.drop(classes={"data"}, probability=0.3)
            return sum(
                injector.inspect(data_packet(i))[0] == DROP for i in range(200)
            )

        assert count(1) == count(1)  # deterministic per seed
        assert 20 < count(1) < 100  # and actually partial

    def test_delay_rule_returns_extra_delay(self):
        injector = FaultInjector()
        injector.delay(1234, classes={"ack"})
        assert injector.inspect(NdpAck(1, 0, 1, 0)) == (DELAY, 1234)

    def test_trim_rule_mutates_in_place_and_passes(self):
        injector = FaultInjector()
        injector.trim(classes={"data"})
        packet = data_packet()
        assert injector.inspect(packet) == (PASS, 0)
        assert packet.is_header_only and packet.size == 64

    def test_disabled_injector_passes_everything(self):
        injector = FaultInjector()
        injector.drop(classes={"data"})
        injector.enabled = False
        assert injector.inspect(data_packet()) == (PASS, 0)

    def test_rule_validation(self):
        with pytest.raises(ValueError):
            FaultRule("reorder")
        with pytest.raises(ValueError):
            FaultRule(DROP, every_kth=0)
        with pytest.raises(ValueError):
            FaultRule(DELAY, delay_ps=0)
        with pytest.raises(ValueError):
            FaultRule(DROP, probability=0.0)


class TestTappedElements:
    def test_tapped_pipe_drop_delay_and_pass(self):
        eventlist = EventList()
        injector = FaultInjector()
        injector.drop(classes={"data"}, max_count=1)
        injector.delay(microseconds(10), classes={"data"}, max_count=1)
        sink = CountingSink()
        pipe = TappedPipe(eventlist, microseconds(1), injector.inspect)
        route = Route([pipe, sink])
        for seqno in range(3):  # dropped, delayed, passed
            packet = data_packet(seqno)
            packet.set_route(route)
            packet.send_to_next_hop()
        eventlist.run()
        assert pipe.packets_dropped == 1
        assert pipe.packets_delayed == 1
        assert sink.packets_received == 2
        # the delayed packet defines the drain time: propagation + extra
        assert eventlist.now() == microseconds(11)

    def test_tapped_queue_admission_faults(self):
        eventlist = EventList()
        injector = FaultInjector()
        injector.drop(classes={"data"}, max_count=1)
        sink = CountingSink()
        queue = TappedQueue(eventlist, gbps(10), 10 * 9000, injector.inspect)
        route = Route([queue, sink])
        for seqno in range(3):  # first dropped, rest serialized
            packet = data_packet(seqno)
            packet.set_route(route)
            packet.send_to_next_hop()
        eventlist.run()
        assert queue.faults_dropped == 1
        assert queue.stats.packets_dropped == 1
        assert sink.packets_received == 2


class TestZeroPerturbation:
    def test_rule_free_injector_is_bit_identical(self):
        # The acceptance bar of the whole layer: taps installed on every
        # endpoint, no rule ever matching, and the seeded run's records and
        # executed-event count must not change at all.
        def run(injector):
            eventlist, network, flows = build_incast(injector=injector)
            run_to_quiescence(eventlist)
            return record_tuples(flows), eventlist.events_executed

        bare = run(None)
        tapped = run(FaultInjector(seed=99))
        assert bare == tapped

    def test_non_matching_rule_is_bit_identical(self):
        def run(injector):
            eventlist, network, flows = build_incast(injector=injector)
            run_to_quiescence(eventlist)
            return record_tuples(flows), eventlist.events_executed

        injector = FaultInjector(seed=99)
        injector.drop(classes={"pull"}, flow_id=10**9)  # matches nothing
        assert run(None) == run(injector)
