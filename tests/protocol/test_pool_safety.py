"""Slot-pool safety: the generation-stamp guard and the leak invariant.

The columnar packet core (``repro.sim.pool``) recycles packet facades and
slots aggressively; what keeps that safe is the generation stamp — a freed
facade can always be *detected* as freed, a double free always raises, and
the conformance suite's :func:`~tests.protocol.scenarios.assert_no_leaks`
asserts every slot is back on a free list once the event list drains.
These tests pin each of those guarantees directly.
"""

from __future__ import annotations

import pytest

from repro.core.packets import NdpAck, NdpDataPacket
from repro.sim.packet import PacketPriority
from repro.sim.pool import PacketPool, PacketPoolError

from tests.protocol.scenarios import assert_no_leaks, build_incast, run_to_quiescence


def _filled(pool: PacketPool, cls=NdpDataPacket, seqno: int = 7) -> NdpDataPacket:
    """Allocate a facade and write every field ``release`` reads back."""
    packet = pool.get(cls)
    packet.flow_id = 3
    packet.src = 1
    packet.dst = 2
    packet.size = 9000
    packet.original_size = 9000
    packet.seqno = seqno
    packet.route = None
    packet.hop = 0
    packet.priority = PacketPriority.LOW
    packet.is_header_only = False
    packet.bounced = False
    packet.ecn_capable = False
    packet.ecn_ce = False
    packet.path_id = 0
    packet.send_time = 0
    return packet


class TestGenerationGuard:
    def test_double_free_raises(self):
        pool = PacketPool()
        packet = _filled(pool)
        packet.release()
        with pytest.raises(PacketPoolError, match="double free|stale handle"):
            packet.release()

    def test_stale_facade_reports_freed(self):
        pool = PacketPool()
        packet = _filled(pool)
        assert not packet.is_freed()
        packet.release()
        assert packet.is_freed()

    def test_release_through_stale_handle_after_revival_raises(self):
        """The classic use-after-free: hold the facade across a free/reuse."""
        pool = PacketPool()
        stale = _filled(pool, seqno=1)
        handle = stale._handle
        stale.release()
        revived = pool.get(NdpDataPacket)  # same facade object, new life
        assert revived is stale and revived._handle == handle
        # simulate the stale alias: a second reference whose _gen predates
        # the revival must not be able to free the new life's slot
        revived._gen -= 1
        with pytest.raises(PacketPoolError):
            pool.release(revived)

    def test_revival_reuses_slot_and_bumps_generation(self):
        pool = PacketPool()
        first = _filled(pool, seqno=11)
        handle = first._handle
        generation = pool.generation[handle]
        first.release()
        assert pool.generation[handle] == generation + 1
        second = pool.get(NdpDataPacket)
        assert second._handle == handle  # LIFO free list: same slot back
        assert not second.is_freed()
        assert pool.live() == 1 and pool.reused == 1

    def test_freed_repr_never_reads_slot_fields(self):
        pool = PacketPool(debug=True)
        packet = _filled(pool, seqno=42)
        packet.release()
        rendered = repr(packet)
        assert "freed slot" in rendered
        assert "42" not in rendered  # field values must not leak through

    def test_debug_mode_poisons_freed_facades(self):
        pool = PacketPool(debug=True)
        packet = _filled(pool, seqno=42)
        packet.release()
        assert packet.size == -1 and packet.seqno == -1 and packet.route is None

    def test_release_audits_columns(self):
        """The columns keep the last on-wire state, readable post-free."""
        pool = PacketPool(debug=True)
        packet = _filled(pool, seqno=42)
        handle = packet._handle
        packet.release()
        state = pool.slot_state(handle)
        assert state["seqno"] == 42 and state["size"] == 9000
        assert state["generation"] == 1

    def test_unpooled_release_is_a_noop(self):
        packet = NdpAck(flow_id=1, src=0, dst=1, seqno=0)
        packet.release()  # _pool is None: shared drop paths rely on this
        assert not packet.is_freed()

    def test_reserve_preallocates_free_slots(self):
        pool = PacketPool()
        pool.reserve(NdpDataPacket, 4)
        assert len(pool) == 4 and pool.live() == 0
        packet = pool.get(NdpDataPacket)
        assert pool.reused == 1 and pool.constructed == 0
        assert not packet.is_freed()


class TestScenarioLeakInvariant:
    def test_drained_incast_returns_every_slot(self):
        """End to end: after a contended run every slot is on a free list."""
        eventlist, network, flows = build_incast(senders=8)
        run_to_quiescence(eventlist)
        assert all(flow.complete for flow in flows)
        assert_no_leaks(network)
        pool = network.pool
        # the run must actually have exercised the pool, or the invariant
        # above is vacuous
        assert pool.freed > 0 and pool.reused > 0
        assert pool.live_handles() == []
