"""Protocol conformance under fabric link failures (the PR 4 headline).

The paper's resilience claim, end to end: when a core link dies mid-transfer,
NDP — per-packet spraying, the path-penalty scoreboard, and the network
layer's ``update_routes`` pruning — completes every flow, while a per-flow
ECMP transport stays hashed onto the dead path and demonstrably degrades.
Recovery must restore the pruned path (with its scoreboard history) to every
selector.

All scenarios run on a seeded k=4 FatTree with inter-pod flows that cross
the core, and drive link events through a
:class:`~repro.topology.FabricController` so the changes land at exact
simulated times.
"""

from __future__ import annotations

import pytest

from repro.core.config import NdpConfig
from repro.harness.experiment import assert_all_complete, liveness_report
from repro.harness.ndp_network import NdpNetwork
from repro.harness.baseline_networks import TcpNetwork
from repro.sim import units
from repro.sim.eventlist import EventList
from repro.topology import FabricController, FatTreeTopology

#: flows 0..3 live in pod 0, 12..15 in pod 3 of a k=4 FatTree, so every
#: transfer crosses the core — where the failure experiments cut
_PAIRS = [(0, 12), (1, 13), (2, 14), (3, 15)]

_FLOW_BYTES = 500_000
_FAIL_AT = units.microseconds(150)  # mid-transfer: first windows are in flight


def _build_ndp(seed: int = 1):
    eventlist = EventList()
    network = NdpNetwork.build(
        eventlist, FatTreeTopology, config=NdpConfig(), seed=seed, k=4
    )
    flows = [
        network.create_flow(src, dst, _FLOW_BYTES) for src, dst in _PAIRS
    ]
    return eventlist, network, flows


class TestNdpMidTransferFailure:
    def test_all_flows_complete_and_dead_path_is_pruned(self):
        eventlist, network, flows = _build_ndp()
        topology = network.topology
        core_node, agg_node = topology.core_agg_pair(core=0, pod=3)
        controller = FabricController(topology)
        controller.schedule_fail(_FAIL_AT, core_node, agg_node)

        eventlist.run(until=units.milliseconds(30))

        # the headline: every transfer delivered in full despite the cut
        report = assert_all_complete(flows)
        assert report.all_complete
        # the dead path (core 0) was pruned from every affected path manager
        for flow in flows:
            assert 0 not in {r.path_id for r in flow.src.paths.routes}
            assert len(flow.src.paths.routes) == 3
        assert len(controller.fired) == 2

    def test_failure_actually_cost_something(self):
        """The cut must be real: packets died and were recovered."""
        eventlist, network, flows = _build_ndp()
        topology = network.topology
        controller = FabricController(topology)
        controller.schedule_fail(_FAIL_AT, *topology.core_agg_pair(core=0, pod=3))
        eventlist.run(until=units.milliseconds(30))
        assert_all_complete(flows)
        dead_queue_drops = sum(
            record.queue.stats.packets_dropped
            for record in (
                topology.link("core0", "pod3_agg0"),
                topology.link("pod3_agg0", "core0"),
            )
        )
        recoveries = sum(
            f.sender_record.retransmissions + f.sender_record.rtx_from_timeout
            for f in flows
        )
        assert dead_queue_drops > 0
        assert recoveries > 0

    def test_unaffected_pairs_keep_full_path_set(self):
        eventlist = EventList()
        network = NdpNetwork.build(
            eventlist, FatTreeTopology, config=NdpConfig(), seed=1, k=4
        )
        topology = network.topology
        affected = network.create_flow(0, 12, _FLOW_BYTES)
        bystander = network.create_flow(4, 8, _FLOW_BYTES)  # pod1 -> pod2
        controller = FabricController(topology)
        controller.schedule_fail(_FAIL_AT, *topology.core_agg_pair(core=0, pod=3))
        eventlist.run(until=units.milliseconds(30))
        assert affected.complete and bystander.complete
        assert len(affected.src.paths.routes) == 3
        assert len(bystander.src.paths.routes) == 4

    def test_quiescence_and_no_leaks_after_failure_run(self):
        """The leak invariant holds with a failure active: nothing lingers."""
        eventlist, network, flows = _build_ndp()
        controller = FabricController(network.topology)
        controller.schedule_fail(
            _FAIL_AT, *network.topology.core_agg_pair(core=0, pod=3)
        )
        eventlist.run(max_events=2_000_000)
        assert eventlist.pending_events() == 0
        assert_all_complete(flows)
        for pacer in network._pacers.values():
            assert pacer.outstanding() == 0, f"{pacer.name} holds queued pulls"
            assert not pacer._tick_armed, f"{pacer.name} tick still armed"


class TestPerFlowEcmpControl:
    def test_tcp_flow_on_dead_path_demonstrably_degrades(self):
        """The control: a per-flow-ECMP TCP transfer stays stuck on the cut path."""
        eventlist = EventList()
        network = TcpNetwork.build(eventlist, FatTreeTopology, seed=1, k=4)
        topology = network.topology
        flows = [
            network.create_flow(src, dst, _FLOW_BYTES) for src, dst in _PAIRS
        ]
        # per-flow ECMP froze each flow onto one core at creation; cut the
        # core carrying flow 0 mid-transfer
        victim_core = flows[0].src.route.path_id
        victims = [f for f in flows if f.src.route.path_id == victim_core]
        survivors = [f for f in flows if f.src.route.path_id != victim_core]
        assert survivors, "seed must spread the four flows over >1 core"
        controller = FabricController(topology)
        controller.schedule_fail(
            _FAIL_AT, *topology.core_agg_pair(core=victim_core, pod=3)
        )

        eventlist.run(until=units.milliseconds(50))

        # flows hashed onto live cores complete; the stuck ones do not —
        # per-flow ECMP cannot move a live flow off its path
        assert all(f.complete for f in survivors)
        assert not any(f.complete for f in victims)
        report = liveness_report(flows)
        assert report.completed_flows == len(survivors)
        # the NDP run over the same cut (above) completes everything: that
        # contrast is the paper's resilience claim

    def test_partitioned_pair_raises_a_clear_error_at_flow_creation(self):
        eventlist = EventList()
        tcp = TcpNetwork.build(eventlist, FatTreeTopology, seed=1, k=4)
        ndp = NdpNetwork.build(
            EventList(), FatTreeTopology, config=NdpConfig(), seed=1, k=4
        )
        for network in (tcp, ndp):
            topology = network.topology
            tor = topology.tor_of_host(15)
            for src, dst in topology.uplinks_of_node(tor):
                topology.fail_link_pair(src, dst)
            with pytest.raises(RuntimeError, match="partitioned by link failures"):
                network.create_flow(0, 15, 90_000)

    def test_new_tcp_flows_rehash_over_surviving_paths(self):
        """ECMP groups recompute: flows created after the cut avoid it."""
        eventlist = EventList()
        network = TcpNetwork.build(eventlist, FatTreeTopology, seed=1, k=4)
        topology = network.topology
        topology.fail_link_pair(*topology.core_agg_pair(core=0, pod=3))
        flows = [
            network.create_flow(src, dst, 90_000) for src, dst in _PAIRS
        ]
        assert all(f.src.route.path_id != 0 for f in flows)
        eventlist.run(until=units.milliseconds(50))
        assert all(f.complete for f in flows)


class TestRecovery:
    def test_recovery_restores_pruned_path_with_scoreboard_history(self):
        eventlist = EventList()
        network = NdpNetwork.build(
            eventlist, FatTreeTopology, config=NdpConfig(), seed=1, k=4
        )
        topology = network.topology
        # a long transfer that spans the whole outage
        flow = network.create_flow(0, 12, 8_000_000)
        controller = FabricController(topology)
        fail_at = units.microseconds(500)
        recover_at = units.milliseconds(3)
        controller.schedule_outage(
            *topology.core_agg_pair(core=0, pod=3), fail_at, recover_at
        )

        eventlist.run(until=units.milliseconds(1))
        # mid-outage: path 0 pruned from the forward and reverse selectors
        assert {r.path_id for r in flow.src.paths.routes} == {1, 2, 3}
        assert {r.path_id for r in flow.sink.reverse_paths.routes} == {1, 2, 3}
        score_before = flow.src.paths.scores[0]
        assert score_before.acks > 0  # the path earned history pre-failure

        eventlist.run(until=units.milliseconds(4))
        # post-recovery: the path is back, with the same scoreboard entry
        assert {r.path_id for r in flow.src.paths.routes} == {0, 1, 2, 3}
        assert {r.path_id for r in flow.sink.reverse_paths.routes} == {0, 1, 2, 3}
        assert flow.src.paths.scores[0] is score_before

        eventlist.run(until=units.milliseconds(40))
        assert flow.complete
        # the restored path carried traffic again after recovery
        assert flow.src.paths.scores[0].acks > score_before.acks or (
            flow.src.paths.scores[0].samples >= score_before.samples
        )

    def test_recovered_path_returns_to_ecmp_selector(self):
        eventlist = EventList()
        network = TcpNetwork.build(eventlist, FatTreeTopology, seed=1, k=4)
        topology = network.topology
        pair = topology.core_agg_pair(core=0, pod=3)
        topology.fail_link_pair(*pair)
        selector = network._ecmp_selector(0, 12)
        assert {p.path_id for p in selector.paths} == {1, 2, 3}
        topology.recover_link_pair(*pair)
        assert {p.path_id for p in selector.paths} == {0, 1, 2, 3}

    def test_flapping_link_converges(self):
        """Two full fail/recover cycles mid-transfer still deliver everything."""
        eventlist, network, flows = _build_ndp()
        topology = network.topology
        pair = topology.core_agg_pair(core=0, pod=3)
        controller = FabricController(topology)
        controller.schedule_outage(*pair, units.microseconds(100), units.microseconds(300))
        controller.schedule_outage(*pair, units.microseconds(400), units.microseconds(600))
        eventlist.run(until=units.milliseconds(30))
        assert_all_complete(flows)
        assert [e.action for e in controller.timeline()] == [
            "fail", "fail", "recover", "recover", "fail", "fail", "recover", "recover",
        ]


class TestDeterminism:
    def test_failure_scenario_is_bit_reproducible(self):
        """Same seed + same scheduled events => identical flow records."""

        def run():
            eventlist, network, flows = _build_ndp(seed=7)
            controller = FabricController(network.topology)
            controller.schedule_outage(
                *network.topology.core_agg_pair(core=1, pod=3),
                units.microseconds(200),
                units.milliseconds(2),
            )
            eventlist.run(until=units.milliseconds(30))
            return [
                (
                    f.record.finish_time_ps,
                    f.record.bytes_delivered,
                    f.sender_record.retransmissions,
                    f.sender_record.rtx_from_timeout,
                )
                for f in flows
            ], eventlist.events_executed

        assert run() == run()
