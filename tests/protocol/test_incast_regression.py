"""Regression test for the 4-of-432 incast deadlock (ROADMAP liveness gap).

Reproduces the ``incast_432x90kB`` perf scenario's shape: 432 synchronized
senders, 90 kB each, into one leaf-spine receiver.  Before the liveness
subsystem, the first-RTT trim storm overflowed header queues, the final
PULLs of four transfers were lost, and their senders waited forever with
non-empty retransmission queues.  All 432 flows must now complete and drain
cleanly.  This is the slowest test of the suite (~1 s); it runs the full
benchmark topology on purpose — the deadlock only appears at this scale.
"""

from __future__ import annotations

import random

from repro.core.config import NdpConfig
from repro.harness.experiment import assert_all_complete, start_incast
from repro.harness.ndp_network import NdpNetwork
from repro.sim.eventlist import EventList
from repro.topology.leafspine import LeafSpineTopology

from tests.protocol.scenarios import assert_no_leaks, run_to_quiescence


def test_incast_432x90kB_completes_all_flows():
    eventlist = EventList()
    network = NdpNetwork.build(
        eventlist,
        LeafSpineTopology,
        config=NdpConfig(),
        seed=1,
        leaves=28,
        spines=8,
        hosts_per_leaf=16,
    )
    receiver = 0
    senders = [h for h in network.topology.hosts() if h != receiver][:432]
    flows = start_incast(network, receiver, senders, bytes_per_sender=90_000)
    run_to_quiescence(eventlist, max_events=5_000_000)

    report = assert_all_complete(flows)
    assert report.completed_flows == 432
    # the deadlock signature must be gone: no sender holds a non-empty
    # retransmission queue once the event list is dry
    assert report.stuck_senders == []
    assert all(flow.src.retransmit_queue_depth() == 0 for flow in flows)
    # the four previously stuck flows were recovered by the liveness
    # subsystem, so at least one mechanism must have fired
    assert report.pull_retries + report.keepalive_retransmits > 0
    # leak invariant at benchmark scale: no timers or pulls survive drain
    assert_no_leaks(network)


def test_small_seeded_incasts_remain_deterministic_with_liveness_counters():
    """Same seed → identical records including the new liveness counters."""

    def run(seed):
        eventlist = EventList()
        network = NdpNetwork.build(
            eventlist,
            LeafSpineTopology,
            config=NdpConfig(),
            seed=seed,
            leaves=4,
            spines=2,
            hosts_per_leaf=4,
        )
        senders = [h for h in network.topology.hosts() if h != 0][:12]
        flows = start_incast(network, 0, senders, bytes_per_sender=90_000, start_time_ps=0)
        run_to_quiescence(eventlist)
        assert_no_leaks(network)
        return [
            (
                f.record.flow_id,
                f.record.finish_time_ps,
                f.record.bytes_delivered,
                f.record.pull_retries,
                f.sender_record.keepalive_retransmits,
            )
            for f in flows
        ]

    assert run(3) == run(3)
    assert run(3) != run(4)
