"""Shared machinery of the protocol-conformance suite.

Every scenario here follows the same recipe (the methodology of
simulation-based protocol validation): build a small seeded topology, wire
an adversarial :class:`~repro.sim.faults.FaultInjector` into the network,
drive the event list to quiescence, then assert the completion invariant
(every transfer delivered in full, every retransmission queue drained) and
the *leak invariant* (the event list fully drained, no armed timers, no
pending pulls — guarding the generation-stamped Timer machinery).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.config import NdpConfig
from repro.harness.experiment import start_incast
from repro.harness.ndp_network import NdpFlow, NdpNetwork
from repro.sim.eventlist import EventList
from repro.sim.faults import FaultInjector
from repro.topology.simple import SingleSwitchTopology

#: generous ceiling on executed events; a scenario that hits it is livelocked
MAX_EVENTS = 2_000_000


def build_incast(
    senders: int = 8,
    bytes_per_sender: int = 45_000,
    config: Optional[NdpConfig] = None,
    injector: Optional[FaultInjector] = None,
    seed: int = 1,
    priority_sender: Optional[int] = None,
) -> Tuple[EventList, NdpNetwork, List[NdpFlow]]:
    """A seeded single-switch incast: hosts 1..senders each send to host 0.

    Small enough to run in milliseconds, contended enough that the first-RTT
    burst overflows the 8-packet data queue and produces trims/NACKs — the
    precondition for every pull-loss deadlock scenario.
    """
    eventlist = EventList()
    network = NdpNetwork.build(
        eventlist,
        SingleSwitchTopology,
        config=config if config is not None else NdpConfig(),
        seed=seed,
        hosts=senders + 1,
        fault_injector=injector,
    )
    flows = start_incast(
        network,
        0,
        list(range(1, senders + 1)),
        bytes_per_sender=bytes_per_sender,
        priority_sender=priority_sender,
    )
    return eventlist, network, flows


def run_to_quiescence(eventlist: EventList, max_events: int = MAX_EVENTS) -> None:
    """Drain the event list completely; fail loudly on a runaway schedule."""
    start = eventlist.events_executed
    eventlist.run(max_events=max_events)
    assert eventlist.pending_events() == 0, (
        f"event list not quiescent after {eventlist.events_executed - start} events "
        f"({eventlist.pending_events()} still pending) — livelocked scenario?"
    )


def assert_no_leaks(network: NdpNetwork) -> None:
    """The leak invariant: a drained run leaves no live timers or pulls.

    Checked after *every* scenario in this suite, whether or not the flows
    completed: the scheduler must hold zero entries, every pull pacer must
    be idle with zero queued requests, and every liveness/RTO timer must be
    disarmed.  This guards the PR 1 generation-stamped Timer machinery as
    much as the new watchdogs.

    The columnar packet core extends the invariant to slots: once the event
    list is quiescent no packet can be in flight, so every pool slot must be
    back on its free list.  A positive ``live()`` count means some path
    consumed a packet without releasing it — the slot-pool equivalent of a
    memory leak, invisible to the digest checks because leaked slots never
    get reused.
    """
    eventlist = network.eventlist
    assert eventlist.pending_events() == 0
    pool = network.pool
    assert pool.live() == 0, (
        f"{pool.live()} pool slot(s) still live after drain "
        f"(leaked handles: {pool.live_handles()[:20]})"
    )
    for pacer in network._pacers.values():
        assert pacer.outstanding() == 0, f"{pacer.name} holds queued pulls"
        assert not pacer._tick_armed, f"{pacer.name} tick still armed"
    for flow in network.flows:
        retry = flow.sink._retry_timer
        assert retry is None or not retry.armed, f"flow {flow.flow_id} retry timer armed"
        keepalive = flow.src._keepalive_timer
        assert keepalive is None or not keepalive.armed, (
            f"flow {flow.flow_id} keepalive armed"
        )
        for seqno, timer in flow.src._rto_timers.items():
            assert not timer.armed, f"flow {flow.flow_id} RTO for seqno {seqno} armed"


def record_tuples(flows: Sequence[NdpFlow]) -> List[tuple]:
    """Both endpoints' flow records as comparable tuples (digest material)."""
    out = []
    for flow in flows:
        for record in (flow.record, flow.sender_record):
            out.append(
                (
                    record.flow_id,
                    record.src,
                    record.dst,
                    record.flow_size_bytes,
                    record.start_time_ps,
                    record.finish_time_ps,
                    record.bytes_delivered,
                    record.packets_delivered,
                    record.headers_received,
                    record.retransmissions,
                    record.rtx_from_nack,
                    record.rtx_from_bounce,
                    record.rtx_from_timeout,
                    record.pull_retries,
                    record.keepalive_retransmits,
                )
            )
    return out
