"""Coverage for :mod:`repro.routing.ecmp`.

Three properties matter to the experiments built on these selectors:

* :func:`~repro.routing.ecmp.flow_hash` must spread flow ids *uniformly*
  over the path set for any salt — Python's identity hash of ints would
  assign consecutive flows to consecutive paths and hide ECMP collisions;
* selections must be deterministic for a given seed/salt, including across
  a mid-run path-set update (the fabric-dynamics contract);
* updating the path set must actually re-hash: flows map onto the
  surviving paths only, while an unchanged set keeps every assignment.
"""

from __future__ import annotations

from collections import Counter

import pytest
import random

from repro.routing.ecmp import (
    EcmpFlowSelector,
    RandomPacketSelector,
    ecmp_path,
    flow_hash,
)
from repro.sim.packet import Route


def make_paths(count: int):
    return [Route([], path_id=i) for i in range(count)]


class TestFlowHash:
    def test_stable(self):
        assert flow_hash(42) == flow_hash(42)
        assert flow_hash(42, salt=7) == flow_hash(42, salt=7)

    def test_salt_changes_mapping(self):
        values = {flow_hash(42, salt=s) for s in range(16)}
        assert len(values) == 16

    def test_uniformity_across_salt_sweep(self):
        """Bucket occupancy stays near-uniform for every salt.

        2048 flows over 16 paths gives an expectation of 128 per bucket with
        a standard deviation of ~11; a ±35% band (44 absolute) is over 3.9
        sigma per bucket — loose enough to never flake, tight enough to
        catch an identity-style hash (which would put 128 consecutive ids
        in each bucket but collapse under the modulo to a perfectly even —
        yet structured — pattern; structure is caught by the collision test
        below).
        """
        flows, buckets = 2048, 16
        expected = flows / buckets
        for salt in range(8):
            counts = Counter(flow_hash(f, salt) % buckets for f in range(flows))
            assert len(counts) == buckets
            for bucket in range(buckets):
                assert abs(counts[bucket] - expected) < 0.35 * expected, (
                    f"salt={salt} bucket={bucket} count={counts[bucket]}"
                )

    def test_no_sequential_structure(self):
        """Consecutive flow ids must not land on consecutive paths."""
        buckets = 16
        assignments = [flow_hash(f) % buckets for f in range(256)]
        sequential = sum(
            1
            for a, b in zip(assignments, assignments[1:])
            if b == (a + 1) % buckets
        )
        # a uniform hash gives ~1/16 of pairs; identity hashing gives ~100%
        assert sequential < len(assignments) * 0.25

    def test_pairwise_collision_rate_is_birthday_not_clustered(self):
        """Collision fraction over a salt sweep stays near 1/paths."""
        flows, buckets = 512, 16
        for salt in (0, 1, 2, 3):
            assignments = [flow_hash(f, salt) % buckets for f in range(flows)]
            counts = Counter(assignments)
            # probability two random flows share a path
            pairs = flows * (flows - 1) / 2
            colliding = sum(c * (c - 1) / 2 for c in counts.values())
            rate = colliding / pairs
            assert rate == pytest.approx(1 / buckets, rel=0.25)


class TestEcmpPath:
    def test_empty_paths_rejected(self):
        with pytest.raises(ValueError):
            ecmp_path([], flow_id=1)

    def test_selection_is_hash_modulo(self):
        paths = make_paths(8)
        for flow_id in range(32):
            chosen = ecmp_path(paths, flow_id)
            assert chosen.path_id == flow_hash(flow_id) % 8


class TestEcmpFlowSelector:
    def test_stable_assignment(self):
        selector = EcmpFlowSelector(make_paths(4))
        first = [selector.path_for_flow(f).path_id for f in range(64)]
        second = [selector.path_for_flow(f).path_id for f in range(64)]
        assert first == second

    def test_update_paths_rehashes_over_survivors(self):
        paths = make_paths(4)
        selector = EcmpFlowSelector(paths)
        survivors = [p for p in paths if p.path_id != 2]
        selector.update_paths(survivors)
        assigned = {selector.path_for_flow(f).path_id for f in range(256)}
        assert assigned == {0, 1, 3}

    def test_update_paths_identical_set_keeps_assignments(self):
        paths = make_paths(4)
        selector = EcmpFlowSelector(paths)
        before = [selector.path_for_flow(f).path_id for f in range(64)]
        selector.update_paths(list(paths))
        assert [selector.path_for_flow(f).path_id for f in range(64)] == before

    def test_update_paths_rejects_empty(self):
        selector = EcmpFlowSelector(make_paths(2))
        with pytest.raises(ValueError):
            selector.update_paths([])

    def test_determinism_across_seeds_after_update(self):
        """Two identically-constructed selectors stay in lockstep through updates."""
        def drive(salt: int):
            paths = make_paths(8)
            selector = EcmpFlowSelector(paths, salt=salt)
            trace = [selector.path_for_flow(f).path_id for f in range(32)]
            selector.update_paths([p for p in paths if p.path_id not in (1, 5)])
            trace += [selector.path_for_flow(f).path_id for f in range(32)]
            selector.update_paths(paths)
            trace += [selector.path_for_flow(f).path_id for f in range(32)]
            return trace

        assert drive(3) == drive(3)
        assert drive(3) != drive(4)  # the salt matters


class TestRandomPacketSelector:
    def test_determinism_across_identical_seeds_after_update(self):
        def drive():
            paths = make_paths(8)
            selector = RandomPacketSelector(paths, rng=random.Random(99))
            trace = [selector.next_route().path_id for _ in range(32)]
            selector.update_paths([p for p in paths if p.path_id != 3])
            trace += [selector.next_route().path_id for _ in range(32)]
            selector.update_paths(paths)
            trace += [selector.next_route().path_id for _ in range(32)]
            return trace

        assert drive() == drive()

    def test_update_paths_excludes_dead_path(self):
        paths = make_paths(4)
        selector = RandomPacketSelector(paths, rng=random.Random(1))
        selector.update_paths([p for p in paths if p.path_id != 0])
        assert all(selector.next_route().path_id != 0 for _ in range(128))

    def test_update_paths_rejects_empty(self):
        selector = RandomPacketSelector(make_paths(2))
        with pytest.raises(ValueError):
            selector.update_paths([])
