"""Tests for the DCTCP and MPTCP baselines."""

from __future__ import annotations

import random

import pytest

from repro.harness import experiment
from repro.harness.baseline_networks import DctcpNetwork, MptcpNetwork, TcpNetwork
from repro.sim import units
from repro.sim.eventlist import EventList
from repro.topology import BackToBackTopology, FatTreeTopology, SingleSwitchTopology
from repro.transports.dctcp import DctcpConfig
from repro.transports.mptcp import MptcpConfig, MptcpConnection


class TestDctcpConfig:
    def test_requires_valid_gain(self):
        with pytest.raises(ValueError):
            DctcpConfig(alpha_gain=0.0)

    def test_ecn_enabled_by_default(self):
        assert DctcpConfig().ecn_enabled is True


class TestDctcpBehaviour:
    def test_single_flow_completes_at_line_rate(self):
        eventlist = EventList()
        network = DctcpNetwork.build(eventlist, BackToBackTopology)
        flow = network.create_flow(0, 1, 20_000_000)
        eventlist.run(until=units.milliseconds(60))
        assert flow.complete
        assert flow.record.throughput_bps() > 0.8 * units.gbps(10)

    def test_queue_held_near_marking_threshold(self):
        """DCTCP's whole point: standing queues stay close to K, far below
        the 200-packet buffer a loss-based TCP would fill."""
        eventlist = EventList()
        network = DctcpNetwork.build(eventlist, SingleSwitchTopology, hosts=3)
        network.create_flow(1, 0, 100_000_000)
        network.create_flow(2, 0, 100_000_000)
        eventlist.run(until=units.milliseconds(30))
        bottleneck = network.topology.downlink_queue(0)
        threshold = DctcpNetwork.MARKING_THRESHOLD_PACKETS * network.config.packet_bytes
        buffer_bytes = bottleneck.max_queue_bytes
        assert bottleneck.stats.packets_marked > 0
        assert bottleneck.stats.max_queue_bytes < 0.6 * buffer_bytes
        assert bottleneck.stats.max_queue_bytes >= threshold  # it does reach K

    def test_alpha_tracks_congestion(self):
        eventlist = EventList()
        network = DctcpNetwork.build(eventlist, SingleSwitchTopology, hosts=3)
        a = network.create_flow(1, 0, 50_000_000)
        network.create_flow(2, 0, 50_000_000)
        eventlist.run(until=units.milliseconds(20))
        assert a.src.alpha > 0.0
        assert a.src.alpha <= 1.0

    def test_dctcp_beats_tcp_on_short_flow_fct_under_load(self):
        """Shorter queues => better short-flow FCT (the Figure 15 mechanism).

        Two long flows oversubscribe the destination link so a standing queue
        forms; with plain TCP it sits near the full 200-packet buffer, with
        DCTCP near the 30-packet marking threshold, and the short flow's
        completion time reflects that queueing delay.
        """

        def short_fct(network_cls):
            eventlist = EventList()
            network = network_cls.build(eventlist, SingleSwitchTopology, hosts=4)
            network.create_flow(1, 0, 200_000_000)  # long background flows
            network.create_flow(3, 0, 200_000_000)
            eventlist.run(until=units.milliseconds(20))  # let the queue build
            short = network.create_flow(
                2, 0, 90_000, start_time_ps=eventlist.now()
            )
            eventlist.run(until=eventlist.now() + units.milliseconds(200))
            assert short.complete
            return short.record.completion_time_ps()

        assert short_fct(DctcpNetwork) < short_fct(TcpNetwork)


class TestMptcpConfig:
    def test_requires_at_least_one_subflow(self):
        with pytest.raises(ValueError):
            MptcpConfig(subflows=0)


class TestMptcpBehaviour:
    def test_connection_requires_build_before_start(self):
        eventlist = EventList()
        connection = MptcpConnection(eventlist, 1, 0, 1, 100_000)
        with pytest.raises(RuntimeError):
            connection.start()

    def test_uses_one_subflow_per_path(self):
        eventlist = EventList()
        network = MptcpNetwork.build(
            eventlist, FatTreeTopology, k=4, config=MptcpConfig(subflows=4)
        )
        flow = network.create_flow(0, 15, 1_000_000)
        assert len(flow.connection.subflows) == 4
        used_paths = {s.route.path_id for s in flow.connection.subflows}
        assert used_paths == {0, 1, 2, 3}

    def test_transfer_completes_and_uses_multiple_paths(self):
        eventlist = EventList()
        network = MptcpNetwork.build(eventlist, FatTreeTopology, k=4)
        flow = network.create_flow(0, 15, 10_000_000)
        eventlist.run(until=units.milliseconds(60))
        assert flow.complete
        per_subflow_sent = [s.packets_sent for s in flow.connection.subflows]
        assert sum(1 for count in per_subflow_sent if count > 0) >= 2

    def test_aggregate_goodput_beats_single_path_tcp_under_collisions(self):
        """The Figure 14 headline: MPTCP >> single-path TCP on a permutation."""

        def permutation_utilization(network_cls):
            eventlist = EventList()
            network = network_cls.build(eventlist, FatTreeTopology, k=4)
            flows = experiment.start_permutation(
                network, 100_000_000, rng=random.Random(11)
            )
            result = experiment.measure_throughput(
                network, flows, units.milliseconds(2)
            )
            return result.utilization

        assert permutation_utilization(MptcpNetwork) > permutation_utilization(TcpNetwork) + 0.1

    def test_lia_keeps_aggregate_window_bounded(self):
        # two subflows sharing one bottleneck must not behave like two
        # independent TCP flows: the coupled increase keeps the total window
        # comparable to what a single flow would get
        eventlist = EventList()
        config = MptcpConfig(subflows=2, handshake=False)
        network = MptcpNetwork.build(eventlist, SingleSwitchTopology, hosts=2, config=config)
        flow = network.create_flow(0, 1, 200_000_000)
        eventlist.run(until=units.milliseconds(30))
        queue = network.topology.downlink_queue(1)
        # the bottleneck queue never grows beyond the configured buffer (no
        # pathological overshoot from uncoupled windows)
        assert queue.stats.max_queue_bytes <= queue.max_queue_bytes
        assert flow.record.bytes_delivered > 0
