"""Tests for the TCP NewReno baseline."""

from __future__ import annotations

import pytest

from repro.harness.baseline_networks import TcpNetwork
from repro.sim import units
from repro.sim.eventlist import EventList
from repro.topology import BackToBackTopology, SingleSwitchTopology
from repro.transports.tcp import SequentialDataSource, TcpConfig


def build_single_flow(size_bytes, config=None, topology_cls=BackToBackTopology, **topo):
    eventlist = EventList()
    network = TcpNetwork.build(eventlist, topology_cls, config=config, **topo)
    flow = network.create_flow(0, network.topology.host_count - 1, size_bytes)
    return eventlist, network, flow


class TestConfig:
    def test_defaults_are_sane(self):
        config = TcpConfig()
        assert config.packet_bytes == config.mss_bytes + config.header_bytes
        assert config.min_rto_ps == units.milliseconds(200)

    def test_validation(self):
        with pytest.raises(ValueError):
            TcpConfig(mss_bytes=0)
        with pytest.raises(ValueError):
            TcpConfig(initial_window_packets=0)
        with pytest.raises(ValueError):
            TcpConfig(min_rto_ps=0)
        with pytest.raises(ValueError):
            TcpConfig(dupack_threshold=0)


class TestDataSource:
    def test_sequential_handout(self):
        source = SequentialDataSource(3)
        assert [source.take_next() for _ in range(4)] == [0, 1, 2, None]
        assert source.exhausted()
        assert source.remaining() == 0

    def test_needs_at_least_one_packet(self):
        with pytest.raises(ValueError):
            SequentialDataSource(0)


class TestSingleFlow:
    def test_short_flow_completes(self):
        eventlist, _network, flow = build_single_flow(100_000)
        eventlist.run(until=units.milliseconds(50))
        assert flow.complete
        assert flow.record.bytes_delivered == 100_000
        assert flow.src.complete

    def test_long_flow_reaches_high_throughput(self):
        eventlist, _network, flow = build_single_flow(20_000_000)
        eventlist.run(until=units.milliseconds(100))
        assert flow.complete
        assert flow.record.throughput_bps() > 0.8 * units.gbps(10)

    def test_handshake_consumes_a_round_trip(self):
        # with the handshake the first data byte arrives one RTT later than
        # with TCP Fast Open
        slow_cfg = TcpConfig(handshake=True)
        fast_cfg = TcpConfig(handshake=False)
        ev1, _n1, flow1 = build_single_flow(10_000, config=slow_cfg)
        ev1.run(until=units.milliseconds(20))
        ev2, _n2, flow2 = build_single_flow(10_000, config=fast_cfg)
        ev2.run(until=units.milliseconds(20))
        assert flow1.complete and flow2.complete
        assert (
            flow1.src.record.completion_time_ps()
            > flow2.src.record.completion_time_ps()
        )

    def test_slow_start_grows_window_exponentially(self):
        config = TcpConfig(initial_window_packets=2, handshake=False)
        eventlist, _network, flow = build_single_flow(50_000_000, config=config)
        eventlist.run(until=units.milliseconds(2))
        assert flow.src.cwnd > 16  # several doublings in a couple of ms

    def test_zero_size_flow_rejected(self):
        eventlist = EventList()
        network = TcpNetwork.build(eventlist, BackToBackTopology)
        with pytest.raises(ValueError):
            network.create_flow(0, 1, 0)

    def test_rtt_estimate_converges(self):
        eventlist, _network, flow = build_single_flow(5_000_000)
        eventlist.run(until=units.milliseconds(50))
        assert flow.src.srtt_ps is not None
        # the estimate includes self-queueing in the sender's NIC (the window
        # can reach ~1000 packets), but must stay well below the minimum RTO
        assert units.microseconds(5) < flow.src.srtt_ps < units.milliseconds(5)


class TestCongestionAndLoss:
    def test_two_flows_share_a_bottleneck_roughly_fairly(self):
        eventlist = EventList()
        # cap the window at a receive-window appropriate for datacenter RTTs;
        # without SACK, letting both windows grow far beyond the buffer makes
        # NewReno recovery pathologically slow (a known limitation recorded in
        # DESIGN.md) and is not what the paper's baselines run into.
        config = TcpConfig(max_cwnd_packets=128)
        network = TcpNetwork.build(eventlist, SingleSwitchTopology, hosts=3, config=config)
        a = network.create_flow(1, 0, 20_000_000)
        b = network.create_flow(2, 0, 20_000_000)
        duration = units.milliseconds(30)
        eventlist.run(until=duration)
        rate_a = a.record.bytes_delivered
        rate_b = b.record.bytes_delivered
        total = (rate_a + rate_b) * 8 / (duration / units.SECOND)
        assert total > 0.8 * units.gbps(10)
        assert 0.25 < rate_a / max(rate_b, 1) < 4.0

    def test_losses_trigger_fast_retransmit_not_only_timeouts(self):
        eventlist = EventList()
        # a tiny switch buffer forces drops during slow-start overshoot
        network = TcpNetwork.build(
            eventlist, SingleSwitchTopology, hosts=3, buffer_packets=16,
            config=TcpConfig(min_rto_ps=units.milliseconds(200), handshake=False),
        )
        flow = network.create_flow(1, 0, 30_000_000)
        other = network.create_flow(2, 0, 30_000_000)
        eventlist.run(until=units.milliseconds(60))
        assert network.topology.total_dropped() > 0
        assert flow.src.fast_retransmits + other.src.fast_retransmits > 0
        # fast retransmit means we did not pay a 200 ms timeout for every loss
        assert flow.src.timeouts + other.src.timeouts < network.topology.total_dropped()

    def test_retransmission_timeout_recovers_tail_loss(self):
        # a burst into a slow egress port overflows the buffer at the *tail*:
        # nothing follows the lost packets, so no duplicate ACKs are generated
        # and only the RTO can recover — the classic short-flow tail-loss case
        config = TcpConfig(
            initial_window_packets=30,
            handshake=False,
            min_rto_ps=units.milliseconds(5),
        )
        eventlist = EventList()
        network = TcpNetwork.build(
            eventlist, SingleSwitchTopology, hosts=2, buffer_packets=8, config=config
        )
        # a very slow egress port: the whole burst arrives before a single
        # departure, so everything beyond the buffer is a pure tail drop
        network.topology.set_link_rate("switch0", "host1", units.mbps(100))
        flow = network.create_flow(0, 1, 30 * config.mss_bytes)
        eventlist.run(until=units.milliseconds(400))
        assert network.topology.total_dropped() > 0
        assert flow.complete
        assert flow.src.timeouts >= 1

    def test_ecmp_collisions_reduce_minimum_throughput(self):
        # Figure 14's cause: several single-path flows hash onto one core link
        from repro.topology import FatTreeTopology
        from repro.harness import experiment
        import random

        eventlist = EventList()
        network = TcpNetwork.build(
            eventlist, FatTreeTopology, k=4, config=TcpConfig(handshake=False)
        )
        flows = experiment.start_permutation(network, 100_000_000, rng=random.Random(7))
        result = experiment.measure_throughput(
            network, flows, units.milliseconds(2)
        )
        goodputs = result.sorted_goodputs_gbps()
        assert result.utilization < 0.9  # collisions keep it well below NDP
        assert goodputs[0] < 6.0  # some flow is badly hurt by sharing a path
