"""Tests for DCQCN, pHost and the constant-rate sources."""

from __future__ import annotations

import pytest

from repro.harness.baseline_networks import DcqcnNetwork, PHostNetwork
from repro.harness.ndp_network import NdpNetwork
from repro.sim import units
from repro.sim.eventlist import EventList
from repro.sim.queues import LosslessQueue
from repro.topology import BackToBackTopology, LeafSpineTopology, SingleSwitchTopology
from repro.transports.constant_rate import ConstantRateSink, ConstantRateSource
from repro.transports.dcqcn import DcqcnConfig
from repro.transports.phost import PHostConfig


class TestDcqcn:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            DcqcnConfig(min_rate_bps=0)
        with pytest.raises(ValueError):
            DcqcnConfig(alpha_gain=2.0)

    def test_single_flow_completes_at_line_rate(self):
        eventlist = EventList()
        network = DcqcnNetwork.build(eventlist, BackToBackTopology)
        flow = network.create_flow(0, 1, 10_000_000)
        eventlist.run(until=units.milliseconds(60))
        assert flow.complete
        assert flow.record.throughput_bps() > 0.7 * units.gbps(10)

    def test_fabric_is_lossless(self):
        eventlist = EventList()
        network = DcqcnNetwork.build(eventlist, SingleSwitchTopology, hosts=5)
        flows = [network.create_flow(src, 0, 3_000_000) for src in range(1, 5)]
        eventlist.run(until=units.milliseconds(60))
        assert network.topology.total_dropped() == 0
        assert all(flow.complete for flow in flows)

    def test_congestion_reduces_sending_rate(self):
        eventlist = EventList()
        network = DcqcnNetwork.build(eventlist, SingleSwitchTopology, hosts=3)
        a = network.create_flow(1, 0, 50_000_000)
        b = network.create_flow(2, 0, 50_000_000)
        eventlist.run(until=units.milliseconds(10))
        assert a.src.cnps_received + b.src.cnps_received > 0
        assert a.src.current_rate_bps < units.gbps(10)

    def test_pfc_pauses_innocent_traffic(self):
        """The collateral-damage mechanism of Figures 18/19: an incast to one
        host pauses the upstream port shared with a flow to another host."""
        eventlist = EventList()
        network = DcqcnNetwork.build(
            eventlist, LeafSpineTopology, leaves=2, spines=1, hosts_per_leaf=4
        )
        # long flow from the remote leaf to host 0
        long_flow = network.create_flow(4, 0, 100_000_000)
        # incast from the remote leaf to host 1 (same destination leaf)
        for src in (5, 6, 7):
            network.create_flow(src, 1, 20_000_000)
        eventlist.run(until=units.milliseconds(30))
        pauses = sum(q.stats.pause_events for q in network.topology.all_queues())
        assert pauses > 0
        assert network.topology.total_dropped() == 0
        assert long_flow.record.bytes_delivered > 0

    def test_wire_pfc_was_applied(self):
        eventlist = EventList()
        network = DcqcnNetwork.build(eventlist, SingleSwitchTopology, hosts=3)
        downlink = network.topology.queue("switch0", "host0")
        assert isinstance(downlink, LosslessQueue)
        assert len(list(downlink.upstream_queues())) > 0


class TestPHost:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            PHostConfig(mss_bytes=0)
        with pytest.raises(ValueError):
            PHostConfig(initial_window_packets=0)

    def test_single_flow_completes(self):
        eventlist = EventList()
        network = PHostNetwork.build(eventlist, BackToBackTopology)
        flow = network.create_flow(0, 1, 1_000_000)
        eventlist.run(until=units.milliseconds(30))
        assert flow.complete
        assert flow.record.bytes_delivered == 1_000_000

    def test_incast_drops_but_eventually_recovers(self):
        eventlist = EventList()
        network = PHostNetwork.build(eventlist, SingleSwitchTopology, hosts=9)
        flows = [network.create_flow(src, 0, 270_000) for src in range(1, 9)]
        eventlist.run(until=units.milliseconds(500))
        assert network.topology.total_dropped() > 0  # no trimming to save it
        assert all(flow.complete for flow in flows)

    def test_ndp_beats_phost_on_incast_completion(self):
        """§6.2 'Who needs packet trimming?': same buffers, very different FCT."""
        size = 270_000
        senders = 24

        def last_fct(network_cls):
            eventlist = EventList()
            network = network_cls.build(eventlist, SingleSwitchTopology, hosts=senders + 1)
            flows = [network.create_flow(s, 0, size) for s in range(1, senders + 1)]
            eventlist.run(until=units.milliseconds(1500))
            assert all(flow.complete for flow in flows)
            return max(flow.record.finish_time_ps for flow in flows)

        assert last_fct(NdpNetwork) * 1.3 < last_fct(PHostNetwork)


class TestConstantRate:
    def test_source_paces_at_configured_rate(self, eventlist):
        from repro.sim.packet import Route
        from repro.sim.network import CountingSink

        sink = CountingSink()
        source = ConstantRateSource(
            eventlist, flow_id=1, node_id=0, dst_node_id=1,
            route=Route([sink]), rate_bps=units.gbps(1), packet_bytes=9000,
        )
        source.start(0)
        eventlist.run(until=units.milliseconds(1))
        # 1 Gb/s for 1 ms = 125000 bytes ~ 13.9 packets of 9000B
        assert 12 <= sink.packets_received <= 15

    def test_sink_ignores_trimmed_headers_for_goodput(self, eventlist):
        from repro.transports.constant_rate import ConstantRatePacket

        sink = ConstantRateSink(eventlist, flow_id=1, node_id=0)
        full = ConstantRatePacket(1, 2, 0, 0, 8936, 64)
        trimmed = ConstantRatePacket(1, 2, 0, 1, 8936, 64)
        trimmed.trim()
        sink.receive_packet(full)
        sink.receive_packet(trimmed)
        assert sink.record.bytes_delivered == 8936
        assert sink.headers_received == 1

    def test_source_validation(self, eventlist):
        from repro.sim.packet import Route
        from repro.sim.network import CountingSink

        with pytest.raises(ValueError):
            ConstantRateSource(
                eventlist, 1, 0, 1, Route([CountingSink()]), rate_bps=0
            )
