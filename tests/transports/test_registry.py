"""Tests for the transport registry: lookup, capabilities, bake-off matrix."""

from __future__ import annotations

import pytest

from repro.harness import figures
from repro.harness.baseline_networks import DcqcnNetwork
from repro.sim import units
from repro.sim.eventlist import EventList
from repro.topology import SingleSwitchTopology
from repro.transports import registry
from repro.transports.capabilities import CapabilityError, FamilyTraits


def _tiny_transfer_digest(spec: registry.TransportSpec, seed: int = 5):
    """Run one 45 kB transfer on a 4-host switch; return a behaviour digest."""
    eventlist = EventList()
    network = spec.build(eventlist, SingleSwitchTopology, seed=seed, hosts=4)
    flow = network.create_flow(1, 0, 45_000)
    eventlist.run(until=units.milliseconds(50))
    assert flow.complete, f"{spec.display} did not finish the tiny transfer"
    return (
        flow.record.bytes_delivered,
        flow.record.completion_time_ps(),
        network.topology.total_trimmed(),
        network.topology.total_dropped(),
    )


class TestRegistryContents:
    def test_builtin_transports_registered(self):
        assert registry.names() == ["ndp", "tcp", "dctcp", "mptcp", "dcqcn", "phost"]
        assert registry.displays() == [
            registry.NDP, registry.TCP, registry.DCTCP,
            registry.MPTCP, registry.DCQCN, registry.PHOST,
        ]
        assert registry.NDP_NO_PATH_PENALTY in registry.displays(include_variants=True)

    def test_capabilities_match_the_protocols(self):
        ndp = registry.resolve("ndp").capabilities
        assert ndp.supports_trimming and ndp.per_packet_spraying and ndp.multipath
        dcqcn = registry.resolve("dcqcn").capabilities
        assert dcqcn.needs_lossless_fabric and dcqcn.uses_ecn
        assert not registry.resolve("tcp").capabilities.multipath
        assert registry.resolve("mptcp").capabilities.multipath

    def test_variant_carries_its_config_factory(self):
        spec = registry.resolve("ndp_nopenalty")
        assert spec.variant_of == "ndp"
        assert spec.default_config().path_penalty is False
        # primaries have no factory: builders apply their own default config
        assert registry.resolve("ndp").default_config() is None


class TestLookup:
    def test_case_insensitive_by_id_and_display(self):
        assert registry.resolve("DcQcN").display == registry.DCQCN
        assert registry.resolve("PHOST").display == registry.PHOST
        assert registry.resolve("pHost").display == registry.PHOST
        assert registry.resolve("  ndp  ").display == registry.NDP
        assert registry.resolve("ndp (NO path penalty)").display == (
            registry.NDP_NO_PATH_PENALTY
        )

    def test_normalize_maps_to_display_names(self):
        assert registry.normalize(["ndp", "Tcp", "DCTCP"]) == [
            registry.NDP, registry.TCP, registry.DCTCP,
        ]

    def test_unknown_name_lists_registered_transports(self):
        with pytest.raises(ValueError, match="registered transports"):
            registry.resolve("carrier-pigeon")
        with pytest.raises(registry.UnknownTransportError) as excinfo:
            registry.resolve("carrier-pigeon")
        message = str(excinfo.value)
        for name in ("ndp", "DCQCN", "pHost"):
            assert name in message

    def test_non_string_names_raise_the_same_error(self):
        with pytest.raises(registry.UnknownTransportError):
            registry.resolve(None)


class TestEveryTransportRuns:
    @pytest.mark.parametrize(
        "name", [spec.name for spec in registry.specs(include_variants=True)]
    )
    def test_tiny_transfer_completes_with_stable_digest(self, name):
        spec = registry.resolve(name)
        first = _tiny_transfer_digest(spec)
        second = _tiny_transfer_digest(spec)
        assert first == second
        assert first[0] == 45_000


class TestCapabilityValidation:
    def test_dcqcn_without_pfc_fabric_raises(self):
        eventlist = EventList()
        topology = SingleSwitchTopology(eventlist, hosts=4)
        with pytest.raises(CapabilityError, match="lossless"):
            DcqcnNetwork(topology)

    def test_dcqcn_via_registry_gets_a_lossless_fabric(self):
        eventlist = EventList()
        network = registry.build_network("dcqcn", eventlist, SingleSwitchTopology, hosts=4)
        assert network.topology.total_dropped() == 0

    def test_link_severing_families_reject_dcqcn(self):
        traits = FamilyTraits(family="failures_klinks", severs_links=True)
        reason = registry.incompatibility("dcqcn", traits)
        assert reason is not None and "PFC" in reason
        with pytest.raises(registry.IncompatibleTransportError) as excinfo:
            registry.require_compatible("dcqcn", traits)
        assert excinfo.value.protocol == registry.DCQCN
        assert excinfo.value.family == "failures_klinks"

    def test_rate_mutation_does_not_reject_dcqcn(self):
        traits = FamilyTraits(family="failures_degraded", mutates_link_rates=True)
        assert registry.incompatibility("dcqcn", traits) is None

    def test_every_other_transport_is_compatible_everywhere(self):
        traits = FamilyTraits(family="failures_recovery", severs_links=True)
        for spec in registry.specs(include_variants=True):
            if spec.capabilities.needs_lossless_fabric:
                continue
            assert spec.incompatibility(traits) is None


class TestGridExpansion:
    def test_plan_builders_resolve_names_case_insensitively(self):
        plan = figures.figure14_plan(protocols=["ndp", "Tcp"])
        assert [spec.experiment for spec in plan.specs] == ["fig14[NDP]", "fig14[TCP]"]

    def test_incompatible_point_raises_skippable_error(self):
        with pytest.raises(registry.IncompatibleTransportError):
            figures.failures_klinks_plan(protocol="dcqcn")

    def test_skip_decision_is_deterministic(self):
        messages = set()
        for _ in range(3):
            with pytest.raises(registry.IncompatibleTransportError) as excinfo:
                figures.failures_recovery_plan(protocol="DCQCN")
            messages.add(str(excinfo.value))
        assert len(messages) == 1

    def test_unknown_protocol_in_plan_lists_registered(self):
        with pytest.raises(ValueError, match="registered transports"):
            figures.load_fct_plan(protocols=["NDP", "CARRIER-PIGEON"])
