"""Protocol-literal conformance: names live in the registry, nowhere else.

Thin pytest wrapper around ``tools/check_transports.py`` (which CI also
runs directly) so a stray ``"DCQCN"`` literal outside the transport
registry fails the tier-1 suite, mirroring ``test_docs.py``.
"""

from __future__ import annotations

import importlib.util
import os

_TOOL = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "tools",
    "check_transports.py",
)
_spec = importlib.util.spec_from_file_location("check_transports", _TOOL)
check_transports = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_transports)


def test_no_protocol_literals_outside_the_registry():
    from repro.transports import registry

    literals = set(registry.protocol_literals())
    problems = []
    for path in check_transports.python_files():
        problems.extend(check_transports.check_file(path, literals))
    assert problems == []


def test_lint_skips_tests_and_the_registry_itself():
    assert check_transports._is_test_file(os.path.join("tests", "x.py"))
    assert check_transports._is_test_file("test_whatever.py")
    assert not check_transports._is_test_file(os.path.join("src", "repro", "cli.py"))


def test_lint_flags_a_literal_and_honours_the_pragma(tmp_path):
    offender = tmp_path / "offender.py"
    offender.write_text('PROTOCOL = "DCQCN"\nOK = "DCQCN"  # transport-name-ok\n')
    problems = check_transports.check_file(str(offender), {"dcqcn"})
    assert len(problems) == 1
    assert "DCQCN" in problems[0]
