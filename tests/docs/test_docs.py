"""Documentation conformance: markdown links resolve, figure index complete.

Thin pytest wrapper around ``tools/check_docs.py`` (which CI also runs
directly) so broken doc links fail the tier-1 suite, not just the docs job.
"""

from __future__ import annotations

import importlib.util
import os

_TOOL = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "tools",
    "check_docs.py",
)
_spec = importlib.util.spec_from_file_location("check_docs", _TOOL)
check_docs = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_docs)


def test_markdown_links_resolve():
    assert check_docs.check_links() == []


def test_readme_figure_index_is_complete():
    assert check_docs.check_figure_index() == []


def test_repo_has_the_documentation_front_door():
    for path in ("README.md", os.path.join("docs", "architecture.md")):
        assert os.path.exists(os.path.join(check_docs.ROOT, path)), path


def test_experiments_handbook_is_complete():
    assert check_docs.check_experiments_handbook() == []


def test_handbook_check_catches_an_undocumented_family(monkeypatch):
    """A FIGURE_PLANS family absent from the handbook/index must fail loudly."""
    from repro import cli
    from repro.harness import figures

    monkeypatch.setitem(figures.FIGURE_PLANS, "fig_unwritten", lambda: None)
    monkeypatch.setitem(cli.EXPERIMENTS, "fig_unwritten", ("ghost", lambda: None))
    problems = check_docs.check_experiments_handbook()
    assert any("docs/experiments.md" in p and "fig_unwritten" in p for p in problems)
    assert any("README.md" in p and "fig_unwritten" in p for p in problems)


def test_handbook_check_catches_a_registry_mismatch(monkeypatch):
    from repro.harness import figures

    monkeypatch.setitem(figures.FIGURE_PLANS, "fig_orphan", lambda: None)
    problems = check_docs.check_experiments_handbook()
    assert any("registry mismatch" in p and "fig_orphan" in p for p in problems)
