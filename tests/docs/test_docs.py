"""Documentation conformance: markdown links resolve, figure index complete.

Thin pytest wrapper around ``tools/check_docs.py`` (which CI also runs
directly) so broken doc links fail the tier-1 suite, not just the docs job.
"""

from __future__ import annotations

import importlib.util
import os

_TOOL = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "tools",
    "check_docs.py",
)
_spec = importlib.util.spec_from_file_location("check_docs", _TOOL)
check_docs = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_docs)


def test_markdown_links_resolve():
    assert check_docs.check_links() == []


def test_readme_figure_index_is_complete():
    assert check_docs.check_figure_index() == []


def test_repo_has_the_documentation_front_door():
    for path in ("README.md", os.path.join("docs", "architecture.md")):
        assert os.path.exists(os.path.join(check_docs.ROOT, path)), path


def test_experiments_handbook_is_complete():
    assert check_docs.check_experiments_handbook() == []


def test_handbook_check_catches_an_undocumented_family(monkeypatch):
    """A FIGURE_PLANS family absent from the handbook/index must fail loudly."""
    from repro import cli
    from repro.harness import figures

    monkeypatch.setitem(figures.FIGURE_PLANS, "fig_unwritten", lambda: None)
    monkeypatch.setitem(cli.EXPERIMENTS, "fig_unwritten", ("ghost", lambda: None))
    problems = check_docs.check_experiments_handbook()
    assert any("docs/experiments.md" in p and "fig_unwritten" in p for p in problems)
    assert any("README.md" in p and "fig_unwritten" in p for p in problems)


def test_handbook_check_catches_a_registry_mismatch(monkeypatch):
    from repro.harness import figures

    monkeypatch.setitem(figures.FIGURE_PLANS, "fig_orphan", lambda: None)
    problems = check_docs.check_experiments_handbook()
    assert any("registry mismatch" in p and "fig_orphan" in p for p in problems)


def test_rendered_figures_are_documented_and_wired():
    assert check_docs.check_rendered_figures() == []


def test_sharded_docs_are_complete():
    assert check_docs.check_sharded_docs() == []


def test_sharded_check_catches_an_undocumented_scenario(monkeypatch):
    from repro.harness import shard

    monkeypatch.setitem(shard.SHARD_SCENARIOS, "torus_unwritten", lambda: None)
    problems = check_docs.check_sharded_docs()
    assert any(
        "docs/experiments.md" in p and "torus_unwritten" in p for p in problems
    )


def test_figure_check_catches_an_undocumented_or_dangling_figure(monkeypatch):
    """A registered render figure must be in the handbook and name a real
    family — both failure modes must be caught, not discovered at render
    time."""
    from repro.analysis import registry
    from repro.harness.figures import FIGURE_META

    ghost = registry.RegisteredFigure(
        name="fig_ghost",
        description="not documented anywhere",
        meta=FIGURE_META["fig12"],
        tabulate=lambda assembled: [],
        family="no_such_family",
    )
    monkeypatch.setitem(registry.REGISTERED_FIGURES, "fig_ghost", ghost)
    problems = check_docs.check_rendered_figures()
    assert any(
        "docs/experiments.md" in p and "fig_ghost" in p for p in problems
    )
    assert any(
        "unknown family" in p and "no_such_family" in p for p in problems
    )
