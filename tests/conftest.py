"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.sim.eventlist import EventList


@pytest.fixture
def eventlist() -> EventList:
    """A fresh event list for each test."""
    return EventList()


@pytest.fixture
def rng() -> random.Random:
    """A deterministic random source."""
    return random.Random(12345)
