#!/usr/bin/env python3
"""An open-loop load sweep: FCT slowdown vs offered load, NDP vs baselines.

The paper's headline claim is low short-flow latency under continuous
dynamic traffic.  This example drives a 16-host FatTree with an open-loop
workload — Facebook-web flow sizes arriving Poisson at a target fraction of
bisection bandwidth — and reports the size-binned FCT slowdown (completion
time divided by the ideal unloaded transfer time) at three load levels for
NDP, DCTCP and per-flow-ECMP TCP.  Watch the "small" bin: NDP's median
slowdown stays near 1 while the baselines' queueing pushes theirs up.

Run with::

    python examples/load_sweep.py

(Results are served from the persistent cache when available; the cold run
takes a few seconds per point.)
"""

from repro.harness.figures import load_fct_slowdowns


def main() -> None:
    rows = load_fct_slowdowns(loads=(0.1, 0.5, 0.9))
    print("FCT slowdown vs offered load (16-host FatTree, Facebook-web mix)")
    print(f"{'load':>5} {'protocol':>9} {'flows':>6} {'censored':>8} "
          f"{'small p50':>10} {'small p99':>10} {'all p99':>9}")
    for row in rows:
        small = row["slowdown"]["small"]
        overall = row["slowdown"]["all"]
        print(
            f"{row['load']:>5.1f} {row['protocol']:>9} "
            f"{row['measured_completed']:>6} {row['measured_censored']:>8} "
            f"{small.get('p50', float('nan')):>10.2f} "
            f"{small.get('p99', float('nan')):>10.2f} "
            f"{overall.get('p99', float('nan')):>9.2f}"
        )
    print(
        "\nSlowdown = FCT / ideal transfer time at line rate (jumbo framing,\n"
        "longest-path propagation RTT).  'small' flows are <= 100 kB —\n"
        "the population the paper's latency claims are about."
    )


if __name__ == "__main__":
    main()
