#!/usr/bin/env python3
"""Quickstart: one NDP transfer across a FatTree, step by step.

Builds a 16-host FatTree whose switch ports are NDP trimming queues, runs a
single 900 KB transfer between hosts in different pods, and prints what
happened — completion time, goodput, how the packets were sprayed over the
four core paths, and what an NDP header looks like on the wire.

Run with::

    python examples/quickstart.py
"""

from repro.core.packets import NdpDataPacket
from repro.harness import NdpNetwork
from repro.sim import EventList, units
from repro.topology import FatTreeTopology
from repro.wire import encode_header, header_from_packet


def main() -> None:
    eventlist = EventList()
    network = NdpNetwork.build(eventlist, FatTreeTopology, k=4)
    topology = network.topology
    print(topology.describe())
    print(f"paths between host 0 and host 15: {topology.path_count(0, 15)}")

    flow = network.create_flow(src_host=0, dst_host=15, size_bytes=900_000)
    eventlist.run(until=units.milliseconds(10))

    record = flow.record
    print("\n--- transfer ---")
    print(f"complete:        {flow.complete}")
    print(f"bytes delivered: {record.bytes_delivered}")
    print(f"completion time: {record.completion_time_ps() / units.MICROSECOND:.1f} us")
    print(f"goodput:         {record.throughput_bps() / 1e9:.2f} Gb/s")
    print(f"packets sent:    {flow.src.packets_sent} "
          f"(retransmissions: {flow.sender_record.retransmissions})")

    print("\n--- per-core-switch load (per-packet multipath spraying) ---")
    for core in range(topology.core_count):
        forwarded = sum(
            record_.queue.stats.packets_forwarded
            for (src, dst), record_ in topology.links.items()
            if src == f"core{core}"
        )
        print(f"  core{core}: {forwarded} packets forwarded")

    print("\n--- what goes on the wire ---")
    packet = NdpDataPacket(
        flow_id=flow.flow_id, src=0, dst=15, seqno=42, payload_bytes=8936, syn=True,
        src_endpoint=flow.src,
    )
    header = header_from_packet(packet)
    print(f"header fields: {header}")
    print(f"encoded ({len(encode_header(header))} bytes): {encode_header(header).hex()}")


if __name__ == "__main__":
    main()
