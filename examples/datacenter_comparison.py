#!/usr/bin/env python3
"""Compare NDP with MPTCP, DCTCP and DCQCN on a loaded FatTree.

Reproduces a miniature Figure 14: every host in a 16-host FatTree opens one
long flow to another host (a permutation traffic matrix), and we report the
network utilization and the per-flow goodput spread achieved by each
transport after 2 ms of simulated time.

Run with::

    python examples/datacenter_comparison.py
"""

import random

from repro.harness import experiment
from repro.sim import EventList, units
from repro.topology import FatTreeTopology
from repro.transports import registry

PROTOCOLS = (registry.NDP, registry.MPTCP, registry.DCTCP, registry.DCQCN)


def main() -> None:
    duration = units.milliseconds(2)
    print(f"{'protocol':8s} {'utilization':>12s} {'min':>7s} {'median':>7s} {'max':>7s}  (Gb/s per flow)")
    for name in PROTOCOLS:
        eventlist = EventList()
        network = registry.build_network(name, eventlist, FatTreeTopology, k=4)
        flows = experiment.start_permutation(
            network, flow_size_bytes=200_000_000, rng=random.Random(3)
        )
        result = experiment.measure_throughput(network, flows, duration)
        goodputs = result.sorted_goodputs_gbps()
        print(
            f"{name:8s} {100 * result.utilization:11.1f}% "
            f"{goodputs[0]:7.2f} {goodputs[len(goodputs) // 2]:7.2f} {goodputs[-1]:7.2f}"
        )
    print("\nNDP spreads every flow across all four core paths, so even the")
    print("slowest flow stays near line rate; the single-path protocols lose")
    print("capacity to ECMP collisions exactly as in Figure 14 of the paper.")


if __name__ == "__main__":
    main()
