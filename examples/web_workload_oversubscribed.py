#!/usr/bin/env python3
"""A web-search-like workload on an oversubscribed fabric (Figure 23).

Most datacenters are not fully provisioned.  This example builds a 16-host
FatTree whose ToR uplinks carry only a quarter of the host-facing bandwidth
(4:1 oversubscription), drives it with a closed-loop workload whose flow
sizes follow the Facebook web distribution (mostly tiny RPC responses with a
heavy tail), and compares the flow completion times achieved by NDP and
DCTCP.  Even with a large fraction of packets trimmed at the ToR uplinks,
NDP keeps both the median and the tail below DCTCP's — there is no
congestion collapse.

Run with::

    python examples/web_workload_oversubscribed.py
"""

import random

from repro.core.config import NdpConfig
from repro.harness import metrics
from repro.sim import EventList, units
from repro.topology import FatTreeTopology
from repro.transports import registry
from repro.workloads.flowsize import FacebookWebFlowSizes
from repro.workloads.generators import ClosedLoopGenerator

DURATION = units.milliseconds(30)
CONNECTIONS_PER_HOST = 5


def run(label, **build_kwargs):
    eventlist = EventList()
    network = registry.build_network(
        label, eventlist, FatTreeTopology, k=4, oversubscription=4.0, **build_kwargs
    )
    generator = ClosedLoopGenerator(
        eventlist,
        network,
        hosts=network.topology.hosts(),
        flow_sizes=FacebookWebFlowSizes(),
        connections_per_host=CONNECTIONS_PER_HOST,
        think_time_ps=units.milliseconds(1),
        rng=random.Random(19),
    )
    generator.start()
    eventlist.run(until=DURATION)
    fcts = [
        record.completion_time_ps() / units.MICROSECOND
        for record in generator.completed_records()
    ]
    print(f"{label}:")
    print(f"  completed flows:   {len(fcts)}")
    print(f"  median FCT:        {metrics.percentile(fcts, 0.5):8.1f} us")
    print(f"  99th percentile:   {metrics.percentile(fcts, 0.99):8.1f} us")
    print(f"  packets trimmed:   {network.topology.total_trimmed()}")
    print(f"  packets dropped:   {network.topology.total_dropped()}")


def main() -> None:
    print("Facebook-web workload, 16-host FatTree, 4:1 oversubscribed core\n")
    run(registry.NDP, config=NdpConfig(mtu_bytes=1500, header_queue_bytes=8 * 1500))
    print()
    run(registry.DCTCP)


if __name__ == "__main__":
    main()
