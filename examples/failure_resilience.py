#!/usr/bin/env python3
"""Routing around a degraded core link with the path scoreboard.

A core↔aggregation link silently renegotiates from 10 Gb/s to 1 Gb/s (the
Figure 22 failure).  Per-packet spraying would normally keep sending a
quarter of every affected flow's packets into the slow link; NDP's per-path
NACK/loss scoreboard notices the asymmetry within a round-trip or two and
temporarily stops using that path.

The script runs the same permutation workload three times — healthy fabric,
degraded fabric with the path penalty enabled, and degraded fabric with the
penalty disabled (the ablation) — and prints the utilization and the slowest
flow's goodput for each.

Run with::

    python examples/failure_resilience.py
"""

import random

from repro.core.config import NdpConfig
from repro.harness import experiment
from repro.harness.ndp_network import NdpNetwork
from repro.sim import EventList, units
from repro.topology import FatTreeTopology


def run_case(label: str, degrade: bool, path_penalty: bool) -> None:
    eventlist = EventList()
    config = NdpConfig(path_penalty=path_penalty)
    network = NdpNetwork.build(eventlist, FatTreeTopology, k=4, config=config)
    if degrade:
        network.topology.degrade_core_link(core=0, pod=3, new_rate_bps=units.gbps(1))
    flows = experiment.start_permutation(
        network, flow_size_bytes=200_000_000, rng=random.Random(17)
    )
    result = experiment.measure_throughput(network, flows, units.milliseconds(3))
    goodputs = result.sorted_goodputs_gbps()
    print(
        f"{label:42s} utilization={100 * result.utilization:5.1f}%  "
        f"slowest flow={goodputs[0]:.2f} Gb/s  flows<5Gb/s={sum(g < 5 for g in goodputs)}"
    )


def main() -> None:
    print("Permutation traffic on a 16-host FatTree, one link degraded to 1 Gb/s\n")
    run_case("healthy fabric", degrade=False, path_penalty=True)
    run_case("degraded link, path penalty ON", degrade=True, path_penalty=True)
    run_case("degraded link, path penalty OFF (ablation)", degrade=True, path_penalty=False)
    print("\nWith the scoreboard, senders notice the asymmetric NACK/loss rates on")
    print("paths through the slow link and stop spraying new packets onto them.")


if __name__ == "__main__":
    main()
