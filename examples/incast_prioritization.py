#!/usr/bin/env python3
"""Incast with a prioritized straggler.

The workload the paper's introduction motivates: a frontend fans a request
out to many workers and needs *all* the answers before it can continue.  A
straggler response from the previous request is still outstanding, so the
receiver pulls it with strict priority while the new incast proceeds.

The script runs a 32-to-1 incast of 450 KB responses, marks one sender as the
high-priority straggler, and reports per-flow completion times — showing that
the straggler finishes almost as if the network were idle, that the incast
completes within a few percent of the theoretical optimum, and that trimming
is confined to the first RTT.

Run with::

    python examples/incast_prioritization.py
"""

from repro.harness import NdpNetwork, metrics
from repro.sim import EventList, units
from repro.topology import SingleSwitchTopology

SENDERS = 32
RESPONSE_BYTES = 450_000
STRAGGLER_BYTES = 90_000


def main() -> None:
    eventlist = EventList()
    network = NdpNetwork.build(eventlist, SingleSwitchTopology, hosts=SENDERS + 2)

    # the straggler from the previous request: pulled with strict priority
    straggler = network.create_flow(SENDERS + 1, 0, STRAGGLER_BYTES, priority=True)
    # the new fan-out: every worker answers at the same instant
    responses = [
        network.create_flow(worker, 0, RESPONSE_BYTES) for worker in range(1, SENDERS + 1)
    ]

    eventlist.run(until=units.milliseconds(200))

    fcts_us = sorted(
        flow.record.completion_time_ps() / units.MICROSECOND for flow in responses
    )
    ideal = metrics.ideal_incast_completion_ps(
        SENDERS, RESPONSE_BYTES, units.DEFAULT_LINK_RATE_BPS, 9000, 64
    ) / units.MICROSECOND
    bottleneck = network.topology.downlink_queue(0)

    print(f"straggler (priority) FCT: "
          f"{straggler.record.completion_time_ps() / units.MICROSECOND:.0f} us")
    print(f"incast responses:         {SENDERS} x {RESPONSE_BYTES / 1000:.0f} KB")
    print(f"  fastest / median / last FCT: "
          f"{fcts_us[0]:.0f} / {fcts_us[len(fcts_us) // 2]:.0f} / {fcts_us[-1]:.0f} us")
    print(f"  theoretical optimum:         {ideal:.0f} us "
          f"({100 * (fcts_us[-1] - ideal) / ideal:.1f}% overhead)")
    print(f"  spread (last/fastest):       {fcts_us[-1] / fcts_us[0]:.2f}x")
    print(f"packets trimmed at the receiver's port: {bottleneck.stats.packets_trimmed}")
    print(f"packets dropped anywhere:               {network.topology.total_dropped()}")


if __name__ == "__main__":
    main()
