"""Parallel sweep engine with a persistent on-disk result cache.

This module is the execution layer underneath :mod:`repro.harness.figures`
and ``python -m repro.cli``: every experiment is decomposed into independent
:class:`RunSpec` units (one simulator run each), which can be

* fanned across worker processes (``run_specs(specs, jobs=N)``), and
* memoized on disk across *processes* (:class:`ResultCache`), so a CI run,
  a benchmark session and an interactive CLI call all reuse each other's
  simulations.

Determinism contract
--------------------
A cached or parallel run must be **bit-identical** to a cold serial run.
Two mechanisms guarantee this:

1. every unit run is an independent, seeded, module-level function — no
   state is shared between specs, so process boundaries cannot reorder
   anything inside a simulation;
2. every result (cold, cached or parallel) is normalized through the same
   JSON codec (:func:`encode_result` / :func:`decode_result`) before being
   returned, so the value a caller sees never depends on whether it came
   from a fresh simulation, a worker process or a disk record.  The codec
   round-trips Python scalars exactly (floats via shortest-repr JSON) and
   tags tuples, non-string dict keys and known dataclasses so decoding
   restores the original types.

Cache key scheme
----------------
A record's key is ``sha256(experiment \\x00 canonical-kwargs \\x00
code-fingerprint)`` where

* ``experiment`` is the spec's stable name (e.g. ``"fig16[NDP,senders=8]"``),
* ``canonical-kwargs`` is the sorted-key JSON encoding of the spec's kwargs
  (tuples and int keys tagged, so equal kwargs always serialize equally),
* ``code-fingerprint`` is a SHA-256 over every ``*.py`` source file of the
  installed ``repro`` package — **any** code change invalidates the whole
  cache, which is the conservative choice for a simulator where distant
  modules (queues, pacers, timers) all affect results.

Records are one JSON file per key under ``$REPRO_CACHE_DIR`` (default
``~/.cache/repro``).  Writers stage to a unique temp file and ``os.replace``
it into place, so concurrent writers — parallel workers, two CI jobs on a
shared volume — can never interleave bytes; readers treat any unreadable or
structurally invalid record as a miss and delete it.  Set ``REPRO_NO_CACHE=1``
(or pass ``cache=None`` / ``--no-cache``) to bypass the cache entirely; perf
benchmarks (``benchmarks/perf/``) never consult it.
"""

from __future__ import annotations

import concurrent.futures
import hashlib
import json
import multiprocessing
import os
import tempfile
from dataclasses import dataclass, field, fields, is_dataclass
from typing import Any, Callable, Dict, List, Mapping, NamedTuple, Optional, Sequence, Tuple

__all__ = [
    "RunSpec",
    "Plan",
    "ResultCache",
    "run_specs",
    "run_plan",
    "default_cache",
    "encode_result",
    "decode_result",
    "code_fingerprint",
]

#: environment variable overriding the cache directory
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
#: environment variable disabling the persistent cache entirely
NO_CACHE_ENV = "REPRO_NO_CACHE"

_TYPE_TAG = "__repro__"


# ---------------------------------------------------------------------------
# Result codec — exact JSON round-tripping for experiment results
# ---------------------------------------------------------------------------

def _registered_dataclasses() -> Dict[str, type]:
    # imported lazily: experiment imports metrics, not the other way round
    from repro.harness.experiment import ThroughputResult

    return {"ThroughputResult": ThroughputResult}


def encode_result(value: Any) -> Any:
    """Convert *value* into a JSON-serializable structure, reversibly.

    Supported: JSON scalars, lists, tuples, dicts with arbitrary scalar
    keys, and the registered result dataclasses (currently
    :class:`~repro.harness.experiment.ThroughputResult`).  Anything else
    raises ``TypeError`` — unit runs are required to return simple data.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, tuple):
        return {_TYPE_TAG: "tuple", "items": [encode_result(v) for v in value]}
    if isinstance(value, list):
        return [encode_result(v) for v in value]
    if isinstance(value, dict):
        plain = all(isinstance(k, str) for k in value) and _TYPE_TAG not in value
        if plain:
            return {k: encode_result(v) for k, v in value.items()}
        return {
            _TYPE_TAG: "dict",
            "items": [[encode_result(k), encode_result(v)] for k, v in value.items()],
        }
    if is_dataclass(value) and not isinstance(value, type):
        name = type(value).__name__
        if name in _registered_dataclasses():
            return {
                _TYPE_TAG: name,
                "fields": {
                    f.name: encode_result(getattr(value, f.name))
                    for f in fields(value)
                },
            }
    raise TypeError(
        f"experiment results must be JSON-codable data, got {type(value).__name__}"
    )


def decode_result(value: Any) -> Any:
    """Inverse of :func:`encode_result`."""
    if isinstance(value, list):
        return [decode_result(v) for v in value]
    if isinstance(value, dict):
        tag = value.get(_TYPE_TAG)
        if tag is None:
            return {k: decode_result(v) for k, v in value.items()}
        if tag == "tuple":
            return tuple(decode_result(v) for v in value["items"])
        if tag == "dict":
            return {decode_result(k): decode_result(v) for k, v in value["items"]}
        cls = _registered_dataclasses().get(tag)
        if cls is not None:
            return cls(**{k: decode_result(v) for k, v in value["fields"].items()})
        raise ValueError(f"unknown result tag {tag!r}")
    return value


def normalize_result(value: Any) -> Any:
    """Round-trip *value* through the codec (what a cache hit would return)."""
    return decode_result(json.loads(json.dumps(encode_result(value))))


def canonical_params(params: Mapping[str, Any]) -> str:
    """Deterministic JSON string for a kwargs mapping (cache-key component)."""
    return json.dumps(encode_result(dict(params)), sort_keys=True, separators=(",", ":"))


# ---------------------------------------------------------------------------
# Code fingerprint — any source change invalidates every record
# ---------------------------------------------------------------------------

_fingerprint_cache: Optional[str] = None


def code_fingerprint() -> str:
    """SHA-256 over every ``*.py`` file of the ``repro`` package.

    Computed once per process.  Keying cache records on this hash means a
    record can only ever be replayed against the exact code that produced
    it; there is no staleness to reason about.
    """
    global _fingerprint_cache
    if _fingerprint_cache is None:
        import repro

        package_root = os.path.dirname(os.path.abspath(repro.__file__))
        digest = hashlib.sha256()
        for directory, _subdirs, filenames in sorted(os.walk(package_root)):
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(directory, filename)
                digest.update(os.path.relpath(path, package_root).encode())
                digest.update(b"\x00")
                with open(path, "rb") as fh:
                    digest.update(fh.read())
                digest.update(b"\x00")
        _fingerprint_cache = digest.hexdigest()
    return _fingerprint_cache


# ---------------------------------------------------------------------------
# RunSpec / Plan — the unit-of-work contract
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RunSpec:
    """One independent, seeded experiment run.

    ``fn`` must be a module-level callable (so worker processes can import
    it) and ``kwargs`` must be JSON-codable (so the cache key is stable);
    calling ``fn(**kwargs)`` must be deterministic and return codec-friendly
    data.  ``experiment`` names the run for cache records and progress
    output — include the varying parameters (e.g. ``"fig17[8pkt,iw=10]"``)
    so records are self-describing.
    """

    experiment: str
    fn: Callable[..., Any]
    kwargs: Mapping[str, Any] = field(default_factory=dict)

    def cache_key(self, fingerprint: Optional[str] = None) -> str:
        """Digest identifying this run (see the module docstring)."""
        material = "\x00".join(
            [self.experiment, canonical_params(self.kwargs),
             fingerprint if fingerprint is not None else code_fingerprint()]
        )
        return hashlib.sha256(material.encode()).hexdigest()

    def execute(self) -> Any:
        """Run the experiment (no cache involvement)."""
        return self.fn(**self.kwargs)


class Plan(NamedTuple):
    """A figure decomposed into independent specs plus an assembly step.

    ``assemble`` receives the spec results *in spec order* and builds the
    figure's public result structure (rows, mapping, …).
    """

    specs: List[RunSpec]
    assemble: Callable[[List[Any]], Any]


# ---------------------------------------------------------------------------
# Persistent cache
# ---------------------------------------------------------------------------

class ResultCache:
    """Concurrent-writer-safe, per-record JSON cache of experiment results.

    One file per record under *root* (``$REPRO_CACHE_DIR`` or
    ``~/.cache/repro``).  All I/O failures degrade to cache misses — a
    read-only or corrupt cache never breaks an experiment, it only makes
    it slower.  ``hits`` / ``misses`` / ``stores`` count this instance's
    traffic (used by tests and the CLI summary).
    """

    def __init__(self, root: Optional[str] = None) -> None:
        if root is None:
            root = os.environ.get(CACHE_DIR_ENV) or os.path.join(
                os.path.expanduser("~"), ".cache", "repro"
            )
        self.root = root
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def _path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.json")

    def get(self, experiment: str, params: Mapping[str, Any]) -> Tuple[bool, Any]:
        """Return ``(hit, decoded_result)``; corrupt records become misses."""
        key = self._record_key(experiment, params)
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                record = json.load(fh)
            result = record["result"]  # KeyError -> corrupt
            if record["experiment"] != experiment:
                raise ValueError("record/experiment mismatch")
            decoded = decode_result(result)
        except FileNotFoundError:
            self.misses += 1
            return False, None
        except (OSError, ValueError, KeyError, TypeError):
            # unreadable or structurally invalid: drop it and treat as a miss
            try:
                os.remove(path)
            except OSError:
                pass
            self.misses += 1
            return False, None
        try:
            os.utime(path)  # keep hot records young for the age-based prune
        except OSError:
            pass
        self.hits += 1
        return True, decoded

    def put(self, experiment: str, params: Mapping[str, Any], result: Any) -> None:
        """Atomically persist *result*; failures are silently ignored."""
        self.put_encoded(experiment, params, encode_result(result))

    def put_encoded(
        self, experiment: str, params: Mapping[str, Any], encoded_result: Any
    ) -> None:
        """Like :meth:`put` for a result already passed through the codec.

        Lets the sweep engine write worker payloads straight to disk
        without re-encoding multi-thousand-sample figures a second time.
        """
        key = self._record_key(experiment, params)
        record = {
            "experiment": experiment,
            "kwargs": encode_result(dict(params)),
            "fingerprint": code_fingerprint(),
            "result": encoded_result,
        }
        try:
            os.makedirs(self.root, exist_ok=True)
            fd, staging = tempfile.mkstemp(
                prefix=f"{key}.tmp.", dir=self.root, text=True
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    json.dump(record, fh)
                os.replace(staging, self._path(key))
            except BaseException:
                try:
                    os.remove(staging)
                except OSError:
                    pass
                raise
        except (OSError, TypeError):
            return
        self.stores += 1

    # Maintenance ----------------------------------------------------------

    #: records untouched for this long are assumed orphaned (their code
    #: fingerprint no longer exists) and are reclaimed by :meth:`prune`
    PRUNE_TTL_SECONDS = 30 * 24 * 3600
    #: how often :meth:`maybe_prune` actually walks the directory
    PRUNE_INTERVAL_SECONDS = 24 * 3600

    def prune(self, ttl_seconds: Optional[int] = None) -> int:
        """Delete records not read/written for *ttl_seconds*; return count.

        Cache keys embed the code fingerprint, so records from older source
        trees become unreachable rather than stale — this reclaims them.
        Hits touch their record's mtime (see :meth:`get`), so anything a
        month old genuinely has not been used; in the worst case a
        still-valid record is re-simulated once.  Leftover staging files
        older than an hour are removed too.
        """
        import time as _time

        ttl = self.PRUNE_TTL_SECONDS if ttl_seconds is None else ttl_seconds
        removed = 0
        try:
            now = _time.time()
            for name in os.listdir(self.root):
                path = os.path.join(self.root, name)
                try:
                    age = now - os.stat(path).st_mtime
                    if (name.endswith(".json") and age > ttl) or (
                        ".tmp." in name and age > 3600
                    ):
                        os.remove(path)
                        removed += 1
                except OSError:
                    continue
        except OSError:
            return removed
        return removed

    def maybe_prune(self) -> None:
        """Run :meth:`prune` at most once per :data:`PRUNE_INTERVAL_SECONDS`.

        Throttled through the mtime of a stamp file in the cache directory,
        so the directory walk doesn't tax every CLI invocation.
        """
        stamp = os.path.join(self.root, ".last-prune")
        import time as _time

        try:
            if _time.time() - os.stat(stamp).st_mtime < self.PRUNE_INTERVAL_SECONDS:
                return
        except OSError:
            pass  # no stamp yet
        try:
            os.makedirs(self.root, exist_ok=True)
            with open(stamp, "w"):
                pass
        except OSError:
            return
        self.prune()

    # RunSpec conveniences -------------------------------------------------

    def lookup_spec(self, spec: RunSpec) -> Tuple[bool, Any]:
        return self.get(spec.experiment, spec.kwargs)

    def store_spec(self, spec: RunSpec, result: Any) -> None:
        self.put(spec.experiment, spec.kwargs, result)

    def store_spec_encoded(self, spec: RunSpec, encoded_result: Any) -> None:
        self.put_encoded(spec.experiment, spec.kwargs, encoded_result)

    @staticmethod
    def _record_key(experiment: str, params: Mapping[str, Any]) -> str:
        return RunSpec(experiment, _no_fn, params).cache_key()


def _no_fn(**_kwargs: Any) -> None:  # placeholder for key-only RunSpecs
    raise RuntimeError("key-only spec is not executable")


#: sentinel meaning "use default_cache()" (distinct from None = disabled)
USE_DEFAULT_CACHE = object()

_default_cache: Optional[ResultCache] = None


def default_cache() -> Optional[ResultCache]:
    """The process-wide :class:`ResultCache`, or ``None`` if disabled.

    Honors ``REPRO_NO_CACHE=1`` (disable) and ``REPRO_CACHE_DIR`` (location).
    """
    global _default_cache
    if os.environ.get(NO_CACHE_ENV, "").strip() in ("1", "true", "yes", "on"):
        return None
    root = os.environ.get(CACHE_DIR_ENV) or os.path.join(
        os.path.expanduser("~"), ".cache", "repro"
    )
    if _default_cache is None or _default_cache.root != root:
        _default_cache = ResultCache(root)
        _default_cache.maybe_prune()
    return _default_cache


# ---------------------------------------------------------------------------
# Execution engine
# ---------------------------------------------------------------------------

def _execute_spec_encoded(spec: RunSpec) -> Any:
    """Worker entry point: run the spec and return the *encoded* result."""
    return encode_result(spec.execute())


def _pool_context() -> multiprocessing.context.BaseContext:
    # fork keeps sys.path (src/ layout without installation) and is cheap;
    # fall back to the platform default where fork is unavailable
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def run_specs(
    specs: Sequence[RunSpec],
    jobs: int = 1,
    cache: Any = USE_DEFAULT_CACHE,
    on_result: Optional[Callable[[RunSpec, int, str], None]] = None,
) -> List[Any]:
    """Execute *specs*, in parallel and through the cache, in spec order.

    ``jobs`` > 1 fans cache misses across that many worker processes (each
    spec is an independent seeded simulation, so any interleaving yields
    identical results).  ``cache`` is the default persistent cache, an
    explicit :class:`ResultCache`, or ``None`` to disable caching.  Every
    returned value — hit or miss, serial or parallel — is normalized
    through the result codec, so callers always see the same data the
    cache would serve.  ``on_result(spec, index, source)`` is invoked as
    results resolve with ``source`` in ``{"cache", "run"}``.

    Identical specs in one batch are simulated once (they are
    deterministic), and each result is persisted *as it resolves*, so a
    failing spec or an interrupt costs at most the in-flight runs — every
    completed simulation is already on disk.
    """
    if cache is USE_DEFAULT_CACHE:
        cache = default_cache()
    results: List[Any] = [None] * len(specs)
    pending: List[int] = []
    for index, spec in enumerate(specs):
        if cache is not None:
            hit, value = cache.lookup_spec(spec)
            if hit:
                results[index] = value
                if on_result is not None:
                    on_result(spec, index, "cache")
                continue
        pending.append(index)

    if not pending:
        return results

    # identical (experiment, kwargs) specs are deterministic duplicates:
    # simulate the first occurrence only and fan its result out
    groups: Dict[str, List[int]] = {}
    for index in pending:
        groups.setdefault(specs[index].cache_key(), []).append(index)
    leaders = [indices[0] for indices in groups.values()]

    def finish(leader: int, payload: Any) -> None:
        # normalize through the same JSON round-trip a cache hit takes,
        # and persist immediately — the already-encoded worker payload
        # goes straight to disk without a second encode pass
        value = decode_result(json.loads(json.dumps(payload)))
        if cache is not None:
            cache.store_spec_encoded(specs[leader], payload)
        for index in groups[specs[leader].cache_key()]:
            results[index] = value
            if on_result is not None:
                on_result(specs[index], index, "run")

    if jobs > 1 and len(leaders) > 1:
        workers = min(jobs, len(leaders))
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=workers, mp_context=_pool_context()
        ) as pool:
            futures = {
                pool.submit(_execute_spec_encoded, specs[index]): index
                for index in leaders
            }
            for future in concurrent.futures.as_completed(futures):
                index = futures[future]
                try:
                    payload = future.result()
                except Exception as exc:
                    raise RuntimeError(
                        f"experiment {specs[index].experiment!r} failed: {exc}"
                    ) from exc
                finish(index, payload)
    else:
        for index in leaders:
            try:
                payload = _execute_spec_encoded(specs[index])
            except Exception as exc:
                raise RuntimeError(
                    f"experiment {specs[index].experiment!r} failed: {exc}"
                ) from exc
            finish(index, payload)
    return results


def run_plan(
    plan: Plan,
    jobs: int = 1,
    cache: Any = USE_DEFAULT_CACHE,
    on_result: Optional[Callable[[RunSpec, int, str], None]] = None,
) -> Any:
    """Execute a figure plan and assemble its public result."""
    return plan.assemble(run_specs(plan.specs, jobs=jobs, cache=cache, on_result=on_result))
