"""Streaming percentile sketches for bounded-memory metrics.

A k=32 fat-tree run pushes millions of flows; materializing every slowdown
sample for :func:`repro.harness.metrics.binned_slowdown_summary` would make
memory grow with the run.  :class:`QuantileSketch` keeps log-spaced value
buckets instead (the DDSketch construction): every recorded value lands in
the bucket whose representative is within a fixed *relative* accuracy
``alpha`` of it, so any reported quantile is within ``alpha`` (relative) of
an order statistic at the queried rank, in O(log(max/min)/alpha) memory
independent of the stream length.

Two properties matter for sharded runs and are pinned by
``tests/shard/test_sketch.py``:

* **Rank-error bound** — ``quantile(q)`` lies within relative ``alpha`` of
  the exact order statistic that anchors
  :func:`repro.harness.metrics.percentile` at the same rank.
* **Exact merge** — bucket counts are plain integers, so
  ``merge(a, b)`` equals the sketch of the concatenated stream *exactly*
  (not approximately): per-shard sketches can be merged in any order
  without affecting the reported numbers.

:class:`StreamingSlowdownBins` stacks one sketch per size bin to reproduce
the ``binned_slowdown_summary`` reporting shape (``count``/``p50``/``p99``/
``p999``/``mean``/``max`` per bin, ``{"count": 0}`` when empty) with exact
``count``/``mean``/``max`` and sketched percentiles.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.harness.metrics import (
    DEFAULT_SLOWDOWN_BINS,
    flow_slowdown,
    slowdown_bin,
)
from repro.sim.logger import FlowRecord

__all__ = ["QuantileSketch", "StreamingSlowdownBins"]


class QuantileSketch:
    """A mergeable quantile sketch with relative-accuracy guarantee *alpha*.

    Non-negative values only (slowdowns, latencies, sizes).  Value ``x > 0``
    maps to bucket ``ceil(log_gamma(x))`` with ``gamma = (1+alpha)/(1-alpha)``;
    the bucket representative ``2*gamma^i/(gamma+1)`` is within relative
    *alpha* of every value in the bucket.  Zeros get a dedicated bucket.
    """

    __slots__ = (
        "alpha", "_gamma", "_log_gamma", "count", "total",
        "zero_count", "buckets", "_max", "_min",
    )

    def __init__(self, alpha: float = 0.005) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        self.alpha = alpha
        self._gamma = (1.0 + alpha) / (1.0 - alpha)
        self._log_gamma = math.log(self._gamma)
        self.count = 0
        self.total = 0.0
        self.zero_count = 0
        self.buckets: Dict[int, int] = {}
        self._max: Optional[float] = None
        self._min: Optional[float] = None

    # --- recording ------------------------------------------------------------------

    def add(self, value: float) -> None:
        if value < 0.0:
            raise ValueError(f"sketch values must be non-negative, got {value}")
        self.count += 1
        self.total += value
        if self._max is None or value > self._max:
            self._max = value
        if self._min is None or value < self._min:
            self._min = value
        if value == 0.0:
            self.zero_count += 1
            return
        index = math.ceil(math.log(value) / self._log_gamma)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    # --- queries --------------------------------------------------------------------

    @property
    def max(self) -> float:
        if self._max is None:
            raise ValueError("empty sketch has no max")
        return self._max

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValueError("empty sketch has no mean")
        return self.total / self.count

    def quantile(self, fraction: float) -> float:
        """A value within relative *alpha* of the order statistic at rank
        ``floor(fraction * (count - 1))`` — the lower interpolation anchor
        of :func:`repro.harness.metrics.percentile` at the same fraction.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        if self.count == 0:
            raise ValueError("cannot take a quantile of an empty sketch")
        rank = int(fraction * (self.count - 1))  # 0-based target rank
        if rank < self.zero_count:
            return 0.0
        cumulative = self.zero_count
        gamma = self._gamma
        for index in sorted(self.buckets):
            cumulative += self.buckets[index]
            if cumulative > rank:
                return 2.0 * gamma ** index / (gamma + 1.0)
        raise AssertionError("bucket counts do not cover the recorded count")

    # --- merge / serialization --------------------------------------------------------

    def merge(self, other: "QuantileSketch") -> None:
        """Fold *other* into this sketch (exact: integer bucket addition)."""
        if other.alpha != self.alpha:
            raise ValueError(
                f"cannot merge sketches with different alphas "
                f"({self.alpha} vs {other.alpha})"
            )
        self.count += other.count
        self.total += other.total
        self.zero_count += other.zero_count
        for index, bucket_count in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + bucket_count
        if other._max is not None and (self._max is None or other._max > self._max):
            self._max = other._max
        if other._min is not None and (self._min is None or other._min < self._min):
            self._min = other._min

    def state(self) -> dict:
        """Codec-friendly snapshot (sorted bucket pairs; JSON-stable)."""
        return {
            "alpha": self.alpha,
            "count": self.count,
            "total": self.total,
            "zero_count": self.zero_count,
            "buckets": sorted(self.buckets.items()),
            "max": self._max,
            "min": self._min,
        }

    @classmethod
    def from_state(cls, state: dict) -> "QuantileSketch":
        sketch = cls(alpha=state["alpha"])
        sketch.count = state["count"]
        sketch.total = state["total"]
        sketch.zero_count = state["zero_count"]
        sketch.buckets = {int(index): int(n) for index, n in state["buckets"]}
        sketch._max = state["max"]
        sketch._min = state["min"]
        return sketch

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantileSketch):
            return NotImplemented
        return self.state() == other.state()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QuantileSketch(alpha={self.alpha}, count={self.count}, "
            f"buckets={len(self.buckets)})"
        )


class StreamingSlowdownBins:
    """Online replacement for ``binned_slowdown_summary``'s sample lists.

    One :class:`QuantileSketch` per size bin plus one for the whole
    population; :meth:`summary` reproduces the exact reporting shape of
    :func:`repro.harness.metrics.binned_slowdown_summary` with exact
    ``count``/``mean``/``max`` and sketched ``p50``/``p99``/``p999``.
    Per-shard instances merge exactly, so a sharded run reports the same
    numbers regardless of how flows were split across workers.
    """

    def __init__(
        self,
        bins: Sequence[Tuple[str, Optional[int]]] = DEFAULT_SLOWDOWN_BINS,
        alpha: float = 0.005,
    ) -> None:
        self.bins = tuple(bins)
        self.alpha = alpha
        self._sketches: Dict[str, QuantileSketch] = {"all": QuantileSketch(alpha)}
        for label, _upper in self.bins:
            self._sketches[label] = QuantileSketch(alpha)

    def add(self, size_bytes: int, slowdown: float) -> None:
        self._sketches["all"].add(slowdown)
        self._sketches[slowdown_bin(size_bytes, self.bins)].add(slowdown)

    def add_record(
        self,
        record: FlowRecord,
        link_rate_bps: int,
        mtu_bytes: int,
        header_bytes: int,
        base_rtt_ps: int = 0,
    ) -> bool:
        """Record one flow if completed; returns whether it was counted."""
        if not record.completed:
            return False
        value = flow_slowdown(
            record, link_rate_bps, mtu_bytes, header_bytes, base_rtt_ps
        )
        self.add(record.flow_size_bytes, value)
        return True

    def merge(self, other: "StreamingSlowdownBins") -> None:
        if other.bins != self.bins:
            raise ValueError("cannot merge summaries with different bins")
        for label, sketch in other._sketches.items():
            self._sketches[label].merge(sketch)

    def summary(self) -> Dict[str, dict]:
        out: Dict[str, dict] = {}
        for label in ("all", *[label for label, _upper in self.bins]):
            sketch = self._sketches[label]
            if sketch.count == 0:
                out[label] = {"count": 0}
            else:
                out[label] = {
                    "count": sketch.count,
                    "p50": sketch.quantile(0.5),
                    "p99": sketch.quantile(0.99),
                    "p999": sketch.quantile(0.999),
                    "mean": sketch.mean,
                    "max": sketch.max,
                }
        return out

    def state(self) -> dict:
        return {
            "bins": [[label, upper] for label, upper in self.bins],
            "alpha": self.alpha,
            "sketches": {
                label: sketch.state() for label, sketch in self._sketches.items()
            },
        }

    @classmethod
    def from_state(cls, state: dict) -> "StreamingSlowdownBins":
        bins = tuple((label, upper) for label, upper in state["bins"])
        summary = cls(bins=bins, alpha=state["alpha"])
        for label, sketch_state in state["sketches"].items():
            summary._sketches[label] = QuantileSketch.from_state(sketch_state)
        return summary
