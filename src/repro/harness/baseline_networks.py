"""Network builders for the baseline transports.

Each ``*Network`` class mirrors :class:`~repro.harness.ndp_network.NdpNetwork`:
``build`` constructs a topology whose switch queues match the protocol's
assumptions (drop-tail for TCP/MPTCP, ECN marking for DCTCP, lossless PFC
for DCQCN, shallow drop-tail for pHost), and ``create_flow`` wires a
connection between two hosts and returns a handle exposing the receiver-side
:class:`~repro.sim.logger.FlowRecord`.  The workload runners in
:mod:`repro.harness.experiment` only rely on this uniform interface, which is
what lets every figure's benchmark sweep protocols with one code path.

Queue sizing follows §6.1 of the paper: NDP runs 8-packet queues while, "to
ensure good performance", DCTCP and MPTCP get 200-packet output queues and
DCQCN 200-packet lossless buffers, with ECN marking thresholds of 30 and 20
packets respectively.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Type

from repro.routing.ecmp import EcmpFlowSelector
from repro.sim.eventlist import EventList
from repro.sim.logger import FlowRecord
from repro.sim.queues import DropTailQueue, ECNQueue, LosslessQueue
from repro.topology.base import Topology
from repro.transports.capabilities import CapabilityError, TransportCapabilities
from repro.transports.dcqcn import DcqcnConfig, DcqcnSink, DcqcnSrc
from repro.transports.dctcp import DctcpConfig, DctcpSink, DctcpSrc
from repro.transports.mptcp import MptcpConfig, MptcpConnection
from repro.transports.phost import PHostConfig, PHostSink, PHostSrc, PHostTokenPacer
from repro.transports.tcp import TcpConfig, TcpSink, TcpSrc


@dataclass
class EndpointFlow:
    """Handle for single-path (TCP-family, DCQCN, pHost) flows."""

    flow_id: int
    src: object
    sink: object

    @property
    def record(self) -> FlowRecord:
        """Receiver-side flow record."""
        return self.sink.record

    @property
    def sender_record(self) -> FlowRecord:
        """Sender-side flow record."""
        return self.src.record

    @property
    def complete(self) -> bool:
        """True once the receiver has the whole transfer."""
        return self.record.finish_time_ps is not None


@dataclass
class MptcpFlow:
    """Handle for MPTCP connections."""

    flow_id: int
    connection: MptcpConnection

    @property
    def record(self) -> FlowRecord:
        """Receiver-side (connection-level) flow record."""
        return self.connection.record

    @property
    def complete(self) -> bool:
        """True once the receiver has the whole transfer."""
        return self.connection.complete


class _BaseNetwork:
    """Shared machinery: flow-id allocation, ECMP path choice, bookkeeping.

    Path choice consumes the topology's route table (``get_paths`` returns
    only surviving paths) through one persistent
    :class:`~repro.routing.ecmp.EcmpFlowSelector` per (src, dst) pair.  On a
    link failure or recovery the selectors re-hash over the surviving set —
    so *new* flows avoid dead paths the way real switches recompute their
    ECMP groups — while flows already created keep the route they were
    assigned: per-flow transports stay stuck on a failed path, which is the
    control behaviour the paper's resilience experiments measure NDP
    against.
    """

    def __init__(self, topology: Topology, seed: int = 1) -> None:
        self.topology = topology
        self.eventlist = topology.eventlist
        self.rng = random.Random(seed)
        self._next_flow_id = 0
        self.flows: List[object] = []
        self._selectors: Dict[Tuple[int, int], EcmpFlowSelector] = {}
        topology.subscribe_link_state(self._on_link_state)

    def _allocate_flow_id(self) -> int:
        flow_id = self._next_flow_id
        self._next_flow_id += 1
        return flow_id

    def _surviving_paths(self, src_host: int, dst_host: int):
        """``get_paths`` with a clear error when link failures partition the pair."""
        paths = self.topology.get_paths(src_host, dst_host)
        if not paths:
            raise RuntimeError(
                f"no surviving path from host {src_host} to host {dst_host}: "
                f"the pair is partitioned by link failures "
                f"({len(self.topology.failed_links())} directed links down)"
            )
        return paths

    def _ecmp_selector(self, src_host: int, dst_host: int) -> EcmpFlowSelector:
        """The persistent per-pair ECMP group (created on first use)."""
        key = (src_host, dst_host)
        selector = self._selectors.get(key)
        if selector is None:
            selector = EcmpFlowSelector(self._surviving_paths(src_host, dst_host))
            self._selectors[key] = selector
        return selector

    def _ecmp_pair(self, src_host: int, dst_host: int, flow_id: int):
        """Pick matching forward/reverse paths via per-flow ECMP."""
        fwd = self._ecmp_selector(src_host, dst_host).path_for_flow(flow_id)
        reverse = self._surviving_paths(dst_host, src_host)
        rev = next((p for p in reverse if p.path_id == fwd.path_id), reverse[0])
        return fwd, rev

    def _on_link_state(self, event) -> None:
        """Re-hash every ECMP group over the surviving paths (fail/recover)."""
        if event.kind not in ("fail", "recover"):
            return
        for (src_host, dst_host), selector in self._selectors.items():
            paths = self.topology.get_paths(src_host, dst_host)
            if paths:  # a fully partitioned pair keeps its stale group
                selector.update_paths(paths)

    def records(self) -> List[FlowRecord]:
        """Receiver-side flow records of all flows created so far."""
        return [flow.record for flow in self.flows]


class TcpNetwork(_BaseNetwork):
    """TCP NewReno over drop-tail switches with per-flow ECMP."""

    #: what this transport needs from the fabric (see the transport registry)
    CAPABILITIES = TransportCapabilities()

    #: output-queue depth, packets (the paper's 200-packet buffers)
    BUFFER_PACKETS = 200

    def __init__(self, topology: Topology, config: Optional[TcpConfig] = None, seed: int = 1):
        super().__init__(topology, seed)
        self.config = config if config is not None else TcpConfig()

    @classmethod
    def build(
        cls,
        eventlist: EventList,
        topology_cls: Type[Topology],
        config: Optional[TcpConfig] = None,
        seed: int = 1,
        buffer_packets: Optional[int] = None,
        **topology_kwargs,
    ) -> "TcpNetwork":
        """Create a topology with drop-tail ports sized for TCP."""
        config = config if config is not None else cls._default_config()
        depth = buffer_packets if buffer_packets is not None else cls.BUFFER_PACKETS
        buffer_bytes = depth * config.packet_bytes
        # sub-serialization-time NIC jitter models OS/NIC timing variability;
        # without it, synchronized window-based flows can phase-lock so that
        # one of them loses every contended buffer slot (see BaseQueue).
        nic_jitter = 300_000  # 300 ns

        def queue_factory(evl, rate_bps, name):
            return cls._make_switch_queue(evl, rate_bps, name, buffer_bytes, config)

        def nic_factory(evl, rate_bps, name):
            return DropTailQueue(
                evl,
                rate_bps,
                1024 * config.packet_bytes,
                name=name,
                serialization_jitter_ps=nic_jitter,
            )

        topology = topology_cls(
            eventlist,
            queue_factory=queue_factory,
            host_nic_factory=nic_factory,
            **topology_kwargs,
        )
        network = cls(topology, config=config, seed=seed)
        network._post_build()
        return network

    # hooks overridden by subclasses -------------------------------------------------

    @classmethod
    def _default_config(cls) -> TcpConfig:
        return TcpConfig()

    @classmethod
    def _make_switch_queue(cls, eventlist, rate_bps, name, buffer_bytes, config):
        return DropTailQueue(eventlist, rate_bps, buffer_bytes, name=name)

    def _post_build(self) -> None:
        """Topology-level fix-ups (PFC wiring for DCQCN)."""

    def _make_endpoints(self, flow_id, src_host, dst_host, size_bytes, on_complete):
        fwd, rev = self._ecmp_pair(src_host, dst_host, flow_id)
        src = TcpSrc(
            eventlist=self.eventlist,
            flow_id=flow_id,
            node_id=src_host,
            dst_node_id=dst_host,
            flow_size_bytes=size_bytes,
            route=fwd,
            config=self.config,
        )
        sink = TcpSink(
            eventlist=self.eventlist,
            flow_id=flow_id,
            node_id=dst_host,
            reverse_route=rev.extended(src),
            config=self.config,
            expected_bytes=size_bytes,
            on_complete=(lambda _s: on_complete(_s)) if on_complete else None,
        )
        src.route = fwd.extended(sink)
        return src, sink

    # public API ----------------------------------------------------------------------

    def create_flow(
        self,
        src_host: int,
        dst_host: int,
        size_bytes: int,
        start_time_ps: int = 0,
        priority: bool = False,
        on_complete: Optional[Callable[[object], None]] = None,
        **_ignored,
    ) -> EndpointFlow:
        """Create one transfer from *src_host* to *dst_host*."""
        flow_id = self._allocate_flow_id()
        src, sink = self._make_endpoints(flow_id, src_host, dst_host, size_bytes, on_complete)
        src.start(start_time_ps)
        # measure FCT from the moment the sender starts, as the paper does
        sink.record.start_time_ps = start_time_ps
        flow = EndpointFlow(flow_id=flow_id, src=src, sink=sink)
        self.flows.append(flow)
        return flow


class DctcpNetwork(TcpNetwork):
    """DCTCP over ECN-marking switches."""

    CAPABILITIES = TransportCapabilities(uses_ecn=True)

    #: marking threshold, packets (the paper uses 30 for DCTCP)
    MARKING_THRESHOLD_PACKETS = 30

    @classmethod
    def _default_config(cls) -> DctcpConfig:
        return DctcpConfig()

    @classmethod
    def _make_switch_queue(cls, eventlist, rate_bps, name, buffer_bytes, config):
        threshold = cls.MARKING_THRESHOLD_PACKETS * config.packet_bytes
        return ECNQueue(eventlist, rate_bps, buffer_bytes, threshold, name=name)

    def _make_endpoints(self, flow_id, src_host, dst_host, size_bytes, on_complete):
        fwd, rev = self._ecmp_pair(src_host, dst_host, flow_id)
        src = DctcpSrc(
            eventlist=self.eventlist,
            flow_id=flow_id,
            node_id=src_host,
            dst_node_id=dst_host,
            flow_size_bytes=size_bytes,
            route=fwd,
            config=self.config,
        )
        sink = DctcpSink(
            eventlist=self.eventlist,
            flow_id=flow_id,
            node_id=dst_host,
            reverse_route=rev.extended(src),
            config=self.config,
            expected_bytes=size_bytes,
            on_complete=(lambda _s: on_complete(_s)) if on_complete else None,
        )
        src.route = fwd.extended(sink)
        return src, sink


class MptcpNetwork(TcpNetwork):
    """MPTCP (LIA) over drop-tail switches, one subflow per path."""

    CAPABILITIES = TransportCapabilities(multipath=True)

    @classmethod
    def _default_config(cls) -> MptcpConfig:
        return MptcpConfig()

    def create_flow(
        self,
        src_host: int,
        dst_host: int,
        size_bytes: int,
        start_time_ps: int = 0,
        priority: bool = False,
        on_complete: Optional[Callable[[object], None]] = None,
        **_ignored,
    ) -> MptcpFlow:
        """Create one MPTCP connection (one subflow per available path)."""
        flow_id = self._allocate_flow_id()
        connection = MptcpConnection(
            eventlist=self.eventlist,
            flow_id=flow_id,
            src_node=src_host,
            dst_node=dst_host,
            flow_size_bytes=size_bytes,
            config=self.config,
            on_complete=(lambda _c: on_complete(_c)) if on_complete else None,
        )
        forward = self._surviving_paths(src_host, dst_host)
        reverse = self._surviving_paths(dst_host, src_host)
        connection.build(forward, reverse, rng=random.Random(self.rng.randrange(2**62)))
        connection.start(start_time_ps)
        connection.record.start_time_ps = start_time_ps
        flow = MptcpFlow(flow_id=flow_id, connection=connection)
        self.flows.append(flow)
        return flow


class DcqcnNetwork(TcpNetwork):
    """DCQCN over a lossless (PFC) fabric with ECN marking."""

    CAPABILITIES = TransportCapabilities(needs_lossless_fabric=True, uses_ecn=True)

    #: ECN marking threshold, packets (the paper uses 20 for DCQCN)
    MARKING_THRESHOLD_PACKETS = 20

    def __init__(self, topology: Topology, config: Optional[DcqcnConfig] = None, seed: int = 1):
        self._validate_lossless_fabric(topology)
        super().__init__(topology, config=config, seed=seed)

    @staticmethod
    def _validate_lossless_fabric(topology: Topology) -> None:
        """Refuse fabrics whose switch ports can drop (silent mis-simulation).

        DCQCN's congestion control assumes PFC guarantees zero loss; on a
        drop-tail fabric its slow NACK-free recovery would produce numbers
        that look like DCQCN but are not.  Fabrics with *no* switch ports
        (e.g. back-to-back host pairs) have nothing to pause and pass.
        """
        fabric = list(topology.fabric_queues())
        if fabric and not any(isinstance(q, LosslessQueue) for q in fabric):
            raise CapabilityError(
                f"DCQCN requires a lossless (PFC) fabric, but none of the "
                f"{len(fabric)} switch ports of this "
                f"{topology.__class__.__name__} are LosslessQueue instances; "
                f"build the network via DcqcnNetwork.build or the transport "
                f"registry so the ports are PFC-capable"
            )

    @classmethod
    def _default_config(cls) -> DcqcnConfig:
        return DcqcnConfig()

    @classmethod
    def _make_switch_queue(cls, eventlist, rate_bps, name, buffer_bytes, config):
        threshold = cls.MARKING_THRESHOLD_PACKETS * config.packet_bytes
        return LosslessQueue(
            eventlist,
            rate_bps,
            buffer_bytes,
            name=name,
            marking_threshold_bytes=threshold,
        )

    def _post_build(self) -> None:
        self.topology.wire_pfc()

    def _make_endpoints(self, flow_id, src_host, dst_host, size_bytes, on_complete):
        fwd, rev = self._ecmp_pair(src_host, dst_host, flow_id)
        src = DcqcnSrc(
            eventlist=self.eventlist,
            flow_id=flow_id,
            node_id=src_host,
            dst_node_id=dst_host,
            flow_size_bytes=size_bytes,
            route=fwd,
            config=self.config,
        )
        sink = DcqcnSink(
            eventlist=self.eventlist,
            flow_id=flow_id,
            node_id=dst_host,
            reverse_route=rev.extended(src),
            config=self.config,
            expected_bytes=size_bytes,
            on_complete=(lambda _s: on_complete(_s)) if on_complete else None,
        )
        src.route = fwd.extended(sink)
        return src, sink


class PHostNetwork(_BaseNetwork):
    """pHost over shallow drop-tail switches with per-packet spraying."""

    CAPABILITIES = TransportCapabilities(per_packet_spraying=True, multipath=True)

    #: pHost runs the same tiny buffers as NDP (8 packets)
    BUFFER_PACKETS = 8

    def __init__(self, topology: Topology, config: Optional[PHostConfig] = None, seed: int = 1):
        super().__init__(topology, seed)
        self.config = config if config is not None else PHostConfig()
        self._pacers = {}

    @classmethod
    def build(
        cls,
        eventlist: EventList,
        topology_cls: Type[Topology],
        config: Optional[PHostConfig] = None,
        seed: int = 1,
        buffer_packets: Optional[int] = None,
        **topology_kwargs,
    ) -> "PHostNetwork":
        """Create a topology with shallow drop-tail ports for pHost."""
        config = config if config is not None else PHostConfig()
        depth = buffer_packets if buffer_packets is not None else cls.BUFFER_PACKETS
        buffer_bytes = depth * config.packet_bytes

        def queue_factory(evl, rate_bps, name):
            return DropTailQueue(evl, rate_bps, buffer_bytes, name=name)

        def nic_factory(evl, rate_bps, name):
            return DropTailQueue(
                evl,
                rate_bps,
                512 * config.packet_bytes,
                name=name,
                serialization_jitter_ps=300_000,
            )

        topology = topology_cls(
            eventlist,
            queue_factory=queue_factory,
            host_nic_factory=nic_factory,
            **topology_kwargs,
        )
        return cls(topology, config=config, seed=seed)

    def pacer_for(self, host: int) -> PHostTokenPacer:
        """The per-host token pacer, created on first use."""
        pacer = self._pacers.get(host)
        if pacer is None:
            pacer = PHostTokenPacer(
                self.eventlist, self.topology.link_rate_bps, self.config.packet_bytes
            )
            self._pacers[host] = pacer
        return pacer

    def create_flow(
        self,
        src_host: int,
        dst_host: int,
        size_bytes: int,
        start_time_ps: int = 0,
        priority: bool = False,
        on_complete: Optional[Callable[[object], None]] = None,
        **_ignored,
    ) -> EndpointFlow:
        """Create one pHost transfer."""
        flow_id = self._allocate_flow_id()
        forward = self._surviving_paths(src_host, dst_host)
        reverse = self._surviving_paths(dst_host, src_host)
        src = PHostSrc(
            eventlist=self.eventlist,
            flow_id=flow_id,
            node_id=src_host,
            dst_node_id=dst_host,
            flow_size_bytes=size_bytes,
            routes=forward,
            config=self.config,
            rng=random.Random(self.rng.randrange(2**62)),
        )
        sink = PHostSink(
            eventlist=self.eventlist,
            flow_id=flow_id,
            node_id=dst_host,
            pacer=self.pacer_for(dst_host),
            reverse_routes=[route.extended(src) for route in reverse],
            config=self.config,
            rng=random.Random(self.rng.randrange(2**62)),
            on_complete=(lambda _s: on_complete(_s)) if on_complete else None,
        )
        src.set_destination_routes([route.extended(sink) for route in forward])
        src.connect(sink)
        src.start(start_time_ps)
        sink.record.start_time_ps = start_time_ps
        flow = EndpointFlow(flow_id=flow_id, src=src, sink=sink)
        self.flows.append(flow)
        return flow
