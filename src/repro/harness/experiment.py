"""Canonical workload runners shared by examples, tests and benchmarks.

Every function takes a *network* object (any of the ``*Network`` builders —
NDP or a baseline) and drives it through one of the paper's workloads,
returning plain result structures that the per-figure benchmarks format into
the paper's tables.

Public API at a glance:

* workload starters — :func:`start_permutation`, :func:`start_random_matrix`,
  :func:`start_incast`: create the flows of a traffic matrix and return
  their handles (the simulation has not run yet);
* drivers — :func:`measure_throughput` (fixed-duration goodput study,
  returns a :class:`ThroughputResult`) and :func:`run_until_complete`
  (completion study, returns an :class:`FctResult`);
* liveness — :func:`liveness_report` / :func:`assert_all_complete`: the
  conformance suite's completion + leak invariant over a set of flows.

Result objects round-trip exactly through the persistent sweep cache
(:mod:`repro.harness.sweep` registers :class:`ThroughputResult` with its
codec), so figure generators can return them directly from cached or
worker-process runs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.harness import metrics
from repro.sim import units
from repro.sim.logger import FlowRecord
from repro.workloads.traffic_matrices import incast_pairs, permutation_pairs, random_pairs


@dataclass
class ThroughputResult:
    """Outcome of a fixed-duration throughput experiment (e.g. a permutation)."""

    duration_ps: int
    link_rate_bps: int
    per_flow_goodput_bps: List[float] = field(default_factory=list)
    utilization: float = 0.0
    trimmed_packets: int = 0
    dropped_packets: int = 0

    def sorted_goodputs_gbps(self) -> List[float]:
        """Per-flow goodput in Gb/s, ascending — the y-values of Figure 14."""
        return sorted(g / 1e9 for g in self.per_flow_goodput_bps)

    def min_goodput_gbps(self) -> float:
        """Goodput of the unluckiest flow."""
        return min(self.per_flow_goodput_bps) / 1e9 if self.per_flow_goodput_bps else 0.0


@dataclass
class FctResult:
    """Outcome of an experiment whose metric is flow completion times."""

    records: List[FlowRecord] = field(default_factory=list)

    def completed(self) -> List[FlowRecord]:
        """Only the flows that finished within the simulated horizon."""
        return [r for r in self.records if r.completed]

    def fcts_us(self) -> List[float]:
        """Completion times in microseconds."""
        return [r.completion_time_ps() / units.MICROSECOND for r in self.completed()]

    def last_completion_us(self) -> float:
        """Finish time of the last flow to complete (relative FCT), in us."""
        fcts = self.fcts_us()
        if not fcts:
            raise ValueError("no flow completed")
        return max(fcts)

    def summary(self) -> Dict[str, float]:
        """Median / p90 / p99 / max completion times in microseconds."""
        return metrics.summarize_fcts_us(self.records)


def start_permutation(
    network,
    flow_size_bytes: int,
    rng: Optional[random.Random] = None,
    start_time_ps: int = 0,
) -> List[object]:
    """Start one flow per host according to a random permutation matrix."""
    rng = rng if rng is not None else random.Random(1)
    pairs = permutation_pairs(network.topology.hosts(), rng)
    return [
        network.create_flow(src, dst, flow_size_bytes, start_time_ps=start_time_ps)
        for src, dst in pairs
    ]


def start_random_matrix(
    network,
    flow_size_bytes: int,
    rng: Optional[random.Random] = None,
    flows_per_host: int = 1,
    start_time_ps: int = 0,
) -> List[object]:
    """Start flows from every host to uniformly random destinations."""
    rng = rng if rng is not None else random.Random(1)
    pairs = random_pairs(network.topology.hosts(), rng, flows_per_host=flows_per_host)
    return [
        network.create_flow(src, dst, flow_size_bytes, start_time_ps=start_time_ps)
        for src, dst in pairs
    ]


def start_incast(
    network,
    receiver: int,
    senders: Sequence[int],
    bytes_per_sender: int,
    start_time_ps: int = 0,
    priority_sender: Optional[int] = None,
) -> List[object]:
    """Start a synchronized incast of *senders* towards *receiver*.

    If *priority_sender* is given and the network supports receiver-side
    prioritization (NDP does), that sender's flow is marked high priority.
    """
    flows = []
    for src, dst in incast_pairs(receiver, senders):
        flows.append(
            network.create_flow(
                src,
                dst,
                bytes_per_sender,
                start_time_ps=start_time_ps,
                priority=(src == priority_sender),
            )
        )
    return flows


def measure_throughput(
    network,
    flows: Sequence[object],
    duration_ps: int,
    run: bool = True,
) -> ThroughputResult:
    """Run the event list for *duration_ps* and compute per-flow goodputs."""
    if run:
        network.eventlist.run(until=duration_ps)
    per_flow = [metrics.goodput_bps(flow.record, duration_ps) for flow in flows]
    receivers = len({flow.record.dst for flow in flows})
    utilization = metrics.utilization_from_records(
        [flow.record for flow in flows],
        duration_ps,
        network.topology.link_rate_bps,
        receivers,
    )
    return ThroughputResult(
        duration_ps=duration_ps,
        link_rate_bps=network.topology.link_rate_bps,
        per_flow_goodput_bps=per_flow,
        utilization=utilization,
        trimmed_packets=network.topology.total_trimmed(),
        dropped_packets=network.topology.total_dropped(),
    )


def run_until_complete(
    network,
    flows: Sequence[object],
    timeout_ps: int,
    check_interval_ps: int = units.milliseconds(1),
) -> FctResult:
    """Run until every flow in *flows* completes (or *timeout_ps* elapses)."""
    eventlist = network.eventlist
    deadline = eventlist.now() + timeout_ps
    while eventlist.now() < deadline:
        if all(flow.complete for flow in flows):
            break
        next_stop = min(deadline, eventlist.now() + check_interval_ps)
        eventlist.run(until=next_stop)
        if eventlist.pending_events() == 0:
            break
    return FctResult(records=[flow.record for flow in flows])


@dataclass
class LivenessReport:
    """Completion / liveness summary of a set of flows (NDP or baseline).

    ``stuck_senders`` lists flow ids whose sender still holds packets in its
    retransmission queue — the signature of the pull-loss deadlock the
    liveness subsystem (pull-retry + sender keepalive) exists to close.
    """

    total_flows: int = 0
    completed_flows: int = 0
    incomplete_flow_ids: List[int] = field(default_factory=list)
    stuck_senders: List[int] = field(default_factory=list)
    pull_retries: int = 0
    keepalive_retransmits: int = 0
    rtx_from_timeout: int = 0

    @property
    def all_complete(self) -> bool:
        """True when every flow delivered its full transfer."""
        return self.completed_flows == self.total_flows


def liveness_report(flows: Sequence[object]) -> LivenessReport:
    """Summarize completion state and liveness counters for *flows*.

    Works with any network's flow handles; the retry/keepalive counters and
    retransmit-queue depth are read when the handle exposes them (NDP flows
    do via ``sink.record`` / ``src.record`` / ``src.retransmit_queue_depth``).
    """
    report = LivenessReport(total_flows=len(flows))
    for flow in flows:
        if flow.complete:
            report.completed_flows += 1
        else:
            report.incomplete_flow_ids.append(flow.record.flow_id)
        src = getattr(flow, "src", None)
        if src is None:
            continue
        depth = getattr(src, "retransmit_queue_depth", None)
        if depth is not None and depth() > 0:
            report.stuck_senders.append(flow.record.flow_id)
        sender_record = getattr(src, "record", None)
        if sender_record is not None:
            report.keepalive_retransmits += getattr(sender_record, "keepalive_retransmits", 0)
            report.rtx_from_timeout += getattr(sender_record, "rtx_from_timeout", 0)
        sink = getattr(flow, "sink", None)
        if sink is not None and getattr(sink, "record", None) is not None:
            report.pull_retries += getattr(sink.record, "pull_retries", 0)
    return report


def assert_all_complete(flows: Sequence[object]) -> LivenessReport:
    """Assert every flow completed and no sender is stuck; return the report.

    The conformance suite's central invariant: after an adversarial loss
    scenario has been driven to quiescence, every transfer must have been
    delivered in full and every retransmission queue drained.
    """
    report = liveness_report(flows)
    if not report.all_complete or report.stuck_senders:
        raise AssertionError(
            f"liveness violation: {report.completed_flows}/{report.total_flows} flows "
            f"complete, incomplete={report.incomplete_flow_ids[:16]}, "
            f"stuck_senders={report.stuck_senders[:16]}, "
            f"pull_retries={report.pull_retries}, "
            f"keepalive_retransmits={report.keepalive_retransmits}, "
            f"rtx_from_timeout={report.rtx_from_timeout}"
        )
    return report


def run_open_loop(network, generator) -> List[FlowRecord]:
    """Drive an open-loop generator through its full horizon.

    Starts the generator at the event list's current time, runs the
    simulation through warmup + measurement + drain, and returns the
    completed measurement-window records — the population
    :func:`~repro.harness.metrics.binned_slowdown_summary` consumes.
    Censored flows (measured arrivals the drain failed to finish) remain
    available via ``generator.measured_records(completed_only=False)``.
    """
    generator.start(at_time_ps=network.eventlist.now())
    generator.run()
    return generator.measured_records()


def run_service_requests(network, specs, horizon_ps, window_fn=None):
    """Execute service-request specs and run the simulation to a horizon.

    Builds a :class:`~repro.workloads.services.ServiceEngine` over
    *network*, submits every spec (tagged by *window_fn*, an
    ``arrival_ps -> window`` mapping — all-measure when omitted), drives
    the event list to the absolute *horizon_ps*, and returns the engine.
    Requests whose final stage has not finished by the horizon remain
    incomplete (censored) — report them, don't drop them.
    """
    from repro.workloads.services import ServiceEngine

    engine = ServiceEngine(network.eventlist, network)
    engine.submit_all(specs, window_fn=window_fn)
    engine.run_until(horizon_ps)
    return engine


def permutation_utilization(
    network_builder,
    flow_size_bytes: int = 50_000_000,
    duration_ps: int = units.milliseconds(2),
    seed: int = 1,
) -> ThroughputResult:
    """Convenience wrapper: build → permute → measure (used by sweeps)."""
    network = network_builder()
    flows = start_permutation(network, flow_size_bytes, rng=random.Random(seed))
    return measure_throughput(network, flows, duration_ps)
