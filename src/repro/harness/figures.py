"""Data generators for every figure in the paper's evaluation.

Each ``figure*`` function runs the corresponding experiment (at a scale
suitable for a laptop) and returns plain dictionaries / lists that the
benchmarks print as the paper's rows and the examples plot or tabulate.

Every figure is decomposed into a :class:`~repro.harness.sweep.Plan`: a list
of independent :class:`~repro.harness.sweep.RunSpec` units (one seeded
simulator run each — a single point of a sweep, one protocol of a
comparison) plus an ``assemble`` step that builds the public rows from the
unit results.  The ``figure*_plan`` builders expose that decomposition; the
``figure*`` generators are thin wrappers that execute their plan through
:func:`~repro.harness.sweep.run_plan`, which consults the persistent result
cache (``$REPRO_CACHE_DIR``, default ``~/.cache/repro``; disable with
``REPRO_NO_CACHE=1``) and can fan the units across worker processes
(``python -m repro.cli all --jobs 4``).

Determinism: every unit is an independent module-level function that builds
its own :class:`~repro.sim.eventlist.EventList` and seeds its own RNGs, so
parallel, cached and cold serial executions return bit-identical results
(see :mod:`repro.harness.sweep` for the normalization contract, and
``tests/harness/test_sweep.py`` for the assertion).

``FIGURE_PLANS`` maps every CLI experiment name to its plan builder; plan
builders accept the same keyword arguments (and defaults) as their
generator, which is what the CLI ``sweep`` subcommand overrides to run
user-defined parameter grids.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

from repro.core.config import NdpConfig
from repro.core.switch import CpSwitchQueue, NdpSwitchQueue
from repro.harness import experiment, metrics
from repro.harness.ndp_network import NdpNetwork
from repro.harness.sweep import Plan, RunSpec, run_plan
from repro.hosts.processing import (
    HostProcessingModel,
    JitteredPullPacer,
    PullSpacingJitter,
    RpcStackModel,
)
from repro.sim import units
from repro.sim.eventlist import EventList
from repro.sim.logger import RateEstimator, TimeSeriesSampler
from repro.topology import (
    BackToBackTopology,
    FabricController,
    FatTreeTopology,
    LeafSpineTopology,
    SingleSwitchTopology,
)
from repro.transports import registry
from repro.transports.capabilities import FamilyTraits
from repro.transports.constant_rate import ConstantRateSink, ConstantRateSource
from repro.transports.tcp import TcpConfig
from repro.workloads.flowsize import (
    DataMiningFlowSizes,
    FacebookWebFlowSizes,
    WebSearchFlowSizes,
)
from repro.workloads.generators import ClosedLoopGenerator
from repro.workloads.openloop import MEASURE, OpenLoopGenerator
from repro.workloads.services import (
    CoflowShuffleTemplate,
    PartitionAggregateTemplate,
    synthesize_requests,
    window_of as service_window_of,
)
from repro.workloads.trace import trace_digest

#: default comparison set of the large-scale simulations (Figures 14/15/16)
COMPARISON_PROTOCOLS = (registry.NDP, registry.MPTCP, registry.DCTCP, registry.DCQCN)


def _resolve_protocols(requested, default, traits: FamilyTraits) -> List[str]:
    """Canonical display names for a family's protocol axis.

    Accepts any registered spelling (``ndp``, ``NDP``, ``PHOST``, ...) and
    validates each protocol against the family's :class:`FamilyTraits` —
    an incompatible (protocol, family) pair raises
    :class:`~repro.transports.registry.IncompatibleTransportError` at plan
    build time, which the sweep CLI reports as a skipped grid point.
    """
    names = registry.normalize(requested if requested is not None else default)
    for name in names:
        registry.require_compatible(name, traits)
    return names


# ---------------------------------------------------------------------------
# Figure 2 — CP congestion collapse and phase effects
# ---------------------------------------------------------------------------

def figure2_plan(
    flow_counts: Sequence[int] = (4, 16, 64, 128),
    duration_ps: int = units.milliseconds(20),
    packet_bytes: int = 9000,
    seed: int = 1,
) -> Plan:
    """One spec per (switch kind, flow count) overload run."""
    cases = [(kind, flows) for kind in (registry.NDP, "CP") for flows in flow_counts]
    specs = [
        RunSpec(
            f"fig2[{kind},flows={flows}]",
            _run_overload,
            dict(
                switch_kind=kind,
                flows=flows,
                duration_ps=duration_ps,
                packet_bytes=packet_bytes,
                seed=seed,
            ),
        )
        for kind, flows in cases
    ]

    def assemble(results: List[List[float]]) -> List[Dict[str, float]]:
        rows = []
        for (kind, flows), shares in zip(cases, results):
            shares = sorted(shares)
            worst = shares[: max(1, len(shares) // 10)]
            rows.append(
                {
                    "switch": kind,
                    "flows": flows,
                    "mean_percent": 100 * metrics.mean(shares),
                    "worst10_percent": 100 * metrics.mean(worst),
                }
            )
        return rows

    return Plan(specs, assemble)


def figure2_switch_overload(
    flow_counts: Sequence[int] = (4, 16, 64, 128),
    duration_ps: int = units.milliseconds(20),
    packet_bytes: int = 9000,
    seed: int = 1,
) -> List[Dict[str, float]]:
    """Percent of fair-share goodput under N unresponsive flows.

    Reproduces Figure 2: many constant-rate senders converge on a single
    10 Gb/s output port served either by an NDP switch queue (dual priority
    queue, WRR, probabilistic trim) or a CP queue (single FIFO, deterministic
    trim).  Returns one row per (switch type, flow count) with the mean and
    worst-10% fair-share percentage.
    """
    return run_plan(figure2_plan(flow_counts, duration_ps, packet_bytes, seed))


def _run_overload(switch_kind, flows, duration_ps, packet_bytes, seed):
    """Unit run: goodput fair-share fractions of *flows* senders on one port."""
    eventlist = EventList()
    config = NdpConfig(mtu_bytes=packet_bytes, header_queue_bytes=8 * packet_bytes)
    rng = random.Random(seed)

    def queue_factory(evl, rate, name):
        if switch_kind == registry.NDP:
            return NdpSwitchQueue(evl, rate, config=config, rng=rng, name=name)
        return CpSwitchQueue(evl, rate, config=config, name=name)

    topology = SingleSwitchTopology(
        eventlist, hosts=flows + 1, queue_factory=queue_factory
    )
    link_rate = topology.link_rate_bps
    sinks = []
    for index in range(flows):
        src_host = index + 1
        sink = ConstantRateSink(eventlist, flow_id=index, node_id=0)
        route = topology.get_paths(src_host, 0)[0].extended(sink)
        source = ConstantRateSource(
            eventlist,
            flow_id=index,
            node_id=src_host,
            dst_node_id=0,
            route=route,
            rate_bps=link_rate,
            packet_bytes=packet_bytes,
            jitter_fraction=0.05,
            rng=random.Random(seed * 1000 + index),
        )
        source.start(0)
        sinks.append(sink)
    eventlist.run(until=duration_ps)
    return [
        metrics.fair_share_fraction(sink.goodput_bps(duration_ps), link_rate, flows)
        for sink in sinks
    ]


# ---------------------------------------------------------------------------
# Figure 4 — delivery latency CDF under permutation / random / incast
# ---------------------------------------------------------------------------

def figure4_plan(
    k: int = 4,
    permutation_flow_bytes: int = 3_000_000,
    incast_senders: int = 15,
    incast_flow_bytes: int = 135_000,
    duration_ps: int = units.milliseconds(8),
    seed: int = 1,
) -> Plan:
    """One spec per traffic matrix (permutation / random / incast)."""
    matrices = ("permutation", "random", "incast")
    specs = [
        RunSpec(
            f"fig4[{matrix}]",
            _figure4_matrix,
            dict(
                matrix=matrix,
                k=k,
                permutation_flow_bytes=permutation_flow_bytes,
                incast_senders=incast_senders,
                incast_flow_bytes=incast_flow_bytes,
                duration_ps=duration_ps,
                seed=seed,
            ),
        )
        for matrix in matrices
    ]

    def assemble(results: List[List[float]]) -> Dict[str, List[float]]:
        return {matrix: samples for matrix, samples in zip(matrices, results)}

    return Plan(specs, assemble)


def figure4_latency_cdf(
    k: int = 4,
    permutation_flow_bytes: int = 3_000_000,
    incast_senders: int = 15,
    incast_flow_bytes: int = 135_000,
    duration_ps: int = units.milliseconds(8),
    seed: int = 1,
) -> Dict[str, List[float]]:
    """Per-packet delivery latency (send to sender-side ACK) distributions.

    Returns latency samples in microseconds for three traffic matrices:
    ``permutation``, ``random`` and ``incast`` (the paper's Figure 4, scaled
    from a 432-host to a ``k``-ary FatTree).
    """
    return run_plan(
        figure4_plan(
            k, permutation_flow_bytes, incast_senders, incast_flow_bytes,
            duration_ps, seed,
        )
    )


def _figure4_matrix(
    matrix, k, permutation_flow_bytes, incast_senders, incast_flow_bytes,
    duration_ps, seed,
):
    """Unit run: per-packet delivery latency samples (us) for one matrix."""
    eventlist = EventList()
    network = NdpNetwork.build(eventlist, FatTreeTopology, k=k, seed=seed)
    rng = random.Random(seed)
    if matrix == "permutation":
        flows = [
            network.create_flow(src, dst, permutation_flow_bytes,
                                record_packet_latencies=True)
            for src, dst in _permutation(network, rng)
        ]
    elif matrix == "random":
        from repro.workloads.traffic_matrices import random_pairs

        flows = [
            network.create_flow(src, dst, permutation_flow_bytes,
                                record_packet_latencies=True)
            for src, dst in random_pairs(network.topology.hosts(), rng)
        ]
    else:
        flows = [
            network.create_flow(src, 0, incast_flow_bytes,
                                record_packet_latencies=True)
            for src in range(1, incast_senders + 1)
        ]
    eventlist.run(until=duration_ps)
    return [
        latency / units.MICROSECOND
        for flow in flows
        for latency in flow.src.packet_latencies_ps
    ]


def _permutation(network, rng):
    from repro.workloads.traffic_matrices import permutation_pairs

    return permutation_pairs(network.topology.hosts(), rng)


# ---------------------------------------------------------------------------
# Figure 8 — 1 KB RPC latency across stacks
# ---------------------------------------------------------------------------

def figure8_plan(samples: int = 500, seed: int = 1) -> Plan:
    """A single spec: the host-model study shares one simulated network RTT."""
    specs = [RunSpec("fig8", _figure8_run, dict(samples=samples, seed=seed))]
    return Plan(specs, lambda results: results[0])


def figure8_rpc_latency(samples: int = 500, seed: int = 1) -> Dict[str, Dict[str, float]]:
    """Median/p99 latency of a 1 KB RPC over NDP, TFO and TCP stacks.

    The network component (a request and a response over back-to-back
    10 Gb/s hosts) is simulated; host-side overheads come from
    :class:`~repro.hosts.processing.HostProcessingModel`, with and without
    deep CPU sleep states, exactly mirroring the two groups of curves in
    Figure 8.
    """
    return run_plan(figure8_plan(samples, seed))


def _figure8_run(samples, seed):
    """Unit run: median/p99 RPC latency for every host stack model."""
    network_rtt = _measure_rpc_network_rtt()
    rng = random.Random(seed)
    stacks = {
        registry.NDP: RpcStackModel(HostProcessingModel.ndp_dpdk(), handshake_rtts=0),
        "TFO (no sleep)": RpcStackModel(
            HostProcessingModel.kernel_tfo(deep_sleep=False), handshake_rtts=0
        ),
        "TCP (no sleep)": RpcStackModel(
            HostProcessingModel.kernel_tcp(deep_sleep=False), handshake_rtts=1
        ),
        "TFO": RpcStackModel(HostProcessingModel.kernel_tfo(), handshake_rtts=0),
        registry.TCP: RpcStackModel(HostProcessingModel.kernel_tcp(), handshake_rtts=1),
    }
    summary = {}
    for name, model in stacks.items():
        values = [v / units.MICROSECOND for v in model.sample_many(network_rtt, rng, samples)]
        summary[name] = {
            "median_us": metrics.percentile(values, 0.5),
            "p99_us": metrics.percentile(values, 0.99),
        }
    return summary


def _measure_rpc_network_rtt() -> int:
    """Simulate the 1 KB request + 1 KB response wire time over NDP."""
    eventlist = EventList()
    network = NdpNetwork.build(eventlist, BackToBackTopology)
    request = network.create_flow(0, 1, 1_000)
    eventlist.run(until=units.milliseconds(1))
    response = network.create_flow(1, 0, 1_000, start_time_ps=eventlist.now())
    eventlist.run(until=eventlist.now() + units.milliseconds(1))
    request_wire = request.record.finish_time_ps - request.sender_record.start_time_ps
    response_wire = response.record.finish_time_ps - response.sender_record.start_time_ps
    return request_wire + response_wire


# ---------------------------------------------------------------------------
# Figure 9 — 7:1 incast on the testbed topology, NDP vs TCP
# ---------------------------------------------------------------------------

def figure9_plan(
    response_sizes: Sequence[int] = (10_000, 50_000, 100_000, 250_000, 500_000, 1_000_000),
    seed: int = 1,
) -> Plan:
    """One spec per (protocol, response size) incast run."""
    response_sizes = tuple(response_sizes)
    cases = [
        (protocol, size)
        for size in response_sizes
        for protocol in (registry.NDP, registry.TCP)
    ]
    specs = [
        RunSpec(
            f"fig9[{protocol},kb={size // 1000}]",
            _figure9_point,
            dict(protocol=protocol, response_bytes=size, seed=seed),
        )
        for protocol, size in cases
    ]

    def assemble(results: List[int]) -> List[Dict[str, float]]:
        by_case = {case: value for case, value in zip(cases, results)}
        rows = []
        for size in response_sizes:
            ideal = metrics.ideal_incast_completion_ps(
                7, size, units.DEFAULT_LINK_RATE_BPS, 1500, 64
            )
            rows.append(
                {
                    "response_kb": size / 1000,
                    "ndp_ms": by_case[(registry.NDP, size)] / units.MILLISECOND,
                    "tcp_ms": by_case[(registry.TCP, size)] / units.MILLISECOND,
                    "ideal_ms": ideal / units.MILLISECOND,
                }
            )
        return rows

    return Plan(specs, assemble)


def figure9_testbed_incast(
    response_sizes: Sequence[int] = (10_000, 50_000, 100_000, 250_000, 500_000, 1_000_000),
    seed: int = 1,
) -> List[Dict[str, float]]:
    """Completion time of a 7-to-1 incast vs response size (NDP vs TCP).

    The topology is the paper's 8-server, six-switch leaf-spine testbed; TCP
    uses the Linux defaults (handshake, 200 ms minimum RTO), NDP the 1500-byte
    MTU of the prototype.  Returns one row per response size with the
    completion time of the last flow and the theoretical optimum.
    """
    return run_plan(figure9_plan(response_sizes, seed))


def _figure9_point(protocol, response_bytes, seed):
    """Unit run: last-flow completion (ps) of the 7:1 testbed incast."""
    if protocol == registry.NDP:
        config = NdpConfig(mtu_bytes=1500, header_queue_bytes=8 * 1500)
    else:
        config = TcpConfig()
    return _incast_last_fct(
        protocol, response_bytes, senders=7, topology_cls=LeafSpineTopology,
        topology_kwargs=dict(leaves=4, spines=2, hosts_per_leaf=2),
        config=config, seed=seed,
    )


def _incast_last_fct(
    protocol: str,
    bytes_per_sender: int,
    senders: int,
    topology_cls=SingleSwitchTopology,
    topology_kwargs: Optional[dict] = None,
    config=None,
    seed: int = 1,
    timeout_ps: int = units.seconds(2),
    receiver: int = 0,
) -> int:
    eventlist = EventList()
    kwargs = dict(topology_kwargs or {})
    if topology_cls is SingleSwitchTopology and "hosts" not in kwargs:
        kwargs["hosts"] = senders + 1
    network = registry.build_network(
        protocol, eventlist, topology_cls, config=config, seed=seed, **kwargs
    )
    sender_hosts = [h for h in network.topology.hosts() if h != receiver][:senders]
    flows = experiment.start_incast(network, receiver, sender_hosts, bytes_per_sender)
    experiment.run_until_complete(network, flows, timeout_ps)
    finished = [f.record.finish_time_ps for f in flows if f.record.finish_time_ps]
    if len(finished) < len(flows):
        return timeout_ps  # did not complete within the horizon
    return max(finished)


# ---------------------------------------------------------------------------
# Figure 10 — receiver-side prioritization of a short flow
# ---------------------------------------------------------------------------

def figure10_plan(
    short_bytes: int = 200_000,
    long_bytes: int = 2_000_000,
    long_flows: int = 6,
    seed: int = 1,
) -> Plan:
    """One spec per scenario: idle, prioritized, not prioritized."""
    cases = [
        ("idle_us", False, False),
        ("with_prioritization_us", True, True),
        ("without_prioritization_us", True, False),
    ]
    specs = [
        RunSpec(
            f"fig10[{label}]",
            _figure10_case,
            dict(
                background=background,
                priority=priority,
                short_bytes=short_bytes,
                long_bytes=long_bytes,
                long_flows=long_flows,
                seed=seed,
            ),
        )
        for label, background, priority in cases
    ]

    def assemble(results: List[float]) -> Dict[str, float]:
        return {label: value for (label, _b, _p), value in zip(cases, results)}

    return Plan(specs, assemble)


def figure10_prioritization(
    short_bytes: int = 200_000,
    long_bytes: int = 2_000_000,
    long_flows: int = 6,
    seed: int = 1,
) -> Dict[str, float]:
    """FCT of a short flow: idle, prioritized, and not prioritized (in us)."""
    return run_plan(figure10_plan(short_bytes, long_bytes, long_flows, seed))


def _figure10_case(background, priority, short_bytes, long_bytes, long_flows, seed):
    """Unit run: FCT (us) of the short flow in one prioritization scenario."""
    config = NdpConfig(mtu_bytes=1500, header_queue_bytes=8 * 1500)
    eventlist = EventList()
    network = NdpNetwork.build(
        eventlist, SingleSwitchTopology, hosts=long_flows + 3, config=config, seed=seed
    )
    if background:
        for src in range(2, 2 + long_flows):
            network.create_flow(src, 0, long_bytes)
    short = network.create_flow(1, 0, short_bytes, priority=priority)
    eventlist.run(until=units.milliseconds(60))
    if not short.complete:
        raise RuntimeError("short flow did not complete")
    return short.record.completion_time_ps() / units.MICROSECOND


# ---------------------------------------------------------------------------
# Figures 11 / 12 / 13 — host-model fidelity experiments
# ---------------------------------------------------------------------------

def figure11_plan(
    windows: Sequence[int] = (1, 2, 4, 8, 16, 32, 64, 128),
    flow_bytes: int = 20_000_000,
    jittered: bool = False,
    seed: int = 1,
) -> Plan:
    """One spec per initial-window setting."""
    windows = tuple(windows)
    specs = [
        RunSpec(
            f"fig11[iw={window}{',jitter' if jittered else ''}]",
            _figure11_window,
            dict(window=window, flow_bytes=flow_bytes, jittered=jittered, seed=seed),
        )
        for window in windows
    ]

    def assemble(results: List[float]) -> List[Dict[str, float]]:
        return [
            {"initial_window": window, "throughput_gbps": value}
            for window, value in zip(windows, results)
        ]

    return Plan(specs, assemble)


def figure11_initial_window_throughput(
    windows: Sequence[int] = (1, 2, 4, 8, 16, 32, 64, 128),
    flow_bytes: int = 20_000_000,
    jittered: bool = False,
    seed: int = 1,
) -> List[Dict[str, float]]:
    """Throughput of a back-to-back transfer as a function of the IW."""
    return run_plan(figure11_plan(windows, flow_bytes, jittered, seed))


def _figure11_window(window, flow_bytes, jittered, seed):
    """Unit run: throughput (Gb/s) of one back-to-back transfer at one IW."""
    config = NdpConfig(initial_window_packets=window)
    eventlist = EventList()
    pacer_factory = None
    if jittered:
        jitter = PullSpacingJitter(rng=random.Random(seed + window))

        def pacer_factory(host, _evl=eventlist, _cfg=config, _jit=jitter):
            return JitteredPullPacer(
                _evl, link_rate_bps=units.DEFAULT_LINK_RATE_BPS,
                mtu_bytes=_cfg.mtu_bytes, jitter=_jit,
            )

    network = NdpNetwork.build(
        eventlist, BackToBackTopology, config=config, seed=seed,
        pacer_factory=pacer_factory,
    )
    flow = network.create_flow(0, 1, flow_bytes)
    eventlist.run(until=units.milliseconds(60))
    return flow.record.throughput_bps() / 1e9 if flow.complete else 0.0


def figure12_plan(
    packet_sizes: Sequence[int] = (1500, 9000),
    samples: int = 5000,
    seed: int = 1,
) -> Plan:
    """A single (pure host-model) spec; exercises the non-string-key codec."""
    specs = [
        RunSpec(
            "fig12",
            _figure12_run,
            dict(packet_sizes=tuple(packet_sizes), samples=samples, seed=seed),
        )
    ]
    return Plan(specs, lambda results: results[0])


def figure12_pull_spacing(
    packet_sizes: Sequence[int] = (1500, 9000),
    samples: int = 5000,
    seed: int = 1,
) -> Dict[int, Dict[str, float]]:
    """Distribution of pull spacing for 1500 B and 9000 B packets (us)."""
    return run_plan(figure12_plan(packet_sizes, samples, seed))


def _figure12_run(packet_sizes, samples, seed):
    """Unit run: pull-spacing percentiles for each packet size."""
    result = {}
    for size in packet_sizes:
        target = units.serialization_time_ps(size, units.DEFAULT_LINK_RATE_BPS)
        jitter = PullSpacingJitter(
            sigma=0.35 if size <= 1500 else 0.15, rng=random.Random(seed)
        )
        values = [v / units.MICROSECOND for v in jitter.sample_many(target, samples)]
        result[size] = {
            "target_us": target / units.MICROSECOND,
            "median_us": metrics.percentile(values, 0.5),
            "p10_us": metrics.percentile(values, 0.1),
            "p90_us": metrics.percentile(values, 0.9),
        }
    return result


def figure13_plan(
    flow_sizes: Sequence[int] = (15_000, 30_000, 60_000, 90_000, 120_000),
    senders: int = 32,
    seed: int = 1,
) -> Plan:
    """One spec per (flow size, pacer kind) incast run."""
    flow_sizes = tuple(flow_sizes)
    cases = [(size, jittered) for size in flow_sizes for jittered in (False, True)]
    specs = [
        RunSpec(
            f"fig13[kb={size // 1000}{',jitter' if jittered else ''}]",
            _incast_fct_with_pacer,
            dict(size=size, senders=senders, jittered=jittered, seed=seed),
        )
        for size, jittered in cases
    ]

    def assemble(results: List[int]) -> List[Dict[str, float]]:
        by_case = {case: value for case, value in zip(cases, results)}
        return [
            {
                "flow_kb": size / 1000,
                "perfect_us": by_case[(size, False)] / units.MICROSECOND,
                "experimental_us": by_case[(size, True)] / units.MICROSECOND,
            }
            for size in flow_sizes
        ]

    return Plan(specs, assemble)


def figure13_incast_pull_jitter(
    flow_sizes: Sequence[int] = (15_000, 30_000, 60_000, 90_000, 120_000),
    senders: int = 32,
    seed: int = 1,
) -> List[Dict[str, float]]:
    """Incast completion with perfect vs experimentally-jittered pull spacing."""
    return run_plan(figure13_plan(flow_sizes, senders, seed))


def _incast_fct_with_pacer(size, senders, jittered, seed):
    """Unit run: last-flow FCT (ps) of an incast with one pacer setting."""
    config = NdpConfig(mtu_bytes=1500, header_queue_bytes=8 * 1500)
    eventlist = EventList()
    pacer_factory = None
    if jittered:
        jitter = PullSpacingJitter(sigma=0.35, rng=random.Random(seed))

        def pacer_factory(host, _evl=eventlist, _cfg=config, _jit=jitter):
            return JitteredPullPacer(
                _evl, link_rate_bps=units.DEFAULT_LINK_RATE_BPS,
                mtu_bytes=_cfg.mtu_bytes, jitter=_jit,
            )

    network = NdpNetwork.build(
        eventlist, SingleSwitchTopology, hosts=senders + 1, config=config,
        seed=seed, pacer_factory=pacer_factory,
    )
    flows = [network.create_flow(src, 0, size) for src in range(1, senders + 1)]
    result = experiment.run_until_complete(network, flows, units.seconds(1))
    return int(result.last_completion_us() * units.MICROSECOND)


# ---------------------------------------------------------------------------
# Figure 14 — permutation throughput across protocols
# ---------------------------------------------------------------------------

def figure14_plan(
    k: int = 4,
    flow_bytes: int = 200_000_000,
    duration_ps: int = units.milliseconds(2),
    protocols: Optional[Sequence[str]] = None,
    seed: int = 3,
    protocol: Optional[str] = None,
) -> Plan:
    """One spec per protocol (``protocol`` narrows the set to one for sweeps)."""
    if protocol is not None:
        protocols = (protocol,)
    protocols = _resolve_protocols(
        protocols, COMPARISON_PROTOCOLS, FamilyTraits(family="fig14")
    )
    specs = [
        RunSpec(
            f"fig14[{name}]",
            _figure14_protocol,
            dict(protocol=name, k=k, flow_bytes=flow_bytes,
                 duration_ps=duration_ps, seed=seed),
        )
        for name in protocols
    ]

    def assemble(results) -> Dict[str, experiment.ThroughputResult]:
        return {name: result for name, result in zip(protocols, results)}

    return Plan(specs, assemble)


def figure14_permutation_throughput(
    k: int = 4,
    flow_bytes: int = 200_000_000,
    duration_ps: int = units.milliseconds(2),
    protocols: Optional[Sequence[str]] = None,
    seed: int = 3,
    protocol: Optional[str] = None,
) -> Dict[str, experiment.ThroughputResult]:
    """Per-flow goodput of a permutation matrix for each protocol."""
    return run_plan(
        figure14_plan(k, flow_bytes, duration_ps, protocols, seed, protocol)
    )


def _figure14_protocol(protocol, k, flow_bytes, duration_ps, seed):
    """Unit run: permutation :class:`ThroughputResult` for one protocol."""
    eventlist = EventList()
    network = registry.build_network(protocol, eventlist, FatTreeTopology, k=k, seed=seed)
    flows = experiment.start_permutation(network, flow_bytes, rng=random.Random(seed))
    return experiment.measure_throughput(network, flows, duration_ps)


# ---------------------------------------------------------------------------
# Figure 15 — short-flow FCT with background load
# ---------------------------------------------------------------------------

def figure15_plan(
    k: int = 4,
    short_bytes: int = 90_000,
    short_flows: int = 12,
    background_bytes: int = 50_000_000,
    background_flows_per_host: int = 2,
    protocols: Optional[Sequence[str]] = None,
    seed: int = 5,
    protocol: Optional[str] = None,
) -> Plan:
    """One spec per protocol (``protocol`` narrows the set to one for sweeps)."""
    if protocol is not None:
        protocols = (protocol,)
    protocols = _resolve_protocols(
        protocols, COMPARISON_PROTOCOLS, FamilyTraits(family="fig15")
    )
    specs = [
        RunSpec(
            f"fig15[{name}]",
            _figure15_protocol,
            dict(
                protocol=name, k=k, short_bytes=short_bytes,
                short_flows=short_flows, background_bytes=background_bytes,
                background_flows_per_host=background_flows_per_host, seed=seed,
            ),
        )
        for name in protocols
    ]

    def assemble(results: List[List[float]]) -> Dict[str, List[float]]:
        return {name: fcts for name, fcts in zip(protocols, results)}

    return Plan(specs, assemble)


def figure15_short_flow_fct(
    k: int = 4,
    short_bytes: int = 90_000,
    short_flows: int = 12,
    background_bytes: int = 50_000_000,
    background_flows_per_host: int = 2,
    protocols: Optional[Sequence[str]] = None,
    seed: int = 5,
    protocol: Optional[str] = None,
) -> Dict[str, List[float]]:
    """FCTs (us) of repeated 90 KB transfers between two otherwise idle hosts.

    Every other host sources long-running background flows to random
    destinations, loading the fabric; the 90 KB transfers between hosts 0
    and 1 then measure the queueing those background flows induce.
    """
    return run_plan(
        figure15_plan(
            k, short_bytes, short_flows, background_bytes,
            background_flows_per_host, protocols, seed, protocol,
        )
    )


def _figure15_protocol(
    protocol, k, short_bytes, short_flows, background_bytes,
    background_flows_per_host, seed,
):
    """Unit run: probe-flow FCTs (us) under background load, one protocol."""
    eventlist = EventList()
    network = registry.build_network(protocol, eventlist, FatTreeTopology, k=k, seed=seed)
    rng = random.Random(seed)
    hosts = network.topology.hosts()
    # the two probe hosts sit in different pods so their transfers cross
    # the core, where the background flows' standing queues live
    probe_a, probe_b = hosts[0], hosts[-1]
    for src in hosts:
        if src in (probe_a, probe_b):
            continue
        for _ in range(background_flows_per_host):
            dst = src
            while dst == src or dst in (probe_a, probe_b):
                dst = rng.choice(hosts)
            network.create_flow(src, dst, background_bytes)
    # let the background flows load the network before measuring
    eventlist.run(until=units.milliseconds(1))
    fcts = []
    for index in range(short_flows):
        src, dst = (probe_a, probe_b) if index % 2 == 0 else (probe_b, probe_a)
        flow = network.create_flow(src, dst, short_bytes, start_time_ps=eventlist.now())
        experiment.run_until_complete(network, [flow], units.milliseconds(400))
        if flow.record.completed:
            fcts.append(flow.record.completion_time_ps() / units.MICROSECOND)
    return fcts


# ---------------------------------------------------------------------------
# Figure 16 — incast completion time vs number of senders
# ---------------------------------------------------------------------------

def figure16_plan(
    sender_counts: Sequence[int] = (4, 8, 16, 32),
    response_bytes: int = 450_000,
    protocols: Optional[Sequence[str]] = None,
    seed: int = 7,
    protocol: Optional[str] = None,
) -> Plan:
    """One spec per (sender count, protocol) incast point."""
    sender_counts = tuple(sender_counts)
    if protocol is not None:
        protocols = (protocol,)
    protocols = _resolve_protocols(
        protocols, COMPARISON_PROTOCOLS, FamilyTraits(family="fig16")
    )
    cases = [(senders, name) for senders in sender_counts for name in protocols]
    specs = [
        RunSpec(
            f"fig16[{name},senders={senders}]",
            _figure16_point,
            dict(protocol=name, senders=senders,
                 response_bytes=response_bytes, seed=seed),
        )
        for senders, name in cases
    ]

    def assemble(results: List[int]) -> List[Dict[str, float]]:
        by_case = {case: value for case, value in zip(cases, results)}
        rows = []
        for senders in sender_counts:
            row: Dict[str, float] = {"senders": senders}
            for name in protocols:
                row[name] = by_case[(senders, name)] / units.MILLISECOND
            row["ideal_ms"] = metrics.ideal_incast_completion_ps(
                senders, response_bytes, units.DEFAULT_LINK_RATE_BPS, 9000, 64
            ) / units.MILLISECOND
            rows.append(row)
        return rows

    return Plan(specs, assemble)


def figure16_incast_scaling(
    sender_counts: Sequence[int] = (4, 8, 16, 32),
    response_bytes: int = 450_000,
    protocols: Optional[Sequence[str]] = None,
    seed: int = 7,
    protocol: Optional[str] = None,
) -> List[Dict[str, float]]:
    """Last-flow completion time of an incast vs the number of senders (ms)."""
    return run_plan(
        figure16_plan(sender_counts, response_bytes, protocols, seed, protocol)
    )


def _figure16_point(protocol, senders, response_bytes, seed):
    """Unit run: last-flow completion (ps) of one incast point."""
    return _incast_last_fct(
        protocol, response_bytes, senders=senders, seed=seed,
        timeout_ps=units.seconds(3),
    )


# ---------------------------------------------------------------------------
# Figure 17 — IW / buffer-size sensitivity
# ---------------------------------------------------------------------------

def figure17_plan(
    windows: Sequence[int] = (5, 10, 15, 20, 30, 40),
    configurations: Optional[Sequence[Tuple[str, int, int]]] = None,
    k: int = 4,
    flow_bytes: int = 200_000_000,
    duration_ps: int = units.milliseconds(2),
    seed: int = 9,
) -> Plan:
    """One spec per (buffer/MTU configuration, initial window) point."""
    windows = tuple(windows)
    if configurations is None:
        configurations = (
            ("6pkt 9K MTU", 6, 9000),
            ("8pkt 9K MTU", 8, 9000),
            ("10pkt 9K MTU", 10, 9000),
            ("8pkt 1.5K MTU", 8, 1500),
        )
    configurations = tuple(tuple(c) for c in configurations)
    cases = [
        (label, buffer_packets, mtu, window)
        for label, buffer_packets, mtu in configurations
        for window in windows
    ]
    specs = [
        RunSpec(
            f"fig17[{label},iw={window}]",
            _figure17_point,
            dict(
                buffer_packets=buffer_packets, mtu=mtu, window=window, k=k,
                flow_bytes=flow_bytes, duration_ps=duration_ps, seed=seed,
            ),
        )
        for label, buffer_packets, mtu, window in cases
    ]

    def assemble(results: List[float]) -> List[Dict[str, float]]:
        return [
            {
                "configuration": label,
                "initial_window": window,
                "utilization_percent": 100 * utilization,
            }
            for (label, _bp, _mtu, window), utilization in zip(cases, results)
        ]

    return Plan(specs, assemble)


def figure17_buffer_sensitivity(
    windows: Sequence[int] = (5, 10, 15, 20, 30, 40),
    configurations: Optional[Sequence[Tuple[str, int, int]]] = None,
    k: int = 4,
    flow_bytes: int = 200_000_000,
    duration_ps: int = units.milliseconds(2),
    seed: int = 9,
) -> List[Dict[str, float]]:
    """Permutation utilization vs IW for several buffer/MTU configurations.

    ``configurations`` is a list of ``(label, buffer_packets, mtu_bytes)``;
    the default matches the four curves of Figure 17.
    """
    return run_plan(
        figure17_plan(windows, configurations, k, flow_bytes, duration_ps, seed)
    )


def _figure17_point(buffer_packets, mtu, window, k, flow_bytes, duration_ps, seed):
    """Unit run: permutation utilization for one buffer/MTU/IW setting."""
    config = NdpConfig(
        mtu_bytes=mtu,
        data_queue_packets=buffer_packets,
        header_queue_bytes=buffer_packets * mtu,
        initial_window_packets=window,
    )
    eventlist = EventList()
    network = NdpNetwork.build(eventlist, FatTreeTopology, k=k, config=config, seed=seed)
    flows = experiment.start_permutation(network, flow_bytes, rng=random.Random(seed))
    result = experiment.measure_throughput(network, flows, duration_ps)
    return result.utilization


# ---------------------------------------------------------------------------
# Figure 19 — collateral damage of an incast on a nearby long flow
# ---------------------------------------------------------------------------

def figure19_plan(
    protocols: Optional[Sequence[str]] = None,
    incast_senders: int = 16,
    incast_bytes: int = 900_000,
    sample_period_ps: int = units.microseconds(250),
    duration_ps: int = units.milliseconds(30),
    seed: int = 11,
    protocol: Optional[str] = None,
) -> Plan:
    """One spec per protocol (``protocol`` narrows the set to one for sweeps)."""
    if protocol is not None:
        protocols = (protocol,)
    protocols = _resolve_protocols(
        protocols,
        (registry.NDP, registry.DCTCP, registry.DCQCN),
        FamilyTraits(family="fig19"),
    )
    specs = [
        RunSpec(
            f"fig19[{name}]",
            _figure19_protocol,
            dict(
                protocol=name, incast_senders=incast_senders,
                incast_bytes=incast_bytes, sample_period_ps=sample_period_ps,
                duration_ps=duration_ps, seed=seed,
            ),
        )
        for name in protocols
    ]

    def assemble(results) -> Dict[str, Dict[str, List[Tuple[int, float]]]]:
        return {name: series for name, series in zip(protocols, results)}

    return Plan(specs, assemble)


def figure19_collateral_damage(
    protocols: Optional[Sequence[str]] = None,
    incast_senders: int = 16,
    incast_bytes: int = 900_000,
    sample_period_ps: int = units.microseconds(250),
    duration_ps: int = units.milliseconds(30),
    seed: int = 11,
    protocol: Optional[str] = None,
) -> Dict[str, Dict[str, List[Tuple[int, float]]]]:
    """Goodput-vs-time of a long flow while an incast hits a neighbour host.

    Setup of Figure 18: the long flow and the incast target are on the same
    ToR; the incast starts a few milliseconds into the run.  Returns, per
    protocol, two time series (``long_flow`` and ``incast``) of goodput in
    bits/second.
    """
    return run_plan(
        figure19_plan(
            protocols, incast_senders, incast_bytes, sample_period_ps,
            duration_ps, seed, protocol,
        )
    )


def _figure19_protocol(
    protocol, incast_senders, incast_bytes, sample_period_ps, duration_ps, seed
):
    """Unit run: long-flow / incast goodput time series for one protocol."""
    eventlist = EventList()
    network = registry.build_network(
        protocol, eventlist, LeafSpineTopology,
        leaves=2, spines=2, hosts_per_leaf=max(2, incast_senders // 2), seed=seed,
    )
    hosts = network.topology.hosts()
    long_dst, incast_dst = 0, 1
    remote_hosts = [h for h in hosts if network.topology.leaf_of_host(h) != network.topology.leaf_of_host(0)]
    long_src = remote_hosts[0]
    incast_srcs = [h for h in remote_hosts[1:]] + [
        h for h in hosts if h not in (long_dst, incast_dst, long_src) and h not in remote_hosts
    ]
    incast_srcs = incast_srcs[:incast_senders]
    long_flow = network.create_flow(long_src, long_dst, 10 * incast_bytes * incast_senders)
    incast_start = units.milliseconds(5)
    incast_flows = [
        network.create_flow(src, incast_dst, incast_bytes, start_time_ps=incast_start)
        for src in incast_srcs
    ]
    long_rate = RateEstimator()
    incast_rate = RateEstimator()
    long_series = TimeSeriesSampler(
        eventlist, sample_period_ps,
        lambda: long_rate.update(eventlist.now(), long_flow.record.bytes_delivered),
    )
    incast_series = TimeSeriesSampler(
        eventlist, sample_period_ps,
        lambda: incast_rate.update(
            eventlist.now(), sum(f.record.bytes_delivered for f in incast_flows)
        ),
    )
    long_series.start()
    incast_series.start()
    eventlist.run(until=duration_ps)
    return {
        "long_flow": long_series.samples,
        "incast": incast_series.samples,
        "pause_events": sum(q.stats.pause_events for q in network.topology.all_queues()),
    }


# ---------------------------------------------------------------------------
# Figure 20 — very large incasts: overhead and retransmission mechanisms
# ---------------------------------------------------------------------------

def figure20_plan(
    sender_counts: Sequence[int] = (8, 32, 128, 256),
    initial_windows: Sequence[int] = (1, 10, 23),
    packets_per_flow: int = 30,
    seed: int = 13,
) -> Plan:
    """One spec per (initial window, sender count) incast point."""
    sender_counts = tuple(sender_counts)
    initial_windows = tuple(initial_windows)
    cases = [
        (window, senders) for window in initial_windows for senders in sender_counts
    ]
    specs = [
        RunSpec(
            f"fig20[iw={window},senders={senders}]",
            _figure20_point,
            dict(
                initial_window=window, senders=senders,
                packets_per_flow=packets_per_flow, seed=seed,
            ),
        )
        for window, senders in cases
    ]
    return Plan(specs, lambda results: list(results))


def figure20_large_incast(
    sender_counts: Sequence[int] = (8, 32, 128, 256),
    initial_windows: Sequence[int] = (1, 10, 23),
    packets_per_flow: int = 30,
    seed: int = 13,
) -> List[Dict[str, float]]:
    """Completion-time overhead and retransmission mechanism vs incast size."""
    return run_plan(
        figure20_plan(sender_counts, initial_windows, packets_per_flow, seed)
    )


def _figure20_point(initial_window, senders, packets_per_flow, seed):
    """Unit run: one row (overhead + RTX mechanism split) of Figure 20."""
    mtu = 9000
    payload = mtu - 64
    flow_bytes = packets_per_flow * payload
    config = NdpConfig(initial_window_packets=initial_window)
    eventlist = EventList()
    network = NdpNetwork.build(
        eventlist, SingleSwitchTopology, hosts=senders + 1, config=config, seed=seed
    )
    flows = [
        network.create_flow(src, 0, flow_bytes) for src in range(1, senders + 1)
    ]
    experiment.run_until_complete(network, flows, units.seconds(3))
    finish = max(f.record.finish_time_ps or 0 for f in flows)
    ideal = metrics.ideal_incast_completion_ps(
        senders, flow_bytes, units.DEFAULT_LINK_RATE_BPS, mtu, 64
    )
    total_packets = senders * packets_per_flow
    nack_rtx = sum(f.src.nacks_received for f in flows)
    bounce_rtx = sum(f.src.bounces_received for f in flows)
    return {
        "initial_window": initial_window,
        "senders": senders,
        "overhead_percent": 100 * (finish - ideal) / ideal,
        "rtx_per_packet_nack": nack_rtx / total_packets,
        "rtx_per_packet_bounce": bounce_rtx / total_packets,
        "all_complete": all(f.complete for f in flows),
    }


# ---------------------------------------------------------------------------
# Figure 21 — sender-limited traffic
# ---------------------------------------------------------------------------

def figure21_plan(
    duration_ps: int = units.milliseconds(4),
    seed: int = 15,
) -> Plan:
    """A single spec: the five flows share one simulator."""
    specs = [RunSpec("fig21", _figure21_run, dict(duration_ps=duration_ps, seed=seed))]
    return Plan(specs, lambda results: results[0])


def figure21_sender_limited(
    duration_ps: int = units.milliseconds(4),
    seed: int = 15,
) -> Dict[str, float]:
    """Throughput of A→{B,C,D,E} plus F→E (Gb/s), as in the Figure 21 table."""
    return run_plan(figure21_plan(duration_ps, seed))


def _figure21_run(duration_ps, seed):
    """Unit run: the sender-limited throughput table."""
    eventlist = EventList()
    network = NdpNetwork.build(eventlist, SingleSwitchTopology, hosts=6, seed=seed)
    labels = {0: "A", 1: "B", 2: "C", 3: "D", 4: "E", 5: "F"}
    flows = {}
    for dst in (1, 2, 3, 4):
        flows[f"A->{labels[dst]}"] = network.create_flow(0, dst, 20_000_000)
    flows["F->E"] = network.create_flow(5, 4, 20_000_000)
    eventlist.run(until=duration_ps)
    result = {
        name: metrics.goodput_bps(flow.record, duration_ps) / 1e9
        for name, flow in flows.items()
    }
    result["total_from_A"] = sum(v for k, v in result.items() if k.startswith("A->"))
    result["total_to_E"] = result["A->E"] + result["F->E"]
    return result


# ---------------------------------------------------------------------------
# Figure 22 — asymmetry (a degraded core link)
# ---------------------------------------------------------------------------

def figure22_plan(
    k: int = 4,
    degraded_rate_bps: int = units.gbps(1),
    flow_bytes: int = 200_000_000,
    duration_ps: int = units.milliseconds(3),
    seed: int = 17,
    cases: Optional[Sequence[str]] = None,
    protocol: Optional[str] = None,
) -> Plan:
    """One spec per protocol/ablation case."""
    if protocol is not None:
        cases = (protocol,)
    cases = _resolve_protocols(
        cases,
        (registry.NDP, registry.NDP_NO_PATH_PENALTY, registry.MPTCP, registry.DCTCP),
        FamilyTraits(family="fig22", mutates_link_rates=True),
    )
    specs = [
        RunSpec(
            f"fig22[{case}]",
            _figure22_case,
            dict(
                case=case, k=k, degraded_rate_bps=degraded_rate_bps,
                flow_bytes=flow_bytes, duration_ps=duration_ps, seed=seed,
            ),
        )
        for case in cases
    ]

    def assemble(results) -> Dict[str, experiment.ThroughputResult]:
        return {case: result for case, result in zip(cases, results)}

    return Plan(specs, assemble)


def figure22_asymmetry(
    k: int = 4,
    degraded_rate_bps: int = units.gbps(1),
    flow_bytes: int = 200_000_000,
    duration_ps: int = units.milliseconds(3),
    seed: int = 17,
    cases: Optional[Sequence[str]] = None,
    protocol: Optional[str] = None,
) -> Dict[str, experiment.ThroughputResult]:
    """Permutation throughput with one core↔aggregation link at 1 Gb/s.

    Compares NDP, NDP without the path-penalty scoreboard (the ablation),
    MPTCP and DCTCP.
    """
    return run_plan(
        figure22_plan(k, degraded_rate_bps, flow_bytes, duration_ps, seed, cases, protocol)
    )


def _figure22_case(case, k, degraded_rate_bps, flow_bytes, duration_ps, seed):
    """Unit run: permutation throughput with a degraded core link, one case."""
    eventlist = EventList()
    network = registry.build_network(case, eventlist, FatTreeTopology, k=k, seed=seed)
    network.topology.degrade_core_link(core=0, pod=k - 1, new_rate_bps=degraded_rate_bps)
    flows = experiment.start_permutation(network, flow_bytes, rng=random.Random(seed))
    return experiment.measure_throughput(network, flows, duration_ps)


# ---------------------------------------------------------------------------
# Figure 23 — oversubscribed fabric, Facebook web workload
# ---------------------------------------------------------------------------

def figure23_plan(
    k: int = 4,
    oversubscription: float = 4.0,
    connections_per_host: Sequence[int] = (2, 5),
    duration_ps: int = units.milliseconds(40),
    protocols: Optional[Sequence[str]] = None,
    seed: int = 19,
    protocol: Optional[str] = None,
) -> Plan:
    """One spec per (protocol, load level)."""
    connections_per_host = tuple(connections_per_host)
    if protocol is not None:
        protocols = (protocol,)
    protocols = _resolve_protocols(
        protocols, (registry.NDP, registry.DCTCP), FamilyTraits(family="fig23")
    )
    cases = [(name, load) for name in protocols for load in connections_per_host]
    specs = [
        RunSpec(
            f"fig23[{name},load={load}]",
            _figure23_point,
            dict(
                protocol=name, connections_per_host=load, k=k,
                oversubscription=oversubscription, duration_ps=duration_ps,
                seed=seed,
            ),
        )
        for name, load in cases
    ]
    return Plan(specs, lambda results: list(results))


def figure23_oversubscribed_web(
    k: int = 4,
    oversubscription: float = 4.0,
    connections_per_host: Sequence[int] = (2, 5),
    duration_ps: int = units.milliseconds(40),
    protocols: Optional[Sequence[str]] = None,
    seed: int = 19,
    protocol: Optional[str] = None,
) -> List[Dict[str, object]]:
    """FCT distribution of a web-like workload on a 4:1 oversubscribed fabric.

    Closed-loop flow arrivals with Facebook-web flow sizes; one row per
    (protocol, load level) with median/p99 FCT in us, completed flow count
    and the fraction of packets trimmed at ToR uplinks (NDP only).
    """
    return run_plan(
        figure23_plan(
            k, oversubscription, connections_per_host, duration_ps, protocols,
            seed, protocol,
        )
    )


def _figure23_point(protocol, connections_per_host, k, oversubscription, duration_ps, seed):
    """Unit run: one (protocol, load) row of the web-workload table."""
    # NDP runs the prototype's 1500-byte MTU here; every other transport
    # keeps its registered default config
    config = (
        NdpConfig(mtu_bytes=1500, header_queue_bytes=8 * 1500)
        if protocol == registry.NDP
        else None
    )
    eventlist = EventList()
    network = registry.build_network(
        protocol, eventlist, FatTreeTopology, k=k,
        oversubscription=oversubscription, config=config, seed=seed,
    )
    generator = ClosedLoopGenerator(
        eventlist,
        network,
        hosts=network.topology.hosts(),
        flow_sizes=FacebookWebFlowSizes(),
        connections_per_host=connections_per_host,
        think_time_ps=units.milliseconds(1),
        rng=random.Random(seed),
    )
    generator.start()
    eventlist.run(until=duration_ps)
    fcts = [
        record.completion_time_ps() / units.MICROSECOND
        for record in generator.completed_records()
    ]
    trimmed = network.topology.total_trimmed()
    return {
        "protocol": protocol,
        "connections_per_host": connections_per_host,
        "completed_flows": len(fcts),
        "median_fct_us": metrics.percentile(fcts, 0.5) if fcts else None,
        "p99_fct_us": metrics.percentile(fcts, 0.99) if fcts else None,
        "packets_trimmed": trimmed,
    }


# ---------------------------------------------------------------------------
# §6.2 text — pHost comparison and uplink-trimming load-balancing study
# ---------------------------------------------------------------------------

def phost_plan(
    k: int = 4,
    incast_senders: int = 24,
    incast_bytes: int = 270_000,
    permutation_bytes: int = 100_000_000,
    duration_ps: int = units.milliseconds(2),
    seed: int = 21,
    protocols: Optional[Sequence[str]] = None,
    protocol: Optional[str] = None,
) -> Plan:
    """One spec per protocol (each runs its incast + permutation pair)."""
    if protocol is not None:
        protocols = (protocol,)
    cases = _resolve_protocols(
        protocols, (registry.NDP, registry.PHOST),
        FamilyTraits(family="phost"),  # transport-name-ok: experiment family
    )
    specs = [
        RunSpec(
            f"phost[{name}]",
            _phost_case,
            dict(
                protocol=name, k=k, incast_senders=incast_senders,
                incast_bytes=incast_bytes, permutation_bytes=permutation_bytes,
                duration_ps=duration_ps, seed=seed,
            ),
        )
        for name in cases
    ]

    def assemble(results: List[Dict[str, float]]) -> Dict[str, float]:
        merged: Dict[str, float] = {}
        for name, case_result in zip(cases, results):
            merged[f"{name}_incast_ms"] = case_result["incast_ms"]
            merged[f"{name}_permutation_utilization"] = case_result[
                "permutation_utilization"
            ]
        return merged

    return Plan(specs, assemble)


def phost_comparison(
    k: int = 4,
    incast_senders: int = 24,
    incast_bytes: int = 270_000,
    permutation_bytes: int = 100_000_000,
    duration_ps: int = units.milliseconds(2),
    seed: int = 21,
    protocols: Optional[Sequence[str]] = None,
    protocol: Optional[str] = None,
) -> Dict[str, float]:
    """NDP vs pHost: incast completion (ms) and permutation utilization."""
    return run_plan(
        phost_plan(
            k, incast_senders, incast_bytes, permutation_bytes, duration_ps,
            seed, protocols, protocol,
        )
    )


def _phost_case(
    protocol, k, incast_senders, incast_bytes, permutation_bytes, duration_ps, seed
):
    """Unit run: incast completion + permutation utilization for one stack."""
    last = _incast_last_fct(
        protocol, incast_bytes, senders=incast_senders, seed=seed,
        timeout_ps=units.seconds(3),
    )
    eventlist = EventList()
    network = registry.build_network(protocol, eventlist, FatTreeTopology, k=k, seed=seed)
    flows = experiment.start_permutation(network, permutation_bytes, rng=random.Random(seed))
    throughput = experiment.measure_throughput(network, flows, duration_ps)
    return {
        "incast_ms": last / units.MILLISECOND,
        "permutation_utilization": throughput.utilization,
    }


def uplink_trimming_plan(
    k: int = 4,
    flow_bytes: int = 100_000_000,
    duration_ps: int = units.milliseconds(2),
    seed: int = 23,
) -> Plan:
    """One spec per path-selection mode."""
    modes = ["permutation", "random"]
    specs = [
        RunSpec(
            f"uplinks[{mode}]",
            _uplink_mode,
            dict(mode=mode, k=k, flow_bytes=flow_bytes,
                 duration_ps=duration_ps, seed=seed),
        )
        for mode in modes
    ]

    def assemble(results) -> Dict[str, Dict[str, float]]:
        return {mode: result for mode, result in zip(modes, results)}

    return Plan(specs, assemble)


def uplink_trimming_study(
    k: int = 4,
    flow_bytes: int = 100_000_000,
    duration_ps: int = units.milliseconds(2),
    seed: int = 23,
) -> Dict[str, Dict[str, float]]:
    """Fraction of packets trimmed on uplinks: sender permutation vs random ECMP.

    Reproduces the load-balancing claim of §"Congestion Control": with
    sender-driven path permutation almost nothing is trimmed above the ToR,
    whereas per-packet random path choice (switch ECMP) trims noticeably more.
    """
    return run_plan(uplink_trimming_plan(k, flow_bytes, duration_ps, seed))


def _uplink_mode(mode, k, flow_bytes, duration_ps, seed):
    """Unit run: uplink trim statistics for one path-selection mode."""
    config = NdpConfig(path_selection_mode=mode)
    eventlist = EventList()
    network = NdpNetwork.build(eventlist, FatTreeTopology, k=k, config=config, seed=seed)
    flows = experiment.start_permutation(network, flow_bytes, rng=random.Random(seed))
    eventlist.run(until=duration_ps)
    uplink_trims = sum(q.stats.packets_trimmed for q in network.topology.uplink_queues())
    total_forwarded = sum(
        q.stats.packets_forwarded for q in network.topology.uplink_queues()
    )
    return {
        "uplink_trimmed": uplink_trims,
        "uplink_forwarded": total_forwarded,
        "uplink_trim_fraction": uplink_trims / max(total_forwarded, 1),
        "utilization": experiment.measure_throughput(
            network, flows, duration_ps, run=False
        ).utilization,
    }


def scaling_plan(
    ks: Sequence[int] = (4, 6, 8),
    flow_bytes: int = 200_000_000,
    duration_ps: int = units.milliseconds(2),
    seed: int = 25,
) -> Plan:
    """One spec per topology size."""
    ks = tuple(ks)
    specs = [
        RunSpec(
            f"scaling[k={k}]",
            _scaling_point,
            dict(k=k, flow_bytes=flow_bytes, duration_ps=duration_ps, seed=seed),
        )
        for k in ks
    ]
    return Plan(specs, lambda results: list(results))


def scaling_utilization(
    ks: Sequence[int] = (4, 6, 8),
    flow_bytes: int = 200_000_000,
    duration_ps: int = units.milliseconds(2),
    seed: int = 25,
) -> List[Dict[str, float]]:
    """NDP permutation utilization as the FatTree grows (§6.2 'Larger topologies')."""
    return run_plan(scaling_plan(ks, flow_bytes, duration_ps, seed))


def _scaling_point(k, flow_bytes, duration_ps, seed):
    """Unit run: one row of the topology-scaling utilization table."""
    eventlist = EventList()
    network = NdpNetwork.build(eventlist, FatTreeTopology, k=k, seed=seed)
    flows = experiment.start_permutation(network, flow_bytes, rng=random.Random(seed))
    result = experiment.measure_throughput(network, flows, duration_ps)
    return {
        "k": k,
        "hosts": network.topology.host_count,
        "utilization_percent": 100 * result.utilization,
    }


# ---------------------------------------------------------------------------
# Failures family — fabric dynamics (link failure / degradation / recovery).
# No single paper figure: this extends Figure 22's static-asymmetry axis with
# the deterministic mid-run link events the FabricController provides.
# ---------------------------------------------------------------------------

#: the transports compared by default in the failure experiments: NDP (with
#: and without the path-penalty scoreboard) against per-flow-ECMP controls
_FAILURE_DEFAULT_CASES = (
    registry.NDP,
    registry.NDP_NO_PATH_PENALTY,
    registry.TCP,
    registry.DCTCP,
)


def failures_degraded_plan(
    k: int = 4,
    degraded_rate_bps: int = units.gbps(1),
    flow_bytes: int = 1_000_000,
    timeout_ps: int = units.milliseconds(60),
    cases: Optional[Sequence[str]] = None,
    seed: int = 27,
    protocol: Optional[str] = None,
) -> Plan:
    """One spec per transport: permutation FCTs over a degraded-core fabric."""
    if protocol is not None:
        cases = (protocol,)
    cases = _resolve_protocols(
        cases,
        _FAILURE_DEFAULT_CASES,
        FamilyTraits(family="failures_degraded", mutates_link_rates=True),
    )
    specs = [
        RunSpec(
            f"failures_degraded[{case}]",
            _failures_degraded_case,
            dict(
                case=case, k=k, degraded_rate_bps=degraded_rate_bps,
                flow_bytes=flow_bytes, timeout_ps=timeout_ps, seed=seed,
            ),
        )
        for case in cases
    ]
    return Plan(specs, lambda results: list(results))


def failures_degraded(
    k: int = 4,
    degraded_rate_bps: int = units.gbps(1),
    flow_bytes: int = 1_000_000,
    timeout_ps: int = units.milliseconds(60),
    cases: Optional[Sequence[str]] = None,
    seed: int = 27,
    protocol: Optional[str] = None,
) -> List[Dict[str, object]]:
    """Permutation FCTs with one core↔agg link degraded, NDP vs ECMP controls.

    The FCT view of Figure 22: every host sends one *finite* transfer over a
    fabric whose core0↔pod(k-1) link renegotiated down.  NDP's scoreboard
    steers spraying off the slow path so FCTs stay near the healthy fabric's;
    per-flow-ECMP TCP/DCTCP flows hashed onto the degraded core are stuck
    behind it, which shows up in the p99/max columns.
    """
    return run_plan(
        failures_degraded_plan(
            k, degraded_rate_bps, flow_bytes, timeout_ps, cases, seed, protocol
        )
    )


def _failures_degraded_case(case, k, degraded_rate_bps, flow_bytes, timeout_ps, seed):
    """Unit run: one transport's permutation FCT summary over a degraded core."""
    eventlist = EventList()
    network = registry.build_network(case, eventlist, FatTreeTopology, k=k, seed=seed)
    network.topology.degrade_core_link(core=0, pod=k - 1, new_rate_bps=degraded_rate_bps)
    flows = experiment.start_permutation(network, flow_bytes, rng=random.Random(seed))
    result = experiment.run_until_complete(network, flows, timeout_ps)
    return {
        "case": case,
        "flows": len(flows),
        "completed": len(result.completed()),
        **result.summary(),
    }


def failures_recovery_plan(
    k: int = 4,
    flow_bytes: int = 4_000_000,
    fail_at_ps: int = units.milliseconds(1),
    recover_at_ps: int = units.milliseconds(3),
    duration_ps: int = units.milliseconds(8),
    sample_period_ps: int = units.microseconds(100),
    protocols: Optional[Sequence[str]] = None,
    seed: int = 29,
    protocol: Optional[str] = None,
) -> Plan:
    """One spec per protocol: goodput timeline through a fail→recover cycle."""
    if protocol is not None:
        protocols = (protocol,)
    protocols = _resolve_protocols(
        protocols,
        (registry.NDP, registry.TCP),
        FamilyTraits(family="failures_recovery", severs_links=True),
    )
    specs = [
        RunSpec(
            f"failures_recovery[{name}]",
            _failures_recovery_case,
            dict(
                protocol=name, k=k, flow_bytes=flow_bytes, fail_at_ps=fail_at_ps,
                recover_at_ps=recover_at_ps, duration_ps=duration_ps,
                sample_period_ps=sample_period_ps, seed=seed,
            ),
        )
        for name in protocols
    ]

    def assemble(results) -> Dict[str, Dict[str, object]]:
        return {name: result for name, result in zip(protocols, results)}

    return Plan(specs, assemble)


def failures_recovery(
    k: int = 4,
    flow_bytes: int = 4_000_000,
    fail_at_ps: int = units.milliseconds(1),
    recover_at_ps: int = units.milliseconds(3),
    duration_ps: int = units.milliseconds(8),
    sample_period_ps: int = units.microseconds(100),
    protocols: Optional[Sequence[str]] = None,
    seed: int = 29,
    protocol: Optional[str] = None,
) -> Dict[str, Dict[str, object]]:
    """Mid-transfer core-link failure and recovery: aggregate goodput vs time.

    A permutation of finite transfers is mid-flight when the core0↔pod(k-1)
    cable is cut at ``fail_at_ps`` and spliced back at ``recover_at_ps``
    (both applied by a :class:`~repro.topology.FabricController` on shadow
    timers).  Returns, per protocol, the aggregate-goodput time series plus
    completion counts: NDP dips for one round-trip and recovers as the path
    manager prunes the dead path; per-flow-ECMP TCP flows on the cut path
    stall until the link returns.
    """
    return run_plan(
        failures_recovery_plan(
            k, flow_bytes, fail_at_ps, recover_at_ps, duration_ps,
            sample_period_ps, protocols, seed, protocol,
        )
    )


def _failures_recovery_case(
    protocol, k, flow_bytes, fail_at_ps, recover_at_ps, duration_ps,
    sample_period_ps, seed,
):
    """Unit run: one protocol's goodput timeline through an outage."""
    eventlist = EventList()
    network = registry.build_network(protocol, eventlist, FatTreeTopology, k=k, seed=seed)
    topology = network.topology
    core_node, agg_node = topology.core_agg_pair(core=0, pod=k - 1)
    controller = FabricController(topology)
    controller.schedule_outage(core_node, agg_node, fail_at_ps, recover_at_ps)
    flows = experiment.start_permutation(network, flow_bytes, rng=random.Random(seed))
    rate = RateEstimator()
    series = TimeSeriesSampler(
        eventlist, sample_period_ps,
        lambda: rate.update(
            eventlist.now(), sum(f.record.bytes_delivered for f in flows)
        ),
    )
    series.start()
    eventlist.run(until=duration_ps)
    return {
        "goodput": series.samples,
        "flows": len(flows),
        "completed": sum(1 for f in flows if f.record.completed),
        "bytes_delivered": sum(f.record.bytes_delivered for f in flows),
        "link_events": [e.describe() for e in controller.fired],
    }


def failures_klinks_plan(
    links_down: int = 1,
    k: int = 4,
    flow_bytes: int = 500_000,
    timeout_ps: int = units.milliseconds(40),
    protocols: Optional[Sequence[str]] = None,
    seed: int = 31,
    protocol: Optional[str] = None,
) -> Plan:
    """One spec per protocol at one ``links_down`` level (sweep via the CLI)."""
    core_count = (k // 2) ** 2
    if not 0 <= links_down < core_count:
        raise ValueError(
            f"links_down must be in [0, {core_count}) for k={k} "
            f"(failing every core link into one pod partitions it)"
        )
    if protocol is not None:
        protocols = (protocol,)
    protocols = _resolve_protocols(
        protocols,
        (registry.NDP, registry.TCP),
        FamilyTraits(family="failures_klinks", severs_links=True),
    )
    specs = [
        RunSpec(
            f"failures_klinks[{name},down={links_down}]",
            _failures_klinks_case,
            dict(
                protocol=name, links_down=links_down, k=k,
                flow_bytes=flow_bytes, timeout_ps=timeout_ps, seed=seed,
            ),
        )
        for name in protocols
    ]
    return Plan(specs, lambda results: list(results))


def failures_klinks(
    links_down: int = 1,
    k: int = 4,
    flow_bytes: int = 500_000,
    timeout_ps: int = units.milliseconds(40),
    protocols: Optional[Sequence[str]] = None,
    seed: int = 31,
    protocol: Optional[str] = None,
) -> List[Dict[str, object]]:
    """Permutation FCTs with *links_down* core cables cut before the run.

    The k-links-down resilience sweep (``python -m repro.cli sweep
    failures_klinks --set links_down=0,1,2``): cores 0..links_down-1 into
    pod k-1 are cut, the ECMP groups re-hash over the survivors, then a
    permutation runs to completion.  Both transports complete (the failures
    precede flow creation) but with fewer core paths NDP degrades gracefully
    while per-flow ECMP's collision probability — and tail FCT — climbs.
    """
    return run_plan(
        failures_klinks_plan(
            links_down, k, flow_bytes, timeout_ps, protocols, seed, protocol
        )
    )


def _failures_klinks_case(protocol, links_down, k, flow_bytes, timeout_ps, seed):
    """Unit run: one transport's permutation with N core links pre-failed."""
    eventlist = EventList()
    network = registry.build_network(protocol, eventlist, FatTreeTopology, k=k, seed=seed)
    topology = network.topology
    for core in range(links_down):
        topology.fail_core_link(core=core, pod=k - 1)
    flows = experiment.start_permutation(network, flow_bytes, rng=random.Random(seed))
    result = experiment.run_until_complete(network, flows, timeout_ps)
    return {
        "protocol": protocol,
        "links_down": links_down,
        "flows": len(flows),
        "completed": len(result.completed()),
        **result.summary(),
    }


# ---------------------------------------------------------------------------
# load_fct family — open-loop dynamic workloads: FCT slowdown vs offered load.
# No single paper figure: the paper's short-flow-latency claims are evaluated
# under continuous traffic, and load-vs-FCT-slowdown curves are the standard
# lens for that axis (pFabric/pHost/Homa methodology).
# ---------------------------------------------------------------------------

#: the transports compared by default in the load sweeps: NDP against an ECN
#: baseline (DCTCP) and a per-flow-ECMP loss-based control (TCP); any
#: registered transport can be requested via ``protocols`` / ``protocol``
_LOAD_FCT_DEFAULT_PROTOCOLS = (registry.NDP, registry.DCTCP, registry.TCP)

#: empirical flow-size mixes selectable via the ``workload`` parameter
_LOAD_FCT_WORKLOADS = {
    "fbweb": FacebookWebFlowSizes,
    "websearch": WebSearchFlowSizes,
    "datamining": DataMiningFlowSizes,
}


def load_fct_plan(
    load: Optional[float] = None,
    loads: Sequence[float] = (0.1, 0.5, 0.9),
    protocols: Optional[Sequence[str]] = None,
    fabric: str = "fattree",
    k: int = 4,
    leaves: int = 4,
    spines: int = 4,
    hosts_per_leaf: int = 4,
    workload: str = "fbweb",
    matrix: str = "all_to_all",
    warmup_ps: int = units.milliseconds(1),
    measure_ps: int = units.milliseconds(2),
    drain_ps: int = units.milliseconds(2),
    seed: int = 33,
    protocol: Optional[str] = None,
) -> Plan:
    """One spec per (load level, protocol) open-loop run.

    ``load`` (a single level) overrides ``loads`` (the default sweep), and
    ``protocol`` (a single transport) overrides ``protocols`` — this is what
    makes ``repro.cli load_fct --set load=0.3,0.6 --set protocol=ndp,phost``
    a natural grid: each grid point builds a single-(load, protocol) plan.
    """
    if load is not None:
        loads = (load,)
    loads = tuple(float(level) for level in loads)
    if not loads or not all(math.isfinite(level) and level > 0 for level in loads):
        raise ValueError(f"loads must be positive finite fractions, got {loads}")
    if fabric not in ("fattree", "leafspine"):
        raise ValueError(f"fabric must be 'fattree' or 'leafspine', got {fabric!r}")
    if workload not in _LOAD_FCT_WORKLOADS:
        raise ValueError(
            f"unknown workload {workload!r} (choose from "
            f"{', '.join(_LOAD_FCT_WORKLOADS)})"
        )
    if protocol is not None:
        protocols = (protocol,)
    protocols = _resolve_protocols(
        protocols, _LOAD_FCT_DEFAULT_PROTOCOLS, FamilyTraits(family="load_fct")
    )
    cases = [(level, name) for level in loads for name in protocols]
    specs = [
        RunSpec(
            f"load_fct[{name},load={level:g},{fabric},{workload}]",
            _load_fct_point,
            dict(
                protocol=name, load=level, fabric=fabric, k=k, leaves=leaves,
                spines=spines, hosts_per_leaf=hosts_per_leaf, workload=workload,
                matrix=matrix, warmup_ps=warmup_ps, measure_ps=measure_ps,
                drain_ps=drain_ps, seed=seed,
            ),
        )
        for level, name in cases
    ]
    return Plan(specs, lambda results: list(results))


def load_fct_slowdowns(
    load: Optional[float] = None,
    loads: Sequence[float] = (0.1, 0.5, 0.9),
    protocols: Optional[Sequence[str]] = None,
    fabric: str = "fattree",
    k: int = 4,
    leaves: int = 4,
    spines: int = 4,
    hosts_per_leaf: int = 4,
    workload: str = "fbweb",
    matrix: str = "all_to_all",
    warmup_ps: int = units.milliseconds(1),
    measure_ps: int = units.milliseconds(2),
    drain_ps: int = units.milliseconds(2),
    seed: int = 33,
    protocol: Optional[str] = None,
) -> List[Dict[str, object]]:
    """Size-binned FCT slowdowns of an open-loop load sweep.

    An empirical flow-size mix (``workload``: ``fbweb`` / ``websearch`` /
    ``datamining``) arrives Poisson at each target ``load`` (fraction of
    bisection bandwidth, see :mod:`repro.workloads.openloop`) on a
    ``fabric`` (``fattree`` with arity ``k``, or ``leafspine``), once per
    protocol.  Flows arriving in the warmup window are discarded, flows in
    the measurement window are scored, and the drain window lets stragglers
    finish.  One row per (load, protocol) with per-size-bin
    p50/p99/p999 slowdowns (vs :func:`~repro.harness.metrics.
    ideal_transfer_time_ps`), completion/censoring counts and the seeded
    arrival-sequence digest (cold, cached and parallel runs must agree
    bit-for-bit).
    """
    return run_plan(
        load_fct_plan(
            load, loads, protocols, fabric, k, leaves, spines, hosts_per_leaf,
            workload, matrix, warmup_ps, measure_ps, drain_ps, seed, protocol,
        )
    )


def _open_loop_base_rtt_ps(topology) -> int:
    """Propagation RTT of the fabric's longest host-to-host path.

    The slowdown baseline's RTT component: twice the hop count of the
    longest path between the first and last host (a cross-pod / cross-leaf
    pair in the fabrics used here) times the per-hop propagation delay.
    Serialization and queueing are deliberately excluded — they are what
    the slowdown numerator measures.
    """
    hosts = topology.hosts()
    paths = topology.node_paths(hosts[0], hosts[-1])
    hops = max(len(path) - 1 for path in paths)
    return 2 * hops * topology.link_delay_ps


def _load_fct_point(
    protocol, load, fabric, k, leaves, spines, hosts_per_leaf, workload,
    matrix, warmup_ps, measure_ps, drain_ps, seed,
):
    """Unit run: one (protocol, load) row of the open-loop slowdown sweep."""
    eventlist = EventList()
    if fabric == "fattree":
        network = registry.build_network(
            protocol, eventlist, FatTreeTopology, k=k, seed=seed
        )
    else:
        network = registry.build_network(
            protocol, eventlist, LeafSpineTopology,
            leaves=leaves, spines=spines, hosts_per_leaf=hosts_per_leaf, seed=seed,
        )
    topology = network.topology
    generator = OpenLoopGenerator(
        eventlist,
        network,
        hosts=topology.hosts(),
        flow_sizes=_LOAD_FCT_WORKLOADS[workload](),
        target_load=load,
        link_rate_bps=topology.link_rate_bps,
        warmup_ps=warmup_ps,
        measure_ps=measure_ps,
        drain_ps=drain_ps,
        matrix=matrix,
        rng=random.Random(seed),
    )
    completed = experiment.run_open_loop(network, generator)
    measured = generator.measured_records(completed_only=False)
    # one normalization across all protocols: jumbo framing and the fabric's
    # longest-path propagation RTT, so rows are comparable on a single axis
    slowdown = metrics.binned_slowdown_summary(
        completed,
        link_rate_bps=topology.link_rate_bps,
        mtu_bytes=units.JUMBO_MTU_BYTES,
        header_bytes=units.HEADER_BYTES,
        base_rtt_ps=_open_loop_base_rtt_ps(topology),
    )
    return {
        "protocol": protocol,
        "load": load,
        "fabric": fabric,
        "workload": workload,
        "hosts": len(topology.hosts()),
        "arrival_rate_per_second": generator.arrival_rate_per_second,
        "offered_gbps": generator.offered_load_bps / 1e9,
        "flows_offered": generator.flows_started,
        "flows_measured": len(measured),
        "measured_completed": len(completed),
        "measured_censored": len(measured) - len(completed),
        "arrival_digest": generator.arrival_digest(),
        "slowdown": slowdown,
    }


# ---------------------------------------------------------------------------
# rpc_deadline / coflow_ct families — service-level workloads (DAG requests).
# The paper's incast figures are the degenerate case of partition-aggregate;
# these families evaluate the full pattern: RPC trees with SLO deadlines and
# multi-stage shuffle coflows arriving open-loop, per registry transport.
# ---------------------------------------------------------------------------

#: transports compared by default in the service-level families: NDP against
#: the ECN baseline and the loss-based per-flow-ECMP control
_SERVICE_DEFAULT_PROTOCOLS = (registry.NDP, registry.DCTCP, registry.TCP)


def _validated_loads(load, loads) -> Tuple[float, ...]:
    """Shared load-axis validation: scalar overrides sweep, all positive finite."""
    if load is not None:
        loads = (load,)
    loads = tuple(float(level) for level in loads)
    if not loads or not all(math.isfinite(level) and level > 0 for level in loads):
        raise ValueError(f"loads must be positive finite fractions, got {loads}")
    return loads


def rpc_deadline_plan(
    load: Optional[float] = None,
    loads: Sequence[float] = (0.1, 0.3),
    protocols: Optional[Sequence[str]] = None,
    fanout: int = 8,
    request_bytes: int = 2_000,
    response_bytes: int = 90_000,
    deadline_us: float = 1_500.0,
    k: int = 4,
    warmup_ps: int = units.microseconds(500),
    measure_ps: int = units.milliseconds(2),
    drain_ps: int = units.milliseconds(4),
    seed: int = 41,
    protocol: Optional[str] = None,
) -> Plan:
    """One spec per (load, protocol) partition-aggregate SLO run.

    ``load`` overrides ``loads`` and ``protocol`` overrides ``protocols``,
    so ``repro.cli sweep rpc_deadline --set load=0.1,0.3 --set
    protocol=ndp,tcp`` expands to single-point plans (the load_fct grid
    convention).
    """
    loads = _validated_loads(load, loads)
    if fanout < 1:
        raise ValueError(f"fanout must be >= 1, got {fanout}")
    if request_bytes <= 0 or response_bytes <= 0:
        raise ValueError("request/response bytes must be positive")
    if not (math.isfinite(deadline_us) and deadline_us > 0):
        raise ValueError(f"deadline_us must be positive and finite, got {deadline_us!r}")
    if protocol is not None:
        protocols = (protocol,)
    protocols = _resolve_protocols(
        protocols, _SERVICE_DEFAULT_PROTOCOLS, FamilyTraits(family="rpc_deadline")
    )
    specs = [
        RunSpec(
            f"rpc_deadline[{name},load={level:g},fanout={fanout}]",
            _rpc_deadline_point,
            dict(
                protocol=name, load=level, fanout=fanout,
                request_bytes=request_bytes, response_bytes=response_bytes,
                deadline_us=deadline_us, k=k, warmup_ps=warmup_ps,
                measure_ps=measure_ps, drain_ps=drain_ps, seed=seed,
            ),
        )
        for level in loads
        for name in protocols
    ]
    return Plan(specs, lambda results: list(results))


def rpc_deadline_slo(
    load: Optional[float] = None,
    loads: Sequence[float] = (0.1, 0.3),
    protocols: Optional[Sequence[str]] = None,
    fanout: int = 8,
    request_bytes: int = 2_000,
    response_bytes: int = 90_000,
    deadline_us: float = 1_500.0,
    k: int = 4,
    warmup_ps: int = units.microseconds(500),
    measure_ps: int = units.milliseconds(2),
    drain_ps: int = units.milliseconds(4),
    seed: int = 41,
    protocol: Optional[str] = None,
) -> List[Dict[str, object]]:
    """Fraction of partition-aggregate requests meeting their SLO vs load.

    Seeded open-loop request arrivals (each a frontend scattering
    ``request_bytes`` to ``fanout`` workers and gathering ``response_bytes``
    incast responses) on a k=``k`` FatTree, once per (load, protocol).  A
    request meets its SLO when its slowest leaf delivers within
    ``deadline_us`` of arrival; censored requests count as misses.  One row
    per point with SLO fraction, request-latency percentiles, counts and
    the trace/request digests (cold == cached == parallel, bit-identical).
    """
    return run_plan(
        rpc_deadline_plan(
            load, loads, protocols, fanout, request_bytes, response_bytes,
            deadline_us, k, warmup_ps, measure_ps, drain_ps, seed, protocol,
        )
    )


def _rpc_deadline_point(
    protocol, load, fanout, request_bytes, response_bytes, deadline_us,
    k, warmup_ps, measure_ps, drain_ps, seed,
):
    """Unit run: one (protocol, load) row of the partition-aggregate SLO sweep."""
    template = PartitionAggregateTemplate(fanout, request_bytes, response_bytes)
    deadline_ps = int(round(deadline_us * units.MICROSECOND))
    row, engine, measured, completed = _service_point(
        protocol, load, template, k, warmup_ps, measure_ps, drain_ps, seed,
        deadline_ps=deadline_ps,
    )
    row.update(
        fanout=fanout,
        deadline_us=deadline_us,
        slo_met_fraction=metrics.slo_met_fraction(
            (run.latency_ps for run in completed), deadline_ps, total=len(measured)
        ),
    )
    return row


def coflow_ct_plan(
    load: Optional[float] = None,
    loads: Sequence[float] = (0.1, 0.3),
    protocols: Optional[Sequence[str]] = None,
    width: int = 4,
    rounds: int = 2,
    bytes_per_pair: int = 60_000,
    k: int = 4,
    warmup_ps: int = units.milliseconds(1),
    measure_ps: int = units.milliseconds(4),
    drain_ps: int = units.milliseconds(4),
    seed: int = 43,
    protocol: Optional[str] = None,
) -> Plan:
    """One spec per (load, protocol) shuffle-coflow run (grid conventions as
    :func:`rpc_deadline_plan`)."""
    loads = _validated_loads(load, loads)
    if width < 1 or rounds < 1:
        raise ValueError(f"width and rounds must be >= 1, got {width}x{rounds}")
    if bytes_per_pair <= 0:
        raise ValueError(f"bytes_per_pair must be positive, got {bytes_per_pair}")
    if protocol is not None:
        protocols = (protocol,)
    protocols = _resolve_protocols(
        protocols, _SERVICE_DEFAULT_PROTOCOLS, FamilyTraits(family="coflow_ct")
    )
    specs = [
        RunSpec(
            f"coflow_ct[{name},load={level:g},width={width}x{rounds}]",
            _coflow_ct_point,
            dict(
                protocol=name, load=level, width=width, rounds=rounds,
                bytes_per_pair=bytes_per_pair, k=k, warmup_ps=warmup_ps,
                measure_ps=measure_ps, drain_ps=drain_ps, seed=seed,
            ),
        )
        for level in loads
        for name in protocols
    ]
    return Plan(specs, lambda results: list(results))


def coflow_ct_times(
    load: Optional[float] = None,
    loads: Sequence[float] = (0.1, 0.3),
    protocols: Optional[Sequence[str]] = None,
    width: int = 4,
    rounds: int = 2,
    bytes_per_pair: int = 60_000,
    k: int = 4,
    warmup_ps: int = units.milliseconds(1),
    measure_ps: int = units.milliseconds(4),
    drain_ps: int = units.milliseconds(4),
    seed: int = 43,
    protocol: Optional[str] = None,
) -> List[Dict[str, object]]:
    """Coflow completion times of open-loop K-round shuffles vs load.

    Each request is a ``width`` x ``width`` bipartite shuffle repeated for
    ``rounds`` barrier-separated rounds; its CCT is slowest-leaf delivery
    minus arrival.  One row per (load, protocol) with size-binned CCT stats
    (bins shared with the flow-slowdown layer), counts and digests.
    """
    return run_plan(
        coflow_ct_plan(
            load, loads, protocols, width, rounds, bytes_per_pair, k,
            warmup_ps, measure_ps, drain_ps, seed, protocol,
        )
    )


def _coflow_ct_point(
    protocol, load, width, rounds, bytes_per_pair, k,
    warmup_ps, measure_ps, drain_ps, seed,
):
    """Unit run: one (protocol, load) row of the coflow CCT sweep."""
    template = CoflowShuffleTemplate(width, bytes_per_pair, rounds)
    row, engine, measured, completed = _service_point(
        protocol, load, template, k, warmup_ps, measure_ps, drain_ps, seed
    )
    row.update(
        width=width,
        rounds=rounds,
        coflow_bytes=width * width * bytes_per_pair * rounds,
        cct_us=metrics.binned_cct_summary(
            (run.spec.total_bytes(), run.latency_ps / units.MICROSECOND)
            for run in completed
        ),
    )
    return row


def _service_point(
    protocol, load, template, k, warmup_ps, measure_ps, drain_ps, seed,
    deadline_ps=None,
):
    """Shared mechanics of one service-workload point: build the network,
    synthesize the seeded request specs, execute them, and return the
    common row fields plus the engine and measured/completed populations."""
    eventlist = EventList()
    network = registry.build_network(
        protocol, eventlist, FatTreeTopology, k=k, seed=seed
    )
    topology = network.topology
    request_specs = synthesize_requests(
        topology.hosts(),
        [template],
        target_load=load,
        link_rate_bps=topology.link_rate_bps,
        warmup_ps=warmup_ps,
        measure_ps=measure_ps,
        drain_ps=drain_ps,
        rng=random.Random(seed),
        deadline_ps=deadline_ps,
    )
    horizon_ps = warmup_ps + measure_ps + drain_ps
    engine = experiment.run_service_requests(
        network,
        request_specs,
        horizon_ps=horizon_ps,
        window_fn=lambda arrival: service_window_of(arrival, warmup_ps, measure_ps),
    )
    measured = engine.requests_in_window(MEASURE)
    completed = [run for run in measured if run.completed]
    latencies_us = sorted(run.latency_ps / units.MICROSECOND for run in completed)
    row = {
        "protocol": protocol,
        "load": load,
        "template": template.name,
        "hosts": len(topology.hosts()),
        "requests_offered": len(request_specs),
        "requests_measured": len(measured),
        "measured_completed": len(completed),
        "measured_censored": len(measured) - len(completed),
        "latency_us": metrics.population_stats(latencies_us),
        "trace_digest": trace_digest(request_specs),
        "request_digest": engine.request_digest(),
    }
    return row, engine, measured, completed


# ---------------------------------------------------------------------------
# Plan -> artifact metadata (consumed by repro.analysis)
# ---------------------------------------------------------------------------

class ArtifactMeta(NamedTuple):
    """How a figure family's tabulated rows become a chart.

    The results-to-figures pipeline (:mod:`repro.analysis`) renders every
    registered figure as a canonical CSV plus a Vega-Lite spec; this tuple
    carries the chart-level facts that live with the experiment rather than
    the renderer: what to call it, which columns form the axes, which
    column splits the series, and the mark type.  ``x_type`` is the
    Vega-Lite encoding type of the x column (``quantitative`` /
    ``ordinal`` / ``nominal``).
    """

    title: str
    mark: str
    x: str
    y: str
    series: Optional[str] = None
    x_type: str = "quantitative"


#: figure family -> chart metadata for the families the analysis layer
#: renders (see ``repro.analysis.registry`` for the row tabulators; the two
#: registries are cross-checked by ``tests/analysis``).  Column names refer
#: to the *tabulated* (flattened) CSV columns, not the raw result keys.
FIGURE_META: Dict[str, ArtifactMeta] = {
    "fig10": ArtifactMeta(
        "Short-flow FCT with receiver-side prioritization",
        "bar", "scenario", "fct_us", x_type="nominal",
    ),
    "fig11": ArtifactMeta(
        "Throughput vs initial window (back-to-back hosts)",
        "line", "initial_window", "throughput_gbps",
    ),
    "fig12": ArtifactMeta(
        "Pull-spacing distribution of the experimental pacer",
        "bar", "packet_bytes", "median_us", x_type="ordinal",
    ),
    "fig13": ArtifactMeta(
        "Incast FCT with perfect vs jittered pull spacing",
        "line", "flow_kb", "fct_us", series="pacer",
    ),
    "fig16": ArtifactMeta(
        "Incast completion time vs number of senders",
        "line", "senders", "completion_ms", series="protocol",
    ),
    "load_fct": ArtifactMeta(
        "p99 FCT slowdown vs offered load (open-loop)",
        "line", "load", "slowdown.all.p99", series="protocol",
    ),
}


#: experiment name (as used by ``python -m repro.cli``) -> plan builder.
#: Every builder accepts the same keyword arguments as its generator and
#: returns a :class:`~repro.harness.sweep.Plan`; this is the registry the
#: CLI uses to fan whole multi-figure runs across one worker pool.
FIGURE_PLANS = {
    "fig2": figure2_plan,
    "fig4": figure4_plan,
    "fig8": figure8_plan,
    "fig9": figure9_plan,
    "fig10": figure10_plan,
    "fig11": figure11_plan,
    "fig12": figure12_plan,
    "fig13": figure13_plan,
    "fig14": figure14_plan,
    "fig15": figure15_plan,
    "fig16": figure16_plan,
    "fig17": figure17_plan,
    "fig19": figure19_plan,
    "fig20": figure20_plan,
    "fig21": figure21_plan,
    "fig22": figure22_plan,
    "fig23": figure23_plan,
    "phost": phost_plan,  # transport-name-ok: experiment family, not a protocol
    "scaling": scaling_plan,
    "uplinks": uplink_trimming_plan,
    "failures_degraded": failures_degraded_plan,
    "failures_recovery": failures_recovery_plan,
    "failures_klinks": failures_klinks_plan,
    "load_fct": load_fct_plan,
    "rpc_deadline": rpc_deadline_plan,
    "coflow_ct": coflow_ct_plan,
}
