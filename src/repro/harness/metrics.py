"""Metrics the paper reports: FCT percentiles, utilization, ideal baselines.

Nothing here depends on the protocols; the functions operate on plain
numbers and :class:`~repro.sim.logger.FlowRecord` objects so that every
transport (NDP, TCP, DCTCP, MPTCP, DCQCN, pHost, CP) is measured the same
way.

The **slowdown layer** (:func:`flow_slowdown`, :func:`slowdown_bin`,
:func:`binned_slowdown_summary`) normalizes each flow's completion time by
its :func:`ideal_transfer_time_ps` and aggregates the ratios into size bins
— the standard lens for open-loop load sweeps (the ``load_fct`` family),
where a 3 MB transfer and a 600 B RPC must be comparable on one axis.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.sim.logger import FlowRecord
from repro.sim.units import SECOND, serialization_time_ps


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence (convenient in reports)."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def percentile(values: Sequence[float], fraction: float) -> float:
    """The *fraction*-th percentile (0..1) using linear interpolation."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    # validate before sorting: an empty input should fail fast, not after a
    # (potentially expensive) sort of a generator that was materialized first
    values = list(values)
    if not values:
        raise ValueError("cannot take a percentile of an empty sequence")
    return _percentile_sorted(sorted(values), fraction)


def _percentile_sorted(ordered: Sequence[float], fraction: float) -> float:
    """:func:`percentile` over an already-sorted non-empty sequence."""
    if len(ordered) == 1:
        return float(ordered[0])
    position = fraction * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    weight = position - low
    # interpolate as base + span*weight: exact when both samples are equal,
    # and never escapes the [low, high] interval through rounding
    return ordered[low] + (ordered[high] - ordered[low]) * weight


def cdf_points(values: Sequence[float]) -> List[Tuple[float, float]]:
    """Return ``(value, cumulative_fraction)`` points for plotting a CDF."""
    ordered = sorted(values)
    n = len(ordered)
    return [(value, (index + 1) / n) for index, value in enumerate(ordered)]


def ideal_transfer_time_ps(
    size_bytes: int,
    link_rate_bps: int,
    mtu_bytes: int,
    header_bytes: int,
    base_rtt_ps: int = 0,
) -> int:
    """Lower bound on the time to deliver *size_bytes* over one link.

    Accounts for per-packet header overhead and an optional propagation
    component; used to express completion times as "percent over optimal"
    (Figures 9 and 20).
    """
    payload_per_packet = mtu_bytes - header_bytes
    packets = (size_bytes + payload_per_packet - 1) // payload_per_packet
    wire_bytes = size_bytes + packets * header_bytes
    return serialization_time_ps(wire_bytes, link_rate_bps) + base_rtt_ps


def ideal_incast_completion_ps(
    senders: int,
    bytes_per_sender: int,
    link_rate_bps: int,
    mtu_bytes: int,
    header_bytes: int,
    base_rtt_ps: int = 0,
) -> int:
    """Best-case completion time of an incast: the receiver link never idles."""
    return ideal_transfer_time_ps(
        senders * bytes_per_sender, link_rate_bps, mtu_bytes, header_bytes, base_rtt_ps
    )


def fair_share_fraction(
    achieved_bps: float, link_rate_bps: int, competitors: int
) -> float:
    """Goodput achieved as a fraction of an equal share of the bottleneck."""
    if competitors <= 0:
        raise ValueError("competitors must be positive")
    fair = link_rate_bps / competitors
    if fair == 0:
        return 0.0
    return achieved_bps / fair


def utilization_from_records(
    records: Iterable[FlowRecord],
    duration_ps: int,
    link_rate_bps: int,
    receivers: int,
) -> float:
    """Aggregate receive-side utilization over a run.

    Sums goodput bytes across flows and normalizes by how much the receiving
    hosts' links could have carried in *duration_ps*.  This is the
    "network utilization" metric of the permutation experiments (Figures 14,
    17 and the scaling study): in a permutation each receiver has exactly one
    incoming flow, so per-receiver goodput / link rate is the per-host
    utilization.
    """
    if duration_ps <= 0:
        raise ValueError("duration must be positive")
    if receivers <= 0:
        raise ValueError("receivers must be positive")
    total_bytes = sum(record.bytes_delivered for record in records)
    capacity_bytes = receivers * link_rate_bps * duration_ps / (8 * SECOND)
    if capacity_bytes == 0:
        return 0.0
    return total_bytes / capacity_bytes


def goodput_bps(record: FlowRecord, duration_ps: int) -> float:
    """Goodput of one flow over a fixed observation window."""
    if duration_ps <= 0:
        raise ValueError("duration must be positive")
    return record.bytes_delivered * 8 * SECOND / duration_ps


#: default flow-size bins for slowdown reporting: ``(label, inclusive upper
#: bound in bytes)`` in ascending order, final bound ``None`` = unbounded.
#: "small" covers single-RTT RPC traffic (the paper's short-flow-latency
#: claims), "large" the megabyte-plus tail that dominates bytes in the
#: empirical mixes; everything between is "medium".
DEFAULT_SLOWDOWN_BINS: Tuple[Tuple[str, Optional[int]], ...] = (
    ("small", 100_000),
    ("medium", 1_000_000),
    ("large", None),
)


def flow_slowdown(
    record: FlowRecord,
    link_rate_bps: int,
    mtu_bytes: int,
    header_bytes: int,
    base_rtt_ps: int = 0,
) -> float:
    """FCT slowdown of one completed flow: actual FCT / ideal transfer time.

    The denominator is :func:`ideal_transfer_time_ps` for the flow's
    *advertised* size (``flow_size_bytes``, not bytes delivered) — the time
    an unloaded single path of ``link_rate_bps`` would need, including
    per-packet header overhead at the given MTU and an optional base RTT.
    Use one ``(mtu_bytes, header_bytes, base_rtt_ps)`` triple across every
    protocol in a comparison so the normalization, not the framing, is held
    constant.

    A slowdown of 1.0 is optimal.  Values slightly below 1.0 are possible
    when ``base_rtt_ps`` overestimates the actual path (e.g. an intra-rack
    flow normalized by the cross-core RTT); they are returned unclamped so
    the baseline choice stays visible.  Raises ``ValueError`` for a flow
    that has not completed (callers filter on ``record.completed``).
    """
    ideal = ideal_transfer_time_ps(
        record.flow_size_bytes, link_rate_bps, mtu_bytes, header_bytes, base_rtt_ps
    )
    if ideal <= 0:
        raise ValueError(f"ideal transfer time must be positive, got {ideal}")
    return record.completion_time_ps() / ideal


def slowdown_bin(
    size_bytes: int,
    bins: Sequence[Tuple[str, Optional[int]]] = DEFAULT_SLOWDOWN_BINS,
) -> str:
    """The bin label for a flow of *size_bytes*.

    Bounds are **inclusive upper bounds**: with the default bins a
    100 000-byte flow is "small" and a 100 001-byte flow is "medium".  The
    final bin's bound may be ``None`` (unbounded); a size beyond every
    finite bound raises ``ValueError`` so mis-specified custom bins fail
    loudly instead of silently dropping the tail.
    """
    for label, upper in bins:
        if upper is None or size_bytes <= upper:
            return label
    raise ValueError(
        f"flow size {size_bytes} exceeds every bin bound "
        f"(make the last bin unbounded with upper=None)"
    )


def binned_slowdown_summary(
    records: Iterable[FlowRecord],
    link_rate_bps: int,
    mtu_bytes: int,
    header_bytes: int,
    base_rtt_ps: int = 0,
    bins: Sequence[Tuple[str, Optional[int]]] = DEFAULT_SLOWDOWN_BINS,
) -> Dict[str, dict]:
    """Per-size-bin slowdown percentiles over the *completed* flows.

    Returns ``{"all": {...}, "<bin>": {...}}`` where each value holds
    ``count`` plus ``p50`` / ``p99`` / ``p999`` / ``mean`` / ``max``
    slowdowns (the load_fct reporting set).  Incomplete records are
    skipped — censoring is the caller's to report (e.g. via
    ``OpenLoopGenerator.measured_records(completed_only=False)``) — and an
    empty population yields ``{"count": 0}`` entries rather than raising,
    so a measurement window with no completions is representable.
    """
    by_bin: Dict[str, List[float]] = {label: [] for label, _upper in bins}
    everything: List[float] = []
    for record in records:
        if not record.completed:
            continue
        value = flow_slowdown(record, link_rate_bps, mtu_bytes, header_bytes, base_rtt_ps)
        by_bin[slowdown_bin(record.flow_size_bytes, bins)].append(value)
        everything.append(value)
    summary = {"all": _slowdown_stats(everything)}
    for label, _upper in bins:
        summary[label] = _slowdown_stats(by_bin[label])
    return summary


def population_stats(values: Sequence[float]) -> dict:
    """count/p50/p99/p999/mean/max of any sample population (0-safe).

    The reporting block shared by the slowdown, CCT and request-latency
    summaries — ``{"count": 0}`` for an empty population.
    """
    return _slowdown_stats(values)


def _slowdown_stats(values: Sequence[float]) -> dict:
    """count/p50/p99/p999/mean/max of one slowdown population (0-safe)."""
    if not values:
        return {"count": 0}
    ordered = sorted(values)  # one sort serves all three percentiles
    return {
        "count": len(ordered),
        "p50": _percentile_sorted(ordered, 0.5),
        "p99": _percentile_sorted(ordered, 0.99),
        "p999": _percentile_sorted(ordered, 0.999),
        "mean": mean(ordered),
        "max": ordered[-1],
    }


#: size bins for coflow-completion-time reporting.  Deliberately *the same
#: object* as :data:`DEFAULT_SLOWDOWN_BINS`: the 100 kB / 1 MB inclusive
#: upper bounds are a single source of truth, so the flow-slowdown layer and
#: the service-level CCT layer can never disagree on an edge case
#: (pinned by tests/harness/test_metrics.py).
DEFAULT_CCT_BINS: Tuple[Tuple[str, Optional[int]], ...] = DEFAULT_SLOWDOWN_BINS


def binned_cct_summary(
    sized_ccts: Iterable[Tuple[int, float]],
    bins: Sequence[Tuple[str, Optional[int]]] = DEFAULT_CCT_BINS,
) -> Dict[str, dict]:
    """Per-size-bin coflow completion time stats.

    *sized_ccts* yields ``(total_coflow_bytes, completion_time)`` pairs —
    the coflow's size across all stages and its CCT in whatever unit the
    caller reports (the ``coflow_ct`` family uses microseconds).  Binning
    reuses :func:`slowdown_bin` (inclusive upper bounds), and the returned
    shape matches :func:`binned_slowdown_summary`: ``{"all": {...},
    "<bin>": {...}}`` with ``count``/``p50``/``p99``/``p999``/``mean``/
    ``max`` per population, ``{"count": 0}`` when empty.
    """
    by_bin: Dict[str, List[float]] = {label: [] for label, _upper in bins}
    everything: List[float] = []
    for total_bytes, cct in sized_ccts:
        by_bin[slowdown_bin(total_bytes, bins)].append(cct)
        everything.append(cct)
    summary = {"all": _slowdown_stats(everything)}
    for label, _upper in bins:
        summary[label] = _slowdown_stats(by_bin[label])
    return summary


def slo_met_fraction(
    latencies_ps: Iterable[int],
    deadline_ps: int,
    total: Optional[int] = None,
) -> float:
    """Fraction of requests meeting an SLO deadline.

    *latencies_ps* holds the latencies of *completed* requests; *total* is
    the full measured population (defaults to the number of latencies).
    Requests censored by the simulation horizon are therefore counted as
    misses — pass ``total=len(measured)`` — never silently dropped.  An
    empty population yields 0.0.
    """
    if deadline_ps <= 0:
        raise ValueError(f"deadline must be positive, got {deadline_ps}")
    latencies = list(latencies_ps)
    denominator = total if total is not None else len(latencies)
    if denominator < len(latencies):
        raise ValueError(
            f"total ({denominator}) cannot be below the number of "
            f"completed latencies ({len(latencies)})"
        )
    if denominator == 0:
        return 0.0
    met = sum(1 for latency in latencies if latency <= deadline_ps)
    return met / denominator


def summarize_fcts_us(records: Iterable[FlowRecord]) -> dict:
    """Median/90th/99th/max completion times (in microseconds) of finished flows."""
    done = [r.completion_time_ps() / 1e6 for r in records if r.completed]
    if not done:
        return {"count": 0}
    return {
        "count": len(done),
        "median_us": percentile(done, 0.5),
        "p90_us": percentile(done, 0.9),
        "p99_us": percentile(done, 0.99),
        "max_us": max(done),
        "mean_us": mean(done),
    }
