"""Metrics the paper reports: FCT percentiles, utilization, ideal baselines.

Nothing here depends on the protocols; the functions operate on plain
numbers and :class:`~repro.sim.logger.FlowRecord` objects so that every
transport (NDP, TCP, DCTCP, MPTCP, DCQCN, pHost, CP) is measured the same
way.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.sim.logger import FlowRecord
from repro.sim.units import SECOND, serialization_time_ps


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence (convenient in reports)."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def percentile(values: Sequence[float], fraction: float) -> float:
    """The *fraction*-th percentile (0..1) using linear interpolation."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    # validate before sorting: an empty input should fail fast, not after a
    # (potentially expensive) sort of a generator that was materialized first
    values = list(values)
    if not values:
        raise ValueError("cannot take a percentile of an empty sequence")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    position = fraction * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    weight = position - low
    # interpolate as base + span*weight: exact when both samples are equal,
    # and never escapes the [low, high] interval through rounding
    return ordered[low] + (ordered[high] - ordered[low]) * weight


def cdf_points(values: Sequence[float]) -> List[Tuple[float, float]]:
    """Return ``(value, cumulative_fraction)`` points for plotting a CDF."""
    ordered = sorted(values)
    n = len(ordered)
    return [(value, (index + 1) / n) for index, value in enumerate(ordered)]


def ideal_transfer_time_ps(
    size_bytes: int,
    link_rate_bps: int,
    mtu_bytes: int,
    header_bytes: int,
    base_rtt_ps: int = 0,
) -> int:
    """Lower bound on the time to deliver *size_bytes* over one link.

    Accounts for per-packet header overhead and an optional propagation
    component; used to express completion times as "percent over optimal"
    (Figures 9 and 20).
    """
    payload_per_packet = mtu_bytes - header_bytes
    packets = (size_bytes + payload_per_packet - 1) // payload_per_packet
    wire_bytes = size_bytes + packets * header_bytes
    return serialization_time_ps(wire_bytes, link_rate_bps) + base_rtt_ps


def ideal_incast_completion_ps(
    senders: int,
    bytes_per_sender: int,
    link_rate_bps: int,
    mtu_bytes: int,
    header_bytes: int,
    base_rtt_ps: int = 0,
) -> int:
    """Best-case completion time of an incast: the receiver link never idles."""
    return ideal_transfer_time_ps(
        senders * bytes_per_sender, link_rate_bps, mtu_bytes, header_bytes, base_rtt_ps
    )


def fair_share_fraction(
    achieved_bps: float, link_rate_bps: int, competitors: int
) -> float:
    """Goodput achieved as a fraction of an equal share of the bottleneck."""
    if competitors <= 0:
        raise ValueError("competitors must be positive")
    fair = link_rate_bps / competitors
    if fair == 0:
        return 0.0
    return achieved_bps / fair


def utilization_from_records(
    records: Iterable[FlowRecord],
    duration_ps: int,
    link_rate_bps: int,
    receivers: int,
) -> float:
    """Aggregate receive-side utilization over a run.

    Sums goodput bytes across flows and normalizes by how much the receiving
    hosts' links could have carried in *duration_ps*.  This is the
    "network utilization" metric of the permutation experiments (Figures 14,
    17 and the scaling study): in a permutation each receiver has exactly one
    incoming flow, so per-receiver goodput / link rate is the per-host
    utilization.
    """
    if duration_ps <= 0:
        raise ValueError("duration must be positive")
    if receivers <= 0:
        raise ValueError("receivers must be positive")
    total_bytes = sum(record.bytes_delivered for record in records)
    capacity_bytes = receivers * link_rate_bps * duration_ps / (8 * SECOND)
    if capacity_bytes == 0:
        return 0.0
    return total_bytes / capacity_bytes


def goodput_bps(record: FlowRecord, duration_ps: int) -> float:
    """Goodput of one flow over a fixed observation window."""
    if duration_ps <= 0:
        raise ValueError("duration must be positive")
    return record.bytes_delivered * 8 * SECOND / duration_ps


def summarize_fcts_us(records: Iterable[FlowRecord]) -> dict:
    """Median/90th/99th/max completion times (in microseconds) of finished flows."""
    done = [r.completion_time_ps() / 1e6 for r in records if r.completed]
    if not done:
        return {"count": 0}
    return {
        "count": len(done),
        "median_us": percentile(done, 0.5),
        "p90_us": percentile(done, 0.9),
        "p99_us": percentile(done, 0.99),
        "max_us": max(done),
        "mean_us": mean(done),
    }
