"""Sharded conservative-time simulation: one event list per topology shard.

The scaling lever for k=16/k=32 fabrics: partition the topology by pod
(:mod:`repro.topology.partition`), run one :class:`EventList` per shard in a
forked ``multiprocessing`` worker, and advance all shards in lockstep
*conservative windows*.  Link propagation delay provides the lookahead: a
packet crossing a boundary link departs at ``t`` and cannot arrive before
``t + min_boundary_delay``, so after every shard finishes the window
``[w*L, (w+1)*L)`` (``L`` = minimum boundary delay, and bounce deliveries
are checked to respect the same bound) the boundary traffic produced in it
is flushed at the barrier and always lands in the receiving shard's future.
No shard ever receives a packet in its past — no rollback, no speculation.

Reproducibility discipline (the same digest bar as the seeded perf
scenarios):

* **Replicated construction.**  Every worker builds the *entire* network
  with the same seed — topology, flows, per-queue RNGs — so object graphs,
  route tables and seeded RNG streams are identical everywhere.  A worker
  then only *starts* the senders whose source host it owns; the rest of its
  replica stays passive.  Per-switch trim RNGs are seeded from
  ``(seed, queue name)`` so a switch's trim stream is private to its owner
  shard and independent of which other shards happen to trim.
* **Marshalled boundary packets.**  Columnar pool handles never cross
  processes: :class:`~repro.sim.shardlink.ShardEgressPipe` captures the hot
  packet fields into a primitive tuple and releases the local slot; the
  receiving shard revives the tuple into its own pool
  (:class:`~repro.sim.shardlink.ShardIngressPipe`) against its identically
  constructed route objects.
* **Canonical ingress order.**  Each window's ingress batch is sorted by
  :func:`~repro.sim.shardlink.canonical_entry_key` — intrinsic packet
  fields only — before scheduling, pinning the receiving event list's tie
  order regardless of shard count or worker scheduling.
* **Merge-ordered global digest.**  Each worker digests exactly the flow
  records and switch counters it *owns*; the driver sorts the union
  canonically and hashes it.  The result is invariant to the shard count
  and bit-identical to :func:`run_reference`'s monolithic execution of the
  same scenario (pinned by ``tests/shard/``).

Worker transport reuses the sweep engine's machinery: the fork start method
(:func:`repro.harness.sweep._pool_context` semantics) and the tagged-JSON
result codec (:func:`repro.harness.sweep.encode_result`) for the finish
payload, so shard results are cacheable sweep results like any other.
"""

from __future__ import annotations

import hashlib
import os
import random
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing import get_context
from multiprocessing.connection import Connection, wait as _connection_wait
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.config import NdpConfig
from repro.core.packets import NdpAck, NdpDataPacket, NdpNack, NdpPull
from repro.core.switch import NdpSwitchQueue
from repro.harness.ndp_network import NdpFlow, NdpNetwork
from repro.harness.sketch import StreamingSlowdownBins
from repro.harness.sweep import decode_result, encode_result
from repro.sim.eventlist import EventList
from repro.sim.packet import PacketPriority
from repro.sim.pool import PacketPool
from repro.sim.queues import DropTailQueue
from repro.sim.shardlink import ShardEgressPipe, ShardIngressPipe, canonical_entry_key
from repro.sim.units import microseconds, milliseconds
from repro.topology.fattree import FatTreeTopology
from repro.topology.partition import (
    ShardPartition,
    boundary_links,
    min_boundary_delay_ps,
    partition_topology,
)
from repro.topology.simple import IndependentPairsTopology

__all__ = [
    "ShardFailedError",
    "ShardRunResult",
    "SHARD_SCENARIOS",
    "run_sharded",
    "run_reference",
    "run_shard_experiment",
    "digest_entries",
    "merge_digest",
]

#: marshalled-packet kind codes (entry field 2; part of the canonical key)
_KIND_DATA = 0
_KIND_ACK = 1
_KIND_NACK = 2
_KIND_PULL = 3
_KIND_BOUNCE = 4

_CONTROL_CLS = {_KIND_ACK: NdpAck, _KIND_NACK: NdpNack, _KIND_PULL: NdpPull}


class ShardFailedError(RuntimeError):
    """A shard worker died (or stopped responding) mid-run.

    Carries the failed shard id and the start timestamp of the window being
    processed, so a hung cluster run fails loudly and debuggably instead of
    blocking forever on a pipe.
    """

    def __init__(self, shard_id: int, window_start_ps: int, detail: str = "") -> None:
        self.shard_id = shard_id
        self.window_start_ps = window_start_ps
        message = (
            f"shard {shard_id} failed during window starting at "
            f"{window_start_ps} ps"
        )
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)


# ---------------------------------------------------------------------------
# Scenario construction (runs identically in every worker)
# ---------------------------------------------------------------------------

@dataclass
class ShardScenario:
    """One shard-ready workload: a fully built network plus its partition."""

    network: NdpNetwork
    partition: ShardPartition
    horizon_ps: int


def _queue_seed(seed: int, name: str) -> int:
    """Stable per-queue RNG seed: private trim streams per switch.

    The monolithic builder shares one RNG across all switches, which makes
    a switch's trim draws depend on every *other* switch's global trim
    order — fine in one process, but not shard-invariant.  Seeding each
    queue from ``(seed, name)`` keeps its stream private, so trim decisions
    depend only on local event order at that switch.
    """
    digest = hashlib.sha256(f"{seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def _build_network(
    eventlist: EventList,
    topology_cls: type,
    config: NdpConfig,
    seed: int,
    **topology_kwargs: Any,
) -> NdpNetwork:
    """`NdpNetwork.build` with per-queue trim RNGs (see :func:`_queue_seed`)."""

    def queue_factory(evl: EventList, rate_bps: int, name: str) -> NdpSwitchQueue:
        rng = random.Random(_queue_seed(seed, name))
        return NdpSwitchQueue(evl, rate_bps, config=config, rng=rng, name=name)

    def nic_factory(evl: EventList, rate_bps: int, name: str) -> DropTailQueue:
        capacity = max(512, 4 * config.initial_window_packets) * config.mtu_bytes
        return DropTailQueue(evl, rate_bps, capacity, name=name)

    topology = topology_cls(
        eventlist,
        queue_factory=queue_factory,
        host_nic_factory=nic_factory,
        **topology_kwargs,
    )
    _jitter_link_delays(topology)
    return NdpNetwork(topology, config=config, seed=seed)


#: per-link delay jitter span: < 80 ns on 1 µs links, physically negligible
_DELAY_JITTER_MOD_PS = 79_873


def _jitter_link_delays(topology) -> None:
    """Add a deterministic per-link delay perturbation (tie avoidance).

    Conservative windowing preserves every boundary packet's arrival
    *timestamp* exactly, but a packet crossing a shard boundary gets a
    fresh scheduler sequence number at the barrier — so two packets
    reaching the same element at the *same picosecond* may interleave
    differently than in a monolithic run.  The shard scenarios therefore
    perturb every link delay by a name-hashed sub-80 ns offset: distinct
    per-path delay sums make exact-picosecond arrival coincidences
    vanishingly rare, which is what keeps the sharded digest bit-identical
    to the monolithic reference.  The offset depends only on the link name,
    so every worker (and the reference) builds the identical fabric.
    """
    for (src_node, dst_node), record in topology.links.items():
        digest = hashlib.sha256(f"delay:{src_node}->{dst_node}".encode()).digest()
        jitter = int.from_bytes(digest[:4], "big") % _DELAY_JITTER_MOD_PS
        topology.set_link_delay_ps(src_node, dst_node, record.delay_ps + jitter)


def _start_flow(
    network: NdpNetwork,
    partition: ShardPartition,
    owned_shard: Optional[int],
    src_host: int,
    dst_host: int,
    size_bytes: int,
    start_time_ps: int,
) -> NdpFlow:
    """Create one flow, arming the sender only if this shard owns it.

    Every worker calls this for every flow in the same order, so the seeded
    RNG streams ``create_flow`` consumes stay aligned across shards.
    """
    start = owned_shard is None or partition.owner_of_host(src_host) == owned_shard
    return network.create_flow(
        src_host, dst_host, size_bytes, start_time_ps=start_time_ps, start=start
    )


def build_pairs(
    eventlist: EventList,
    num_shards: int,
    seed: int,
    owned_shard: Optional[int] = None,
    *,
    pairs: int = 8,
    flows_per_pair: int = 2,
    flow_size_bytes: int = 1_500_000,
    stagger_ps: int = microseconds(3),
    horizon_ps: int = milliseconds(100),
) -> ShardScenario:
    """Degenerate scaling workload: disjoint back-to-back host pairs.

    No boundary links, so the shards never exchange traffic — this isolates
    the window-barrier and digest-merge machinery (conformance) and gives
    the ``shard_scale`` perf scenario a pure measure of aggregate event
    throughput.
    """
    config = NdpConfig()
    network = _build_network(
        eventlist, IndependentPairsTopology, config, seed, pairs=pairs
    )
    partition = partition_topology(network.topology, num_shards)
    for round_index in range(flows_per_pair):
        for pair in range(pairs):
            src = 2 * pair + (round_index % 2)
            dst = 2 * pair + 1 - (round_index % 2)
            start_time = round_index * stagger_ps + pair * 7 * stagger_ps // 5
            _start_flow(
                network, partition, owned_shard, src, dst,
                flow_size_bytes, start_time,
            )
    return ShardScenario(network, partition, horizon_ps)


def build_fattree(
    eventlist: EventList,
    num_shards: int,
    seed: int,
    owned_shard: Optional[int] = None,
    *,
    k: int = 4,
    flows_per_pod: int = 2,
    flow_size_bytes: int = 180_000,
    stagger_ps: int = microseconds(23),
    horizon_ps: int = milliseconds(100),
    pattern: str = "shift",
    header_queue_bytes: Optional[int] = None,
) -> ShardScenario:
    """Cross-pod traffic on a k-ary fat-tree partitioned by pod.

    Every flow crosses the core, so all data, ACK/NACK/PULL and bounce
    traffic exercises the boundary marshalling path.  ``pattern="shift"``
    sends pod ``p`` to pod ``p+1`` (steady cross-pod load);
    ``pattern="incast"`` converges every flow on host 0, overflowing the
    victim ToR port so trimming — and with it the per-switch trim RNGs and
    the cross-shard return-to-sender proxy — is on the digest path.  Flow
    starts are staggered by distinct multiples of a coarse offset on top of
    the per-link delay jitter (see :func:`_jitter_link_delays`): the
    conservative merge pins tie *order*, but digest parity with the
    monolithic reference additionally needs cross-shard arrivals not to
    collide at the exact same picosecond.

    ``header_queue_bytes`` shrinks the per-port header queue below the
    paper's default; with return-to-sender enabled, an incast then
    overflows it and bounced headers travel the cross-shard return path
    (:class:`_BounceProxy`) — the conformance suite uses this to put
    bounces on the digest path.
    """
    if pattern not in ("shift", "incast"):
        raise ValueError(f"unknown fattree pattern {pattern!r}")
    config = NdpConfig()
    if header_queue_bytes is not None:
        config.header_queue_bytes = header_queue_bytes
    network = _build_network(eventlist, FatTreeTopology, config, seed, k=k)
    partition = partition_topology(network.topology, num_shards)
    topology = network.topology
    flow_index = 0
    for pod in range(topology.pods):
        for i in range(flows_per_pod):
            src = pod * topology.hosts_per_pod + (i * 3) % topology.hosts_per_pod
            if pattern == "incast":
                if src == 0:
                    src = topology.hosts_per_pod - 1  # host 0 is the victim
                dst = 0
            else:
                dst_pod = (pod + 1) % topology.pods
                dst = dst_pod * topology.hosts_per_pod + (i * 5 + 1) % topology.hosts_per_pod
            start_time = flow_index * stagger_ps
            _start_flow(
                network, partition, owned_shard, src, dst,
                flow_size_bytes, start_time,
            )
            flow_index += 1
    return ShardScenario(network, partition, horizon_ps)


#: fork-safe scenario registry: name -> builder(eventlist, num_shards, seed,
#: owned_shard=None, **kwargs) -> ShardScenario.  Module-level so worker
#: processes resolve builders by name after the fork.
SHARD_SCENARIOS: Dict[str, Callable[..., ShardScenario]] = {
    "pairs": build_pairs,
    "fattree": build_fattree,
}


# ---------------------------------------------------------------------------
# Packet marshalling (egress) and revival (ingress)
# ---------------------------------------------------------------------------
#
# Entry layout (canonical-key prefix first; see canonical_entry_key):
#   (deliver_at_ps, flow_id, kind, seqno, path_id, is_retransmit,
#    next_hop, link_seq, payload)
# payload per kind:
#   DATA/BOUNCE: (size, original_size, is_header_only, priority, send_time,
#                 syn, last, payload_bytes, ecn_capable, ecn_ce)
#   ACK/NACK:    (size, original_size, priority, send_time, data_path_id,
#                 ecn_capable, ecn_ce)
#   PULL:        (size, original_size, priority, send_time, data_path_id,
#                 pull_counter, ecn_capable, ecn_ce)

def _marshal_packet(packet, kind: int, next_hop: int, deliver_at: int, link_seq: int) -> tuple:
    if kind in (_KIND_DATA, _KIND_BOUNCE):
        payload = (
            packet.size, packet.original_size, int(packet.is_header_only),
            int(packet.priority), packet.send_time, int(packet.syn),
            int(packet.last), packet.payload_bytes,
            int(packet.ecn_capable), int(packet.ecn_ce),
        )
        is_retransmit = int(packet.is_retransmit)
    elif kind == _KIND_PULL:
        payload = (
            packet.size, packet.original_size, int(packet.priority),
            packet.send_time, packet.data_path_id, packet.pull_counter,
            int(packet.ecn_capable), int(packet.ecn_ce),
        )
        is_retransmit = 0
    else:
        payload = (
            packet.size, packet.original_size, int(packet.priority),
            packet.send_time, packet.data_path_id,
            int(packet.ecn_capable), int(packet.ecn_ce),
        )
        is_retransmit = 0
    return (
        deliver_at, packet.flow_id, kind, packet.seqno, packet.path_id,
        is_retransmit, next_hop, link_seq, payload,
    )


def _packet_kind(packet) -> int:
    if isinstance(packet, NdpAck):
        return _KIND_ACK
    if isinstance(packet, NdpNack):
        return _KIND_NACK
    if isinstance(packet, NdpPull):
        return _KIND_PULL
    if isinstance(packet, NdpDataPacket):
        return _KIND_DATA
    raise TypeError(f"cannot marshal packet type {type(packet).__name__}")


class _BounceProxy:
    """Stands in for a remote source's ``bounce`` in non-owner shards.

    Revived data packets carry this as their ``src_endpoint``: when a local
    switch returns the trimmed header to sender, the proxy marshals a
    BOUNCE entry back to the shard that owns the source (delivery time
    ``now + bounce_delay``, which the lookahead validation guarantees is
    beyond the current window) and retires the local slot.
    """

    __slots__ = ("worker",)

    def __init__(self, worker: "_ShardWorker") -> None:
        self.worker = worker

    def bounce(self, packet, delay_ps: int) -> None:
        worker = self.worker
        deliver_at = worker.eventlist._now + delay_ps
        entry = _marshal_packet(
            packet, _KIND_BOUNCE, -1, deliver_at, worker.next_bounce_seq()
        )
        dst_shard = worker.partition.owner_of_host(packet.src)
        worker.outbox.append((dst_shard, entry))
        packet.release()

    def receive_packet(self, packet) -> None:  # pragma: no cover - defensive
        raise RuntimeError("bounce proxy only accepts returned-to-sender calls")


class _ShardWorker:
    """Everything one shard process owns: replica network, boundary halves."""

    def __init__(
        self,
        shard_id: int,
        num_shards: int,
        scenario: str,
        seed: int,
        scenario_kwargs: Dict[str, Any],
    ) -> None:
        self.shard_id = shard_id
        self.eventlist = EventList()
        builder = SHARD_SCENARIOS[scenario]
        scn = builder(
            self.eventlist, num_shards, seed, owned_shard=shard_id,
            **scenario_kwargs,
        )
        self.network = scn.network
        self.partition = scn.partition
        self.horizon_ps = scn.horizon_ps
        self.pool: PacketPool = self.network.pool
        self.outbox: List[Tuple[int, tuple]] = []
        self._bounce_seq = 0
        self.proxy = _BounceProxy(self)
        self.ingress = ShardIngressPipe(self.eventlist, name=f"shard{shard_id}-ingress")
        topology = self.network.topology
        node_owner = self.partition.node_owner
        self.boundary = boundary_links(topology, self.partition)
        self.lookahead_ps = min_boundary_delay_ps(self.boundary)
        # swap every boundary pipe for an egress half *before* any route is
        # resolved (flows were created by the builder, but route resolution
        # caches by version — invalidate so resolved routes embed the
        # egress pipes)
        for (src_node, dst_node), record in self.boundary:
            dst_shard = node_owner[dst_node]
            record.pipe = ShardEgressPipe(
                self.eventlist,
                record.delay_ps,
                capture=self._make_capture(dst_shard),
                name=f"shard-egress-{src_node}->{dst_node}",
            )
        if self.boundary:
            topology.route_table.invalidate()
            self._refresh_flow_routes()
            self._validate_bounce_lookahead()
        # route maps for reviving marshalled packets: identical construction
        # means path_id -> the same Route object in every worker
        self.fwd_routes: Dict[int, Dict[int, Any]] = {}
        self.rev_routes: Dict[int, Dict[int, Any]] = {}
        self.flows_by_id: Dict[int, NdpFlow] = {}
        for flow in self.network.flows:
            self.flows_by_id[flow.flow_id] = flow
            self.fwd_routes[flow.flow_id] = {
                route.path_id: route for route in flow.src.paths.routes
            }
            self.rev_routes[flow.flow_id] = {
                route.path_id: route for route in flow.sink.reverse_paths.routes
            }
        owner = self.partition.owner_of_host
        self.owned_src_flows = [
            f for f in self.network.flows if owner(f.src_host) == shard_id
        ]
        self.owned_sink_flows = [
            f for f in self.network.flows if owner(f.dst_host) == shard_id
        ]
        self.busy_seconds = 0.0
        self.peak_pending = 0

    # --- construction helpers ---------------------------------------------------------

    def _make_capture(self, dst_shard: int):
        outbox = self.outbox

        def capture(packet, next_hop: int, deliver_at: int, link_seq: int) -> None:
            kind = _packet_kind(packet)
            outbox.append(
                (dst_shard, _marshal_packet(packet, kind, next_hop, deliver_at, link_seq))
            )
            packet.release()

        return capture

    def _refresh_flow_routes(self) -> None:
        """Re-resolve every flow's routes so they embed the egress pipes.

        The builder created flows against the original pipes; re-running
        the same route queries after the swap (same path ids, same element
        positions) and re-extending with the same endpoint entries yields
        routes identical except for the substituted boundary pipes.
        """
        topology = self.network.topology
        for flow in self.network.flows:
            forward = topology.get_paths(flow.src_host, flow.dst_host)
            reverse = topology.get_paths(flow.dst_host, flow.src_host)
            flow.src.update_routes(
                [route.extended(flow.sink_entry) for route in forward]
            )
            flow.sink.reverse_paths.update_routes(
                [route.extended(flow.src_entry) for route in reverse]
            )

    def _validate_bounce_lookahead(self) -> None:
        """Bounces cross shards too: their delay must respect the lookahead."""
        config = self.network.config
        if not config.return_to_sender:
            return
        for _key, record in self.network.topology.links.items():
            queue = record.queue
            if isinstance(queue, NdpSwitchQueue) and queue.bounce_delay_ps < self.lookahead_ps:
                raise ValueError(
                    f"bounce delay {queue.bounce_delay_ps} ps of {queue.name} is "
                    f"below the conservative lookahead {self.lookahead_ps} ps"
                )

    def next_bounce_seq(self) -> int:
        seq = self._bounce_seq
        self._bounce_seq = seq + 1
        return seq

    # --- windowed execution ------------------------------------------------------------

    def _revive(self, entry: tuple) -> None:
        deliver_at, flow_id, kind, seqno, path_id, is_rtx, next_hop, _link_seq, payload = entry
        flow = self.flows_by_id[flow_id]
        pool = self.pool
        if kind in (_KIND_DATA, _KIND_BOUNCE):
            (size, original_size, header_only, priority, send_time,
             syn, last, payload_bytes, ecn_capable, ecn_ce) = payload
            packet = pool.get(NdpDataPacket)
            packet.flow_id = flow_id
            packet.src = flow.src_host
            packet.dst = flow.dst_host
            packet.size = size
            packet.original_size = original_size
            packet.seqno = seqno
            packet.priority = PacketPriority(priority)
            packet.is_header_only = bool(header_only)
            packet.ecn_capable = bool(ecn_capable)
            packet.ecn_ce = bool(ecn_ce)
            packet.path_id = path_id
            packet.send_time = send_time
            packet.syn = bool(syn)
            packet.last = bool(last)
            packet.payload_bytes = payload_bytes
            packet.is_retransmit = bool(is_rtx)
            packet.route = self.fwd_routes[flow_id][path_id]
            if kind == _KIND_BOUNCE:
                # returned-to-sender header: deliver straight to the (owned)
                # source endpoint, exactly as NetworkEndpoint.bounce would
                packet.bounced = True
                packet.src_endpoint = flow.src
                packet.hop = len(packet.route.elements)
                self.eventlist.schedule_raw(
                    deliver_at, flow.src.receive_packet, (packet,)
                )
                self.ingress.packets_delivered += 1
                return
            packet.bounced = False
            # a revived data packet is in transit away from its source; if a
            # local switch bounces it, the proxy marshals it home
            packet.src_endpoint = self.proxy
            packet.hop = next_hop
            self.ingress.deliver(deliver_at, packet)
            return
        cls = _CONTROL_CLS[kind]
        packet = pool.get(cls)
        if kind == _KIND_PULL:
            (size, original_size, priority, send_time, data_path_id,
             pull_counter, ecn_capable, ecn_ce) = payload
            packet.pull_counter = pull_counter
        else:
            (size, original_size, priority, send_time, data_path_id,
             ecn_capable, ecn_ce) = payload
        packet.flow_id = flow_id
        packet.src = flow.dst_host
        packet.dst = flow.src_host
        packet.size = size
        packet.original_size = original_size
        packet.seqno = seqno
        packet.priority = PacketPriority(priority)
        packet.is_header_only = False
        packet.bounced = False
        packet.ecn_capable = bool(ecn_capable)
        packet.ecn_ce = bool(ecn_ce)
        packet.path_id = path_id
        packet.send_time = send_time
        packet.data_path_id = data_path_id
        packet.route = self.rev_routes[flow_id][path_id]
        packet.hop = next_hop
        self.ingress.deliver(deliver_at, packet)

    def advance(self, end_ps: int, ingress_entries: Sequence[tuple]) -> Tuple[List[Tuple[int, tuple]], int, bool]:
        """Run one conservative window; returns (outbox, events_delta, all_done)."""
        started = time.process_time()
        events_before = self.eventlist.events_executed
        for entry in sorted(ingress_entries, key=canonical_entry_key):
            self._revive(entry)
        self.eventlist.run_window(end_ps)
        self.busy_seconds += time.process_time() - started
        pending = self.eventlist.pending_events()
        if pending > self.peak_pending:
            self.peak_pending = pending
        # drain in place: the egress capture closures hold a reference to
        # this exact list, so rebinding self.outbox would orphan them
        outbox = self.outbox[:]
        self.outbox.clear()
        all_done = all(f.src.complete for f in self.owned_src_flows) and all(
            f.complete for f in self.owned_sink_flows
        )
        return outbox, self.eventlist.events_executed - events_before, all_done

    # --- results -----------------------------------------------------------------------

    def finish_payload(self) -> dict:
        topology = self.network.topology
        sketch = StreamingSlowdownBins()
        for flow in self.owned_sink_flows:
            sketch.add_record(
                flow.record,
                link_rate_bps=topology.link_rate_bps,
                mtu_bytes=self.network.config.mtu_bytes,
                header_bytes=self.network.config.header_bytes,
            )
        entries = digest_entries(self.network, self.partition, self.shard_id)
        return {
            "shard_id": self.shard_id,
            "digest_entries": entries,
            "shard_digest": merge_digest([entries]),
            "sketch_state": sketch.state(),
            "busy_seconds": self.busy_seconds,
            "events_executed": self.eventlist.events_executed,
            "peak_pending_events": self.peak_pending,
            "final_time_ps": self.eventlist.now(),
            "owned_flows": len(self.owned_sink_flows),
            "completed_flows": sum(1 for f in self.owned_sink_flows if f.complete),
            "boundary_packets_in": self.ingress.packets_delivered,
        }


# ---------------------------------------------------------------------------
# Digests
# ---------------------------------------------------------------------------

def _flow_record_tuple(record) -> tuple:
    return (
        record.flow_id, record.src, record.dst, record.flow_size_bytes,
        record.start_time_ps, record.finish_time_ps, record.bytes_delivered,
        record.packets_delivered, record.headers_received,
        record.retransmissions, record.rtx_from_nack, record.rtx_from_bounce,
        record.rtx_from_timeout, record.pull_retries,
        record.keepalive_retransmits,
    )


def digest_entries(
    network: NdpNetwork,
    partition: ShardPartition,
    shard_id: Optional[int] = None,
) -> List[tuple]:
    """The digestable state one shard owns (or everything, for a reference).

    Each endpoint record and switch counter belongs to exactly one shard —
    the shard owning the endpoint's host or the queue's source node — so
    the union over shards covers the network exactly once and the merged
    digest is invariant to the shard count.
    """
    entries: List[tuple] = []
    owner = partition.owner_of_host
    for flow in network.flows:
        if shard_id is None or owner(flow.src_host) == shard_id:
            entries.append(
                ("flow", flow.flow_id, "tx") + _flow_record_tuple(flow.sender_record)
            )
        if shard_id is None or owner(flow.dst_host) == shard_id:
            entries.append(
                ("flow", flow.flow_id, "rx") + _flow_record_tuple(flow.record)
            )
    node_owner = partition.node_owner
    for (src_node, _dst_node), record in network.topology.links.items():
        queue = record.queue
        if isinstance(queue, NdpSwitchQueue) and (
            shard_id is None or node_owner[src_node] == shard_id
        ):
            entries.append(
                ("queue", queue.name, queue.trimmed_arriving,
                 queue.trimmed_from_tail, queue.headers_bounced)
            )
    return entries


def merge_digest(entry_lists: Sequence[List[tuple]]) -> str:
    """Deterministic merge: canonical sort of the union, then SHA-256.

    Entries are sorted by their ``repr`` (kinds mix ints and strings, so
    tuple comparison is not total across kinds) — stable, content-defined,
    and independent of which shard contributed which entry.
    """
    merged = sorted(
        (entry for entries in entry_lists for entry in entries), key=repr
    )
    hasher = hashlib.sha256()
    for entry in merged:
        hasher.update(repr(entry).encode())
        hasher.update(b"\n")
    return hasher.hexdigest()


# ---------------------------------------------------------------------------
# Worker process main loop
# ---------------------------------------------------------------------------

def _shard_worker_main(
    conn: Connection,
    shard_id: int,
    num_shards: int,
    scenario: str,
    seed: int,
    scenario_kwargs: Dict[str, Any],
    fail_shard: Optional[int],
    fail_window: Optional[int],
) -> None:
    try:
        worker = _ShardWorker(shard_id, num_shards, scenario, seed, scenario_kwargs)
        conn.send(
            (
                "ready", shard_id, worker.lookahead_ps, worker.horizon_ps,
                len(worker.network.flows),
            )
        )
        window_index = 0
        while True:
            message = conn.recv()
            command = message[0]
            if command == "advance":
                _, end_ps, entries = message
                if fail_shard == shard_id and fail_window == window_index:
                    os._exit(1)  # crash-robustness test hook: die mid-window
                outbox, events_delta, all_done = worker.advance(end_ps, entries)
                conn.send(("window", shard_id, outbox, events_delta, all_done))
                window_index += 1
            elif command == "finish":
                conn.send(("finish", shard_id, encode_result(worker.finish_payload())))
                conn.close()
                return
            else:  # pragma: no cover - protocol defensive
                raise RuntimeError(f"unknown shard command {command!r}")
    except Exception:  # pragma: no cover - surfaced as driver-side error
        try:
            conn.send(("error", shard_id, traceback.format_exc()))
        except Exception:
            pass
        os._exit(1)


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

@dataclass
class ShardRunResult:
    """Merged outcome of one sharded run."""

    scenario: str
    num_shards: int
    seed: int
    digest: str
    per_shard_digests: List[str]
    windows: int
    lookahead_ps: int
    events_executed: int
    wall_seconds: float
    busy_seconds: List[float]
    completed_flows: int
    total_flows: int
    final_time_ps: int
    peak_pending_events: int
    boundary_packets: int
    slowdown_summary: Dict[str, dict] = field(default_factory=dict)

    @property
    def events_per_second(self) -> float:
        """Wall-clock event rate (bounded by the machine's real cores)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.events_executed / self.wall_seconds

    @property
    def aggregate_events_per_second(self) -> float:
        """Parallel event capacity: total events over the *slowest shard's*
        CPU time.  Each worker meters its own busy time with
        ``time.process_time()``, so the metric reflects what the shard set
        sustains with one core per shard even when the host machine
        time-shares fewer cores (CI containers).  The wall-clock rate is
        reported alongside; see benchmarks/perf/README.md.
        """
        busiest = max(self.busy_seconds) if self.busy_seconds else 0.0
        if busiest <= 0:
            return 0.0
        return self.events_executed / busiest

    def as_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "num_shards": self.num_shards,
            "seed": self.seed,
            "digest": self.digest,
            "per_shard_digests": list(self.per_shard_digests),
            "windows": self.windows,
            "lookahead_ps": self.lookahead_ps,
            "events_executed": self.events_executed,
            "wall_seconds": round(self.wall_seconds, 4),
            "events_per_second": round(self.events_per_second, 1),
            "busy_seconds": [round(b, 4) for b in self.busy_seconds],
            "aggregate_events_per_second": round(self.aggregate_events_per_second, 1),
            "completed_flows": self.completed_flows,
            "total_flows": self.total_flows,
            "final_time_ps": self.final_time_ps,
            "peak_pending_events": self.peak_pending_events,
            "boundary_packets": self.boundary_packets,
            "slowdown_summary": self.slowdown_summary,
        }


def _recv_checked(
    conn: Connection,
    sentinel,
    shard_id: int,
    window_start_ps: int,
    timeout_s: float,
) -> tuple:
    """Receive one worker message, surfacing death/hangs as ShardFailedError."""
    ready = _connection_wait([conn, sentinel], timeout_s)
    if conn in ready:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            raise ShardFailedError(shard_id, window_start_ps, "pipe closed")
        if message[0] == "error":
            raise ShardFailedError(shard_id, window_start_ps, message[2])
        return message
    if sentinel in ready:
        # the process died; drain a possibly-raced final message first
        if conn.poll(0):
            message = conn.recv()
            if message[0] == "error":
                raise ShardFailedError(shard_id, window_start_ps, message[2])
            return message
        raise ShardFailedError(shard_id, window_start_ps, "worker process died")
    raise ShardFailedError(
        shard_id, window_start_ps, f"no reply within {timeout_s:.0f}s"
    )


def run_sharded(
    scenario: str,
    num_shards: int,
    seed: int = 1,
    scenario_kwargs: Optional[Dict[str, Any]] = None,
    window_timeout_s: float = 600.0,
    _fail_shard: Optional[int] = None,
    _fail_window: Optional[int] = None,
) -> ShardRunResult:
    """Run *scenario* split across *num_shards* conservative-time workers.

    The driver is topology-agnostic: workers route their own boundary
    traffic (each marshalled entry is tagged with its destination shard),
    the driver only enforces the window barrier — all shards finish window
    ``w`` before any entry produced in it is delivered — and merges the
    per-shard digests, sketches and counters at the end.

    ``_fail_shard`` / ``_fail_window`` are test hooks: the named worker
    calls ``os._exit(1)`` at the start of that window, which must surface
    as :class:`ShardFailedError` rather than a hang.
    """
    if scenario not in SHARD_SCENARIOS:
        raise ValueError(
            f"unknown shard scenario {scenario!r} "
            f"(known: {sorted(SHARD_SCENARIOS)})"
        )
    if num_shards < 1:
        raise ValueError("need at least one shard")
    kwargs = dict(scenario_kwargs or {})
    context = get_context("fork")
    conns: List[Connection] = []
    procs = []
    wall_started = time.perf_counter()
    try:
        for shard_id in range(num_shards):
            parent_conn, child_conn = context.Pipe(duplex=True)
            proc = context.Process(
                target=_shard_worker_main,
                args=(
                    child_conn, shard_id, num_shards, scenario, seed, kwargs,
                    _fail_shard, _fail_window,
                ),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            conns.append(parent_conn)
            procs.append(proc)

        lookahead_ps = horizon_ps = total_flows = None
        for shard_id, (conn, proc) in enumerate(zip(conns, procs)):
            message = _recv_checked(conn, proc.sentinel, shard_id, 0, window_timeout_s)
            _tag, _sid, shard_lookahead, shard_horizon, shard_flows = message
            if lookahead_ps is None:
                lookahead_ps, horizon_ps, total_flows = (
                    shard_lookahead, shard_horizon, shard_flows
                )
            elif (shard_lookahead, shard_horizon, shard_flows) != (
                lookahead_ps, horizon_ps, total_flows
            ):
                raise RuntimeError(
                    "shard replicas disagree on scenario shape: "
                    f"shard {shard_id} reports ({shard_lookahead}, "
                    f"{shard_horizon}, {shard_flows}), shard 0 reports "
                    f"({lookahead_ps}, {horizon_ps}, {total_flows})"
                )

        pending: List[List[tuple]] = [[] for _ in range(num_shards)]
        window_start = 0
        windows = 0
        events_executed = 0
        boundary_packets = 0
        done_flags = [False] * num_shards
        while window_start < horizon_ps:
            if all(done_flags) and not any(pending):
                break
            if lookahead_ps > 0:
                window_end = min(window_start + lookahead_ps, horizon_ps)
            else:
                window_end = horizon_ps  # no boundaries: one window to the horizon
            for shard_id, conn in enumerate(conns):
                conn.send(("advance", window_end, pending[shard_id]))
                pending[shard_id] = []
            for shard_id, (conn, proc) in enumerate(zip(conns, procs)):
                message = _recv_checked(
                    conn, proc.sentinel, shard_id, window_start, window_timeout_s
                )
                _tag, _sid, outbox, events_delta, all_done = message
                events_executed += events_delta
                done_flags[shard_id] = all_done
                boundary_packets += len(outbox)
                for dst_shard, entry in outbox:
                    pending[dst_shard].append(entry)
            window_start = window_end
            windows += 1

        payloads = []
        for shard_id, (conn, proc) in enumerate(zip(conns, procs)):
            conn.send(("finish",))
            message = _recv_checked(
                conn, proc.sentinel, shard_id, window_start, window_timeout_s
            )
            payloads.append(decode_result(message[2]))
        wall_seconds = time.perf_counter() - wall_started
        for proc in procs:
            proc.join(timeout=30)
    finally:
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        for conn in conns:
            conn.close()

    payloads.sort(key=lambda payload: payload["shard_id"])
    sketch = StreamingSlowdownBins()
    for payload in payloads:
        sketch.merge(StreamingSlowdownBins.from_state(payload["sketch_state"]))
    return ShardRunResult(
        scenario=scenario,
        num_shards=num_shards,
        seed=seed,
        digest=merge_digest([payload["digest_entries"] for payload in payloads]),
        per_shard_digests=[payload["shard_digest"] for payload in payloads],
        windows=windows,
        lookahead_ps=lookahead_ps,
        events_executed=events_executed,
        wall_seconds=wall_seconds,
        busy_seconds=[payload["busy_seconds"] for payload in payloads],
        completed_flows=sum(payload["completed_flows"] for payload in payloads),
        total_flows=total_flows,
        final_time_ps=max(payload["final_time_ps"] for payload in payloads),
        peak_pending_events=max(payload["peak_pending_events"] for payload in payloads),
        boundary_packets=boundary_packets,
        slowdown_summary=sketch.summary(),
    )


# ---------------------------------------------------------------------------
# Monolithic reference (the digest oracle for the conformance suite)
# ---------------------------------------------------------------------------

def run_reference(
    scenario: str,
    seed: int = 1,
    scenario_kwargs: Optional[Dict[str, Any]] = None,
) -> Tuple[str, ShardScenario]:
    """Run *scenario* unsharded in-process and return its global digest.

    Uses the same builder with every sender started and no boundary pipes
    installed, with the same ``[0, horizon)`` execution semantics and the
    same stop condition as the sharded driver (every source *and* sink
    complete), so its digest is directly comparable.
    """
    eventlist = EventList()
    builder = SHARD_SCENARIOS[scenario]
    scn = builder(
        eventlist, num_shards=1, seed=seed, owned_shard=None,
        **(scenario_kwargs or {}),
    )
    flows = scn.network.flows
    while True:
        before = eventlist.events_executed
        eventlist.run(until=scn.horizon_ps - 1, max_events=50_000)
        if all(f.src.complete and f.complete for f in flows):
            break
        if eventlist.events_executed == before:
            break  # nothing left before the horizon
    digest = merge_digest([digest_entries(scn.network, scn.partition, None)])
    return digest, scn


# ---------------------------------------------------------------------------
# Sweep integration
# ---------------------------------------------------------------------------

def run_shard_experiment(
    scenario: str, num_shards: int, seed: int = 1, **scenario_kwargs: Any
) -> dict:
    """Module-level sweep entry point (``RunSpec.fn``-compatible).

    Returns the codec-friendly ``ShardRunResult.as_dict()`` so sharded runs
    participate in the persistent result cache like any other experiment.
    """
    result = run_sharded(
        scenario, num_shards, seed=seed, scenario_kwargs=scenario_kwargs or None
    )
    return result.as_dict()
