"""Experiment harness: network builders, workload runners, metrics, sweeps.

The harness is the layer the examples and benchmarks use.  It turns a
(topology, transport) pair into a *network* object with a uniform
``create_flow`` interface, provides canonical workload runners (permutation,
random, incast, short-flows-over-background, closed-loop workloads), and
computes the metrics the paper reports (flow completion times, utilization,
goodput time series, CDFs).

:mod:`repro.harness.sweep` is the execution layer: figures decompose into
independent :class:`~repro.harness.sweep.RunSpec` units
(:data:`repro.harness.figures.FIGURE_PLANS`) that can be fanned across
worker processes and are memoized in a persistent on-disk result cache
(``$REPRO_CACHE_DIR``, default ``~/.cache/repro``; ``REPRO_NO_CACHE=1``
disables).  See ``python -m repro.cli all --jobs 4``.

Network builders (one per protocol, all exposing ``build`` + ``create_flow``):

* :class:`NdpNetwork` — the paper's contribution (trimming switches).
* :class:`TcpNetwork` / :class:`DctcpNetwork` / :class:`MptcpNetwork` /
  :class:`DcqcnNetwork` / :class:`PHostNetwork` — the baselines.
"""

from repro.harness.metrics import (
    cdf_points,
    fair_share_fraction,
    goodput_bps,
    ideal_incast_completion_ps,
    ideal_transfer_time_ps,
    mean,
    percentile,
    summarize_fcts_us,
    utilization_from_records,
)
from repro.harness.ndp_network import NdpFlow, NdpNetwork
from repro.harness.baseline_networks import (
    DcqcnNetwork,
    DctcpNetwork,
    EndpointFlow,
    MptcpFlow,
    MptcpNetwork,
    PHostNetwork,
    TcpNetwork,
)
from repro.harness import experiment, metrics, sweep
from repro.harness.sweep import (
    Plan,
    ResultCache,
    RunSpec,
    default_cache,
    run_plan,
    run_specs,
)

__all__ = [
    "Plan",
    "ResultCache",
    "RunSpec",
    "default_cache",
    "run_plan",
    "run_specs",
    "sweep",
    "cdf_points",
    "percentile",
    "mean",
    "fair_share_fraction",
    "goodput_bps",
    "ideal_incast_completion_ps",
    "ideal_transfer_time_ps",
    "summarize_fcts_us",
    "utilization_from_records",
    "NdpNetwork",
    "NdpFlow",
    "TcpNetwork",
    "DctcpNetwork",
    "MptcpNetwork",
    "DcqcnNetwork",
    "PHostNetwork",
    "EndpointFlow",
    "MptcpFlow",
    "experiment",
    "metrics",
]
