"""Convenience layer that wires NDP endpoints onto a topology.

A :class:`NdpNetwork` owns:

* the topology (whose switch ports must be NDP trimming queues — use
  :meth:`NdpNetwork.build` to construct topology and network together),
* one :class:`~repro.core.pull_queue.NdpPullPacer` per host (the paper's
  single shared pull queue per receiving interface), and
* the per-flow senders and sinks created through :meth:`create_flow`.

Every other transport in :mod:`repro.transports` provides an equivalent
``*Network`` class with the same ``create_flow`` interface, which is what
lets the workload runners in :mod:`repro.harness.experiment` drive all
protocols identically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Type

from repro.core.config import NdpConfig
from repro.core.pull_queue import NdpPullPacer
from repro.core.receiver import NdpSink
from repro.core.sender import NdpSrc
from repro.core.switch import NdpSwitchQueue
from repro.sim.eventlist import EventList
from repro.sim.faults import FaultInjector
from repro.sim.logger import FlowRecord
from repro.sim.network import PacketSink
from repro.sim.pool import PacketPool
from repro.sim.queues import DropTailQueue
from repro.topology.base import Topology
from repro.transports.capabilities import TransportCapabilities


@dataclass
class NdpFlow:
    """Handle returned by :meth:`NdpNetwork.create_flow`."""

    flow_id: int
    src: NdpSrc
    sink: NdpSink
    #: endpoints of the transfer, kept for link-state route refreshes
    src_host: int = -1
    dst_host: int = -1
    #: the (possibly fault-tapped) delivery entries routes terminate at
    src_entry: Optional[PacketSink] = None
    sink_entry: Optional[PacketSink] = None

    @property
    def record(self) -> FlowRecord:
        """The receiver-side flow record (start, finish, bytes delivered)."""
        return self.sink.record

    @property
    def sender_record(self) -> FlowRecord:
        """The sender-side record (includes retransmission counters)."""
        return self.src.record

    @property
    def complete(self) -> bool:
        """True once the receiver has every packet of the transfer."""
        return self.sink.complete


class NdpNetwork:
    """Bind NDP senders, sinks and pull pacers to an existing topology."""

    #: what NDP needs from — and does to — the fabric (see the registry)
    CAPABILITIES = TransportCapabilities(
        supports_trimming=True, per_packet_spraying=True, multipath=True
    )

    def __init__(
        self,
        topology: Topology,
        config: Optional[NdpConfig] = None,
        seed: int = 1,
        pacer_factory: Optional[Callable[[int], NdpPullPacer]] = None,
        fault_injector: Optional[FaultInjector] = None,
    ) -> None:
        self.topology = topology
        self.eventlist = topology.eventlist
        self.config = config if config is not None else NdpConfig()
        self.rng = random.Random(seed)
        self._pacers: Dict[int, NdpPullPacer] = {}
        self._pacer_factory = pacer_factory
        self._next_flow_id = 0
        self.flows: List[NdpFlow] = []
        #: network-wide packet slot pool (see :mod:`repro.sim.pool`): data
        #: packets freed at sinks are revived by sources and vice versa, so
        #: steady state allocates almost no packet objects
        self.pool = PacketPool()
        #: optional fault-injection layer; when set, every packet delivered
        #: to a flow endpoint (data to sinks, ACK/NACK/PULL to sources)
        #: passes a FaultPoint tap first.  Bounced (return-to-sender)
        #: headers are delivered switch-to-source directly and bypass it.
        self.fault_injector = fault_injector
        # Fabric dynamics: when a link fails or recovers, refresh every live
        # flow's route set so path managers prune (or re-admit) the affected
        # paths immediately.  Subscribing costs nothing on a static fabric.
        topology.subscribe_link_state(self._on_link_state)

    # --- construction ----------------------------------------------------------

    @classmethod
    def build(
        cls,
        eventlist: EventList,
        topology_cls: Type[Topology],
        config: Optional[NdpConfig] = None,
        seed: int = 1,
        pacer_factory: Optional[Callable[[int], NdpPullPacer]] = None,
        fault_injector: Optional[FaultInjector] = None,
        **topology_kwargs,
    ) -> "NdpNetwork":
        """Create a topology whose switch ports are NDP queues, plus the network.

        Host NICs are plain FIFO queues (hosts do not trim their own
        packets); every switch output port is an
        :class:`~repro.core.switch.NdpSwitchQueue` configured from *config*.
        ``pacer_factory`` (host id → pacer) lets experiments substitute e.g.
        the :class:`~repro.hosts.processing.JitteredPullPacer` host model.
        """
        config = config if config is not None else NdpConfig()
        queue_rng = random.Random(seed + 7919)

        def ndp_queue_factory(evl: EventList, rate_bps: int, name: str) -> NdpSwitchQueue:
            return NdpSwitchQueue(evl, rate_bps, config=config, rng=queue_rng, name=name)

        def nic_factory(evl: EventList, rate_bps: int, name: str) -> DropTailQueue:
            capacity = max(512, 4 * config.initial_window_packets) * config.mtu_bytes
            return DropTailQueue(evl, rate_bps, capacity, name=name)

        topology = topology_cls(
            eventlist,
            queue_factory=ndp_queue_factory,
            host_nic_factory=nic_factory,
            **topology_kwargs,
        )
        return cls(
            topology,
            config=config,
            seed=seed,
            pacer_factory=pacer_factory,
            fault_injector=fault_injector,
        )

    # --- flows ----------------------------------------------------------------------

    def pacer_for(self, host: int) -> NdpPullPacer:
        """The (single, shared) pull pacer of *host*, created on first use."""
        pacer = self._pacers.get(host)
        if pacer is None:
            if self._pacer_factory is not None:
                pacer = self._pacer_factory(host)
            else:
                pacer = NdpPullPacer(
                    self.eventlist,
                    link_rate_bps=self.topology.link_rate_bps,
                    mtu_bytes=self.config.mtu_bytes,
                    rate_fraction=self.config.pull_rate_fraction,
                    name=f"pull-pacer-host{host}",
                )
            self._pacers[host] = pacer
        return pacer

    def create_flow(
        self,
        src_host: int,
        dst_host: int,
        size_bytes: int,
        start_time_ps: int = 0,
        priority: bool = False,
        record_packet_latencies: bool = False,
        config: Optional[NdpConfig] = None,
        on_complete: Optional[Callable[[NdpSrc], None]] = None,
        start: bool = True,
    ) -> NdpFlow:
        """Create one NDP transfer of *size_bytes* from *src_host* to *dst_host*.

        The sender is scheduled to push its initial window at
        *start_time_ps*; the returned handle exposes both endpoints and their
        flow records.  Pass ``start=False`` to build the endpoints without
        arming the sender — sharded runs replicate every flow's object graph
        in every worker (keeping seeded RNG streams aligned) but only start
        the sources their shard owns.
        """
        flow_config = config if config is not None else self.config
        flow_id = self._next_flow_id
        self._next_flow_id += 1
        forward_paths = self.topology.get_paths(src_host, dst_host)
        reverse_paths = self.topology.get_paths(dst_host, src_host)
        if not forward_paths or not reverse_paths:
            raise RuntimeError(
                f"no surviving path between host {src_host} and host {dst_host}: "
                f"the pair is partitioned by link failures "
                f"({len(self.topology.failed_links())} directed links down)"
            )

        src = NdpSrc(
            eventlist=self.eventlist,
            flow_id=flow_id,
            node_id=src_host,
            dst_node_id=dst_host,
            flow_size_bytes=size_bytes,
            routes=forward_paths,  # fabric-only for now; finalized below
            config=flow_config,
            rng=random.Random(self.rng.randrange(2**62)),
            on_complete=on_complete,
            record_packet_latencies=record_packet_latencies,
            pool=self.pool,
        )
        # With a fault injector installed, deliveries to both endpoints pass
        # through a FaultPoint tap (synchronous for untouched packets, so a
        # rule-free injector changes nothing).
        injector = self.fault_injector
        src_entry: PacketSink = src if injector is None else injector.tap(src, self.eventlist)
        sink = NdpSink(
            eventlist=self.eventlist,
            flow_id=flow_id,
            node_id=dst_host,
            pacer=self.pacer_for(dst_host),
            reverse_routes=[route.extended(src_entry) for route in reverse_paths],
            config=flow_config,
            rng=random.Random(self.rng.randrange(2**62)),
            priority=priority,
            pool=self.pool,
        )
        sink_entry: PacketSink = sink if injector is None else injector.tap(sink, self.eventlist)
        # Forward routes terminate at the sink; they can only be finalized once
        # the sink exists, hence the two-step wiring.
        src.set_destination_routes([route.extended(sink_entry) for route in forward_paths])
        src.connect(sink)
        if start:
            src.start(start_time_ps)
        # flow completion time is measured from when the sender starts pushing
        # (not from the first arrival), so single-packet transfers have a
        # meaningful FCT
        sink.record.start_time_ps = start_time_ps
        flow = NdpFlow(
            flow_id=flow_id,
            src=src,
            sink=sink,
            src_host=src_host,
            dst_host=dst_host,
            src_entry=src_entry,
            sink_entry=sink_entry,
        )
        self.flows.append(flow)
        return flow

    # --- fabric dynamics ---------------------------------------------------------------

    def _on_link_state(self, event) -> None:
        """Refresh every live flow's routes after a fail/recover event.

        Rate and delay changes do not alter the path set — reacting to a
        degraded-but-alive link is the path scoreboard's job (§5, Figure 22)
        — so only events that reroute are handled.  For each incomplete flow
        the surviving fabric paths are re-read from the topology's route
        table and re-terminated at the flow's existing delivery entries; a
        fully partitioned pair keeps its stale routes (there is nothing
        better to install) until a recovery event refreshes it.
        """
        if event.kind not in ("fail", "recover"):
            return
        topology = self.topology
        for flow in self.flows:
            if flow.sink.complete:
                continue
            forward = topology.get_paths(flow.src_host, flow.dst_host)
            reverse = topology.get_paths(flow.dst_host, flow.src_host)
            if not forward or not reverse:
                continue
            flow.src.update_routes(
                [route.extended(flow.sink_entry) for route in forward]
            )
            flow.sink.update_reverse_routes(
                [route.extended(flow.src_entry) for route in reverse]
            )

    # --- reporting --------------------------------------------------------------------

    def records(self) -> List[FlowRecord]:
        """Receiver-side flow records of every flow created so far."""
        return [flow.record for flow in self.flows]

    def completed_flows(self) -> List[NdpFlow]:
        """Flows whose transfers have fully arrived."""
        return [flow for flow in self.flows if flow.complete]
