"""The NDP receiver (per-connection sink).

The receiver is where NDP's intelligence lives: trimmed headers give it a
complete picture of instantaneous demand, and from the second RTT onwards it
controls exactly which sender transmits, and when, by pacing PULL packets
from the host-wide :class:`~repro.core.pull_queue.NdpPullPacer`.

Per arriving packet the sink:

* sends an ACK immediately for a full data packet (so the sender can free
  the buffer and cancel its timer),
* sends a NACK immediately for a trimmed header (so the sender queues the
  packet for retransmission), and
* adds a pull request to the host's shared pull queue, unless it already has
  enough outstanding pulls to cover the data it still needs.

When the transfer completes, any remaining pull requests for this connection
are purged so no useless PULLs are sent.

Liveness: PULLs themselves travel through the fabric's header queues and can
be lost (dropped from an overflowing header queue).  If the *final* PULLs of
a transfer are lost, the sender — whose per-packet RTOs were cancelled by the
NACKs — would wait forever.  Each sink therefore keeps a *pull-retry
watchdog*: a shadow :class:`~repro.sim.eventlist.Timer` that fires when the
transfer has been idle for ``pull_rto_ps`` with packets still missing and no
pull requests queued at the pacer, and re-emits PULLs for the outstanding
packets (up to ``max_pull_retries`` consecutive rounds without progress).
Shadow timers never perturb the event order of a healthy run (see
:mod:`repro.sim.eventlist`).
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Sequence, Set

from repro.core.config import NdpConfig
from repro.core.packets import NdpAck, NdpDataPacket, NdpNack, NdpPull
from repro.core.path_manager import PathManager
from repro.core.pull_queue import NdpPullPacer
from repro.sim.eventlist import EventList, Timer
from repro.sim.logger import FlowRecord
from repro.sim.network import NetworkEndpoint
from repro.sim.packet import Packet, PacketPriority, Route
from repro.sim.pool import PacketPool

_HIGH = PacketPriority.HIGH


class NdpSink(NetworkEndpoint):
    """Receiving endpoint of one NDP connection."""

    __slots__ = (
        "flow_id",
        "config",
        "pacer",
        "priority",
        "on_complete",
        "rng",
        "reverse_paths",
        "record",
        "src_node_id",
        "_received",
        "_expected_packets",
        "_pull_counter",
        "_saw_last",
        "_highest_seqno_seen",
        "_retry_timer",
        "_retries",
        "_activity_ps",
        "acks_sent",
        "nacks_sent",
        "pulls_emitted",
        "pool",
        "_ack_free",
        "_nack_free",
        "_pull_free",
    )

    def __init__(
        self,
        eventlist: EventList,
        flow_id: int,
        node_id: int,
        pacer: NdpPullPacer,
        reverse_routes: Sequence[Route],
        config: Optional[NdpConfig] = None,
        rng: Optional[random.Random] = None,
        priority: bool = False,
        on_complete: Optional[Callable[["NdpSink"], None]] = None,
        name: Optional[str] = None,
        pool: Optional[PacketPool] = None,
    ) -> None:
        super().__init__(eventlist, node_id, name or f"ndp-sink-{flow_id}")
        self.flow_id = flow_id
        self.config = config if config is not None else NdpConfig()
        self.pacer = pacer
        self.priority = priority
        self.on_complete = on_complete
        self.rng = rng if rng is not None else random.Random(flow_id)
        self.reverse_paths = PathManager(reverse_routes, rng=self.rng, penalize=False)
        self.record = FlowRecord(flow_id=flow_id, src=-1, dst=node_id, flow_size_bytes=0)
        self.src_node_id = -1
        self._received: Set[int] = set()
        self._expected_packets: Optional[int] = None
        self._pull_counter = 0
        self._saw_last = False
        self._highest_seqno_seen = -1
        self._retry_timer: Optional[Timer] = None
        self._retries = 0
        self._activity_ps = -1
        self.acks_sent = 0
        self.nacks_sent = 0
        self.pulls_emitted = 0
        # slot pool for outgoing control packets (shared network-wide when
        # the harness provides one): the free lists are hoisted so each
        # emission is a pop + field writes on the fast path
        self.pool = pool if pool is not None else PacketPool()
        self._ack_free = self.pool.free_list(NdpAck)
        self._nack_free = self.pool.free_list(NdpNack)
        self._pull_free = self.pool.free_list(NdpPull)
        self.pacer.register(self)

    # --- wiring -----------------------------------------------------------------

    def expect(self, src_node_id: int, flow_size_bytes: int, total_packets: int) -> None:
        """Tell the sink how large the incoming transfer will be.

        In a real deployment this is carried by the SYN-flagged first-RTT
        packets; in the simulator the connection helper calls it when wiring
        a sender to its sink.
        """
        self.src_node_id = src_node_id
        self.record.src = src_node_id
        self.record.flow_size_bytes = flow_size_bytes
        self._expected_packets = total_packets

    def set_priority(self, priority: bool) -> None:
        """Mark (or unmark) this connection as high priority at the pull queue."""
        self.priority = priority

    def update_reverse_routes(self, routes: Sequence[Route]) -> None:
        """Adopt new reverse (ACK/NACK/PULL) routes after a link-state change."""
        self.reverse_paths.update_routes(routes)

    # --- protocol state ------------------------------------------------------------

    @property
    def complete(self) -> bool:
        """True once every data packet of the transfer has been received."""
        if self._expected_packets is not None:
            return len(self._received) >= self._expected_packets
        return self._saw_last and len(self._received) == self._highest_seqno_seen + 1

    def packets_received(self) -> int:
        """Number of distinct data packets received in full."""
        return len(self._received)

    def remaining_packets(self) -> Optional[int]:
        """Packets still missing, or ``None`` if the total is not yet known."""
        if self._expected_packets is None:
            if not self._saw_last:
                return None
            return self._highest_seqno_seen + 1 - len(self._received)
        return self._expected_packets - len(self._received)

    # --- packet handling -------------------------------------------------------------

    def receive_packet(self, packet: Packet) -> None:
        if not isinstance(packet, NdpDataPacket):
            raise TypeError(f"NdpSink received unexpected packet type {type(packet)!r}")
        record = self.record
        if self._activity_ps < 0:
            # First arrival: arm the pull-retry watchdog for the rest of the
            # transfer.  Not at connect time — a flow scheduled to start
            # later must not be pulled into transmitting early.  A shadow
            # timer, so arming (and cancelling at completion) cannot perturb
            # the event order of a run in which it never fires.
            if self.config.max_pull_retries > 0 and self._retry_timer is None:
                timer = self._retry_timer = Timer(
                    self.eventlist, self._pull_retry_due, shadow=True
                )
                timer.schedule_at(self.eventlist._now + self.config.pull_rto_ps)
        self._activity_ps = self.eventlist._now
        if record.start_time_ps is None:
            record.start_time_ps = self.eventlist._now
        if packet.syn and self.src_node_id < 0:
            # Zero-RTT connection establishment: whichever first-RTT packet
            # arrives first creates the connection state.
            self.src_node_id = packet.src
            record.src = packet.src
        seqno = packet.seqno
        if seqno > self._highest_seqno_seen:
            self._highest_seqno_seen = seqno
        if packet.last:
            self._saw_last = True
        if packet.is_header_only:
            self._handle_header(packet)
        else:
            self._handle_data(packet)
        # the sink consumes every data packet (and trimmed header) delivered
        # to it; the handlers above never retain a reference
        pool = packet._pool
        if pool is not None:
            pool.release(packet)

    def _handle_data(self, packet: NdpDataPacket) -> None:
        self.record.packets_delivered += 1
        seqno = packet.seqno
        if seqno not in self._received:
            self._received.add(seqno)
            self.record.bytes_delivered += packet.payload_bytes
        # slot-pool allocation: one ACK per arriving data packet.  Every
        # protocol-visible field is written (a revived facade carries its
        # previous life's values); route/hop/send_time are stamped by
        # _send_control immediately below.
        pool = self.pool
        free = self._ack_free
        if free:
            ack = free.pop()
            ack._gen = pool.generation[ack._handle]
            pool.live_cls[ack._handle] = NdpAck
            pool.reused += 1
        else:
            ack = NdpAck.__new__(NdpAck)
            pool.adopt(ack)
        header_bytes = self.config.header_bytes
        ack.flow_id = self.flow_id
        ack.src = self.node_id
        ack.dst = packet.src
        ack.size = header_bytes
        ack.original_size = header_bytes
        ack.seqno = seqno
        ack.priority = _HIGH
        ack.is_header_only = False
        ack.bounced = False
        ack.ecn_capable = False
        ack.ecn_ce = False
        ack.data_path_id = packet.path_id
        self._send_control(ack)
        self.acks_sent += 1
        # inlined completeness / pull-gate checks (once per data arrival):
        # semantics match the `complete` property and the pacer pull gate
        # (ask for a pull only while outstanding pulls < packets still needed)
        expected = self._expected_packets
        received = len(self._received)
        if expected is not None:
            remaining = expected - received
            if remaining <= 0:
                self._finish()
                return
        else:
            if self._saw_last and received == self._highest_seqno_seen + 1:
                self._finish()
                return
            remaining = (
                self._highest_seqno_seen + 1 - received if self._saw_last else None
            )
        if remaining is not None and self.pacer._pending.get(self.flow_id, 0) >= remaining:
            return
        self.pacer.request_pull(self)

    def _handle_header(self, packet: NdpDataPacket) -> None:
        self.record.headers_received += 1
        # slot-pool allocation: one NACK per trimmed header (see _handle_data)
        pool = self.pool
        free = self._nack_free
        if free:
            nack = free.pop()
            nack._gen = pool.generation[nack._handle]
            pool.live_cls[nack._handle] = NdpNack
            pool.reused += 1
        else:
            nack = NdpNack.__new__(NdpNack)
            pool.adopt(nack)
        header_bytes = self.config.header_bytes
        nack.flow_id = self.flow_id
        nack.src = self.node_id
        nack.dst = packet.src
        nack.size = header_bytes
        nack.original_size = header_bytes
        nack.seqno = packet.seqno
        nack.priority = _HIGH
        nack.is_header_only = False
        nack.bounced = False
        nack.ecn_capable = False
        nack.ecn_ce = False
        nack.data_path_id = packet.path_id
        self._send_control(nack)
        self.nacks_sent += 1
        # inlined completeness / pull-gate (matches _handle_data above)
        expected = self._expected_packets
        received = len(self._received)
        if expected is not None:
            remaining = expected - received
            if remaining <= 0:
                return
        else:
            if self._saw_last and received == self._highest_seqno_seen + 1:
                return
            remaining = (
                self._highest_seqno_seen + 1 - received if self._saw_last else None
            )
        if remaining is not None and self.pacer._pending.get(self.flow_id, 0) >= remaining:
            return
        self.pacer.request_pull(self)

    # --- pulls -----------------------------------------------------------------------

    def emit_pull(self) -> None:
        """Called by the pacer when it is this connection's turn to pull."""
        # inlined `complete` property (once per emitted PULL)
        expected = self._expected_packets
        if expected is not None:
            if len(self._received) >= expected:
                return
        elif self._saw_last and len(self._received) == self._highest_seqno_seen + 1:
            return
        self._pull_counter += 1
        self.pulls_emitted += 1
        # slot-pool allocation: one PULL per pacer grant (see _handle_data)
        pool = self.pool
        free = self._pull_free
        if free:
            pull = free.pop()
            pull._gen = pool.generation[pull._handle]
            pool.live_cls[pull._handle] = NdpPull
            pool.reused += 1
        else:
            pull = NdpPull.__new__(NdpPull)
            pool.adopt(pull)
        header_bytes = self.config.header_bytes
        counter = self._pull_counter
        pull.flow_id = self.flow_id
        pull.src = self.node_id
        pull.dst = self.src_node_id
        pull.size = header_bytes
        pull.original_size = header_bytes
        pull.seqno = counter
        pull.priority = _HIGH
        pull.is_header_only = False
        pull.bounced = False
        pull.ecn_capable = False
        pull.ecn_ce = False
        pull.data_path_id = 0
        pull.pull_counter = counter
        self._send_control(pull)

    # --- liveness ----------------------------------------------------------------------

    def _pull_retry_due(self) -> None:
        """Pull-retry watchdog: re-emit PULLs when the transfer stalls.

        A transfer counts as *stalled* when nothing has arrived for a full
        stall horizon (``pull_rto_ps`` plus the pacer's current backlog
        drain time) and no pull requests for this connection are queued at
        the pacer; anything else just pushes the deadline out.  Each stalled
        round tops the pull queue back up to the number of missing packets
        (capped at the initial window) so the sender's pull clock restarts;
        after ``max_pull_retries`` consecutive rounds without progress the
        watchdog gives up (the sender keepalive remains as the last resort).
        """
        timer = self._retry_timer
        if timer is None or self.complete:
            return
        config = self.config
        now = self.eventlist._now
        pacer = self.pacer
        pending = pacer._pending.get(self.flow_id, 0)
        # A busy receiver serves hundreds of connections round-robin, so the
        # legitimate gap between two arrivals of one flow is the pacer's
        # whole backlog drain time — the stall horizon must stretch with it
        # or the watchdog would re-pull flows that are merely waiting their
        # turn.  The receiver owns the pacer, so the horizon is exact.
        horizon_ps = config.pull_rto_ps + pacer._total_pending * pacer.pull_interval_ps
        idle_ps = now - self._activity_ps if self._activity_ps >= 0 else horizon_ps
        if pending > 0 or idle_ps < horizon_ps:
            # The pull clock is alive (queued requests or a recent-enough
            # arrival): not a stall, just move the deadline out.  Only an
            # actual arrival resets the give-up counter — our own queued
            # retries waiting out a pacer backlog are not progress, and
            # must not let the watchdog exceed its max_pull_retries bound.
            if idle_ps < horizon_ps:
                self._retries = 0
            when = self._activity_ps + horizon_ps
            if when <= now:
                when = now + config.pull_rto_ps
            timer.schedule_at(when)
            return
        if self._retries >= config.max_pull_retries:
            return  # give up; deliberately leave the watchdog disarmed
        self._retries += 1
        self.record.pull_retries += 1
        remaining = self.remaining_packets()
        need = remaining if remaining is not None and remaining > 0 else 1
        if need > config.initial_window_packets:
            need = config.initial_window_packets
        for _ in range(need):
            self.pacer.request_pull(self)
        timer.schedule_at(now + config.pull_rto_ps)

    # --- helpers -----------------------------------------------------------------------

    def _send_control(self, packet: Packet) -> None:
        route = self.reverse_paths.next_route()
        # inlined NetworkEndpoint.inject (one call per ACK/NACK/PULL)
        packet.route = route
        packet.path_id = route.path_id
        packet.hop = 1
        packet.send_time = self.eventlist._now
        route.elements[0].receive_packet(packet)

    def _finish(self) -> None:
        if self.record.finish_time_ps is None:
            self.record.finish_time_ps = self.now()
            self.pacer.purge(self.flow_id)
            if self._retry_timer is not None:
                self._retry_timer.cancel()
            if self.on_complete is not None:
                self.on_complete(self)
