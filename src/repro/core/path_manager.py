"""Sender-side multipath management (§3.1.1 and §3.2.3 of the paper).

Each NDP sender knows every path to its destination.  It walks a random
permutation of the path list, sending one packet per path, then re-permutes.
This spreads load more evenly than per-packet random ECMP (the paper measures
roughly a 10% capacity gain with 8-packet buffers) while avoiding
synchronization between senders.

The :class:`PathManager` also keeps the *path scoreboard*: per-path counts of
ACKs, NACKs and losses.  When a path's NACK fraction or loss count is an
outlier — a failed or downgraded link — it is temporarily excluded from the
permutation, which is what keeps NDP's throughput high in the Figure 22
asymmetry experiment.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.sim.packet import Route


@dataclass(slots=True)
class PathScore:
    """ACK/NACK/loss counters for one path."""

    acks: int = 0
    nacks: int = 0
    losses: int = 0

    @property
    def samples(self) -> int:
        """Total feedback observations on this path."""
        return self.acks + self.nacks

    @property
    def nack_fraction(self) -> float:
        """Fraction of feedback that was negative (0 when unsampled)."""
        if self.samples == 0:
            return 0.0
        return self.nacks / self.samples


class PathManager:
    """Chooses the path for each outgoing packet.

    Parameters
    ----------
    routes:
        The forward routes available to the destination, one per path.
    rng:
        Source of randomness for permutations (seeded by the experiment for
        reproducibility).
    penalize:
        Enable outlier exclusion (the paper's path-penalty mechanism).  With
        a single path the scoreboard is kept but never excludes anything.
    min_samples:
        Minimum feedback observations on a path before it can be judged.
    nack_ratio:
        A path is excluded while its NACK fraction exceeds ``nack_ratio``
        times the mean NACK fraction of all paths (and is non-trivial).
    mode:
        ``"permutation"`` (the paper's sender-driven scheme: walk a random
        permutation, one packet per path, re-permute when exhausted) or
        ``"random"`` (per-packet random choice, modelling switch-driven
        per-packet ECMP — the ablation of §3.1.1).
    """

    def __init__(
        self,
        routes: Sequence[Route],
        rng: Optional[random.Random] = None,
        penalize: bool = True,
        min_samples: int = 16,
        nack_ratio: float = 2.0,
        mode: str = "permutation",
    ) -> None:
        if not routes:
            raise ValueError("a PathManager needs at least one route")
        if mode not in ("permutation", "random"):
            raise ValueError(f"unknown path selection mode {mode!r}")
        self.routes: List[Route] = list(routes)
        self.rng = rng if rng is not None else random.Random(0)
        self.mode = mode
        self._random_mode = mode == "random"
        self.penalize = penalize
        self.min_samples = min_samples
        self.nack_ratio = nack_ratio
        self.scores: Dict[int, PathScore] = {
            route.path_id: PathScore() for route in self.routes
        }
        self._by_path_id: Dict[int, Route] = {r.path_id: r for r in self.routes}
        self._permutation: List[Route] = []
        self._position = 0
        self.permutations_generated = 0
        self.currently_excluded: List[int] = []

    def set_routes(self, routes: Sequence[Route]) -> None:
        """Replace the route set (keeps any existing per-path scores).

        Used when routes must be finalized after construction, e.g. once the
        destination endpoint exists and can be appended to each fabric path.
        """
        self.update_routes(routes)

    def update_routes(self, routes: Sequence[Route]) -> None:
        """Adopt a new route set after a link-state change (paper §5 behaviour).

        The scoreboard is preserved: scores of path ids absent from the new
        set are *retained*, so a path pruned by a link failure returns with
        its ACK/NACK/loss history when the link recovers — and path ids are
        stable across pruning (the route table guarantees it), so feedback
        for in-flight packets on a just-pruned path still lands on the right
        counter.  The current permutation walk restarts over the new set;
        outlier exclusion is re-evaluated on the next selection.
        """
        if not routes:
            raise ValueError("a PathManager needs at least one route")
        self.routes = list(routes)
        for route in self.routes:
            self.scores.setdefault(route.path_id, PathScore())
        self._by_path_id = {route.path_id: route for route in self.routes}
        self._permutation = []
        self._position = 0

    # --- path selection -------------------------------------------------------

    def next_route(self) -> Route:
        """Return the route to use for the next packet."""
        if self._random_mode:
            return self.rng.choice(self._usable_routes())
        position = self._position
        if position >= len(self._permutation):
            self._generate_permutation()
            position = 0
        route = self._permutation[position]
        self._position = position + 1
        return route

    def route_for_path(self, path_id: int) -> Route:
        """Look up the route with a given path identifier."""
        return self._by_path_id[path_id]

    def alternative_route(self, avoid_path_id: int) -> Route:
        """A route on a different path than *avoid_path_id* when one exists.

        Used for retransmissions: NDP always resends a lost packet on a
        different path.
        """
        candidates = [r for r in self.routes if r.path_id != avoid_path_id]
        if not candidates:
            return self._by_path_id[avoid_path_id]
        return self.rng.choice(candidates)

    def path_count(self) -> int:
        """Total number of paths (before exclusion)."""
        return len(self.routes)

    def _generate_permutation(self) -> None:
        usable = self._usable_routes()
        permutation = list(usable)
        self.rng.shuffle(permutation)
        self._permutation = permutation
        self._position = 0
        self.permutations_generated += 1

    def _usable_routes(self) -> List[Route]:
        if not self.penalize or len(self.routes) == 1:
            self.currently_excluded = []
            return self.routes
        excluded = set(self._outlier_paths())
        self.currently_excluded = sorted(excluded)
        usable = [r for r in self.routes if r.path_id not in excluded]
        # Never exclude everything: fall back to the full set if the
        # scoreboard would leave no usable path.
        return usable if usable else self.routes

    def _outlier_paths(self) -> List[int]:
        # Judge only the *current* routes: scores of paths pruned by a link
        # failure are retained for their eventual recovery, but letting a
        # dead path's stale loss count fill the exclusion budget (and skew
        # the means) would disable the penalty for the survivors.
        current = {route.path_id: self.scores[route.path_id] for route in self.routes}
        sampled = [s for s in current.values() if s.samples >= self.min_samples]
        if len(sampled) < 2:
            return []
        mean_nack = sum(s.nack_fraction for s in sampled) / len(sampled)
        mean_loss = sum(s.losses for s in sampled) / len(sampled)
        outliers = []
        for path_id, score in current.items():
            if score.samples < self.min_samples:
                continue
            bad_nacks = (
                score.nack_fraction > 0.05
                and score.nack_fraction > self.nack_ratio * max(mean_nack, 1e-9)
            )
            bad_losses = score.losses > 2 and score.losses > self.nack_ratio * max(
                mean_loss, 1e-9
            )
            if bad_nacks or bad_losses:
                outliers.append(path_id)
        # Keep at least half of the paths in play.
        max_excluded = max(0, len(self.routes) // 2)
        return outliers[:max_excluded]

    # --- scoreboard -----------------------------------------------------------

    def record_ack(self, path_id: int) -> None:
        """Record positive feedback for *path_id*."""
        score = self.scores.get(path_id)
        if score is not None:
            score.acks += 1

    def record_nack(self, path_id: int) -> None:
        """Record a trimmed packet (negative feedback) for *path_id*."""
        score = self.scores.get(path_id)
        if score is not None:
            score.nacks += 1

    def record_loss(self, path_id: int) -> None:
        """Record a true loss (RTO expiry / bounced header) on *path_id*."""
        score = self.scores.get(path_id)
        if score is not None:
            score.losses += 1

    def nack_fraction(self, path_id: int) -> float:
        """Convenience accessor used by tests and diagnostics."""
        return self.scores[path_id].nack_fraction
