"""The NDP switch service model (§3.1 of the paper).

Each NDP output port keeps two queues:

* a **low-priority data queue**, only eight MTU-sized packets deep, and
* a **high-priority header queue** holding trimmed headers, ACKs, NACKs and
  PULLs.

When a data packet arrives and the data queue is full, the switch *trims* a
packet — with probability 0.5 the arriving packet, otherwise the packet at
the tail of the data queue (breaking up phase effects) — and enqueues the
64-byte header in the header queue.  The two queues are served with a 10:1
weighted round-robin (headers : data packets) so that feedback is early
without starving data, which is what prevents the CP-style congestion
collapse of Figure 2.  If the header queue itself overflows, the header is
*returned to sender* rather than dropped (§3.2.4), making the fabric
effectively lossless for metadata.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, Optional

from bisect import insort as _insort
from heapq import heappush as _heappush

from repro.core.config import NdpConfig
from repro.core.packets import NdpDataPacket
from repro.sim.eventlist import _WHEEL_MASK, _WHEEL_SHIFT, _WHEEL_SLOTS, EventList
from repro.sim.packet import Packet, PacketPriority
from repro.sim.pipe import Pipe
from repro.sim.queues import _BITS_PS, BaseQueue

#: hoisted enum member: attribute + enum lookups are measurable per packet
_HIGH = PacketPriority.HIGH


class NdpSwitchQueue(BaseQueue):
    """An NDP output port: trimming, dual priority queues, WRR, RTS.

    Parameters
    ----------
    eventlist:
        The simulation event list.
    service_rate_bps:
        Line rate of the port.
    config:
        The :class:`~repro.core.config.NdpConfig` providing queue sizes, the
        WRR ratio, the trim-choice probability and whether return-to-sender
        is enabled.
    rng:
        Randomness source for the 50% trim choice.
    bounce_delay_ps:
        Modelled latency for a returned-to-sender header to travel back to
        the source.  The real switch swaps the L3 addresses and the header is
        routed back through the fabric; since the reverse hop-by-hop route
        from an interior switch is topology specific, the simulator delivers
        the bounced header directly to the source endpoint after this delay
        (defaulting to a one-way fabric delay).  DESIGN.md documents the
        substitution.
    """

    __slots__ = (
        "config",
        "rng",
        "bounce_delay_ps",
        "_data_queue",
        "_header_queue",
        "_data_bytes",
        "_header_bytes",
        "_headers_since_data",
        "trimmed_arriving",
        "trimmed_from_tail",
        "headers_bounced",
        "control_dropped",
        "_data_cap_packets",
        "_header_cap_bytes",
        "_wrr_ratio",
        "_trim_arriving_p",
        "_trim_header_bytes",
    )

    def __init__(
        self,
        eventlist: EventList,
        service_rate_bps: int,
        config: Optional[NdpConfig] = None,
        rng: Optional[random.Random] = None,
        name: str = "ndp-queue",
        bounce_delay_ps: Optional[int] = None,
    ) -> None:
        self.config = config if config is not None else NdpConfig()
        capacity_bytes = self.config.data_queue_bytes + self.config.header_queue_bytes
        super().__init__(eventlist, service_rate_bps, capacity_bytes, name)
        self.rng = rng if rng is not None else random.Random(0)
        self.bounce_delay_ps = (
            bounce_delay_ps if bounce_delay_ps is not None else _default_bounce_delay()
        )
        self._data_queue: Deque[Packet] = deque()
        self._header_queue: Deque[Packet] = deque()
        self._data_bytes = 0
        self._header_bytes = 0
        self._headers_since_data = 0
        # hot-path copies of the config knobs (attribute-chain lookups on the
        # dataclass are measurable at one admission + one selection per packet)
        self._data_cap_packets = self.config.data_queue_packets
        self._header_cap_bytes = self.config.header_queue_bytes
        self._wrr_ratio = self.config.wrr_headers_per_data
        self._trim_arriving_p = self.config.trim_arriving_probability
        self._trim_header_bytes = self.config.header_bytes
        # detailed counters beyond the generic QueueStats
        self.trimmed_arriving = 0
        self.trimmed_from_tail = 0
        self.headers_bounced = 0
        self.control_dropped = 0

    # --- introspection --------------------------------------------------------

    def data_queue_depth(self) -> int:
        """Number of full data packets queued."""
        return len(self._data_queue)

    def header_queue_depth(self) -> int:
        """Number of headers / control packets queued."""
        return len(self._header_queue)

    def __len__(self) -> int:
        in_service = 1 if self._in_service is not None else 0
        return len(self._data_queue) + len(self._header_queue) + in_service

    def backlog_bytes(self) -> int:
        backlog = self._data_bytes + self._header_bytes
        if self._in_service is not None:
            backlog += self._in_service.size
        return backlog

    # --- admission ------------------------------------------------------------

    def receive_packet(self, packet: Packet) -> None:
        # The two admission fast paths (queue not full) are inlined here:
        # admission runs once per packet per hop and the congested ports of
        # an incast spend most of their arrivals on exactly these branches.
        size = packet.size
        if packet.priority is _HIGH or packet.is_header_only:
            header_bytes = self._header_bytes + size
            if header_bytes <= self._header_cap_bytes:
                stats = self.stats
                stats.packets_enqueued += 1
                if (
                    not self._busy
                    and not self._header_queue
                    and not self._data_queue
                    and not self._paused
                ):
                    # idle port: serve directly, skipping the queue round-trip
                    # (bookkeeping mirrors _record_enqueue + _select_next)
                    queue_bytes = self._data_bytes + header_bytes
                    if queue_bytes > stats.max_queue_bytes:
                        stats.max_queue_bytes = queue_bytes
                    self._headers_since_data += 1
                    self._start_service(packet)
                    return
                self._header_queue.append(packet)
                self._header_bytes = header_bytes
                queue_bytes = self.queue_bytes = self._data_bytes + header_bytes
                if queue_bytes > stats.max_queue_bytes:
                    stats.max_queue_bytes = queue_bytes
                if not self._busy and not self._paused:
                    self._maybe_start_service()
            else:
                self._admit_header(packet)
        elif len(self._data_queue) < self._data_cap_packets:
            stats = self.stats
            stats.packets_enqueued += 1
            if (
                not self._busy
                and not self._header_queue
                and not self._data_queue
                and not self._paused
            ):
                queue_bytes = self._data_bytes + self._header_bytes + size
                if queue_bytes > stats.max_queue_bytes:
                    stats.max_queue_bytes = queue_bytes
                self._headers_since_data = 0
                self._start_service(packet)
                return
            self._data_queue.append(packet)
            data_bytes = self._data_bytes = self._data_bytes + size
            queue_bytes = self.queue_bytes = data_bytes + self._header_bytes
            if queue_bytes > stats.max_queue_bytes:
                stats.max_queue_bytes = queue_bytes
            if not self._busy and not self._paused:
                self._maybe_start_service()
        else:
            self._admit_data(packet)

    def _admit_data(self, packet: Packet) -> None:
        if len(self._data_queue) < self._data_cap_packets:
            self._data_queue.append(packet)
            self._data_bytes += packet.size
            self._record_enqueue(packet)
            self._maybe_start_service()
            return
        # Data queue full: trim either the arriving packet or the tail packet.
        if self.rng.random() < self._trim_arriving_p:
            victim = packet
            self.trimmed_arriving += 1
        else:
            victim = self._data_queue.pop()
            self._data_bytes -= victim.size
            self._data_queue.append(packet)
            self._data_bytes += packet.size
            self._record_enqueue(packet)
            self.trimmed_from_tail += 1
        # inlined Packet.trim (once per trimmed packet)
        if not victim.is_header_only:
            victim.original_size = victim.size
        victim.size = self._trim_header_bytes
        victim.is_header_only = True
        victim.priority = _HIGH
        self.stats.packets_trimmed += 1
        self._admit_header(victim)
        self._maybe_start_service()

    def _admit_header(self, packet: Packet) -> None:
        if self._header_bytes + packet.size <= self._header_cap_bytes:
            self._header_queue.append(packet)
            self._header_bytes += packet.size
            self._record_enqueue(packet)
            self._maybe_start_service()
            return
        # Header queue overflow: bounce trimmed data headers back to their
        # sender (if enabled); control packets are dropped and recovered by
        # the sender's RTO.
        if (
            self.config.return_to_sender
            and isinstance(packet, NdpDataPacket)
            and packet.src_endpoint is not None
        ):
            packet.bounced = True
            self.headers_bounced += 1
            self.stats.packets_bounced += 1
            # the endpoint owns the delivery mechanics: an in-process NdpSrc
            # schedules a raw entry on its own event list, while a sharded
            # run substitutes a proxy that marshals the bounce back to the
            # origin shard (see repro.harness.shard)
            packet.src_endpoint.bounce(packet, self.bounce_delay_ps)
            return
        if packet.is_control():
            self.control_dropped += 1
        self.stats.record_drop(packet.size)
        packet.release()  # slot pool: a dropped packet dies here

    def _purge_backlog(self) -> None:
        # link-down (BaseQueue.sever): both priority queues are lost
        stats = self.stats
        while self._data_queue:
            packet = self._data_queue.popleft()
            stats.record_drop(packet.size)
            packet.release()  # slot pool: dies with the link
        while self._header_queue:
            packet = self._header_queue.popleft()
            stats.record_drop(packet.size)
            packet.release()  # slot pool: dies with the link
        self._data_bytes = 0
        self._header_bytes = 0
        self.queue_bytes = 0

    def _record_enqueue(self, packet: Packet) -> None:
        stats = self.stats
        stats.packets_enqueued += 1
        queue_bytes = self.queue_bytes = self._data_bytes + self._header_bytes
        if queue_bytes > stats.max_queue_bytes:
            stats.max_queue_bytes = queue_bytes

    # --- scheduling -----------------------------------------------------------

    def _select_next(self) -> Optional[Packet]:
        header_queue = self._header_queue
        data_queue = self._data_queue
        if header_queue and (
            not data_queue or self._headers_since_data < self._wrr_ratio
        ):
            packet = header_queue.popleft()
            self._header_bytes -= packet.size
            self._headers_since_data += 1
        elif data_queue:
            packet = data_queue.popleft()
            self._data_bytes -= packet.size
            self._headers_since_data = 0
        else:
            return None
        self.queue_bytes = self._data_bytes + self._header_bytes
        return packet

    def _maybe_start_service(self) -> None:
        # WRR selection inlined ahead of the shared starter: this runs once
        # per serialized packet on every switch port (semantics identical to
        # BaseQueue._maybe_start_service with _select_next above)
        if self._busy or self._paused:
            return
        header_queue = self._header_queue
        data_queue = self._data_queue
        if header_queue and (
            not data_queue or self._headers_since_data < self._wrr_ratio
        ):
            packet = header_queue.popleft()
            self._header_bytes -= packet.size
            self._headers_since_data += 1
        elif data_queue:
            packet = data_queue.popleft()
            self._data_bytes -= packet.size
            self._headers_since_data = 0
        else:
            return
        self.queue_bytes = self._data_bytes + self._header_bytes
        # body of BaseQueue._start_service, duplicated to save a call frame
        self._busy = True
        self._in_service = packet
        size = packet.size
        try:
            delay = self._ser_cache[size]
        except KeyError:
            delay = self._ser_cache[size] = (
                size * _BITS_PS + self._rate_half
            ) // self.service_rate_bps
        if self.serialization_jitter_ps:
            delay += self._jitter_rng.randint(0, self.serialization_jitter_ps)
        eventlist = self.eventlist
        when = eventlist._now + delay
        seq = eventlist._sequence = eventlist._sequence + 1
        pool = eventlist._entry_pool
        if pool:
            entry = pool.pop()
            entry[0] = when
            entry[1] = seq
            entry[2] = None
            entry[3] = 0
            entry[4] = self._complete_cb
            entry[5] = None
        else:
            eventlist.entry_allocs += 1
            entry = [when, seq, None, 0, self._complete_cb, None]
        delta = (when >> _WHEEL_SHIFT) - eventlist._cursor
        if delta <= 0:
            _insort(eventlist._cur_spill, entry)
            eventlist._wheel_count += 1
        elif delta < _WHEEL_SLOTS:
            eventlist._wheel[(when >> _WHEEL_SHIFT) & _WHEEL_MASK].append(entry)
            eventlist._wheel_count += 1
        else:
            _heappush(eventlist._far, entry)

    def _complete_service(self) -> None:
        # Specialized copy of BaseQueue._complete_service with the WRR
        # selection and service start fused into the drain loop — the
        # congested port of an incast lives in this method, so every saved
        # call frame counts.  Keep semantics in sync with the base
        # implementation, including the fast-forward guard (a batched
        # completion may only run inline when it strictly precedes every
        # other pending event).
        eventlist = self.eventlist
        while True:
            packet = self._in_service
            self._in_service = None
            self._busy = False
            if packet is not None:
                stats = self.stats
                size = packet.size
                stats.packets_forwarded += 1
                stats.bytes_forwarded += size
                if not packet.is_header_only:
                    stats.data_bytes_forwarded += size
                if self._has_departed_hook:
                    self._packet_departed(packet)
                hop = packet.hop
                elements = packet.route.elements
                nxt = elements[hop]
                if type(nxt) is Pipe:
                    nxt.packets_carried += 1
                    nxt.bytes_carried += size
                    packet.hop = hop + 2
                    when = eventlist._now + nxt.delay_ps
                    seq = eventlist._sequence = eventlist._sequence + 1
                    pool = eventlist._entry_pool
                    if pool:
                        entry = pool.pop()
                        entry[0] = when
                        entry[1] = seq
                        entry[2] = None
                        entry[3] = 1
                        entry[4] = elements[hop + 1].receive_packet
                        entry[5] = packet
                    else:
                        eventlist.entry_allocs += 1
                        entry = [when, seq, None, 1,
                                 elements[hop + 1].receive_packet, packet]
                    delta = (when >> _WHEEL_SHIFT) - eventlist._cursor
                    if delta <= 0:
                        _insort(eventlist._cur_spill, entry)
                        eventlist._wheel_count += 1
                    elif delta < _WHEEL_SLOTS:
                        eventlist._wheel[(when >> _WHEEL_SHIFT) & _WHEEL_MASK].append(entry)
                        eventlist._wheel_count += 1
                    else:
                        _heappush(eventlist._far, entry)
                else:
                    packet.hop = hop + 1
                    nxt.receive_packet(packet)
            # fused _maybe_start_service (forwarding above can re-enter, so
            # the busy re-check is required)
            if self._busy or self._paused:
                return
            header_queue = self._header_queue
            data_queue = self._data_queue
            if header_queue and (
                not data_queue or self._headers_since_data < self._wrr_ratio
            ):
                packet = header_queue.popleft()
                self._header_bytes -= packet.size
                self._headers_since_data += 1
            elif data_queue:
                packet = data_queue.popleft()
                self._data_bytes -= packet.size
                self._headers_since_data = 0
            else:
                return
            self.queue_bytes = self._data_bytes + self._header_bytes
            self._busy = True
            self._in_service = packet
            size = packet.size
            try:
                delay = self._ser_cache[size]
            except KeyError:
                delay = self._ser_cache[size] = (
                    size * _BITS_PS + self._rate_half
                ) // self.service_rate_bps
            if self.serialization_jitter_ps:
                delay += self._jitter_rng.randint(0, self.serialization_jitter_ps)
            when = eventlist._now + delay
            if when < eventlist._ff_bound:
                cur = eventlist._cur
                pos = eventlist._cur_pos
                if pos >= len(cur) or cur[pos][0] > when:
                    spill = eventlist._cur_spill
                    spos = eventlist._spill_pos
                    if spos >= len(spill) or spill[spos][0] > when:
                        eventlist._now = when
                        eventlist.events_executed += 1
                        continue
            seq = eventlist._sequence = eventlist._sequence + 1
            pool = eventlist._entry_pool
            if pool:
                entry = pool.pop()
                entry[0] = when
                entry[1] = seq
                entry[2] = None
                entry[3] = 0
                entry[4] = self._complete_cb
                entry[5] = None
            else:
                eventlist.entry_allocs += 1
                entry = [when, seq, None, 0, self._complete_cb, None]
            delta = (when >> _WHEEL_SHIFT) - eventlist._cursor
            if delta <= 0:
                _insort(eventlist._cur_spill, entry)
                eventlist._wheel_count += 1
            elif delta < _WHEEL_SLOTS:
                eventlist._wheel[(when >> _WHEEL_SHIFT) & _WHEEL_MASK].append(entry)
                eventlist._wheel_count += 1
            else:
                _heappush(eventlist._far, entry)
            return


class CpSwitchQueue(BaseQueue):
    """A Cut Payload (CP) switch queue, the baseline NDP improves on.

    CP trims packets exactly like NDP but keeps a *single FIFO*: trimmed
    headers queue behind full data packets, so feedback is delayed by the
    whole queue drain time, headers consume an ever larger share of the link
    under heavy overload (congestion collapse), and the deterministic "trim
    the arriving packet" rule produces strong phase effects.  This class
    exists so Figure 2 can be reproduced with both switch designs.
    """

    __slots__ = ("config", "_data_packets_queued")

    def __init__(
        self,
        eventlist: EventList,
        service_rate_bps: int,
        config: Optional[NdpConfig] = None,
        name: str = "cp-queue",
    ) -> None:
        self.config = config if config is not None else NdpConfig()
        capacity = self.config.data_queue_bytes + self.config.header_queue_bytes
        super().__init__(eventlist, service_rate_bps, capacity, name)
        self._data_packets_queued = 0

    def data_queue_depth(self) -> int:
        """Number of untrimmed data packets in the FIFO."""
        return self._data_packets_queued

    def receive_packet(self, packet: Packet) -> None:
        is_data = not (packet.priority == PacketPriority.HIGH or packet.is_header_only)
        if is_data and self._data_packets_queued >= self.config.data_queue_packets:
            packet.trim(self.config.header_bytes)
            self.stats.packets_trimmed += 1
            is_data = False
        if not is_data and self.queue_bytes + packet.size > self.max_queue_bytes:
            self.stats.record_drop(packet.size)
            packet.release()  # slot pool: a dropped packet dies here
            return
        if is_data:
            self._data_packets_queued += 1
        self._enqueue(packet)

    def _select_next(self) -> Optional[Packet]:
        packet = super()._select_next()
        if packet is not None and not packet.is_header_only and not packet.is_control():
            self._data_packets_queued -= 1
        return packet


def _default_bounce_delay() -> int:
    """A conservative one-way fabric latency for returned headers (~5 us)."""
    from repro.sim import units

    return units.microseconds(5)
