"""The NDP switch service model (§3.1 of the paper).

Each NDP output port keeps two queues:

* a **low-priority data queue**, only eight MTU-sized packets deep, and
* a **high-priority header queue** holding trimmed headers, ACKs, NACKs and
  PULLs.

When a data packet arrives and the data queue is full, the switch *trims* a
packet — with probability 0.5 the arriving packet, otherwise the packet at
the tail of the data queue (breaking up phase effects) — and enqueues the
64-byte header in the header queue.  The two queues are served with a 10:1
weighted round-robin (headers : data packets) so that feedback is early
without starving data, which is what prevents the CP-style congestion
collapse of Figure 2.  If the header queue itself overflows, the header is
*returned to sender* rather than dropped (§3.2.4), making the fabric
effectively lossless for metadata.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, Optional

from repro.core.config import NdpConfig
from repro.core.packets import NdpDataPacket
from repro.sim.eventlist import EventList
from repro.sim.packet import Packet, PacketPriority
from repro.sim.queues import BaseQueue


class NdpSwitchQueue(BaseQueue):
    """An NDP output port: trimming, dual priority queues, WRR, RTS.

    Parameters
    ----------
    eventlist:
        The simulation event list.
    service_rate_bps:
        Line rate of the port.
    config:
        The :class:`~repro.core.config.NdpConfig` providing queue sizes, the
        WRR ratio, the trim-choice probability and whether return-to-sender
        is enabled.
    rng:
        Randomness source for the 50% trim choice.
    bounce_delay_ps:
        Modelled latency for a returned-to-sender header to travel back to
        the source.  The real switch swaps the L3 addresses and the header is
        routed back through the fabric; since the reverse hop-by-hop route
        from an interior switch is topology specific, the simulator delivers
        the bounced header directly to the source endpoint after this delay
        (defaulting to a one-way fabric delay).  DESIGN.md documents the
        substitution.
    """

    def __init__(
        self,
        eventlist: EventList,
        service_rate_bps: int,
        config: Optional[NdpConfig] = None,
        rng: Optional[random.Random] = None,
        name: str = "ndp-queue",
        bounce_delay_ps: Optional[int] = None,
    ) -> None:
        self.config = config if config is not None else NdpConfig()
        capacity_bytes = self.config.data_queue_bytes + self.config.header_queue_bytes
        super().__init__(eventlist, service_rate_bps, capacity_bytes, name)
        self.rng = rng if rng is not None else random.Random(0)
        self.bounce_delay_ps = (
            bounce_delay_ps if bounce_delay_ps is not None else _default_bounce_delay()
        )
        self._data_queue: Deque[Packet] = deque()
        self._header_queue: Deque[Packet] = deque()
        self._data_bytes = 0
        self._header_bytes = 0
        self._headers_since_data = 0
        # detailed counters beyond the generic QueueStats
        self.trimmed_arriving = 0
        self.trimmed_from_tail = 0
        self.headers_bounced = 0
        self.control_dropped = 0

    # --- introspection --------------------------------------------------------

    def data_queue_depth(self) -> int:
        """Number of full data packets queued."""
        return len(self._data_queue)

    def header_queue_depth(self) -> int:
        """Number of headers / control packets queued."""
        return len(self._header_queue)

    def __len__(self) -> int:
        in_service = 1 if self._in_service is not None else 0
        return len(self._data_queue) + len(self._header_queue) + in_service

    def backlog_bytes(self) -> int:
        backlog = self._data_bytes + self._header_bytes
        if self._in_service is not None:
            backlog += self._in_service.size
        return backlog

    # --- admission ------------------------------------------------------------

    def receive_packet(self, packet: Packet) -> None:
        if packet.priority == PacketPriority.HIGH or packet.is_header_only:
            self._admit_header(packet)
        else:
            self._admit_data(packet)

    def _admit_data(self, packet: Packet) -> None:
        if len(self._data_queue) < self.config.data_queue_packets:
            self._data_queue.append(packet)
            self._data_bytes += packet.size
            self._record_enqueue(packet)
            self._maybe_start_service()
            return
        # Data queue full: trim either the arriving packet or the tail packet.
        if self.rng.random() < self.config.trim_arriving_probability:
            victim = packet
            self.trimmed_arriving += 1
        else:
            victim = self._data_queue.pop()
            self._data_bytes -= victim.size
            self._data_queue.append(packet)
            self._data_bytes += packet.size
            self._record_enqueue(packet)
            self.trimmed_from_tail += 1
        victim.trim(self.config.header_bytes)
        self.stats.packets_trimmed += 1
        self._admit_header(victim)
        self._maybe_start_service()

    def _admit_header(self, packet: Packet) -> None:
        if self._header_bytes + packet.size <= self.config.header_queue_bytes:
            self._header_queue.append(packet)
            self._header_bytes += packet.size
            self._record_enqueue(packet)
            self._maybe_start_service()
            return
        # Header queue overflow: bounce trimmed data headers back to their
        # sender (if enabled); control packets are dropped and recovered by
        # the sender's RTO.
        if (
            self.config.return_to_sender
            and isinstance(packet, NdpDataPacket)
            and packet.src_endpoint is not None
        ):
            packet.bounced = True
            self.headers_bounced += 1
            self.stats.packets_bounced += 1
            self.eventlist.schedule_in(
                self.bounce_delay_ps, packet.src_endpoint.receive_packet, packet
            )
            return
        if packet.is_control():
            self.control_dropped += 1
        self.stats.record_drop(packet.size)

    def _record_enqueue(self, packet: Packet) -> None:
        self.stats.packets_enqueued += 1
        self.queue_bytes = self._data_bytes + self._header_bytes
        if self.queue_bytes > self.stats.max_queue_bytes:
            self.stats.max_queue_bytes = self.queue_bytes

    # --- scheduling -----------------------------------------------------------

    def _select_next(self) -> Optional[Packet]:
        serve_header = False
        if self._header_queue and not self._data_queue:
            serve_header = True
        elif self._header_queue and self._data_queue:
            serve_header = self._headers_since_data < self.config.wrr_headers_per_data
        if serve_header:
            packet = self._header_queue.popleft()
            self._header_bytes -= packet.size
            self._headers_since_data += 1
        elif self._data_queue:
            packet = self._data_queue.popleft()
            self._data_bytes -= packet.size
            self._headers_since_data = 0
        else:
            return None
        self.queue_bytes = self._data_bytes + self._header_bytes
        return packet


class CpSwitchQueue(BaseQueue):
    """A Cut Payload (CP) switch queue, the baseline NDP improves on.

    CP trims packets exactly like NDP but keeps a *single FIFO*: trimmed
    headers queue behind full data packets, so feedback is delayed by the
    whole queue drain time, headers consume an ever larger share of the link
    under heavy overload (congestion collapse), and the deterministic "trim
    the arriving packet" rule produces strong phase effects.  This class
    exists so Figure 2 can be reproduced with both switch designs.
    """

    def __init__(
        self,
        eventlist: EventList,
        service_rate_bps: int,
        config: Optional[NdpConfig] = None,
        name: str = "cp-queue",
    ) -> None:
        self.config = config if config is not None else NdpConfig()
        capacity = self.config.data_queue_bytes + self.config.header_queue_bytes
        super().__init__(eventlist, service_rate_bps, capacity, name)
        self._data_packets_queued = 0

    def data_queue_depth(self) -> int:
        """Number of untrimmed data packets in the FIFO."""
        return self._data_packets_queued

    def receive_packet(self, packet: Packet) -> None:
        is_data = not (packet.priority == PacketPriority.HIGH or packet.is_header_only)
        if is_data and self._data_packets_queued >= self.config.data_queue_packets:
            packet.trim(self.config.header_bytes)
            self.stats.packets_trimmed += 1
            is_data = False
        if not is_data and self.queue_bytes + packet.size > self.max_queue_bytes:
            self.stats.record_drop(packet.size)
            return
        if is_data:
            self._data_packets_queued += 1
        self._enqueue(packet)

    def _select_next(self) -> Optional[Packet]:
        packet = super()._select_next()
        if packet is not None and not packet.is_header_only and not packet.is_control():
            self._data_packets_queued -= 1
        return packet


def _default_bounce_delay() -> int:
    """A conservative one-way fabric latency for returned headers (~5 us)."""
    from repro.sim import units

    return units.microseconds(5)
