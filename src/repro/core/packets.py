"""NDP packet types.

Four packet types make up the NDP wire protocol (§3.2 of the paper):

* :class:`NdpDataPacket` — carries payload, a packet sequence number, a SYN
  flag on every first-RTT packet (so connection state can be established by
  whichever packet arrives first) and a LAST flag on the final packet of a
  transfer.  Switches may trim it to a bare header.
* :class:`NdpAck` — sent immediately by the receiver for every data packet
  that arrives intact, so the sender can free the buffer.
* :class:`NdpNack` — sent immediately for every trimmed header, telling the
  sender to queue the packet for retransmission (but not send it yet).
* :class:`NdpPull` — the receiver-paced clock; carries a per-connection pull
  counter.  The sender transmits as many packets as the counter advanced by,
  retransmissions first.

Control packets are 64 bytes and always travel in the switches' high
priority queue.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.sim import packet as _packet_mod
from repro.sim.packet import Packet, PacketPriority, Route
from repro.sim.units import HEADER_BYTES

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.sender import NdpSrc

_LOW = PacketPriority.LOW
_HIGH = PacketPriority.HIGH


class NdpDataPacket(Packet):
    """A data packet (or, once trimmed, just its header)."""

    __slots__ = ("syn", "last", "payload_bytes", "src_endpoint", "is_retransmit")

    def __init__(
        self,
        flow_id: int,
        src: int,
        dst: int,
        seqno: int,
        payload_bytes: int,
        header_bytes: int = HEADER_BYTES,
        syn: bool = False,
        last: bool = False,
        src_endpoint: Optional["NdpSrc"] = None,
        is_retransmit: bool = False,
    ) -> None:
        # flattened Packet.__init__: one of these is allocated per transmit,
        # so the two-frame super() chain is replaced with direct field writes
        # (the pooled fast path in NdpSrc._transmit bypasses __init__
        # entirely; this constructor serves tests and unpooled callers)
        _packet_mod._CONSTRUCTIONS += 1
        size = payload_bytes + header_bytes
        self._pool = None
        self._handle = -1
        self._gen = 0
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.size = size
        self.original_size = size
        self.seqno = seqno
        self.route = None
        self.hop = 0
        self.priority = _LOW
        self.is_header_only = False
        self.bounced = False
        self.ecn_capable = False
        self.ecn_ce = False
        self.path_id = 0
        self.send_time = 0
        self.syn = syn
        self.last = last
        self.payload_bytes = payload_bytes
        self.src_endpoint = src_endpoint
        self.is_retransmit = is_retransmit


class NdpControlPacket(Packet):
    """Common base for ACK / NACK / PULL packets (64 B, high priority)."""

    __slots__ = ("data_path_id",)

    def __init__(
        self,
        flow_id: int,
        src: int,
        dst: int,
        seqno: int,
        data_path_id: int = 0,
        header_bytes: int = HEADER_BYTES,
    ) -> None:
        # flattened Packet.__init__ (see NdpDataPacket: one per ACK/NACK/PULL)
        _packet_mod._CONSTRUCTIONS += 1
        self._pool = None
        self._handle = -1
        self._gen = 0
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.size = header_bytes
        self.original_size = header_bytes
        self.seqno = seqno
        self.route = None
        self.hop = 0
        self.priority = _HIGH
        self.is_header_only = False
        self.bounced = False
        self.ecn_capable = False
        self.ecn_ce = False
        self.path_id = 0
        self.send_time = 0
        #: path the corresponding *data* packet travelled on; lets the sender
        #: update its path scoreboard.
        self.data_path_id = data_path_id

    def is_control(self) -> bool:
        return True


class NdpAck(NdpControlPacket):
    """Acknowledges in-order-independent receipt of one data packet."""

    __slots__ = ()


class NdpNack(NdpControlPacket):
    """Reports that only the trimmed header of ``seqno`` arrived."""

    __slots__ = ()


class NdpPull(NdpControlPacket):
    """Receiver-paced request for the sender to transmit more packets.

    ``pull_counter`` is cumulative: the sender transmits as many packets as
    the counter advanced since the last PULL it saw, which makes the protocol
    robust to PULL reordering on the multipath reverse route (§3.2.1).
    """

    __slots__ = ("pull_counter",)

    def __init__(
        self,
        flow_id: int,
        src: int,
        dst: int,
        pull_counter: int,
        header_bytes: int = HEADER_BYTES,
    ) -> None:
        super().__init__(
            flow_id=flow_id,
            src=src,
            dst=dst,
            seqno=pull_counter,
            header_bytes=header_bytes,
        )
        self.pull_counter = pull_counter


def make_route_copy(route: Route) -> Route:
    """Return *route* itself — routes are immutable and safely shared.

    Exists as an explicit extension point: an implementation that mutated
    routes per packet (e.g. to model label rewriting) would replace this.
    """
    return route
