"""NDP: the paper's primary contribution.

This package implements the three tightly coupled mechanisms of NDP
(Handley et al., SIGCOMM 2017):

* :mod:`repro.core.switch` — the NDP switch service model: an 8-packet data
  queue plus a high-priority header queue, packet trimming, 10:1 weighted
  round-robin between the two queues, probabilistic tail trimming to break
  phase effects, and return-to-sender when the header queue overflows.
* :mod:`repro.core.path_manager` — sender-side per-packet multipath: a
  randomly re-permuted path list plus a scoreboard that temporarily removes
  paths with outlier NACK/loss counts (robustness to asymmetry, §3.2.3).
* :mod:`repro.core.sender` / :mod:`repro.core.receiver` /
  :mod:`repro.core.pull_queue` — the receiver-driven transport protocol:
  zero-RTT start at line rate, ACK/NACK per packet, and a single per-host
  pull queue whose paced PULL packets clock all further transmissions.

The public entry points are :class:`NdpSrc`, :class:`NdpSink`,
:class:`NdpPullPacer`, :class:`NdpSwitchQueue` and :class:`NdpConfig`.
"""

from repro.core.config import NdpConfig
from repro.core.packets import (
    NdpAck,
    NdpDataPacket,
    NdpNack,
    NdpPull,
)
from repro.core.path_manager import PathManager
from repro.core.pull_queue import NdpPullPacer
from repro.core.receiver import NdpSink
from repro.core.sender import NdpSrc
from repro.core.switch import NdpSwitchQueue

__all__ = [
    "NdpConfig",
    "NdpDataPacket",
    "NdpAck",
    "NdpNack",
    "NdpPull",
    "PathManager",
    "NdpPullPacer",
    "NdpSink",
    "NdpSrc",
    "NdpSwitchQueue",
]
