"""The per-host pull queue and pacer (§3.2 of the paper).

Every arriving data packet or trimmed header makes the receiver add one pull
request to its host-wide pull queue.  A single pacer drains that queue at the
receiver's link rate — one PULL per MTU serialization time — so that the data
packets the PULLs elicit arrive at exactly the link rate, whatever the number
of competing senders.  Requests from different connections are served with
fair (round-robin) queueing by default; a connection can be marked high
priority, in which case its pulls are sent before any others, which is how
the receiver prioritizes straggler responses (Figure 10 and the incast
prioritization results).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, TYPE_CHECKING

from repro.sim.eventlist import EventList
from repro.sim.units import serialization_time_ps

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.receiver import NdpSink


class NdpPullPacer:
    """Drains a host's shared pull queue at (a fraction of) its link rate."""

    __slots__ = (
        "eventlist",
        "link_rate_bps",
        "mtu_bytes",
        "name",
        "pull_interval_ps",
        "_pending",
        "_sinks",
        "_normal_rr",
        "_priority_rr",
        "_queued_flows",
        "_next_allowed_time",
        "_tick_armed",
        "_send_one_cb",
        "_total_pending",
        "pulls_sent",
        "pulls_purged",
        "__dict__",
    )

    def __init__(
        self,
        eventlist: EventList,
        link_rate_bps: int,
        mtu_bytes: int = 9000,
        rate_fraction: float = 1.0,
        name: str = "pull-pacer",
    ) -> None:
        if not 0.0 < rate_fraction <= 1.0:
            raise ValueError("rate_fraction must be in (0, 1]")
        self.eventlist = eventlist
        self.link_rate_bps = link_rate_bps
        self.mtu_bytes = mtu_bytes
        self.name = name
        # Round half-up: plain int() truncates toward zero, which makes the
        # pacer run slightly *faster* than the configured fraction and the
        # error compounds over a long run (one pull interval is short, but a
        # Figure-12-style run sends hundreds of thousands of pulls).
        self.pull_interval_ps = int(
            serialization_time_ps(mtu_bytes, link_rate_bps) / rate_fraction + 0.5
        )
        # Per-connection FIFO credit counts.
        self._pending: Dict[int, int] = {}
        self._sinks: Dict[int, "NdpSink"] = {}
        # Round-robin service order, one entry per connection with credits.
        self._normal_rr: Deque[int] = deque()
        self._priority_rr: Deque[int] = deque()
        self._queued_flows: set[int] = set()
        self._next_allowed_time = 0
        self._tick_armed = False
        self._send_one_cb = self._send_one
        self._total_pending = 0
        self.pulls_sent = 0
        self.pulls_purged = 0

    # --- public API used by NdpSink --------------------------------------------

    def register(self, sink: "NdpSink") -> None:
        """Register a connection so the pacer can ask it to emit PULLs."""
        self._sinks[sink.flow_id] = sink
        self._pending.setdefault(sink.flow_id, 0)

    def unregister(self, sink: "NdpSink") -> None:
        """Forget a connection entirely (used when tearing experiments down)."""
        self.purge(sink.flow_id)
        self._sinks.pop(sink.flow_id, None)
        self._pending.pop(sink.flow_id, None)

    def request_pull(self, sink: "NdpSink") -> None:
        """Queue one pull request on behalf of *sink*."""
        flow_id = sink.flow_id
        if flow_id not in self._sinks:
            self.register(sink)
        self._pending[flow_id] = self._pending.get(flow_id, 0) + 1
        self._total_pending += 1
        if flow_id not in self._queued_flows:
            self._queued_flows.add(flow_id)
            if sink.priority:
                self._priority_rr.append(flow_id)
            else:
                self._normal_rr.append(flow_id)
        # arm the standing tick if idle (runs once per arriving packet)
        if not self._tick_armed:
            eventlist = self.eventlist
            when = self._next_allowed_time
            now = eventlist._now
            if when < now:
                when = now
            self._tick_armed = True
            eventlist.schedule_raw(when, self._send_one_cb)

    def purge(self, flow_id: int) -> None:
        """Drop all queued pull requests for *flow_id*.

        Called when the last packet of a transfer arrives, so that no useless
        PULLs are sent (the paper's pull-queue cleanup rule).
        """
        pending = self._pending.get(flow_id, 0)
        if pending:
            self.pulls_purged += pending
            self._total_pending -= pending
        self._pending[flow_id] = 0
        # Lazy removal: the flow id stays in the RR deques and is skipped
        # when it comes up with zero credit.

    def outstanding(self, flow_id: Optional[int] = None) -> int:
        """Number of queued pull requests (for one flow or in total)."""
        if flow_id is not None:
            return self._pending.get(flow_id, 0)
        return self._total_pending

    # --- pacing loop ------------------------------------------------------------
    #
    # One standing tick drives the whole pacer: while requests are queued,
    # exactly one raw entry is in the scheduler at a time.  The tick-arming
    # logic lives inline in request_pull() and at the tail of _send_one()
    # (the only two places backlog can appear).

    def _send_one(self) -> None:
        self._tick_armed = False
        flow_id = self._next_flow()
        if flow_id is None:
            return
        self._pending[flow_id] -= 1
        self._total_pending -= 1
        sink = self._sinks[flow_id]
        eventlist = self.eventlist
        when = self._next_allowed_time = eventlist._now + self._next_interval()
        self.pulls_sent += 1
        sink.emit_pull()
        # re-arm the standing tick while backlog remains; emit_pull may
        # already have re-armed via request_pull, and the next allowed time
        # can never be in the past here
        if not self._tick_armed and self._total_pending:
            self._tick_armed = True
            eventlist.schedule_raw(when, self._send_one_cb)

    def _next_interval(self) -> int:
        """Spacing until the next PULL may be sent.

        The base pacer uses the exact MTU serialization time; the host-model
        pacer in :mod:`repro.hosts` overrides this to replay the measured
        (jittered) pull-spacing distribution of the Linux prototype.
        """
        return self.pull_interval_ps

    def _next_flow(self) -> Optional[int]:
        for rr_queue, is_priority in ((self._priority_rr, True), (self._normal_rr, False)):
            while rr_queue:
                flow_id = rr_queue.popleft()
                if flow_id not in self._queued_flows:
                    continue  # superseded entry (flow moved between classes)
                if self._pending.get(flow_id, 0) <= 0:
                    # purged or drained; forget the flow until it asks again
                    self._queued_flows.discard(flow_id)
                    continue
                sink = self._sinks.get(flow_id)
                if sink is None:
                    self._queued_flows.discard(flow_id)
                    continue
                if sink.priority != is_priority:
                    # Priority changed since the entry was queued; requeue in
                    # the right class and keep looking.
                    target = self._priority_rr if sink.priority else self._normal_rr
                    target.append(flow_id)
                    continue
                rr_queue.append(flow_id)  # keep round-robin position
                return flow_id
        return None
