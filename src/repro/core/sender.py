"""The NDP sender.

The sender's job is deliberately simple (§3.2 of the paper):

* on start, push a full initial window at line rate — zero-RTT, no handshake,
  every first-window packet carries the SYN flag and its offset so the
  connection can be established by whichever packet arrives first;
* after that, only transmit when pulled: each PULL advances a cumulative pull
  counter and the sender sends as many packets as the counter advanced by,
  retransmissions (NACKed packets) first, then new data;
* spray every packet over the paths chosen by the
  :class:`~repro.core.path_manager.PathManager`, and always retransmit on a
  different path than the one that failed;
* fall back on a short RTO only for true losses (corruption, header-queue
  drops) — with trimming these are rare, so the timer hardly ever fires;
* honour return-to-sender headers: resend immediately only when no more
  PULLs are expected (or the network looks asymmetric), to avoid echoing the
  incast;
* keep a standing last-resort *keepalive* for the whole transfer: a NACK
  cancels the per-seqno RTO (the pull clock is expected to drain the
  retransmission queue), and packets beyond the initial window have no RTO
  at all until first sent — so if the PULLs themselves are lost the pull
  clock goes silent forever.  When no feedback has arrived for a full stall
  threshold, the keepalive sends one packet (queued retransmission first,
  else the next unsent one), restarting both the pull clock and the
  per-seqno RTO coverage.  The timer is a shadow timer
  (:mod:`repro.sim.eventlist`), so runs in which it never fires are
  bit-identical to runs without it.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence, Set

from repro.core.config import NdpConfig
from repro.core.packets import NdpAck, NdpDataPacket, NdpNack, NdpPull
from repro.core.path_manager import PathManager
from repro.sim.eventlist import EventList, Timer
from repro.sim.logger import FlowRecord
from repro.sim.network import NetworkEndpoint
from repro.sim.packet import Packet, PacketPriority, Route
from repro.sim.pool import PacketPool

from repro.core.receiver import NdpSink

_LOW = PacketPriority.LOW


class NdpSrc(NetworkEndpoint):
    """Sending endpoint of one NDP connection."""

    __slots__ = (
        "flow_id",
        "dst_node_id",
        "flow_size_bytes",
        "config",
        "rng",
        "on_complete",
        "record_packet_latencies",
        "paths",
        "payload_per_packet",
        "total_packets",
        "_tail_payload",
        "record",
        "sink",
        "_next_new_seqno",
        "_acked",
        "_nacked",
        "_rtx_queue",
        "_rtx_queued",
        "_last_pull_counter",
        "_last_path_used",
        "_first_send_time",
        "_rto_timers",
        "_keepalive_timer",
        "_activity_ps",
        "_ka_period_ps",
        "_ka_stall_spanned",
        "_last_pull_ps",
        "_max_pull_gap_ps",
        "_started",
        "_handlers",
        "pool",
        "_data_free",
        "packets_sent",
        "acks_received",
        "nacks_received",
        "pulls_received",
        "bounces_received",
        "packet_latencies_ps",
    )

    def __init__(
        self,
        eventlist: EventList,
        flow_id: int,
        node_id: int,
        dst_node_id: int,
        flow_size_bytes: int,
        routes: Sequence[Route],
        config: Optional[NdpConfig] = None,
        rng: Optional[random.Random] = None,
        on_complete: Optional[Callable[["NdpSrc"], None]] = None,
        record_packet_latencies: bool = False,
        name: Optional[str] = None,
        pool: Optional[PacketPool] = None,
    ) -> None:
        super().__init__(eventlist, node_id, name or f"ndp-src-{flow_id}")
        if flow_size_bytes <= 0:
            raise ValueError(f"flow size must be positive, got {flow_size_bytes}")
        self.flow_id = flow_id
        self.dst_node_id = dst_node_id
        self.flow_size_bytes = flow_size_bytes
        self.config = config if config is not None else NdpConfig()
        self.rng = rng if rng is not None else random.Random(flow_id)
        self.on_complete = on_complete
        self.record_packet_latencies = record_packet_latencies
        # slot pool for outgoing data packets; shared network-wide when the
        # harness provides one (sinks revive what other sources freed)
        self.pool = pool if pool is not None else PacketPool()
        self._data_free = self.pool.free_list(NdpDataPacket)

        self.paths = PathManager(
            routes,
            rng=self.rng,
            penalize=self.config.path_penalty,
            min_samples=self.config.path_penalty_min_samples,
            nack_ratio=self.config.path_penalty_nack_ratio,
            mode=self.config.path_selection_mode,
        )

        payload = self.config.mtu_bytes - self.config.header_bytes
        self.payload_per_packet = payload
        self.total_packets = (flow_size_bytes + payload - 1) // payload
        remainder = flow_size_bytes - (self.total_packets - 1) * payload
        self._tail_payload = remainder if remainder > 0 else payload

        self.record = FlowRecord(
            flow_id=flow_id, src=node_id, dst=dst_node_id, flow_size_bytes=flow_size_bytes
        )

        self.sink: Optional[NdpSink] = None
        self._next_new_seqno = 0
        self._acked: Set[int] = set()
        self._nacked: Set[int] = set()
        self._rtx_queue: Deque[int] = deque()
        self._rtx_queued: Set[int] = set()
        self._last_pull_counter = 0
        self._last_path_used: Dict[int, int] = {}
        self._first_send_time: Dict[int, int] = {}
        # RTO timers: one reusable cancellable Timer per seqno.  Re-arming on
        # retransmit and cancelling on ACK/NACK are O(1) generation bumps —
        # the scheduler eagerly evicts the dead entries, so cancelled RTOs no
        # longer pile up in the pending queue the way per-packet heap events
        # used to.
        self._rto_timers: Dict[int, Timer] = {}
        # Last-resort keepalive (see the module docstring): created lazily on
        # the first NACK/bounce that queues a retransmission, then reused.
        self._keepalive_timer: Optional[Timer] = None
        self._activity_ps = -1
        self._ka_period_ps = 0
        self._ka_stall_spanned = False
        self._last_pull_ps = -1
        self._max_pull_gap_ps = 0
        self._started = False
        # exact-type dispatch table for the receive path (cheaper than an
        # isinstance chain at one lookup per arriving control packet)
        self._handlers = {
            NdpAck: self._handle_ack,
            NdpNack: self._handle_nack,
            NdpPull: self._handle_pull,
            NdpDataPacket: self._handle_returned_data,
        }

        self.packets_sent = 0
        self.acks_received = 0
        self.nacks_received = 0
        self.pulls_received = 0
        self.bounces_received = 0
        self.packet_latencies_ps: List[int] = []

    # --- wiring -----------------------------------------------------------------

    def connect(self, sink: NdpSink) -> None:
        """Associate this sender with its receiving sink."""
        self.sink = sink
        sink.expect(self.node_id, self.flow_size_bytes, self.total_packets)

    def set_destination_routes(self, routes: Sequence[Route]) -> None:
        """Install the final forward routes (each ending at the sink)."""
        self.paths.set_routes(routes)

    def update_routes(self, routes: Sequence[Route]) -> None:
        """Adopt new forward routes after a fabric link-state change.

        Called by the network layer when a link fails or recovers: the
        surviving (or restored) paths replace the current set while the path
        scoreboard keeps its history (see
        :meth:`~repro.core.path_manager.PathManager.update_routes`).
        Retransmission state is untouched — packets lost on a just-failed
        path are recovered by the normal NACK/RTO/keepalive machinery, now
        over live paths only.
        """
        self.paths.update_routes(routes)

    def start(self, at_time_ps: Optional[int] = None) -> None:
        """Schedule the first-RTT burst (defaults to the current time)."""
        when = self.now() if at_time_ps is None else at_time_ps
        self.eventlist.schedule(when, self._send_initial_window)

    # --- state inspection ---------------------------------------------------------

    @property
    def complete(self) -> bool:
        """True once every packet of the transfer has been ACKed."""
        return len(self._acked) >= self.total_packets

    def packets_acked(self) -> int:
        """Number of packets positively acknowledged so far."""
        return len(self._acked)

    def retransmit_queue_depth(self) -> int:
        """Packets waiting to be retransmitted on the next PULLs."""
        return len(self._rtx_queue)

    # --- sending ---------------------------------------------------------------------

    def _send_initial_window(self) -> None:
        if self._started:
            return
        self._started = True
        self.record.start_time_ps = self.now()
        self._last_pull_ps = self.now()  # first pull gap measured from start
        # idle time is measured from here until the first feedback arrives,
        # so a total first-window blackout still respects the keepalive's
        # full patience window instead of firing on the -1 sentinel
        self._activity_ps = self.now()
        window = min(self.config.initial_window_packets, self.total_packets)
        for _ in range(window):
            seqno = self._next_new_seqno
            self._next_new_seqno += 1
            self._transmit(seqno, is_retransmit=False, syn=True)
        # standing keepalive for the whole transfer: it must cover not just
        # queued retransmissions but also a never-pulled unsent tail
        self._arm_keepalive()

    def _transmit(
        self,
        seqno: int,
        is_retransmit: bool,
        syn: bool = False,
        route: Optional[Route] = None,
    ) -> None:
        if route is None:
            route = self.paths.next_route()
        is_last = seqno == self.total_packets - 1
        payload = self._tail_payload if is_last else self.payload_per_packet
        # slot-pool allocation (once per transmitted packet): revive a freed
        # NdpDataPacket facade when one exists, else pay one real allocation
        # and adopt it.  Every field the protocol reads is written below —
        # a revived facade still carries its previous life's values
        # (trimmed/bounced/ECN state included).
        pool = self.pool
        free = self._data_free
        if free:
            packet = free.pop()
            packet._gen = pool.generation[packet._handle]
            pool.live_cls[packet._handle] = NdpDataPacket
            pool.reused += 1
        else:
            packet = NdpDataPacket.__new__(NdpDataPacket)
            pool.adopt(packet)
        size = payload + self.config.header_bytes
        packet.flow_id = self.flow_id
        packet.src = self.node_id
        packet.dst = self.dst_node_id
        packet.size = size
        packet.original_size = size
        packet.seqno = seqno
        packet.priority = _LOW
        packet.is_header_only = False
        packet.bounced = False
        packet.ecn_capable = False
        packet.ecn_ce = False
        packet.syn = syn
        packet.last = is_last
        packet.payload_bytes = payload
        packet.src_endpoint = self
        packet.is_retransmit = is_retransmit
        self._last_path_used[seqno] = route.path_id
        if seqno not in self._first_send_time:
            self._first_send_time[seqno] = self.now()
        if is_retransmit:
            self.record.retransmissions += 1
        self.packets_sent += 1
        self._arm_rto(seqno)
        # inlined NetworkEndpoint.inject (one call per transmitted packet)
        packet.route = route
        packet.path_id = route.path_id
        packet.hop = 1
        packet.send_time = self.eventlist._now
        route.elements[0].receive_packet(packet)

    def _payload_size(self, seqno: int) -> int:
        if seqno < self.total_packets - 1:
            return self.payload_per_packet
        return self._tail_payload

    def _send_pulled_packets(self, count: int) -> None:
        for _ in range(count):
            if self._rtx_queue:
                seqno = self._rtx_queue.popleft()
                self._rtx_queued.discard(seqno)
                self._nacked.discard(seqno)
                if seqno in self._acked:
                    continue
                route = self.paths.alternative_route(self._last_path_used.get(seqno, -1))
                self._transmit(seqno, is_retransmit=True, route=route)
            elif self._next_new_seqno < self.total_packets:
                seqno = self._next_new_seqno
                self._next_new_seqno += 1
                self._transmit(seqno, is_retransmit=False)
            else:
                break  # nothing left to send; the pull is wasted

    # --- receive path -------------------------------------------------------------------

    def receive_packet(self, packet: Packet) -> None:
        self._activity_ps = self.eventlist._now
        handler = self._handlers.get(type(packet))
        if handler is None:
            # subclassed packet types still dispatch correctly, just slower
            if isinstance(packet, NdpAck):
                handler = self._handle_ack
            elif isinstance(packet, NdpNack):
                handler = self._handle_nack
            elif isinstance(packet, NdpPull):
                handler = self._handle_pull
            elif isinstance(packet, NdpDataPacket):
                handler = self._handle_returned_data
            else:
                raise TypeError(f"NdpSrc received unexpected packet {packet!r}")
        handler(packet)
        # the source consumes every packet delivered to it (ACK/NACK/PULL
        # and bounced data); a bounce retransmit builds a fresh packet in
        # _transmit, so releasing the original here never aliases it
        pool = packet._pool
        if pool is not None:
            pool.release(packet)

    def _handle_returned_data(self, packet: NdpDataPacket) -> None:
        if not packet.bounced:
            raise TypeError(f"NdpSrc received unexpected packet {packet!r}")
        self._handle_bounce(packet)

    def _handle_ack(self, ack: NdpAck) -> None:
        self.acks_received += 1
        # inlined PathManager.record_ack (once per delivered packet)
        score = self.paths.scores.get(ack.data_path_id)
        if score is not None:
            score.acks += 1
        seqno = ack.seqno
        if seqno in self._acked:
            return
        self._acked.add(seqno)
        self._nacked.discard(seqno)
        # inlined _cancel_rto/Timer.cancel (once per delivered packet)
        timer = self._rto_timers.get(seqno)
        if timer is not None and timer._gen == timer._armed_gen:
            timer._gen += 1
            self.eventlist._note_stale()
        self.record.bytes_delivered += self._payload_size(seqno)
        self.record.packets_delivered += 1
        if self.record_packet_latencies and seqno in self._first_send_time:
            self.packet_latencies_ps.append(self.now() - self._first_send_time[seqno])
        if self.complete:
            self._finish()

    def _handle_nack(self, nack: NdpNack) -> None:
        self.nacks_received += 1
        self.record.rtx_from_nack += 1
        # inlined PathManager.record_nack (once per trimmed packet)
        score = self.paths.scores.get(nack.data_path_id)
        if score is not None:
            score.nacks += 1
        seqno = nack.seqno
        # inlined _cancel_rto/Timer.cancel (once per trimmed packet)
        timer = self._rto_timers.get(seqno)
        if timer is not None and timer._gen == timer._armed_gen:
            timer._gen += 1
            self.eventlist._note_stale()
        if seqno in self._acked or seqno in self._rtx_queued:
            return
        self._nacked.add(seqno)
        self._rtx_queue.append(seqno)
        self._rtx_queued.add(seqno)

    def _handle_pull(self, pull: NdpPull) -> None:
        self.pulls_received += 1
        # track the largest gap between pulls: the keepalive must not treat
        # a slow (but ticking) pull clock as a dead one.  Gaps spanning a
        # keepalive-recovered stall are excluded — they measure the outage,
        # not the receiver's service cycle, and would permanently ratchet
        # the stall threshold upwards.
        now = self.eventlist._now
        last = self._last_pull_ps
        if self._ka_stall_spanned:
            self._ka_stall_spanned = False
        elif last >= 0:
            gap = now - last
            if gap > self._max_pull_gap_ps:
                self._max_pull_gap_ps = gap
        self._last_pull_ps = now
        delta = pull.pull_counter - self._last_pull_counter
        if delta <= 0:
            return  # reordered or duplicate pull
        self._last_pull_counter = pull.pull_counter
        self._send_pulled_packets(delta)

    def _handle_bounce(self, packet: NdpDataPacket) -> None:
        """A trimmed header was returned to sender by an overflowing switch."""
        self.bounces_received += 1
        self.record.rtx_from_bounce += 1
        seqno = packet.seqno
        path_id = packet.path_id
        self.paths.record_loss(path_id)
        self._cancel_rto(seqno)
        if seqno in self._acked or seqno in self._rtx_queued:
            return
        feedback_received = self.acks_received + self.nacks_received
        expecting_more_pulls = feedback_received > self._last_pull_counter
        mostly_acked = self.acks_received > self.nacks_received
        if not expecting_more_pulls or mostly_acked:
            # Safe to resend right away: either the pull clock has gone quiet
            # (resending keeps it alive) or the network looks asymmetric and a
            # different path will likely work.
            route = self.paths.alternative_route(path_id)
            self._transmit(seqno, is_retransmit=True, route=route)
        else:
            self._nacked.add(seqno)
            self._rtx_queue.append(seqno)
            self._rtx_queued.add(seqno)

    # --- timers ------------------------------------------------------------------------

    def _arm_rto(self, seqno: int) -> None:
        timer = self._rto_timers.get(seqno)
        if timer is None:
            timer = self._rto_timers[seqno] = Timer(
                self.eventlist, self._handle_timeout, seqno
            )
        # re-arming supersedes any pending arm for this seqno in O(1)
        timer.schedule_at(self.eventlist._now + self.config.rto_ps)

    def _cancel_rto(self, seqno: int) -> None:
        timer = self._rto_timers.get(seqno)
        if timer is not None:
            timer.cancel()

    def _handle_timeout(self, seqno: int) -> None:
        if seqno in self._acked or seqno in self._nacked or seqno in self._rtx_queued:
            return  # fate already known; the pull clock will handle it
        self.record.rtx_from_timeout += 1
        self.paths.record_loss(self._last_path_used.get(seqno, -1))
        route = self.paths.alternative_route(self._last_path_used.get(seqno, -1))
        self._transmit(seqno, is_retransmit=True, route=route)

    def _arm_keepalive(self) -> None:
        """Arm the standing keepalive at transfer start (if enabled)."""
        if not self.config.sender_keepalive:
            return
        timer = self._keepalive_timer
        if timer is None:
            timer = self._keepalive_timer = Timer(
                self.eventlist, self._keepalive_due, shadow=True
            )
        if timer._gen != timer._armed_gen:  # inlined `not timer.armed`
            timer.schedule_at(self.eventlist._now + self.config.rto_ps)

    def _keepalive_due(self) -> None:
        """Last-resort send when the pull clock dies with work outstanding.

        The stall threshold is ``rto_ps`` stretched to twice the largest
        pull gap seen so far — on a busy receiver the legitimate spacing
        between two pulls of one flow is the receiver's whole round-robin
        cycle, and a slow clock must not be mistaken for a dead one.  If
        feedback (ACK/NACK/PULL/bounce) arrived within the threshold the
        deadline just moves out.  Otherwise every PULL that would have
        clocked out more data has been lost, so one packet is sent anyway:
        a queued retransmission first, else the next never-sent packet (a
        transfer larger than the initial window can stall with an unsent
        tail and an *empty* retransmission queue).  The arrival prompts the
        receiver to restart the pull clock, and the per-seqno RTO (armed by
        the transmit) covers repeated loss.  Consecutive silent rounds back
        off exponentially; the timer stands until the transfer completes.
        """
        if self.complete:
            return  # defensive; _finish cancels the standing timer
        now = self.eventlist._now
        rto = self.config.rto_ps
        if self.pulls_received >= 2:
            # two pulls establish the receiver's true service cycle
            threshold = max(rto, 2 * self._max_pull_gap_ps)
        else:
            # Before that, the receiver may simply not have completed its
            # first round-robin cycle over a large incast (several RTOs per
            # cycle), so be extra patient before pushing unpulled
            # retransmissions into the congested port.
            threshold = max(4 * rto, 2 * self._max_pull_gap_ps)
        if self._activity_ps >= 0 and now - self._activity_ps < threshold:
            self._ka_period_ps = 0
            self._keepalive_timer.schedule_at(self._activity_ps + threshold)
            return
        # A stall was witnessed: whatever ends it (this send, a receiver
        # pull-retry, an RTO), the next observed pull gap measures the
        # outage rather than the service cycle — exclude it.
        self._ka_stall_spanned = True
        sent = False
        while self._rtx_queue:
            seqno = self._rtx_queue.popleft()
            self._rtx_queued.discard(seqno)
            self._nacked.discard(seqno)
            if seqno in self._acked:
                continue
            self.record.keepalive_retransmits += 1
            route = self.paths.alternative_route(self._last_path_used.get(seqno, -1))
            self._transmit(seqno, is_retransmit=True, route=route)
            sent = True
            break
        if not sent and self._next_new_seqno < self.total_packets:
            seqno = self._next_new_seqno
            self._next_new_seqno += 1
            self.record.keepalive_retransmits += 1
            self._transmit(seqno, is_retransmit=False)
        # else: everything is in flight; the per-seqno RTOs cover it
        period = self._ka_period_ps
        if period < threshold:
            period = threshold
        self._ka_period_ps = period * 2
        self._keepalive_timer.schedule_at(now + period)

    # --- completion ----------------------------------------------------------------------

    def _finish(self) -> None:
        if self.record.finish_time_ps is not None:
            return
        self.record.finish_time_ps = self.now()
        for timer in self._rto_timers.values():
            timer.cancel()
        self._rto_timers.clear()
        if self._keepalive_timer is not None:
            self._keepalive_timer.cancel()
        # Everything is ACKed, so any remaining retransmission-queue entries
        # are stale duplicates (a second copy beat the queued one); drop them
        # so a completed sender never looks deadlocked.
        self._rtx_queue.clear()
        self._rtx_queued.clear()
        self._nacked.clear()
        if self.on_complete is not None:
            self.on_complete(self)
