"""Configuration knobs of an NDP deployment.

The paper stresses that NDP has essentially two tunables — the switch buffer
size and the sender's fixed initial window — plus a handful of structural
constants (header size, WRR ratio, RTO).  They are collected here so that
experiments can sweep them (Figures 11, 17 and 20) without touching protocol
code.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim import units


@dataclass
class NdpConfig:
    """Parameters shared by NDP senders, receivers and switches.

    Attributes
    ----------
    mtu_bytes:
        Maximum data packet size.  The paper uses 9 KB jumbograms by default
        and 1.5 KB for the MTU sensitivity experiments.
    header_bytes:
        Size of a trimmed header and of every control packet (ACK, NACK,
        PULL).
    initial_window_packets:
        Number of packets pushed blindly in the first RTT (IW).  30 is the
        paper's deployed default; Figures 11/17/20 sweep it.
    data_queue_packets:
        Capacity of the low-priority data queue at each switch port, in
        packets.  Eight is the paper's default.
    header_queue_bytes:
        Capacity of the high-priority header/control queue at each switch
        port, in bytes.  The paper sizes it like the data queue's memory
        (8 x 9 KB holds 1125 64-byte headers).
    wrr_headers_per_data:
        Weighted-round-robin ratio: how many header-queue packets may be sent
        per data packet when both queues are backlogged (10:1 in the paper).
    trim_arriving_probability:
        Probability that the *arriving* packet (rather than the packet at the
        tail of the data queue) is trimmed on overflow; 0.5 breaks phase
        effects.
    return_to_sender:
        Enable the RTS optimization: when the header queue overflows, bounce
        the header back to the sender instead of dropping it.
    rto_ps:
        Retransmission timeout covering corruption and header loss.  The
        paper argues 1 ms is safe given the 400 us worst-case RTT.
    min_rto_ps:
        Lower bound applied when adaptive RTO estimation is enabled.
    pull_rto_ps:
        Receiver-side pull-retry timeout: when a transfer has received
        nothing for this long while packets are still missing (and no pull
        requests are queued at the pacer), the receiver re-emits PULLs for
        the outstanding packets.  This closes the liveness gap where the
        *final* PULLs of a transfer are lost (e.g. trimmed from an
        overflowing header queue) after NACKs already cancelled the sender's
        per-packet RTOs.  Sized like ``rto_ps``: well above the worst-case
        RTT, so it never fires on a healthy transfer.
    max_pull_retries:
        How many consecutive pull-retry rounds (without any progress in
        between) the receiver attempts before giving up; 0 disables the
        pull-retry timer entirely.
    sender_keepalive:
        Enable the sender's last-resort keepalive: a standing per-transfer
        timer that sends one packet (a queued retransmission first, else
        the next unsent one) whenever the pull clock has been silent for a
        full stall threshold — covering both the NACKed packets whose
        per-seqno RTOs were cancelled and an unsent tail beyond the initial
        window that has no RTO at all.  Together with the pull-retry timer
        this makes transfer completion robust to the loss of any control
        packet class.
    path_penalty:
        Enable the path scoreboard that temporarily removes outlier paths
        (§3.2.3); the Figure 22 ablation turns it off.
    path_penalty_min_samples:
        Minimum number of ACK+NACK observations on a path before it can be
        judged an outlier.
    path_penalty_nack_ratio:
        A path is penalized when its NACK fraction exceeds this multiple of
        the mean NACK fraction across paths.
    pull_rate_fraction:
        Fraction of the receiver's link rate at which PULLs are clocked; 1.0
        paces aggregate arrivals to exactly the link rate.
    path_selection_mode:
        ``"permutation"`` for the paper's sender-driven path permutation, or
        ``"random"`` to model switch-driven per-packet ECMP (the §3.1.1
        ablation).
    """

    mtu_bytes: int = units.JUMBO_MTU_BYTES
    header_bytes: int = units.HEADER_BYTES
    initial_window_packets: int = 30
    data_queue_packets: int = 8
    header_queue_bytes: int = 8 * units.JUMBO_MTU_BYTES
    wrr_headers_per_data: int = 10
    trim_arriving_probability: float = 0.5
    return_to_sender: bool = True
    rto_ps: int = units.milliseconds(1)
    min_rto_ps: int = units.microseconds(200)
    pull_rto_ps: int = units.milliseconds(1)
    max_pull_retries: int = 8
    sender_keepalive: bool = True
    path_penalty: bool = True
    path_penalty_min_samples: int = 16
    path_penalty_nack_ratio: float = 2.0
    pull_rate_fraction: float = 1.0
    path_selection_mode: str = "permutation"

    def __post_init__(self) -> None:
        if self.path_selection_mode not in ("permutation", "random"):
            raise ValueError(
                f"unknown path_selection_mode {self.path_selection_mode!r}"
            )
        if self.mtu_bytes <= self.header_bytes:
            raise ValueError("mtu_bytes must exceed header_bytes")
        if self.initial_window_packets < 1:
            raise ValueError("initial window must be at least one packet")
        if self.data_queue_packets < 1:
            raise ValueError("data queue must hold at least one packet")
        if not 0.0 <= self.trim_arriving_probability <= 1.0:
            raise ValueError("trim_arriving_probability must be a probability")
        if self.wrr_headers_per_data < 1:
            raise ValueError("wrr_headers_per_data must be at least 1")
        if not 0.0 < self.pull_rate_fraction <= 1.0:
            raise ValueError("pull_rate_fraction must be in (0, 1]")
        if self.pull_rto_ps <= 0:
            raise ValueError("pull_rto_ps must be positive")
        if self.max_pull_retries < 0:
            raise ValueError("max_pull_retries must be non-negative")

    @property
    def data_queue_bytes(self) -> int:
        """Data queue capacity expressed in bytes."""
        return self.data_queue_packets * self.mtu_bytes

    def header_queue_capacity_packets(self) -> int:
        """How many trimmed headers fit in the header queue."""
        return self.header_queue_bytes // self.header_bytes

    def with_overrides(self, **overrides: object) -> "NdpConfig":
        """Return a copy of this configuration with *overrides* applied."""
        values = {f: getattr(self, f) for f in self.__dataclass_fields__}
        values.update(overrides)
        return NdpConfig(**values)  # type: ignore[arg-type]
