"""repro — a full Python reproduction of NDP (SIGCOMM 2017).

NDP ("Re-architecting datacenter networks and stacks for low latency and
high performance", Handley et al.) is a datacenter network architecture that
combines shallow-buffer switches with packet trimming, per-packet multipath
source routing, and a receiver-driven pull-based transport protocol.

The package is organised as follows:

* :mod:`repro.sim` — the discrete-event packet-level simulation substrate.
* :mod:`repro.core` — the NDP switch queue and transport protocol.
* :mod:`repro.transports` — the baselines the paper compares against
  (TCP NewReno, DCTCP, MPTCP, DCQCN, pHost, CP).
* :mod:`repro.topology` — FatTree / leaf-spine / micro topologies.
* :mod:`repro.routing` — ECMP path-selection helpers.
* :mod:`repro.workloads` — traffic matrices and flow-size distributions.
* :mod:`repro.hosts` — host processing-delay and pull-jitter models.
* :mod:`repro.wire` — the NDP wire format codec.
* :mod:`repro.harness` — experiment builders and metrics.

Quickstart::

    from repro.sim import EventList, units
    from repro.harness import NdpNetwork
    from repro.topology import FatTreeTopology

    eventlist = EventList()
    network = NdpNetwork.build(eventlist, FatTreeTopology, k=4)
    flow = network.create_flow(src_host=0, dst_host=12, size_bytes=900_000)
    eventlist.run(until=units.milliseconds(10))
    print(flow.record.completion_time_ps() / units.MICROSECOND, "us")
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
