"""Traffic matrices: who talks to whom.

These helpers only decide the (source, destination) pairs; flow sizes and
start times are orthogonal (see :mod:`repro.workloads.flowsize` and
:mod:`repro.workloads.generators`).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple


def permutation_pairs(
    hosts: Sequence[int], rng: Optional[random.Random] = None
) -> List[Tuple[int, int]]:
    """A random permutation traffic matrix.

    Every host sends to exactly one other host and receives from exactly one
    other host, and no host sends to itself — the paper's worst-case matrix
    for core-network load balancing.
    """
    hosts = list(hosts)
    if len(hosts) < 2:
        raise ValueError("a permutation needs at least two hosts")
    rng = rng if rng is not None else random.Random(0)
    destinations = hosts[:]
    # A random derangement: shuffle until no host maps to itself.  For n >= 2
    # the expected number of attempts is about e, so this terminates quickly.
    while True:
        rng.shuffle(destinations)
        if all(src != dst for src, dst in zip(hosts, destinations)):
            break
    return list(zip(hosts, destinations))


def random_pairs(
    hosts: Sequence[int],
    rng: Optional[random.Random] = None,
    flows_per_host: int = 1,
) -> List[Tuple[int, int]]:
    """Each host sends to uniformly random other hosts.

    Unlike a permutation, several flows may share a receiver, so receivers
    can be transiently oversubscribed — the "Random" curve of Figure 4.
    """
    hosts = list(hosts)
    if len(hosts) < 2:
        raise ValueError("need at least two hosts")
    if flows_per_host < 1:
        raise ValueError("flows_per_host must be at least 1")
    rng = rng if rng is not None else random.Random(0)
    pairs = []
    for src in hosts:
        for _ in range(flows_per_host):
            dst = src
            while dst == src:
                dst = rng.choice(hosts)
            pairs.append((src, dst))
    return pairs


def incast_pairs(
    receiver: int, senders: Sequence[int], fan_in: Optional[int] = None
) -> List[Tuple[int, int]]:
    """An incast: *fan_in* of the given senders all transmit to *receiver*."""
    senders = [host for host in senders if host != receiver]
    if not senders:
        raise ValueError("an incast needs at least one sender other than the receiver")
    if fan_in is None:
        fan_in = len(senders)
    if fan_in < 1 or fan_in > len(senders):
        raise ValueError(f"fan_in must be between 1 and {len(senders)}, got {fan_in}")
    return [(src, receiver) for src in senders[:fan_in]]
