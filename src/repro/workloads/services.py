"""Service-level workloads: flows composed into dependency DAGs.

The open-loop engine (:mod:`repro.workloads.openloop`) drives *independent*
flows; production services generate *structured* traffic.  A search query
fans out over workers and cannot answer until the slowest leaf responds; a
shuffle stage cannot start until every map output is in place; a replicated
write is durable only when the last replica acknowledges.  This module
models those patterns as **service requests**: DAGs of flow tasks grouped
into stages with barrier semantics —

* stage ``N+1`` launches only when *every* stage-``N`` flow has completed,
* a request completes when the slowest flow of its final stage is fully
  delivered at the receiver ("slowest leaf"),
* request latency is that completion time minus the request's arrival, and
  an optional per-request deadline tags it as meeting or missing its SLO.

The split between *specs* and *execution* is deliberate.  A
:class:`ServiceRequestSpec` is pure data — arrival time, deadline and the
stage/task structure — so a synthesized workload can be written to a trace
(:mod:`repro.workloads.trace`), read back, and replayed bit-identically:
the :class:`ServiceEngine` consumes only specs, and the underlying
simulator is deterministic.

Everything rides the existing flow machinery: stages launch through the
uniform ``network.create_flow(..., on_complete=...)`` surface of every
registered transport, and barriers are completion callbacks.  No simulator
core code is touched, so seeded digests of flow-level experiments are
unaffected (the shadow-timer zero-perturbation discipline).

Determinism
-----------
:func:`synthesize_requests` draws everything from one seeded RNG with a
fixed per-arrival draw order (gap, template choice, template build), and
produces the full spec list up front — there is no interleaving with
simulation events.  Two engines fed equal spec lists over identically
seeded networks produce equal :meth:`ServiceEngine.request_digest`\\ s.
"""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.sim.eventlist import EventList
from repro.workloads.generators import poisson_gap_ps as _gap_ps
from repro.workloads.openloop import DRAIN, MEASURE, WARMUP

__all__ = [
    "TaskSpec",
    "ServiceRequestSpec",
    "ServiceTemplate",
    "PartitionAggregateTemplate",
    "CoflowShuffleTemplate",
    "ReplicationFanoutTemplate",
    "partition_aggregate_stages",
    "shuffle_stages",
    "replication_stages",
    "synthesize_requests",
    "window_of",
    "TaskRun",
    "ServiceRequestRun",
    "ServiceEngine",
]


# ---------------------------------------------------------------------------
# Specs: pure data, the unit of trace record/replay
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TaskSpec:
    """One flow of a service request: *size_bytes* from *src* to *dst*."""

    src: int
    dst: int
    size_bytes: int

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError(f"task src and dst must differ, got host {self.src}")
        if self.size_bytes <= 0:
            raise ValueError(f"task size must be positive, got {self.size_bytes}")


#: one barrier-delimited stage: the tasks that may run concurrently
Stage = Tuple[TaskSpec, ...]


@dataclass(frozen=True)
class ServiceRequestSpec:
    """One service request: stages of tasks separated by barriers.

    Pure data — exactly what the JSONL trace format stores.  ``stages`` is
    a tuple of stages; every task of stage ``N`` must complete before any
    task of stage ``N+1`` starts, and the request completes when the
    slowest task of the final stage is delivered.
    """

    request_id: int
    template: str
    arrival_ps: int
    stages: Tuple[Stage, ...]
    #: absolute SLO budget relative to arrival, or ``None`` (no deadline)
    deadline_ps: Optional[int] = None

    def __post_init__(self) -> None:
        if self.arrival_ps < 0:
            raise ValueError(f"arrival must be non-negative, got {self.arrival_ps}")
        if not self.stages or any(not stage for stage in self.stages):
            raise ValueError("a request needs at least one stage, each with at least one task")
        for stage in self.stages:
            for task in stage:
                if not isinstance(task, TaskSpec):
                    raise ValueError(f"stages must hold TaskSpecs, got {task!r}")
        if self.deadline_ps is not None and self.deadline_ps <= 0:
            raise ValueError(f"deadline must be positive, got {self.deadline_ps}")

    def total_bytes(self) -> int:
        """Sum of all task sizes — the coflow size for CCT binning."""
        return sum(task.size_bytes for stage in self.stages for task in stage)

    def task_count(self) -> int:
        return sum(len(stage) for stage in self.stages)


# ---------------------------------------------------------------------------
# Stage builders (explicit hosts) and templates (sampled hosts)
# ---------------------------------------------------------------------------

def partition_aggregate_stages(
    frontend: int,
    workers: Sequence[int],
    request_bytes: int,
    response_bytes: int,
    aggregators: Sequence[int] = (),
) -> Tuple[Stage, ...]:
    """Stages of a partition-aggregate RPC.

    Flat (no aggregators): scatter ``frontend -> workers`` then the incast
    gather ``workers -> frontend``.  With *aggregators*, the two-level tree
    of web search: requests descend ``frontend -> aggregators -> workers``,
    responses ascend ``workers -> aggregators -> frontend`` (four stages;
    workers are assigned to aggregators round-robin).
    """
    if not workers:
        raise ValueError("partition-aggregate needs at least one worker")
    if not aggregators:
        scatter = tuple(TaskSpec(frontend, w, request_bytes) for w in workers)
        gather = tuple(TaskSpec(w, frontend, response_bytes) for w in workers)
        return (scatter, gather)
    assignment = [(aggregators[i % len(aggregators)], w) for i, w in enumerate(workers)]
    return (
        tuple(TaskSpec(frontend, agg, request_bytes) for agg in aggregators),
        tuple(TaskSpec(agg, w, request_bytes) for agg, w in assignment),
        tuple(TaskSpec(w, agg, response_bytes) for agg, w in assignment),
        tuple(TaskSpec(agg, frontend, response_bytes) for agg in aggregators),
    )


def shuffle_stages(
    senders: Sequence[int],
    receivers: Sequence[int],
    bytes_per_pair: int,
    rounds: int = 1,
) -> Tuple[Stage, ...]:
    """A K-round shuffle coflow: full bipartite transfer each round.

    Round 0 moves ``senders -> receivers`` (every pair), round 1 reverses
    direction, and so on — the alternating map/reduce pattern of chained
    shuffle stages, each gated on the previous one finishing.
    """
    if not senders or not receivers:
        raise ValueError("shuffle needs non-empty sender and receiver sets")
    if set(senders) & set(receivers):
        raise ValueError("shuffle sender and receiver sets must be disjoint")
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    stages: List[Stage] = []
    for r in range(rounds):
        origin, target = (senders, receivers) if r % 2 == 0 else (receivers, senders)
        stages.append(
            tuple(TaskSpec(s, d, bytes_per_pair) for s in origin for d in target)
        )
    return tuple(stages)


def replication_stages(
    source: int, replicas: Sequence[int], size_bytes: int
) -> Tuple[Stage, ...]:
    """Replication fan-out: one stage, *source* writes every replica."""
    if not replicas:
        raise ValueError("replication needs at least one replica")
    return (tuple(TaskSpec(source, r, size_bytes) for r in replicas),)


class ServiceTemplate:
    """A request shape that samples its participants from the host set.

    Subclasses define ``name``, how many hosts a build consumes
    (:meth:`min_hosts`), the mean bytes per request (for load sizing) and
    :meth:`build`, which draws participants from *rng* — part of the
    seeded synthesis draw order.
    """

    name = "service"

    def min_hosts(self) -> int:
        raise NotImplementedError

    def mean_request_bytes(self) -> float:
        raise NotImplementedError

    def build(self, rng: random.Random, hosts: Sequence[int]) -> Tuple[Stage, ...]:
        raise NotImplementedError

    def _sample(self, rng: random.Random, hosts: Sequence[int], count: int) -> List[int]:
        if len(hosts) < count:
            raise ValueError(
                f"{self.name} needs {count} hosts, only {len(hosts)} available"
            )
        return rng.sample(list(hosts), count)


class PartitionAggregateTemplate(ServiceTemplate):
    """Scatter/gather RPC: a frontend queries *fanout* workers (optionally
    through a middle tier of *aggregators*) and waits for the slowest."""

    name = "partition_aggregate"

    def __init__(
        self,
        fanout: int,
        request_bytes: int,
        response_bytes: int,
        aggregators: int = 0,
    ) -> None:
        if fanout < 1:
            raise ValueError(f"fanout must be >= 1, got {fanout}")
        if request_bytes <= 0 or response_bytes <= 0:
            raise ValueError("request/response bytes must be positive")
        if aggregators < 0:
            raise ValueError(f"aggregators must be >= 0, got {aggregators}")
        self.fanout = fanout
        self.request_bytes = request_bytes
        self.response_bytes = response_bytes
        self.aggregators = aggregators

    def min_hosts(self) -> int:
        return 1 + self.aggregators + self.fanout

    def mean_request_bytes(self) -> float:
        per_edge = self.request_bytes + self.response_bytes
        middle = self.aggregators * per_edge if self.aggregators else 0
        return float(self.fanout * per_edge + middle)

    def build(self, rng: random.Random, hosts: Sequence[int]) -> Tuple[Stage, ...]:
        participants = self._sample(rng, hosts, self.min_hosts())
        frontend = participants[0]
        aggs = participants[1 : 1 + self.aggregators]
        workers = participants[1 + self.aggregators :]
        return partition_aggregate_stages(
            frontend, workers, self.request_bytes, self.response_bytes, aggs
        )


class CoflowShuffleTemplate(ServiceTemplate):
    """K-round shuffle between two disjoint groups of *width* hosts."""

    name = "shuffle"

    def __init__(self, width: int, bytes_per_pair: int, rounds: int = 1) -> None:
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        if bytes_per_pair <= 0:
            raise ValueError(f"bytes_per_pair must be positive, got {bytes_per_pair}")
        if rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {rounds}")
        self.width = width
        self.bytes_per_pair = bytes_per_pair
        self.rounds = rounds

    def min_hosts(self) -> int:
        return 2 * self.width

    def mean_request_bytes(self) -> float:
        return float(self.width * self.width * self.bytes_per_pair * self.rounds)

    def build(self, rng: random.Random, hosts: Sequence[int]) -> Tuple[Stage, ...]:
        participants = self._sample(rng, hosts, 2 * self.width)
        return shuffle_stages(
            participants[: self.width],
            participants[self.width :],
            self.bytes_per_pair,
            self.rounds,
        )


class ReplicationFanoutTemplate(ServiceTemplate):
    """A source writing *replicas* copies; durable when the last lands."""

    name = "replication"

    def __init__(self, replicas: int, size_bytes: int) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        if size_bytes <= 0:
            raise ValueError(f"size must be positive, got {size_bytes}")
        self.replicas = replicas
        self.size_bytes = size_bytes

    def min_hosts(self) -> int:
        return 1 + self.replicas

    def mean_request_bytes(self) -> float:
        return float(self.replicas * self.size_bytes)

    def build(self, rng: random.Random, hosts: Sequence[int]) -> Tuple[Stage, ...]:
        participants = self._sample(rng, hosts, 1 + self.replicas)
        return replication_stages(participants[0], participants[1:], self.size_bytes)


# ---------------------------------------------------------------------------
# Open-loop synthesis: seeded Poisson request arrivals
# ---------------------------------------------------------------------------

def window_of(arrival_ps: int, warmup_ps: int, measure_ps: int, start_ps: int = 0) -> str:
    """Window tag for an arrival time — same discipline as the open-loop
    flow generator: warmup before ``warmup_ps``, measurement until
    ``warmup_ps + measure_ps``, drain after."""
    offset = arrival_ps - start_ps
    if offset < warmup_ps:
        return WARMUP
    if offset < warmup_ps + measure_ps:
        return MEASURE
    return DRAIN


def synthesize_requests(
    hosts: Sequence[int],
    templates: Sequence[ServiceTemplate],
    target_load: float,
    link_rate_bps: int,
    warmup_ps: int,
    measure_ps: int,
    drain_ps: int,
    rng: random.Random,
    deadline_ps: Optional[int] = None,
    start_ps: int = 0,
    max_requests: Optional[int] = None,
) -> List[ServiceRequestSpec]:
    """Seeded open-loop request arrivals over *templates*.

    The aggregate Poisson request rate is sized the same way the flow-level
    generator sizes flows — ``target_load`` is offered bytes as a fraction
    of the hosts' aggregate access bandwidth, divided by the mean bytes per
    request (averaged over templates, which are chosen uniformly)::

        rate [req/s] = target_load * len(hosts) * link_rate_bps
                       / (8 * mean_request_bytes)

    Per-arrival draw order (the determinism contract): inter-arrival gap,
    template choice (only when more than one template), template build.
    The full spec list is produced up front, with no simulation
    interleaving, so it can be written to a trace and replayed verbatim.
    """
    if not templates:
        raise ValueError("need at least one service template")
    if not (math.isfinite(target_load) and target_load > 0):
        raise ValueError(f"target_load must be positive and finite, got {target_load!r}")
    if link_rate_bps <= 0:
        raise ValueError(f"link rate must be positive, got {link_rate_bps}")
    if warmup_ps < 0 or drain_ps < 0:
        raise ValueError("warmup/drain windows must be non-negative")
    if measure_ps <= 0:
        raise ValueError(f"measurement window must be positive, got {measure_ps}")
    hosts = list(hosts)
    for template in templates:
        if len(hosts) < template.min_hosts():
            raise ValueError(
                f"template {template.name!r} needs {template.min_hosts()} hosts, "
                f"got {len(hosts)}"
            )
    mean_bytes = sum(t.mean_request_bytes() for t in templates) / len(templates)
    rate_per_second = target_load * len(hosts) * link_rate_bps / (8 * mean_bytes)
    horizon_ps = warmup_ps + measure_ps + drain_ps

    specs: List[ServiceRequestSpec] = []
    clock_ps = start_ps + _gap_ps(rng, rate_per_second)
    while clock_ps < start_ps + horizon_ps:
        if max_requests is not None and len(specs) >= max_requests:
            break
        template = templates[0] if len(templates) == 1 else rng.choice(list(templates))
        specs.append(
            ServiceRequestSpec(
                request_id=len(specs),
                template=template.name,
                arrival_ps=clock_ps,
                stages=template.build(rng, hosts),
                deadline_ps=deadline_ps,
            )
        )
        clock_ps += _gap_ps(rng, rate_per_second)
    return specs


# ---------------------------------------------------------------------------
# Execution: the engine that runs specs over a live network
# ---------------------------------------------------------------------------

@dataclass
class TaskRun:
    """One launched task: the spec plus its live flow."""

    spec: TaskSpec
    flow: object = None
    #: simulation time the completion callback fired (sender-side for NDP,
    #: receiver-side for the baselines; always >= the record finish time)
    done_ps: Optional[int] = None

    @property
    def record(self):
        """The receiver-side :class:`~repro.sim.logger.FlowRecord`."""
        return self.flow.record

    @property
    def completed(self) -> bool:
        return self.flow is not None and self.record.completed


@dataclass
class ServiceRequestRun:
    """Execution state and results of one submitted request."""

    spec: ServiceRequestSpec
    #: ``"warmup"`` / ``"measure"`` / ``"drain"`` by *arrival* time
    window: str
    #: launch time of each started stage (index aligned with spec.stages)
    stage_start_ps: List[int] = field(default_factory=list)
    #: barrier time of each finished stage (last completion callback)
    stage_done_ps: List[int] = field(default_factory=list)
    tasks: List[List[TaskRun]] = field(default_factory=list)
    #: receiver-side finish of the slowest final-stage task, once complete
    completion_ps: Optional[int] = None
    _pending: int = 0

    @property
    def completed(self) -> bool:
        return self.completion_ps is not None

    @property
    def latency_ps(self) -> Optional[int]:
        """Request latency: slowest-leaf delivery minus arrival."""
        if self.completion_ps is None:
            return None
        return self.completion_ps - self.spec.arrival_ps

    @property
    def deadline_met(self) -> Optional[bool]:
        """SLO verdict: ``None`` without a deadline; a request that never
        completed (censored by the horizon) counts as a miss."""
        if self.spec.deadline_ps is None:
            return None
        if self.latency_ps is None:
            return False
        return self.latency_ps <= self.spec.deadline_ps

    def slowest_leaf_ps(self) -> int:
        """Receiver-side finish time of the slowest final-stage task."""
        if not self.completed:
            raise ValueError("request has not completed")
        return max(task.record.finish_time_ps for task in self.tasks[-1])


class ServiceEngine:
    """Executes :class:`ServiceRequestSpec`\\ s over any ``*Network``.

    Stage barriers ride the transports' uniform completion callbacks: a
    stage's tasks launch together, and when the last callback of stage
    ``N`` fires, stage ``N+1`` launches at that event time.  The request's
    completion time is the *receiver-side* finish of its slowest final
    stage task — "a request is only as fast as its slowest leaf".

    Submit every spec before running (arrivals must not be in the past),
    then drive the event list — directly or via :meth:`run_until`.
    """

    def __init__(self, eventlist: EventList, network) -> None:
        self.eventlist = eventlist
        self.network = network
        self.requests: List[ServiceRequestRun] = []
        self.tasks_launched = 0
        self.requests_completed = 0

    # --- submission ------------------------------------------------------------

    def submit(self, spec: ServiceRequestSpec, window: Optional[str] = None) -> ServiceRequestRun:
        """Schedule *spec*'s first stage at its arrival time."""
        if spec.arrival_ps < self.eventlist.now():
            raise ValueError(
                f"request {spec.request_id} arrives at {spec.arrival_ps} ps, "
                f"before the current time {self.eventlist.now()} ps"
            )
        run = ServiceRequestRun(spec=spec, window=window if window is not None else MEASURE)
        self.requests.append(run)
        self.eventlist.schedule(spec.arrival_ps, self._launch_stage, run, 0)
        return run

    def submit_all(
        self,
        specs: Iterable[ServiceRequestSpec],
        window_fn: Optional[Callable[[int], str]] = None,
    ) -> List[ServiceRequestRun]:
        """Submit many specs; *window_fn* maps arrival time to a window tag."""
        return [
            self.submit(
                spec, window_fn(spec.arrival_ps) if window_fn is not None else None
            )
            for spec in specs
        ]

    def run_until(self, horizon_ps: int) -> None:
        """Drive the simulation to an absolute horizon; requests whose final
        stage has not finished by then stay incomplete (censored)."""
        self.eventlist.run(until=horizon_ps)

    # --- execution -------------------------------------------------------------

    def _launch_stage(self, run: ServiceRequestRun, stage_index: int) -> None:
        now = self.eventlist.now()
        run.stage_start_ps.append(now)
        stage = run.spec.stages[stage_index]
        run._pending = len(stage)
        launched: List[TaskRun] = []
        run.tasks.append(launched)
        for task_spec in stage:
            task = TaskRun(spec=task_spec)
            launched.append(task)
            task.flow = self.network.create_flow(
                task_spec.src,
                task_spec.dst,
                task_spec.size_bytes,
                start_time_ps=now,
                on_complete=lambda _endpoint, run=run, idx=stage_index, t=task: (
                    self._task_done(run, idx, t)
                ),
            )
            self.tasks_launched += 1

    def _task_done(self, run: ServiceRequestRun, stage_index: int, task: TaskRun) -> None:
        task.done_ps = self.eventlist.now()
        run._pending -= 1
        if run._pending > 0:
            return
        run.stage_done_ps.append(self.eventlist.now())
        if stage_index + 1 < len(run.spec.stages):
            self._launch_stage(run, stage_index + 1)
        else:
            # final-stage callbacks can fire after receiver delivery (NDP's
            # is sender-side); the max over records is the true slowest leaf
            run.completion_ps = max(
                task.record.finish_time_ps for task in run.tasks[-1]
            )
            self.requests_completed += 1

    # --- analysis --------------------------------------------------------------

    def requests_in_window(self, window: str) -> List[ServiceRequestRun]:
        return [run for run in self.requests if run.window == window]

    def measured_requests(self, completed_only: bool = True) -> List[ServiceRequestRun]:
        """Measurement-window requests; censoring is the caller's to report."""
        runs = self.requests_in_window(MEASURE)
        if completed_only:
            runs = [run for run in runs if run.completed]
        return runs

    def request_digest(self) -> str:
        """SHA-256 over every request's structure *and* timing.

        Hashes, in submission order: request identity (id, template,
        arrival, window, deadline), the completion time (-1 if censored),
        and per launched task its stage, endpoints, size and receiver-side
        finish time (-1 if unfinished).  Equal digests mean equal
        per-request latencies — the handle trace-replay tests assert.
        """
        digest = hashlib.sha256()
        for run in self.requests:
            deadline = run.spec.deadline_ps if run.spec.deadline_ps is not None else -1
            done = run.completion_ps if run.completion_ps is not None else -1
            digest.update(
                f"R{run.spec.request_id},{run.spec.template},{run.spec.arrival_ps},"
                f"{run.window},{deadline},{done};".encode()
            )
            for stage_index, stage in enumerate(run.tasks):
                for task in stage:
                    finish = (
                        task.record.finish_time_ps if task.completed else -1
                    )
                    digest.update(
                        f"t{stage_index},{task.spec.src},{task.spec.dst},"
                        f"{task.spec.size_bytes},{finish};".encode()
                    )
        return digest.hexdigest()
