"""Versioned JSONL traces of service-request workloads.

A trace file freezes a workload — synthesized or recorded — so it replays
bit-identically through the :class:`~repro.workloads.services.ServiceEngine`
later, on another machine, or against a different transport.  The format is
line-oriented JSON:

* **header** (first line): ``{"schema": "repro.service-trace", "version": 1,
  "requests": N, "meta": {...}}`` — ``meta`` is free-form caller context
  (seed, load, fabric, ...);
* **one record per request**, in arrival order: the canonical serialization
  of a :class:`~repro.workloads.services.ServiceRequestSpec` (id, template,
  arrival, deadline, stages as ``[src, dst, size_bytes]`` triples);
* **footer** (last line): ``{"sha256": "<digest>"}`` over the canonical
  request records, so corruption and truncation are detected on read.

Canonical serialization means sorted keys and no whitespace — the digest
of a spec list is well-defined independent of who wrote the file
(:func:`trace_digest`), and ``write → read → write`` is byte-identical.

Every malformed input raises :class:`ValueError` with a message naming the
problem (empty file, bad header, unknown schema or version, truncation,
digest mismatch, malformed record) — a trace that cannot be trusted must
never half-load.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.workloads.services import ServiceRequestSpec, TaskSpec

__all__ = [
    "TRACE_SCHEMA",
    "TRACE_VERSION",
    "TraceFile",
    "request_to_record",
    "record_to_request",
    "trace_digest",
    "write_trace",
    "read_trace",
]

#: schema identifier in every trace header
TRACE_SCHEMA = "repro.service-trace"
#: current format version; readers reject anything else, loudly
TRACE_VERSION = 1


def request_to_record(spec: ServiceRequestSpec) -> Dict[str, object]:
    """The canonical JSON-codable record of one request spec."""
    record: Dict[str, object] = {
        "id": spec.request_id,
        "template": spec.template,
        "arrival_ps": spec.arrival_ps,
        "stages": [
            [[task.src, task.dst, task.size_bytes] for task in stage]
            for stage in spec.stages
        ],
    }
    if spec.deadline_ps is not None:
        record["deadline_ps"] = spec.deadline_ps
    return record


def record_to_request(record: object) -> ServiceRequestSpec:
    """Parse one request record back into a spec; ``ValueError`` if malformed."""
    if not isinstance(record, dict):
        raise ValueError(f"malformed trace record: expected an object, got {record!r}")
    try:
        stages = tuple(
            tuple(TaskSpec(src, dst, size) for src, dst, size in stage)
            for stage in record["stages"]
        )
        return ServiceRequestSpec(
            request_id=record["id"],
            template=record["template"],
            arrival_ps=record["arrival_ps"],
            stages=stages,
            deadline_ps=record.get("deadline_ps"),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise ValueError(f"malformed trace record {record!r}: {error}") from error


def _canonical_line(record: Dict[str, object]) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def trace_digest(specs: Sequence[ServiceRequestSpec]) -> str:
    """SHA-256 over the canonical request records.

    Depends only on the specs — two identical workloads have equal digests
    whether they came from synthesis or from a file round-trip.
    """
    digest = hashlib.sha256()
    for spec in specs:
        digest.update(_canonical_line(request_to_record(spec)).encode())
        digest.update(b"\n")
    return digest.hexdigest()


@dataclass
class TraceFile:
    """A fully-validated trace: requests, caller metadata and the digest."""

    requests: List[ServiceRequestSpec]
    meta: Dict[str, object] = field(default_factory=dict)
    sha256: str = ""


def write_trace(
    path: str,
    specs: Sequence[ServiceRequestSpec],
    meta: Optional[Dict[str, object]] = None,
) -> str:
    """Write *specs* as a versioned JSONL trace; returns the digest."""
    digest = trace_digest(specs)
    header = {
        "schema": TRACE_SCHEMA,
        "version": TRACE_VERSION,
        "requests": len(specs),
        "meta": meta or {},
    }
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(_canonical_line(header) + "\n")
        for spec in specs:
            handle.write(_canonical_line(request_to_record(spec)) + "\n")
        handle.write(_canonical_line({"sha256": digest}) + "\n")
    return digest


def read_trace(path: str) -> TraceFile:
    """Read and fully validate a trace written by :func:`write_trace`.

    Raises ``ValueError`` for anything untrustworthy: empty file, missing
    or foreign header, unsupported version, truncated body or missing
    footer, and any digest mismatch (corruption).
    """
    with open(path, "r", encoding="utf-8") as handle:
        lines = [line for line in (raw.strip() for raw in handle) if line]
    if not lines:
        raise ValueError(f"empty trace file: {path}")

    def parse(line: str, what: str) -> object:
        try:
            return json.loads(line)
        except json.JSONDecodeError as error:
            raise ValueError(f"malformed trace {what} in {path}: {error}") from error

    header = parse(lines[0], "header")
    if not isinstance(header, dict) or "schema" not in header:
        raise ValueError(f"not a service trace (no schema header): {path}")
    if header["schema"] != TRACE_SCHEMA:
        raise ValueError(
            f"not a service trace (schema {header['schema']!r}, "
            f"expected {TRACE_SCHEMA!r}): {path}"
        )
    if header.get("version") != TRACE_VERSION:
        raise ValueError(
            f"unsupported trace version {header.get('version')!r} "
            f"(this reader supports version {TRACE_VERSION}): {path}"
        )
    expected = header.get("requests")
    if not isinstance(expected, int) or expected < 0:
        raise ValueError(f"malformed trace header (bad request count): {path}")

    if len(lines) < 2:
        raise ValueError(f"truncated trace (no digest footer): {path}")
    footer = parse(lines[-1], "footer")
    if not isinstance(footer, dict) or "sha256" not in footer:
        raise ValueError(f"truncated trace (no digest footer): {path}")

    body = lines[1:-1]
    if len(body) != expected:
        raise ValueError(
            f"truncated trace: header promises {expected} requests, "
            f"found {len(body)}: {path}"
        )
    specs = [record_to_request(parse(line, "record")) for line in body]
    digest = trace_digest(specs)
    if digest != footer["sha256"]:
        raise ValueError(
            f"trace digest mismatch (file corrupt?): recorded "
            f"{footer['sha256']}, recomputed {digest}: {path}"
        )
    meta = header.get("meta") or {}
    if not isinstance(meta, dict):
        raise ValueError(f"malformed trace header (meta must be an object): {path}")
    return TraceFile(requests=specs, meta=meta, sha256=digest)
