"""Flow-size distributions.

Figure 23 uses the Facebook *web* workload of Roy et al. [34]: the least
favourable traffic for NDP because packets are small (poor trimming
compression) and there is almost no rack locality.  The exact trace is not
public, so :class:`FacebookWebFlowSizes` synthesises a distribution with the
published shape: the bulk of flows are a few hundred bytes to a few KB
(single RPC responses), a modest fraction are tens of KB, and a thin heavy
tail reaches into the MB range, giving a mean much larger than the median.
DESIGN.md records this substitution.
"""

from __future__ import annotations

import abc
import bisect
import random
from typing import List, Optional, Sequence, Tuple


class FlowSizeDistribution(abc.ABC):
    """Interface: sample one flow size in bytes."""

    @abc.abstractmethod
    def sample(self, rng: random.Random) -> int:
        """Draw a flow size (bytes)."""

    def sample_many(self, rng: random.Random, count: int) -> List[int]:
        """Draw *count* flow sizes."""
        return [self.sample(rng) for _ in range(count)]


class FixedFlowSizes(FlowSizeDistribution):
    """Every flow has the same size (used by most controlled experiments)."""

    def __init__(self, size_bytes: int) -> None:
        if size_bytes <= 0:
            raise ValueError("flow size must be positive")
        self.size_bytes = size_bytes

    def sample(self, rng: random.Random) -> int:
        return self.size_bytes


class EmpiricalFlowSizes(FlowSizeDistribution):
    """Piecewise-linear interpolation of an empirical CDF.

    ``points`` is a list of ``(size_bytes, cumulative_probability)`` pairs
    with increasing sizes and probabilities ending at 1.0.
    """

    def __init__(self, points: Sequence[Tuple[int, float]]) -> None:
        if len(points) < 2:
            raise ValueError("need at least two CDF points")
        sizes = [s for s, _ in points]
        probs = [p for _, p in points]
        if sorted(sizes) != list(sizes) or sorted(probs) != list(probs):
            raise ValueError("CDF points must be sorted")
        if abs(probs[-1] - 1.0) > 1e-9:
            raise ValueError("CDF must end at probability 1.0")
        self.sizes = list(sizes)
        self.probs = list(probs)

    def sample(self, rng: random.Random) -> int:
        u = rng.random()
        index = bisect.bisect_left(self.probs, u)
        if index == 0:
            return max(1, self.sizes[0])
        if index >= len(self.probs):
            return self.sizes[-1]
        p0, p1 = self.probs[index - 1], self.probs[index]
        s0, s1 = self.sizes[index - 1], self.sizes[index]
        if p1 == p0:
            return s1
        fraction = (u - p0) / (p1 - p0)
        return max(1, int(s0 + fraction * (s1 - s0)))

    def mean(self) -> float:
        """Mean of the piecewise-linear distribution (midpoint approximation)."""
        total = 0.0
        for (s0, p0), (s1, p1) in zip(zip(self.sizes, self.probs), zip(self.sizes[1:], self.probs[1:])):
            total += (p1 - p0) * (s0 + s1) / 2
        return total


class FacebookWebFlowSizes(EmpiricalFlowSizes):
    """A synthetic stand-in for the Facebook web flow-size distribution.

    Shape (per the published figures of [34]): ~50% of flows are under about
    1 kB, ~80% under 10 kB, ~95% under 100 kB, with a tail reaching a few MB.
    Median ~600 B, mean a few tens of kB.
    """

    DEFAULT_POINTS: Sequence[Tuple[int, float]] = (
        (64, 0.00),
        (200, 0.15),
        (400, 0.35),
        (600, 0.50),
        (1_000, 0.58),
        (2_000, 0.66),
        (5_000, 0.74),
        (10_000, 0.80),
        (30_000, 0.88),
        (100_000, 0.95),
        (300_000, 0.98),
        (1_000_000, 0.995),
        (3_000_000, 1.00),
    )

    def __init__(self, points: Optional[Sequence[Tuple[int, float]]] = None) -> None:
        super().__init__(points if points is not None else self.DEFAULT_POINTS)
