"""Flow-size distributions.

Every distribution samples **flow sizes in bytes** and exposes
:meth:`FlowSizeDistribution.mean_bytes`, which the open-loop generator
(:mod:`repro.workloads.openloop`) uses to size a Poisson arrival rate for a
target load — the offered load of an open-loop workload is
``arrival_rate * mean_flow_size``, so a distribution that misreports its
mean misloads the fabric.

Three empirical datacenter mixes are provided, all as piecewise-linear
interpolations of their published CDFs:

* :class:`FacebookWebFlowSizes` — the Facebook *web* workload of Roy et
  al. [34] (Figure 23): the least favourable traffic for NDP because packets
  are small (poor trimming compression) and there is almost no rack
  locality.  The exact trace is not public, so the class synthesises a
  distribution with the published shape; DESIGN.md records this
  substitution.
* :class:`WebSearchFlowSizes` — the web-search workload of Alizadeh et al.
  (DCTCP, SIGCOMM 2010, Figure 4), the standard "mostly short queries, a
  fat tail of index updates" mix used by pFabric/pHost/Homa-style load
  sweeps.
* :class:`DataMiningFlowSizes` — the data-mining workload of Greenberg et
  al. (VL2, SIGCOMM 2009), dominated by sub-KB flows by count but by
  multi-MB flows by bytes; the most heavy-tailed of the three.
"""

from __future__ import annotations

import abc
import bisect
import random
from typing import List, Optional, Sequence, Tuple


class FlowSizeDistribution(abc.ABC):
    """Interface: sample one flow size in bytes.

    Implementations must be pure functions of the supplied ``rng`` — the
    open-loop and closed-loop generators rely on that for bit-identical
    seeded replays.
    """

    @abc.abstractmethod
    def sample(self, rng: random.Random) -> int:
        """Draw a flow size (bytes, >= 1)."""

    @abc.abstractmethod
    def mean_bytes(self) -> float:
        """Expected flow size in bytes (analytic, not sampled).

        Used to convert a target byte load into a flow arrival rate; must
        be exact for the distribution as implemented (not the published
        trace it approximates).
        """

    def sample_many(self, rng: random.Random, count: int) -> List[int]:
        """Draw *count* flow sizes."""
        return [self.sample(rng) for _ in range(count)]


class FixedFlowSizes(FlowSizeDistribution):
    """Every flow has the same size (used by most controlled experiments)."""

    def __init__(self, size_bytes: int) -> None:
        if size_bytes <= 0:
            raise ValueError("flow size must be positive")
        self.size_bytes = size_bytes

    def sample(self, rng: random.Random) -> int:
        return self.size_bytes

    def mean_bytes(self) -> float:
        """The fixed size itself."""
        return float(self.size_bytes)


class EmpiricalFlowSizes(FlowSizeDistribution):
    """Piecewise-linear interpolation of an empirical CDF.

    ``points`` is a list of ``(size_bytes, cumulative_probability)`` pairs
    with non-decreasing sizes and probabilities ending at 1.0.  Samples are
    drawn by inverse-transform: a uniform variate is located in the
    probability column and linearly interpolated between the surrounding
    sizes, so every sample lies within ``[max(1, first size), last size]``.
    """

    def __init__(self, points: Sequence[Tuple[int, float]]) -> None:
        if len(points) < 2:
            raise ValueError("need at least two CDF points")
        sizes = [s for s, _ in points]
        probs = [p for _, p in points]
        if sorted(sizes) != list(sizes) or sorted(probs) != list(probs):
            raise ValueError("CDF points must be sorted")
        if abs(probs[-1] - 1.0) > 1e-9:
            raise ValueError("CDF must end at probability 1.0")
        self.sizes = list(sizes)
        self.probs = list(probs)

    def sample(self, rng: random.Random) -> int:
        u = rng.random()
        index = bisect.bisect_left(self.probs, u)
        if index == 0:
            return max(1, self.sizes[0])
        if index >= len(self.probs):
            return self.sizes[-1]
        p0, p1 = self.probs[index - 1], self.probs[index]
        s0, s1 = self.sizes[index - 1], self.sizes[index]
        if p1 == p0:
            return s1
        fraction = (u - p0) / (p1 - p0)
        return max(1, int(s0 + fraction * (s1 - s0)))

    def mean_bytes(self) -> float:
        """Mean of the piecewise-linear distribution.

        Each CDF segment contributes ``(p1 - p0)`` probability mass spread
        uniformly over ``[s0, s1]``, i.e. a segment mean of the midpoint —
        exact for the interpolated distribution actually sampled (the
        trapezoid rule, not an approximation of the source trace).
        """
        total = 0.0
        for (s0, p0), (s1, p1) in zip(zip(self.sizes, self.probs), zip(self.sizes[1:], self.probs[1:])):
            total += (p1 - p0) * (s0 + s1) / 2
        return total


class FacebookWebFlowSizes(EmpiricalFlowSizes):
    """A synthetic stand-in for the Facebook web flow-size distribution.

    Shape (per the published figures of Roy et al. [34]): ~50% of flows are
    under about 1 kB, ~80% under 10 kB, ~95% under 100 kB, with a tail
    reaching a few MB.  Median ~600 B, mean a few tens of kB — the default
    workload of the ``load_fct`` family because its mean is small enough
    that a few simulated milliseconds contain hundreds of arrivals.
    """

    DEFAULT_POINTS: Sequence[Tuple[int, float]] = (
        (64, 0.00),
        (200, 0.15),
        (400, 0.35),
        (600, 0.50),
        (1_000, 0.58),
        (2_000, 0.66),
        (5_000, 0.74),
        (10_000, 0.80),
        (30_000, 0.88),
        (100_000, 0.95),
        (300_000, 0.98),
        (1_000_000, 0.995),
        (3_000_000, 1.00),
    )

    def __init__(self, points: Optional[Sequence[Tuple[int, float]]] = None) -> None:
        super().__init__(points if points is not None else self.DEFAULT_POINTS)


class WebSearchFlowSizes(EmpiricalFlowSizes):
    """The DCTCP web-search workload (Alizadeh et al., SIGCOMM 2010, Fig. 4).

    Query/response traffic from a production search cluster: over half the
    flows are short (tens of kB) query responses, but most *bytes* belong
    to the 1–30 MB background/index-update tail.  Mean ≈ 2 MB — open-loop
    runs using this mix need measurement windows of tens of milliseconds
    (or lowered loads) for the tail flows to complete within the horizon.
    Sizes in bytes; points transcribed from the published CDF as popularised
    by the pFabric/pHost evaluation harnesses.
    """

    DEFAULT_POINTS: Sequence[Tuple[int, float]] = (
        (5_000, 0.00),
        (10_000, 0.15),
        (20_000, 0.20),
        (30_000, 0.30),
        (50_000, 0.40),
        (80_000, 0.53),
        (200_000, 0.60),
        (1_000_000, 0.70),
        (2_000_000, 0.80),
        (5_000_000, 0.90),
        (10_000_000, 0.95),
        (30_000_000, 1.00),
    )

    def __init__(self, points: Optional[Sequence[Tuple[int, float]]] = None) -> None:
        super().__init__(points if points is not None else self.DEFAULT_POINTS)


class DataMiningFlowSizes(EmpiricalFlowSizes):
    """The VL2 data-mining workload (Greenberg et al., SIGCOMM 2009).

    The most heavy-tailed of the standard mixes: ~80% of flows are under
    10 kB (control messages and small reads) yet ~95% of the bytes are in
    flows over 100 kB, with the largest transfers reaching ~1 GB.  Mean
    ≈ 13 MB — as with :class:`WebSearchFlowSizes`, pick loads/windows so
    the arrival rate (which scales as ``1/mean``) still yields enough
    measured flows.  Sizes in bytes; points transcribed from the published
    CDF as popularised by the pFabric/pHost evaluation harnesses.
    """

    DEFAULT_POINTS: Sequence[Tuple[int, float]] = (
        (100, 0.00),
        (180, 0.10),
        (250, 0.20),
        (560, 0.30),
        (900, 0.40),
        (1_100, 0.50),
        (1_870, 0.60),
        (3_160, 0.70),
        (10_000, 0.80),
        (400_000, 0.90),
        (3_160_000, 0.95),
        (100_000_000, 0.98),
        (1_000_000_000, 1.00),
    )

    def __init__(self, points: Optional[Sequence[Tuple[int, float]]] = None) -> None:
        super().__init__(points if points is not None else self.DEFAULT_POINTS)
