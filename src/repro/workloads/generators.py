"""Flow arrival processes.

Three arrival models cover the paper's experiments and the load sweeps
built on top of them:

* :class:`ClosedLoopGenerator` — each host keeps a fixed number of
  connections in flight; when one completes, the next starts after a think
  gap.  Figure 23 uses this with a median 1 ms inter-flow gap and 5 or 10
  simultaneous connections per host.
* :class:`PoissonArrivals` — open-loop Poisson flow arrivals at an explicit
  aggregate rate (flows/second), useful for background-load experiments.
* :class:`~repro.workloads.openloop.OpenLoopGenerator` — the load-sweep
  engine: sizes the Poisson rate from a *target load fraction*, tags flows
  with warmup/measurement/drain windows, and exposes the seeded arrival
  sequence for determinism assertions (see :mod:`repro.workloads.openloop`).

All generators are network-agnostic: they call ``network.create_flow``
through the uniform interface every ``*Network`` builder exposes, and all
randomness flows through one seeded ``random.Random`` so identically-seeded
generators replay identical arrival sequences.
"""

from __future__ import annotations

import math
import random
from typing import Callable, List, Optional, Sequence

from repro.sim.eventlist import EventList
from repro.sim.units import SECOND, seconds
from repro.workloads.flowsize import FlowSizeDistribution

#: longest inter-arrival gap a Poisson process will schedule (one simulated
#: hour).  Extremely low rates (or the far tail of ``expovariate``) can
#: produce gaps beyond any experiment horizon — or, past ~1e292 seconds,
#: a float overflow to ``inf`` that ``int()`` cannot represent.  Clamping
#: keeps ``_next_gap`` total and deterministic; any clamped arrival lands
#: far outside every simulated horizon anyway.
MAX_ARRIVAL_GAP_PS = seconds(3600)


def poisson_gap_ps(rng: random.Random, rate_per_second: float) -> int:
    """One exponential inter-arrival gap in whole picoseconds.

    The single clamp discipline shared by every open-loop arrival process
    (:class:`PoissonArrivals`, :class:`~repro.workloads.openloop.
    OpenLoopGenerator`): exactly one ``rng`` draw per call, floored at one
    picosecond so extreme rates cannot schedule two arrivals at the same
    instant in the wrong order, and capped at :data:`MAX_ARRIVAL_GAP_PS`
    (the ``>=`` comparison also catches a float overflow to ``inf``) so
    tail draws at extremely low rates stay representable.  Clamped or not,
    the arrival sequence stays seeded-identical.
    """
    gap_ps = rng.expovariate(rate_per_second) * SECOND
    if gap_ps >= MAX_ARRIVAL_GAP_PS:  # also catches float('inf')
        return MAX_ARRIVAL_GAP_PS
    return max(1, int(gap_ps))


class ClosedLoopGenerator:
    """Keeps ``connections_per_host`` transfers in flight from every host.

    Arrivals are *closed-loop*: a host only starts its next transfer after
    one of its outstanding transfers completes (plus an exponential think
    gap with mean ``think_time_ps``), so offered load self-throttles under
    congestion — the complement of the open-loop generators, whose arrival
    clock never reacts to the network.
    """

    def __init__(
        self,
        eventlist: EventList,
        network,
        hosts: Sequence[int],
        flow_sizes: FlowSizeDistribution,
        connections_per_host: int = 1,
        think_time_ps: int = 0,
        rng: Optional[random.Random] = None,
        destination_picker: Optional[Callable[[int, random.Random], int]] = None,
        max_flows: Optional[int] = None,
    ) -> None:
        if connections_per_host < 1:
            raise ValueError("connections_per_host must be at least 1")
        self.eventlist = eventlist
        self.network = network
        self.hosts = list(hosts)
        if len(self.hosts) < 2:
            raise ValueError("need at least two hosts")
        self.flow_sizes = flow_sizes
        self.connections_per_host = connections_per_host
        self.think_time_ps = think_time_ps
        self.rng = rng if rng is not None else random.Random(0)
        self.destination_picker = destination_picker or self._random_destination
        self.max_flows = max_flows
        self.flows: List[object] = []
        self.flows_started = 0
        self.flows_completed = 0

    def start(self, at_time_ps: int = 0) -> None:
        """Launch the initial set of connections."""
        for host in self.hosts:
            for _ in range(self.connections_per_host):
                self.eventlist.schedule(at_time_ps, self._start_flow, host)

    def _random_destination(self, src: int, rng: random.Random) -> int:
        dst = src
        while dst == src:
            dst = rng.choice(self.hosts)
        return dst

    def _start_flow(self, src: int) -> None:
        if self.max_flows is not None and self.flows_started >= self.max_flows:
            return
        dst = self.destination_picker(src, self.rng)
        size = self.flow_sizes.sample(self.rng)
        self.flows_started += 1
        flow = self.network.create_flow(
            src, dst, size,
            start_time_ps=self.eventlist.now(),
            on_complete=lambda _endpoint, host=src: self._flow_finished(host),
        )
        self.flows.append(flow)

    def _flow_finished(self, host: int) -> None:
        self.flows_completed += 1
        gap = self.think_time_ps
        if gap > 0:
            # exponential think time with the configured mean keeps hosts
            # desynchronized, approximating the paper's closed-loop arrivals
            gap = int(self.rng.expovariate(1.0 / gap))
        self.eventlist.schedule_in(max(gap, 1), self._start_flow, host)

    def completed_records(self) -> List[object]:
        """Flow records of every completed flow started by this generator."""
        return [flow.record for flow in self.flows if flow.record.completed]


class PoissonArrivals:
    """Open-loop Poisson flow arrivals at a configurable aggregate rate.

    One exponential clock drives the whole process; each arrival draws, in
    this fixed order, the inter-arrival gap, the ``(src, dst)`` pair and
    the flow size from the single ``rng`` — so two identically-seeded
    generators over identical host lists replay the exact same arrival
    sequence (asserted in ``tests/workloads``).  For load-targeted arrivals
    with measurement windows use
    :class:`~repro.workloads.openloop.OpenLoopGenerator`, which builds on
    the same gap discipline.
    """

    def __init__(
        self,
        eventlist: EventList,
        network,
        hosts: Sequence[int],
        flow_sizes: FlowSizeDistribution,
        arrival_rate_per_second: float,
        rng: Optional[random.Random] = None,
        max_flows: Optional[int] = None,
    ) -> None:
        if not (math.isfinite(arrival_rate_per_second) and arrival_rate_per_second > 0):
            raise ValueError(
                f"arrival rate must be positive and finite, "
                f"got {arrival_rate_per_second!r}"
            )
        self.eventlist = eventlist
        self.network = network
        self.hosts = list(hosts)
        if len(self.hosts) < 2:
            raise ValueError("need at least two hosts")
        self.flow_sizes = flow_sizes
        self.rate = arrival_rate_per_second
        self.rng = rng if rng is not None else random.Random(0)
        self.max_flows = max_flows
        self.flows: List[object] = []
        self.flows_started = 0

    def start(self, at_time_ps: int = 0) -> None:
        """Schedule the first arrival."""
        self.eventlist.schedule(at_time_ps + self._next_gap(), self._arrival)

    def _next_gap(self) -> int:
        """Next inter-arrival gap (ps), via the shared :func:`poisson_gap_ps`."""
        return poisson_gap_ps(self.rng, self.rate)

    def _arrival(self) -> None:
        if self.max_flows is not None and self.flows_started >= self.max_flows:
            return
        src, dst = self.rng.sample(self.hosts, 2)
        size = self.flow_sizes.sample(self.rng)
        self.flows_started += 1
        flow = self.network.create_flow(src, dst, size, start_time_ps=self.eventlist.now())
        self.flows.append(flow)
        self.eventlist.schedule_in(self._next_gap(), self._arrival)

    def completed_records(self) -> List[object]:
        """Flow records of every completed flow started by this generator."""
        return [flow.record for flow in self.flows if flow.record.completed]
