"""Workload generation: traffic matrices, flow sizes, arrival processes.

The paper evaluates NDP under a handful of canonical datacenter workloads:

* **permutation** — every host sends to exactly one other host and receives
  from exactly one (the worst case for core load balancing, Figures 14/17/22);
* **random** — every host sends to a uniformly random other host (Figure 4);
* **incast** — N workers answer one frontend simultaneously (Figures 9, 16,
  19, 20);
* **Facebook web workload** — heavy-tailed flow sizes with closed-loop
  arrivals on an oversubscribed fabric (Figure 23), synthesised from the
  published distribution shape of Roy et al. [34];
* **open-loop load sweeps** (the ``load_fct`` family) — empirical flow-size
  mixes (:class:`FacebookWebFlowSizes`, :class:`WebSearchFlowSizes`,
  :class:`DataMiningFlowSizes`) arriving Poisson at a target fraction of
  bisection bandwidth, with warmup/measurement/drain windows
  (:class:`OpenLoopGenerator`, see :mod:`repro.workloads.openloop`);
* **service-level workloads** (the ``rpc_deadline``/``coflow_ct`` families)
  — partition-aggregate RPC trees, K-round shuffles and replication
  fan-out composed as dependency DAGs with per-request latency and SLO
  accounting, plus a versioned JSONL trace format for deterministic
  record/replay (:mod:`repro.workloads.services`,
  :mod:`repro.workloads.trace`).
"""

from repro.workloads.traffic_matrices import (
    incast_pairs,
    permutation_pairs,
    random_pairs,
)
from repro.workloads.flowsize import (
    DataMiningFlowSizes,
    EmpiricalFlowSizes,
    FacebookWebFlowSizes,
    FixedFlowSizes,
    FlowSizeDistribution,
    WebSearchFlowSizes,
)
from repro.workloads.generators import (
    MAX_ARRIVAL_GAP_PS,
    ClosedLoopGenerator,
    PoissonArrivals,
)
from repro.workloads.openloop import OpenLoopFlow, OpenLoopGenerator
from repro.workloads.services import (
    CoflowShuffleTemplate,
    PartitionAggregateTemplate,
    ReplicationFanoutTemplate,
    ServiceEngine,
    ServiceRequestRun,
    ServiceRequestSpec,
    ServiceTemplate,
    TaskSpec,
    synthesize_requests,
)
from repro.workloads.trace import TraceFile, read_trace, trace_digest, write_trace

__all__ = [
    "permutation_pairs",
    "random_pairs",
    "incast_pairs",
    "FlowSizeDistribution",
    "FixedFlowSizes",
    "EmpiricalFlowSizes",
    "FacebookWebFlowSizes",
    "WebSearchFlowSizes",
    "DataMiningFlowSizes",
    "ClosedLoopGenerator",
    "PoissonArrivals",
    "MAX_ARRIVAL_GAP_PS",
    "OpenLoopFlow",
    "OpenLoopGenerator",
    "TaskSpec",
    "ServiceRequestSpec",
    "ServiceTemplate",
    "PartitionAggregateTemplate",
    "CoflowShuffleTemplate",
    "ReplicationFanoutTemplate",
    "ServiceEngine",
    "ServiceRequestRun",
    "synthesize_requests",
    "TraceFile",
    "read_trace",
    "write_trace",
    "trace_digest",
]
