"""Workload generation: traffic matrices, flow sizes, arrival processes.

The paper evaluates NDP under a handful of canonical datacenter workloads:

* **permutation** — every host sends to exactly one other host and receives
  from exactly one (the worst case for core load balancing, Figures 14/17/22);
* **random** — every host sends to a uniformly random other host (Figure 4);
* **incast** — N workers answer one frontend simultaneously (Figures 9, 16,
  19, 20);
* **Facebook web workload** — heavy-tailed flow sizes with closed-loop
  arrivals on an oversubscribed fabric (Figure 23), synthesised from the
  published distribution shape of Roy et al. [34].
"""

from repro.workloads.traffic_matrices import (
    incast_pairs,
    permutation_pairs,
    random_pairs,
)
from repro.workloads.flowsize import (
    FacebookWebFlowSizes,
    FixedFlowSizes,
    FlowSizeDistribution,
)
from repro.workloads.generators import ClosedLoopGenerator, PoissonArrivals

__all__ = [
    "permutation_pairs",
    "random_pairs",
    "incast_pairs",
    "FlowSizeDistribution",
    "FixedFlowSizes",
    "FacebookWebFlowSizes",
    "ClosedLoopGenerator",
    "PoissonArrivals",
]
