"""Open-loop dynamic workloads: load-targeted Poisson arrivals with windows.

This module is the engine behind the ``load_fct`` experiment family: it
drives a network with continuously arriving flows whose aggregate rate is
sized from a **target load fraction** rather than an absolute flows/second
number, and applies the standard warmup / measurement / drain discipline of
simulation load sweeps (flows are tagged by the window their *arrival*
falls in, and only measurement-window flows are analysed).

Load definition
---------------
``target_load`` is the offered byte rate as a fraction of the hosts'
aggregate access bandwidth::

    arrival_rate [flows/s] = target_load * len(hosts) * link_rate_bps
                             / (8 * flow_sizes.mean_bytes())

For the fully-provisioned Clos fabrics used here this is also the load on
the fabric's **bisection bandwidth** under uniform random traffic: the
bisection capacity is half the aggregate access bandwidth, and a uniformly
random destination crosses the bisection with probability one half, so the
two factors of two cancel — ``target_load=0.6`` offers 60% of bisection
capacity.  On an oversubscribed fabric the same definition holds for the
access layer, but the ToR uplinks saturate earlier by the oversubscription
factor.

Determinism
-----------
All randomness flows through one seeded master RNG.  ``all_to_all`` mode
uses a single exponential clock (draw order per arrival: gap, source,
destination, size); ``per_host`` mode derives one child RNG per host from
the master RNG *in host order* at construction time, then runs an
independent per-host clock at ``rate / len(hosts)`` (draw order per
arrival: gap, destination, size).  Identically-seeded generators therefore
replay byte-identical arrival sequences — :meth:`OpenLoopGenerator.
arrival_digest` exposes a SHA-256 over the sequence so experiments can
assert it cheaply across cold / cached / parallel runs.
"""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.sim.eventlist import EventList
from repro.workloads.flowsize import FlowSizeDistribution
from repro.workloads.generators import poisson_gap_ps as _gap_ps

#: window tags, in chronological order
WARMUP, MEASURE, DRAIN = "warmup", "measure", "drain"

#: source/destination matrix modes
ALL_TO_ALL, PER_HOST = "all_to_all", "per_host"


@dataclass(slots=True)
class OpenLoopFlow:
    """One arrival produced by the generator, tagged with its window."""

    flow: object
    src: int
    dst: int
    size_bytes: int
    arrival_ps: int
    #: ``"warmup"`` / ``"measure"`` / ``"drain"`` by *arrival* time
    window: str

    @property
    def record(self):
        """The receiver-side :class:`~repro.sim.logger.FlowRecord`."""
        return self.flow.record


class OpenLoopGenerator:
    """Open-loop Poisson arrivals sized from a target load fraction.

    Parameters
    ----------
    eventlist, network, hosts:
        The simulation, any ``*Network`` builder (NDP or baseline — only
        ``create_flow`` is used), and the participating host ids.
    flow_sizes:
        A :class:`~repro.workloads.flowsize.FlowSizeDistribution`; its
        :meth:`~repro.workloads.flowsize.FlowSizeDistribution.mean_bytes`
        converts the byte load into a flow rate.
    target_load:
        Offered load as a fraction of aggregate access bandwidth (see the
        module docstring for the bisection-bandwidth equivalence).  Must be
        positive; values above 1.0 are allowed (deliberate overload) but
        the queues, not the generator, then set the delivered rate.
    link_rate_bps:
        Access-link rate used in the load→rate conversion (normally
        ``network.topology.link_rate_bps``).
    warmup_ps / measure_ps / drain_ps:
        Window durations.  Arrivals run through all three windows (the
        drain keeps steady-state contention alive for late measured
        flows); the horizon is their sum and ``measure_ps`` must be
        positive.  An empty measurement window — no arrival landing inside
        it — is legal and yields an empty :meth:`measured_records`.
    matrix:
        ``"all_to_all"`` (one aggregate clock, uniformly random src→dst
        pairs) or ``"per_host"`` (independent per-host clocks at
        ``1/len(hosts)`` of the aggregate rate, uniformly random
        destinations).
    rng:
        Seeded master RNG; defaults to ``random.Random(0)``.
    max_flows:
        Optional safety cap on total arrivals (the generator goes quiet
        once reached).
    """

    def __init__(
        self,
        eventlist: EventList,
        network,
        hosts: Sequence[int],
        flow_sizes: FlowSizeDistribution,
        target_load: float,
        link_rate_bps: int,
        warmup_ps: int,
        measure_ps: int,
        drain_ps: int = 0,
        matrix: str = ALL_TO_ALL,
        rng: Optional[random.Random] = None,
        max_flows: Optional[int] = None,
    ) -> None:
        if not (math.isfinite(target_load) and target_load > 0):
            raise ValueError(f"target_load must be positive and finite, got {target_load!r}")
        if link_rate_bps <= 0:
            raise ValueError(f"link rate must be positive, got {link_rate_bps}")
        if warmup_ps < 0 or drain_ps < 0:
            raise ValueError("warmup/drain windows must be non-negative")
        if measure_ps <= 0:
            raise ValueError(f"measurement window must be positive, got {measure_ps}")
        if matrix not in (ALL_TO_ALL, PER_HOST):
            raise ValueError(f"matrix must be {ALL_TO_ALL!r} or {PER_HOST!r}, got {matrix!r}")
        self.eventlist = eventlist
        self.network = network
        self.hosts = list(hosts)
        if len(self.hosts) < 2:
            raise ValueError("need at least two hosts")
        self.flow_sizes = flow_sizes
        self.target_load = target_load
        self.link_rate_bps = link_rate_bps
        self.warmup_ps = warmup_ps
        self.measure_ps = measure_ps
        self.drain_ps = drain_ps
        self.matrix = matrix
        self.rng = rng if rng is not None else random.Random(0)
        self.max_flows = max_flows

        mean_bytes = flow_sizes.mean_bytes()
        if not (math.isfinite(mean_bytes) and mean_bytes > 0):
            raise ValueError(f"flow-size mean must be positive and finite, got {mean_bytes!r}")
        #: offered bits/second across all hosts
        self.offered_load_bps = target_load * len(self.hosts) * link_rate_bps
        #: aggregate Poisson arrival rate, flows/second
        self.arrival_rate_per_second = self.offered_load_bps / (8 * mean_bytes)

        # per_host mode: one child RNG per host, derived in host order at
        # construction so the derivation itself is part of the seeded state
        self._host_rngs: List[random.Random] = []
        if matrix == PER_HOST:
            self._host_rngs = [
                random.Random(self.rng.randrange(2**62)) for _ in self.hosts
            ]

        self.flows: List[OpenLoopFlow] = []
        self.flows_started = 0
        self._started = False
        self._start_time_ps = 0

    # --- windows ---------------------------------------------------------------

    @property
    def horizon_ps(self) -> int:
        """Duration of warmup + measurement + drain, relative to start."""
        return self.warmup_ps + self.measure_ps + self.drain_ps

    def window_of(self, time_ps: int) -> str:
        """Window tag for an absolute simulation time (arrival classification)."""
        offset = time_ps - self._start_time_ps
        if offset < self.warmup_ps:
            return WARMUP
        if offset < self.warmup_ps + self.measure_ps:
            return MEASURE
        return DRAIN

    # --- arrival process -------------------------------------------------------

    def start(self, at_time_ps: int = 0) -> None:
        """Begin the arrival process; windows are measured from *at_time_ps*."""
        if self._started:
            raise RuntimeError("generator already started")
        self._started = True
        self._start_time_ps = at_time_ps
        if self.matrix == ALL_TO_ALL:
            self.eventlist.schedule(
                at_time_ps + _gap_ps(self.rng, self.arrival_rate_per_second),
                self._arrival,
                None,
            )
        else:
            per_host_rate = self.arrival_rate_per_second / len(self.hosts)
            for index in range(len(self.hosts)):
                self.eventlist.schedule(
                    at_time_ps + _gap_ps(self._host_rngs[index], per_host_rate),
                    self._arrival,
                    index,
                )

    def run(self) -> None:
        """Drive the simulation through the full warmup+measure+drain horizon."""
        self.eventlist.run(until=self._start_time_ps + self.horizon_ps)

    def _past_horizon(self) -> bool:
        return self.eventlist.now() >= self._start_time_ps + self.horizon_ps

    def _arrival(self, index: Optional[int]) -> None:
        """One arrival of either clock: ``index`` is ``None`` for the
        aggregate (all-to-all) process, or the host index of a per-host
        process.  Single implementation so the guard condition and draw
        order — part of the determinism contract — cannot diverge between
        the two matrix modes.
        """
        if self._past_horizon() or (
            self.max_flows is not None and self.flows_started >= self.max_flows
        ):
            return
        if index is None:
            rng, rate = self.rng, self.arrival_rate_per_second
            src = rng.choice(self.hosts)
        else:
            rng = self._host_rngs[index]
            rate = self.arrival_rate_per_second / len(self.hosts)
            src = self.hosts[index]
        dst = src
        while dst == src:
            dst = rng.choice(self.hosts)
        self._launch(src, dst, self.flow_sizes.sample(rng))
        self.eventlist.schedule_in(_gap_ps(rng, rate), self._arrival, index)

    def _launch(self, src: int, dst: int, size: int) -> None:
        now = self.eventlist.now()
        flow = self.network.create_flow(src, dst, size, start_time_ps=now)
        self.flows_started += 1
        self.flows.append(
            OpenLoopFlow(
                flow=flow, src=src, dst=dst, size_bytes=size,
                arrival_ps=now, window=self.window_of(now),
            )
        )

    # --- analysis --------------------------------------------------------------

    def flows_in_window(self, window: str) -> List[OpenLoopFlow]:
        """All arrivals tagged with *window* (``"warmup"``/``"measure"``/``"drain"``)."""
        return [entry for entry in self.flows if entry.window == window]

    def measured_records(self, completed_only: bool = True) -> List[object]:
        """Flow records of measurement-window arrivals.

        ``completed_only`` (the default) keeps only flows that finished
        within the simulated horizon — the population slowdown metrics are
        computed over; pass ``False`` to audit censoring (how many measured
        flows the drain window failed to finish).
        """
        records = [entry.record for entry in self.flows_in_window(MEASURE)]
        if completed_only:
            records = [record for record in records if record.completed]
        return records

    def arrival_digest(self) -> str:
        """SHA-256 hex digest of the full arrival sequence.

        Hashes ``(arrival_ps, src, dst, size_bytes, window)`` for every
        arrival in creation order — two runs with the same seed, hosts and
        parameters must produce equal digests (the determinism handle the
        ``load_fct`` family stores in its results).
        """
        digest = hashlib.sha256()
        for entry in self.flows:
            digest.update(
                f"{entry.arrival_ps},{entry.src},{entry.dst},"
                f"{entry.size_bytes},{entry.window};".encode()
            )
        return digest.hexdigest()
