"""Command-line entry point for regenerating the paper's experiments.

Usage::

    python -m repro.cli list                 # show every available experiment
    python -m repro.cli fig14                # regenerate Figure 14 and print it
    python -m repro.cli fig21 fig10          # several experiments in one go

Each experiment name maps to a generator in :mod:`repro.harness.figures`;
the CLI runs it with its default (laptop-friendly) scale and pretty-prints
the resulting rows.  The benchmarks in ``benchmarks/`` run the same
generators with shape assertions; this entry point is for interactive
exploration.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, Iterable, Mapping, Sequence

from repro.harness import figures

#: experiment name -> (description, callable)
EXPERIMENTS: Dict[str, tuple[str, Callable[[], object]]] = {
    "fig2": ("CP congestion collapse vs the NDP switch", figures.figure2_switch_overload),
    "fig4": ("delivery latency CDF (permutation/random/incast)", figures.figure4_latency_cdf),
    "fig8": ("1 KB RPC latency across stacks", figures.figure8_rpc_latency),
    "fig9": ("7:1 incast on the testbed topology", figures.figure9_testbed_incast),
    "fig10": ("receiver-side prioritization of a short flow", figures.figure10_prioritization),
    "fig11": ("throughput vs initial window", figures.figure11_initial_window_throughput),
    "fig12": ("pull spacing distribution", figures.figure12_pull_spacing),
    "fig13": ("incast FCT with jittered pulls", figures.figure13_incast_pull_jitter),
    "fig14": ("permutation throughput across protocols", figures.figure14_permutation_throughput),
    "fig15": ("90 KB FCT with background load", figures.figure15_short_flow_fct),
    "fig16": ("incast completion vs number of senders", figures.figure16_incast_scaling),
    "fig17": ("IW / buffer-size sensitivity", figures.figure17_buffer_sensitivity),
    "fig19": ("collateral damage of an incast (goodput traces)", figures.figure19_collateral_damage),
    "fig20": ("very large incasts: overhead and RTX mechanisms", figures.figure20_large_incast),
    "fig21": ("sender-limited traffic throughput table", figures.figure21_sender_limited),
    "fig22": ("permutation with a degraded core link", figures.figure22_asymmetry),
    "fig23": ("oversubscribed fabric, web workload", figures.figure23_oversubscribed_web),
    "phost": ("NDP vs pHost (no trimming)", figures.phost_comparison),
    "scaling": ("permutation utilization vs topology size", figures.scaling_utilization),
    "uplinks": ("where packets get trimmed (load balancing)", figures.uplink_trimming_study),
}


def main(argv: Sequence[str] | None = None) -> int:
    """Run the requested experiments and print their results."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli",
        description="Regenerate experiments from the NDP paper (SIGCOMM 2017).",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment names (e.g. fig14), or 'list' to enumerate them",
    )
    args = parser.parse_args(argv)

    if not args.experiments or args.experiments == ["list"]:
        _print_catalogue()
        return 0

    unknown = [name for name in args.experiments if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        _print_catalogue()
        return 2

    for name in args.experiments:
        description, generator = EXPERIMENTS[name]
        print(f"\n### {name} — {description}")
        started = time.time()
        result = generator()
        elapsed = time.time() - started
        _print_result(result)
        print(f"({elapsed:.1f} s)")
    return 0


def _print_catalogue() -> None:
    print("available experiments:")
    for name, (description, _fn) in EXPERIMENTS.items():
        print(f"  {name:8s} {description}")


def _print_result(result: object) -> None:
    if isinstance(result, Mapping):
        for key, value in result.items():
            print(f"  {key}: {_summarize(value)}")
    elif isinstance(result, Iterable) and not isinstance(result, (str, bytes)):
        for row in result:
            print(f"  {_summarize(row)}")
    else:
        print(f"  {result!r}")


def _summarize(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    if isinstance(value, Mapping):
        return "{" + ", ".join(f"{k}: {_summarize(v)}" for k, v in value.items()) + "}"
    if isinstance(value, list) and len(value) > 8:
        return f"[{len(value)} values, min={min(value):.2f}, max={max(value):.2f}]"
    return str(value)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in examples
    raise SystemExit(main())
