"""Command-line entry point for regenerating the paper's experiments.

Usage::

    python -m repro.cli list                 # show every available experiment
    python -m repro.cli fig14                # regenerate Figure 14 and print it
    python -m repro.cli fig21 fig10          # several experiments in one go
    python -m repro.cli all --jobs 4         # every experiment, 4 workers
    python -m repro.cli fig16 --no-cache     # force a fresh simulation
    python -m repro.cli sweep fig16 --set response_bytes=90000,450000 \\
        --set seed=1,2 --jobs 4              # user-defined parameter grid
    python -m repro.cli render --out artifacts # every registered figure ->
                                             #   CSV + Vega-Lite + index.html
    python -m repro.cli render fig16 perf --out artifacts --jobs 4
    python -m repro.cli shard fattree --shards 4 --seed 2   # partitioned run
    python -m repro.cli shard fattree --shards 2 --reference # + digest diff

The ``shard`` subcommand runs a scenario from
:mod:`repro.harness.shard` partitioned across ``--shards`` worker
processes in conservative lookahead-bounded time windows; with
``--reference`` it re-runs the scenario in a single process and fails
(exit 1) unless the merged shard digest matches bit-for-bit — the
determinism smoke check CI runs on every push.

Each experiment name maps to a generator in :mod:`repro.harness.figures`.
Experiments are decomposed into independent per-point runs (see
:mod:`repro.harness.sweep`): ``--jobs N`` fans those runs across worker
processes, and results are memoized in a persistent on-disk cache
(``$REPRO_CACHE_DIR``, default ``~/.cache/repro``) keyed by experiment,
parameters and a fingerprint of the simulator source — a second invocation
of ``all`` is served from disk in seconds.  ``--no-cache`` (or
``REPRO_NO_CACHE=1``) bypasses the cache; results are bit-identical either
way.

The ``sweep`` subcommand runs one experiment over the cartesian product of
user-supplied parameter values.  ``--set key=v1,v2`` sweeps ``key`` over
the listed values (each parsed as JSON, so ``--set 'windows=[1,2,4]'``
passes a list as a *single* value); valid keys are the keyword arguments
of the experiment's generator.  As a shorthand, ``--set`` with a single
experiment name implies ``sweep``::

    python -m repro.cli load_fct --set load=0.3,0.6,0.9

Protocol-parametric families accept ``--set protocol=...`` with any
registered transport name, case-insensitively (``ndp``, ``DCTCP``,
``phost``, ...; see :mod:`repro.transports.registry`)::

    python -m repro.cli load_fct --set protocol=ndp,dctcp,dcqcn,phost,mptcp,tcp

Grid points whose (protocol, family) combination the registry knows to be
meaningless — e.g. DCQCN, which needs an intact PFC fabric, under a
link-severing failure family — are reported as skipped with the reason
instead of failing the sweep.

The ``render`` subcommand is the results-to-figures pipeline
(:mod:`repro.analysis`): it materializes each registered figure as a
canonical CSV plus a Vega-Lite spec and writes one ``index.html`` over
them all into ``--out DIR``.  Renders consume the same result cache as
plain runs, and the written artifacts are byte-identical across cold,
cached and ``--jobs N`` executions (locked down by
``tests/analysis/test_golden.py``).  The ``perf`` figure charts the
events/sec trajectory recorded in ``BENCH_history.jsonl`` by
``benchmarks/perf/run_perf.py``.

See ``docs/experiments.md`` for the catalogue of experiment families, the
claims they pin and worked invocations.
"""

from __future__ import annotations

import argparse
import inspect
import itertools
import json
import os
import sys
import time
from typing import Any, Callable, Dict, Iterable, List, Mapping, Sequence

from repro.harness import figures, sweep
from repro.transports.registry import IncompatibleTransportError

#: experiment name -> (description, callable)
EXPERIMENTS: Dict[str, tuple[str, Callable[[], object]]] = {
    "fig2": ("CP congestion collapse vs the NDP switch", figures.figure2_switch_overload),
    "fig4": ("delivery latency CDF (permutation/random/incast)", figures.figure4_latency_cdf),
    "fig8": ("1 KB RPC latency across stacks", figures.figure8_rpc_latency),
    "fig9": ("7:1 incast on the testbed topology", figures.figure9_testbed_incast),
    "fig10": ("receiver-side prioritization of a short flow", figures.figure10_prioritization),
    "fig11": ("throughput vs initial window", figures.figure11_initial_window_throughput),
    "fig12": ("pull spacing distribution", figures.figure12_pull_spacing),
    "fig13": ("incast FCT with jittered pulls", figures.figure13_incast_pull_jitter),
    "fig14": ("permutation throughput across protocols", figures.figure14_permutation_throughput),
    "fig15": ("90 KB FCT with background load", figures.figure15_short_flow_fct),
    "fig16": ("incast completion vs number of senders", figures.figure16_incast_scaling),
    "fig17": ("IW / buffer-size sensitivity", figures.figure17_buffer_sensitivity),
    "fig19": ("collateral damage of an incast (goodput traces)", figures.figure19_collateral_damage),
    "fig20": ("very large incasts: overhead and RTX mechanisms", figures.figure20_large_incast),
    "fig21": ("sender-limited traffic throughput table", figures.figure21_sender_limited),
    "fig22": ("permutation with a degraded core link", figures.figure22_asymmetry),
    "fig23": ("oversubscribed fabric, web workload", figures.figure23_oversubscribed_web),
    "phost": ("NDP vs pHost (no trimming)", figures.phost_comparison),  # transport-name-ok: experiment family
    "scaling": ("permutation utilization vs topology size", figures.scaling_utilization),
    "uplinks": ("where packets get trimmed (load balancing)", figures.uplink_trimming_study),
    "failures_degraded": ("permutation FCTs over a degraded core link", figures.failures_degraded),
    "failures_recovery": ("mid-transfer link failure + recovery timeline", figures.failures_recovery),
    "failures_klinks": ("permutation FCTs with k core links down", figures.failures_klinks),
    "load_fct": ("open-loop load sweep: size-binned FCT slowdowns", figures.load_fct_slowdowns),
    "rpc_deadline": ("partition-aggregate RPCs: SLO-met fraction vs load", figures.rpc_deadline_slo),
    "coflow_ct": ("K-round shuffle coflows: completion times vs load", figures.coflow_ct_times),
}


def main(argv: Sequence[str] | None = None) -> int:
    """Run the requested experiments and print their results."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli",
        description="Regenerate experiments from the NDP paper (SIGCOMM 2017).",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment names (e.g. fig14), 'all' for every experiment, "
        "'list' to enumerate them, or 'sweep EXPERIMENT' for a parameter grid",
    )
    parser.add_argument(
        "--jobs", "-j", type=int, default=1, metavar="N",
        help="fan independent simulation runs across N worker processes",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the persistent result cache (~/.cache/repro or $REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--set", action="append", default=[], metavar="KEY=V1,V2,...",
        dest="grid", help="(sweep only) sweep a generator parameter over values",
    )
    parser.add_argument(
        "--quiet", "-q", action="store_true",
        help="suppress per-run progress lines",
    )
    parser.add_argument(
        "--out", metavar="DIR",
        help="(render only) directory to write figure artifacts into",
    )
    parser.add_argument(
        "--png", action="store_true",
        help="(render only) also rasterize plots, when matplotlib is available",
    )
    parser.add_argument(
        "--shards", type=int, default=2, metavar="N",
        help="(shard only) number of worker processes to partition across",
    )
    parser.add_argument(
        "--seed", type=int, default=1,
        help="(shard only) seed for the sharded scenario",
    )
    parser.add_argument(
        "--reference", action="store_true",
        help="(shard only) also run the single-process reference and fail "
        "unless its digest matches the sharded run bit-for-bit",
    )
    args = parser.parse_args(argv)

    if args.jobs < 1:
        print("--jobs must be >= 1", file=sys.stderr)
        return 2

    if not args.experiments or args.experiments == ["list"]:
        _print_catalogue()
        return 0

    cache = None if args.no_cache else sweep.default_cache()

    if args.experiments[0] == "render":
        return _run_render(
            args.experiments[1:], args.out, args.jobs, cache, args.quiet, args.png
        )
    if args.experiments[0] == "sweep":
        return _run_sweep(args.experiments[1:], args.grid, args.jobs, cache, args.quiet)
    if args.experiments[0] == "shard":
        return _run_shard(
            args.experiments[1:], args.shards, args.seed, args.grid, args.reference
        )
    if args.grid:
        # shorthand: `load_fct --set load=0.3,0.6` == `sweep load_fct --set ...`
        # (an unknown single name falls through to _run_sweep's usage line,
        # which lists the valid experiments)
        if len(args.experiments) == 1:
            return _run_sweep(args.experiments, args.grid, args.jobs, cache, args.quiet)
        print("--set needs a single experiment name (or the 'sweep' subcommand)",
              file=sys.stderr)
        return 2

    if "all" in args.experiments:
        if len(args.experiments) > 1:
            print("'all' already selects every experiment; do not combine it "
                  "with other names", file=sys.stderr)
            return 2
        names = list(EXPERIMENTS)
    else:
        names = list(args.experiments)
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        _print_catalogue()
        return 2

    return _run_experiments(names, args.jobs, cache, args.quiet)


def _run_experiments(names: List[str], jobs: int, cache, quiet: bool) -> int:
    """Fan every figure's run specs across one worker pool, then assemble."""
    plans = {name: figures.FIGURE_PLANS[name]() for name in names}
    all_specs: List[sweep.RunSpec] = []
    for name in names:
        all_specs.extend(plans[name].specs)

    started = time.time()
    baseline = _cache_counters(cache)
    progress = None if quiet else _progress_printer(len(all_specs))
    try:
        results = sweep.run_specs(all_specs, jobs=jobs, cache=cache, on_result=progress)
    except RuntimeError as error:
        print(f"error: {error}", file=sys.stderr)
        if cache is not None:
            print("(completed runs were cached and will be reused)", file=sys.stderr)
        return 1

    offset = 0
    for name in names:
        plan = plans[name]
        figure_results = results[offset:offset + len(plan.specs)]
        offset += len(plan.specs)
        description, _generator = EXPERIMENTS[name]
        print(f"\n### {name} — {description}")
        _print_result(plan.assemble(figure_results))
    _print_run_summary(len(all_specs), cache, baseline, started)
    return 0


def _run_sweep(
    positional: List[str], grid_args: List[str], jobs: int, cache, quiet: bool
) -> int:
    """Run one experiment over the cartesian product of ``--set`` values."""
    if len(positional) != 1 or positional[0] not in figures.FIGURE_PLANS:
        known = ", ".join(figures.FIGURE_PLANS)
        print(f"usage: sweep EXPERIMENT --set key=v1,v2 (experiments: {known})",
              file=sys.stderr)
        return 2
    name = positional[0]
    plan_builder = figures.FIGURE_PLANS[name]
    valid = set(inspect.signature(plan_builder).parameters)
    try:
        grid = _parse_grid(grid_args)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    invalid = [key for key in grid if key not in valid]
    if invalid:
        print(
            f"unknown parameter(s) for {name}: {', '.join(invalid)} "
            f"(valid: {', '.join(sorted(valid))})",
            file=sys.stderr,
        )
        return 2

    keys = list(grid)
    combos = [
        dict(zip(keys, values))
        for values in itertools.product(*(grid[key] for key in keys))
    ]
    # Build each grid point's plan independently: a combination the transport
    # registry rejects (e.g. protocol=dcqcn under a link-severing family) is
    # skipped with its reason rather than failing the whole sweep.  The skip
    # set is deterministic — it depends only on the grid, in product order.
    built: List[tuple] = []  # (combo, plan or None, skip reason or None)
    for combo in combos:
        try:
            built.append((combo, plan_builder(**combo), None))
        except IncompatibleTransportError as error:
            built.append((combo, None, str(error)))
        except Exception as error:
            print(f"could not build {name} specs from the given grid: {error}",
                  file=sys.stderr)
            return 2
    all_specs: List[sweep.RunSpec] = []
    for _combo, plan, _reason in built:
        if plan is not None:
            all_specs.extend(plan.specs)

    started = time.time()
    baseline = _cache_counters(cache)
    progress = None if quiet else _progress_printer(len(all_specs))
    try:
        results = sweep.run_specs(all_specs, jobs=jobs, cache=cache, on_result=progress)
    except RuntimeError as error:
        print(f"error: {error}", file=sys.stderr)
        print("(check the swept values match the parameter's expected shape; "
              "completed runs were cached)", file=sys.stderr)
        return 1

    offset = 0
    skipped = 0
    for combo, plan, reason in built:
        label = ", ".join(f"{key}={value}" for key, value in combo.items()) or "defaults"
        if plan is None:
            skipped += 1
            print(f"\n### {name} [{label}] — skipped: {reason}")
            continue
        combo_results = results[offset:offset + len(plan.specs)]
        offset += len(plan.specs)
        print(f"\n### {name} [{label}]")
        _print_result(plan.assemble(combo_results))
    if skipped:
        print(
            f"\n{skipped} of {len(built)} grid points skipped "
            f"(incompatible protocol/family combinations)"
        )
    _print_run_summary(len(all_specs), cache, baseline, started)
    return 0


def _run_shard(
    positional: List[str],
    num_shards: int,
    seed: int,
    grid_args: List[str],
    reference: bool,
) -> int:
    """Run one sharded scenario; optionally diff against the reference.

    ``--set key=value`` forwards scenario keyword arguments (single values,
    not sweeps).  With ``--reference``, the same scenario also runs in one
    process and the merged N-shard digest must match it bit-for-bit — the
    CI smoke invocation.
    """
    from repro.harness.shard import SHARD_SCENARIOS, run_reference, run_sharded

    if len(positional) != 1 or positional[0] not in SHARD_SCENARIOS:
        known = ", ".join(SHARD_SCENARIOS)
        print(f"usage: shard SCENARIO [--shards N] [--seed S] [--reference] "
              f"[--set key=value] (scenarios: {known})", file=sys.stderr)
        return 2
    name = positional[0]
    builder = SHARD_SCENARIOS[name]
    valid = set(inspect.signature(builder).parameters) - {
        "eventlist", "num_shards", "seed", "owned_shard"
    }
    try:
        grid = _parse_grid(grid_args)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    problems = [key for key in grid if key not in valid]
    if problems:
        print(f"unknown parameter(s) for {name}: {', '.join(problems)} "
              f"(valid: {', '.join(sorted(valid))})", file=sys.stderr)
        return 2
    multi = [key for key, values in grid.items() if len(values) != 1]
    if multi:
        print(f"shard takes a single value per --set key, got several for: "
              f"{', '.join(multi)}", file=sys.stderr)
        return 2
    kwargs = {key: values[0] for key, values in grid.items()}

    started = time.time()
    result = run_sharded(name, num_shards, seed=seed, scenario_kwargs=kwargs)
    print(f"scenario: {name} (seed {seed}, {num_shards} shard(s))")
    print(f"  digest: {result.digest}")
    print(f"  windows: {result.windows} (lookahead {result.lookahead_ps} ps)")
    print(f"  events: {result.events_executed} "
          f"({result.events_per_second:,.0f} ev/s wall, "
          f"{result.aggregate_events_per_second:,.0f} ev/s aggregate)")
    print(f"  flows: {result.completed_flows}/{result.total_flows} complete, "
          f"{result.boundary_packets} boundary packets")
    for label, stats in result.slowdown_summary.items():
        print(f"  slowdown[{label}]: {_summarize(stats)}")

    if reference:
        reference_digest, _scenario = run_reference(
            name, seed=seed, scenario_kwargs=kwargs
        )
        if reference_digest != result.digest:
            print(f"DIGEST MISMATCH: reference {reference_digest} != "
                  f"{num_shards}-shard {result.digest}", file=sys.stderr)
            return 1
        print(f"  reference digest matches ({num_shards}-shard == 1-process)")
    print(f"\ndone in {time.time() - started:.1f} s")
    return 0


def _run_render(
    names: List[str], out_dir: str | None, jobs: int, cache, quiet: bool, png: bool
) -> int:
    """Materialize figure artifacts (CSV + Vega-Lite + HTML index)."""
    from repro import analysis

    if not out_dir:
        print("render requires --out DIR (where to write the artifacts)",
              file=sys.stderr)
        return 2
    if not names:
        names = list(analysis.REGISTERED_FIGURES)
    unknown = [name for name in names if name not in analysis.REGISTERED_FIGURES]
    if unknown:
        print(
            f"unknown figure(s): {', '.join(unknown)} "
            f"(registered: {', '.join(analysis.REGISTERED_FIGURES)})",
            file=sys.stderr,
        )
        return 2

    started = time.time()
    baseline = _cache_counters(cache)
    total_specs = sum(
        len(figures.FIGURE_PLANS[figure.family]().specs)
        for figure in (analysis.REGISTERED_FIGURES[name] for name in names)
        if figure.family is not None
    )
    progress = None if quiet else _progress_printer(total_specs)
    try:
        report = analysis.render_figures(
            names, out_dir, jobs=jobs, cache=cache, on_result=progress, png=png
        )
    except RuntimeError as error:
        print(f"error: {error}", file=sys.stderr)
        if cache is not None:
            print("(completed runs were cached and will be reused)", file=sys.stderr)
        return 1

    for name in report.figures:
        print(f"  {name}: {name}.csv {name}.vl.json "
              f"({report.rows_per_figure[name]} rows)")
    if report.png_note:
        print(f"note: {report.png_note}", file=sys.stderr)
    print(f"index: {os.path.join(report.out_dir, 'index.html')}")
    _print_run_summary(total_specs, cache, baseline, started)
    return 0


def _parse_grid(grid_args: List[str]) -> Dict[str, List[Any]]:
    """Parse repeated ``--set key=v1,v2`` options into {key: [values]}.

    Values are split on top-level commas (commas inside ``[...]``/``{...}``
    or quoted strings group) and each piece is parsed as JSON, falling back
    to a bare string.  Repeating a key across ``--set`` options appends to
    its value list (``--set seed=1 --set seed=2`` sweeps both).
    """
    grid: Dict[str, List[Any]] = {}
    for item in grid_args:
        key, separator, raw = item.partition("=")
        key = key.strip()
        if not separator or not key or not raw.strip():
            raise ValueError(f"--set expects KEY=V1,V2,... got {item!r}")
        grid.setdefault(key, []).extend(
            _parse_value(piece) for piece in _split_top_level(raw)
        )
    return grid


def _split_top_level(raw: str) -> List[str]:
    pieces: List[str] = []
    current: List[str] = []
    depth = 0
    quote = None  # the active string delimiter, if any
    escaped = False
    for char in raw:
        if quote is not None:
            current.append(char)
            if escaped:
                escaped = False
            elif char == "\\":
                escaped = True
            elif char == quote:
                quote = None
            continue
        if char in "'\"":
            quote = char
        elif char in "[{(":
            depth += 1
        elif char in "]})":
            depth = max(0, depth - 1)
        elif char == "," and depth == 0:
            pieces.append("".join(current))
            current = []
            continue
        current.append(char)
    pieces.append("".join(current))
    return [piece for piece in (p.strip() for p in pieces) if piece]


def _parse_value(piece: str) -> Any:
    try:
        return json.loads(piece)
    except ValueError:
        # tolerate shell-style single quotes around a bare string value
        if len(piece) >= 2 and piece[0] == piece[-1] and piece[0] in "'\"":
            return piece[1:-1]
        return piece


def _progress_printer(total: int) -> Callable[[sweep.RunSpec, int, str], None]:
    state = {"done": 0}

    def on_result(spec: sweep.RunSpec, _index: int, source: str) -> None:
        state["done"] += 1
        print(f"  [{state['done']}/{total}] {spec.experiment} ({source})", flush=True)

    return on_result


def _cache_counters(cache) -> tuple[int, int]:
    return (cache.hits, cache.misses) if cache is not None else (0, 0)


def _print_run_summary(total: int, cache, baseline: tuple[int, int], started: float) -> None:
    elapsed = time.time() - started
    if cache is not None:
        hits = cache.hits - baseline[0]
        misses = cache.misses - baseline[1]
        print(
            f"\n{total} runs in {elapsed:.1f} s "
            f"({hits} from cache, {misses} simulated; cache: {cache.root})"
        )
    else:
        print(f"\n{total} runs in {elapsed:.1f} s (cache bypassed)")


def _print_catalogue() -> None:
    print("available experiments:")
    for name, (description, _fn) in EXPERIMENTS.items():
        print(f"  {name:8s} {description}")
    print("\n  all      run every experiment (combine with --jobs N)")
    print("  sweep    run one experiment over a parameter grid (--set key=v1,v2)")
    print("  render   write figure artifacts (CSV + Vega-Lite + index.html) "
          "to --out DIR")
    print("  shard    run a partitioned multi-process simulation "
          "(--shards N, --reference to diff against one process)")


def _print_result(result: object) -> None:
    if isinstance(result, Mapping):
        for key, value in result.items():
            print(f"  {key}: {_summarize(value)}")
    elif isinstance(result, Iterable) and not isinstance(result, (str, bytes)):
        for row in result:
            print(f"  {_summarize(row)}")
    else:
        print(f"  {result!r}")


def _summarize(value: object) -> str:
    from repro.harness.experiment import ThroughputResult

    if isinstance(value, ThroughputResult):
        goodputs = value.sorted_goodputs_gbps()
        return (
            f"utilization={value.utilization:.3f}, "
            f"goodput_gbps[min/median/max]="
            f"{goodputs[0]:.2f}/{goodputs[len(goodputs) // 2]:.2f}/{goodputs[-1]:.2f}, "
            f"trimmed={value.trimmed_packets}, dropped={value.dropped_packets}"
        )
    if isinstance(value, float):
        return f"{value:.3f}"
    if isinstance(value, Mapping):
        return "{" + ", ".join(f"{k}: {_summarize(v)}" for k, v in value.items()) + "}"
    if isinstance(value, list) and len(value) > 8:
        try:
            return f"[{len(value)} values, min={min(value):.2f}, max={max(value):.2f}]"
        except (TypeError, ValueError):  # non-scalar items, e.g. time series
            return f"[{len(value)} items]"
    return str(value)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in examples
    raise SystemExit(main())
