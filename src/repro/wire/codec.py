"""Binary encoding of NDP headers.

Layout (network byte order, 24 bytes):

====== ======= ===========================================================
offset size    field
====== ======= ===========================================================
0      1       magic (0x4E, 'N')
1      1       version (1)
2      1       packet type (:class:`NdpPacketType`)
3      1       flags (bit 0 SYN, bit 1 LAST, bit 2 TRIMMED, bit 3 BOUNCED)
4      4       flow (connection) identifier
8      4       packet sequence number
12     4       pull counter (PULL packets; 0 otherwise)
16     2       path identifier chosen by the sender
18     2       payload length in bytes
20     2       header checksum (Internet checksum, computed with field 0)
22     2       reserved (0)
====== ======= ===========================================================

The 64-byte control/trimmed-header size used throughout the paper leaves
room for Ethernet/IP/UDP encapsulation around this 24-byte NDP header.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

from repro.core.packets import NdpAck, NdpDataPacket, NdpNack, NdpPull
from repro.sim.packet import Packet

#: struct layout of the NDP header
_HEADER_STRUCT = struct.Struct("!BBBBIIIHHHH")
#: encoded header length in bytes
HEADER_LENGTH = _HEADER_STRUCT.size

_MAGIC = 0x4E
_VERSION = 1

_FLAG_SYN = 0x01
_FLAG_LAST = 0x02
_FLAG_TRIMMED = 0x04
_FLAG_BOUNCED = 0x08

_MAX_U16 = 0xFFFF
_MAX_U32 = 0xFFFFFFFF


class NdpWireError(ValueError):
    """Raised when an encoded header is malformed."""


class NdpPacketType(enum.IntEnum):
    """On-the-wire packet types."""

    DATA = 1
    ACK = 2
    NACK = 3
    PULL = 4


@dataclass(frozen=True)
class NdpHeader:
    """A decoded (or to-be-encoded) NDP header."""

    packet_type: NdpPacketType
    flow_id: int
    seqno: int
    pull_counter: int = 0
    path_id: int = 0
    payload_length: int = 0
    syn: bool = False
    last: bool = False
    trimmed: bool = False
    bounced: bool = False

    def __post_init__(self) -> None:
        for name, value, limit in (
            ("flow_id", self.flow_id, _MAX_U32),
            ("seqno", self.seqno, _MAX_U32),
            ("pull_counter", self.pull_counter, _MAX_U32),
            ("path_id", self.path_id, _MAX_U16),
            ("payload_length", self.payload_length, _MAX_U16),
        ):
            if not 0 <= value <= limit:
                raise NdpWireError(f"{name} {value} out of range (0..{limit})")


def internet_checksum(data: bytes) -> int:
    """RFC 1071 ones'-complement checksum of *data*."""
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for index in range(0, len(data), 2):
        total += (data[index] << 8) | data[index + 1]
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def _flags_byte(header: NdpHeader) -> int:
    flags = 0
    if header.syn:
        flags |= _FLAG_SYN
    if header.last:
        flags |= _FLAG_LAST
    if header.trimmed:
        flags |= _FLAG_TRIMMED
    if header.bounced:
        flags |= _FLAG_BOUNCED
    return flags


def encode_header(header: NdpHeader) -> bytes:
    """Serialize *header* to its 24-byte wire representation."""
    without_checksum = _HEADER_STRUCT.pack(
        _MAGIC,
        _VERSION,
        int(header.packet_type),
        _flags_byte(header),
        header.flow_id,
        header.seqno,
        header.pull_counter,
        header.path_id,
        header.payload_length,
        0,  # checksum placeholder
        0,  # reserved
    )
    checksum = internet_checksum(without_checksum)
    return without_checksum[:20] + struct.pack("!H", checksum) + without_checksum[22:]


def decode_header(data: bytes) -> NdpHeader:
    """Parse and validate a wire header, raising :class:`NdpWireError` on garbage."""
    if len(data) < HEADER_LENGTH:
        raise NdpWireError(
            f"need at least {HEADER_LENGTH} bytes, got {len(data)}"
        )
    (
        magic,
        version,
        packet_type,
        flags,
        flow_id,
        seqno,
        pull_counter,
        path_id,
        payload_length,
        checksum,
        _reserved,
    ) = _HEADER_STRUCT.unpack(data[:HEADER_LENGTH])
    if magic != _MAGIC:
        raise NdpWireError(f"bad magic byte 0x{magic:02x}")
    if version != _VERSION:
        raise NdpWireError(f"unsupported version {version}")
    try:
        ptype = NdpPacketType(packet_type)
    except ValueError as exc:
        raise NdpWireError(f"unknown packet type {packet_type}") from exc
    # verify the checksum by re-computing it over the header with the
    # checksum field zeroed
    zeroed = data[:20] + b"\x00\x00" + data[22:HEADER_LENGTH]
    if internet_checksum(zeroed) != checksum:
        raise NdpWireError("header checksum mismatch")
    return NdpHeader(
        packet_type=ptype,
        flow_id=flow_id,
        seqno=seqno,
        pull_counter=pull_counter,
        path_id=path_id,
        payload_length=payload_length,
        syn=bool(flags & _FLAG_SYN),
        last=bool(flags & _FLAG_LAST),
        trimmed=bool(flags & _FLAG_TRIMMED),
        bounced=bool(flags & _FLAG_BOUNCED),
    )


def header_from_packet(packet: Packet) -> NdpHeader:
    """Build the wire header describing a simulator packet object."""
    if isinstance(packet, NdpPull):
        return NdpHeader(
            packet_type=NdpPacketType.PULL,
            flow_id=packet.flow_id,
            seqno=packet.seqno,
            pull_counter=packet.pull_counter,
            path_id=packet.path_id,
        )
    if isinstance(packet, NdpAck):
        return NdpHeader(
            packet_type=NdpPacketType.ACK,
            flow_id=packet.flow_id,
            seqno=packet.seqno,
            path_id=packet.data_path_id,
        )
    if isinstance(packet, NdpNack):
        return NdpHeader(
            packet_type=NdpPacketType.NACK,
            flow_id=packet.flow_id,
            seqno=packet.seqno,
            path_id=packet.data_path_id,
        )
    if isinstance(packet, NdpDataPacket):
        return NdpHeader(
            packet_type=NdpPacketType.DATA,
            flow_id=packet.flow_id,
            seqno=packet.seqno,
            path_id=packet.path_id,
            payload_length=0 if packet.is_header_only else packet.payload_bytes,
            syn=packet.syn,
            last=packet.last,
            trimmed=packet.is_header_only,
            bounced=packet.bounced,
        )
    raise NdpWireError(f"cannot encode packet type {type(packet).__name__}")
