"""NDP wire format: header encoding and decoding.

The simulator moves Python objects around, but a deployable NDP stack (the
paper's Linux/DPDK implementation, the P4 and NetFPGA switches) needs a
concrete header layout.  This package defines one — covering every field the
protocol requires (packet type, SYN/LAST/trimmed flags, connection id,
packet sequence number, pull counter, path id, payload length, checksum) —
and provides conversion to and from the simulator's packet objects.  It is
exercised by property-based round-trip tests and by the quickstart example's
"what goes on the wire" dump.
"""

from repro.wire.codec import (
    HEADER_LENGTH,
    NdpHeader,
    NdpPacketType,
    NdpWireError,
    decode_header,
    encode_header,
    header_from_packet,
    internet_checksum,
)

__all__ = [
    "HEADER_LENGTH",
    "NdpHeader",
    "NdpPacketType",
    "NdpWireError",
    "encode_header",
    "decode_header",
    "header_from_packet",
    "internet_checksum",
]
