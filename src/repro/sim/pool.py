"""Slot-pool / struct-of-arrays packet core.

Per-packet heap allocation (``NdpDataPacket(...)`` once per transmit, one
ACK/NACK/PULL object per control emission) dominated the allocator profile
of the hot scenarios.  The :class:`PacketPool` replaces it with a slot pool:

* **Columns.** The pool owns contiguous parallel ``array('q')`` columns for
  the hot packet fields — size, seqno, flow id, path id, priority, the
  header-trim flag and the route cursor (hop) — plus a generation column.
  Every slot is identified by an integer *handle* indexing all columns.
* **Handles + generation stamps.** ``generation[h]`` is bumped on every
  :meth:`release`.  A facade whose ``_gen`` no longer matches its slot's
  generation is *stale*: releasing it again raises (double-free detection),
  :meth:`~repro.sim.packet.Packet.is_freed` reports it, and the debug
  renderers (``repr``, :func:`repro.sim.logger.describe_packet`) refuse to
  show its field values.
* **Flyweight facades.** Packet *objects* are recycled alongside their
  slots: each per-class free list holds fully-built facade instances
  (``NdpDataPacket`` etc.), so an allocation on the fast path is a
  ``list.pop()`` plus plain field writes — no ``__new__``, no ``__init__``,
  no allocator traffic.  The facade's ``__slots__`` carry the live field
  values (attribute access stays a single C-level slot load, which is what
  the per-event budget can afford in CPython); the columns are synchronised
  at the slot-lifecycle boundaries — placeholders at :meth:`adopt`, the
  final on-wire state at :meth:`release` — giving O(1) columnar
  introspection (leak reports, post-mortem audits) without touching the
  Python objects.

Allocation fast path (inlined at the endpoints, which hoist their class's
free list at construction time)::

    free = self._ack_free                  # pool.free_list(NdpAck), hoisted
    if free:
        packet = free.pop()
        packet._gen = pool.generation[packet._handle]
        pool.live_cls[packet._handle] = NdpAck
        pool.reused += 1
    else:
        packet = NdpAck.__new__(NdpAck)    # pool miss: one real allocation
        pool.adopt(packet)
    # ... caller writes EVERY field the protocol reads; a revived facade
    # still carries its previous life's values (trimmed flag, bounce flag,
    # ECN bits included) and nothing resets them implicitly.

Ownership rules (documented for callers; see docs/architecture.md):

* a handle (facade) may be held across events only by the code that will
  eventually :meth:`release` it — the endpoint a packet is in flight to, or
  the queue currently buffering it;
* whoever consumes a packet frees it: sinks release data/headers after the
  handler returns, sources release control and bounced packets, queues and
  taps release what they drop;
* unpooled packets (TCP, DCTCP — anything built through ``__init__``) have
  ``_pool is None`` and :meth:`Packet.release` is a no-op for them, so
  shared drop paths call ``packet.release()`` unconditionally.

Set ``REPRO_POOL_DEBUG=1`` to poison freed facades (size/seqno/flow id/hop
forced to ``-1``, route detached): any use-after-free then either crashes
immediately or shows sentinel values instead of silently reading recycled
state.
"""

from __future__ import annotations

import os
from array import array
from typing import Dict, List, Optional, Tuple, Type, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.packet import Packet


class PacketPoolError(RuntimeError):
    """Raised on double-free or stale-handle (use-after-free) release."""


class PacketPool:
    """A recycling slot pool with columnar per-slot state.

    One pool is shared by every endpoint of a network (see
    :class:`repro.harness.ndp_network.NdpNetwork`): data packets freed at
    sinks are revived by sources, control packets freed at sources are
    revived by sinks, so a steady-state run allocates almost nothing.
    """

    __slots__ = (
        "size_col",
        "seqno_col",
        "flow_col",
        "path_col",
        "prio_col",
        "header_col",
        "hop_col",
        "generation",
        "live_cls",
        "_free",
        "constructed",
        "reused",
        "freed",
        "debug",
    )

    def __init__(self, debug: Optional[bool] = None) -> None:
        if debug is None:
            debug = os.environ.get("REPRO_POOL_DEBUG", "") not in ("", "0")
        self.debug = debug
        # struct-of-arrays hot-field columns, indexed by handle
        self.size_col = array("q")
        self.seqno_col = array("q")
        self.flow_col = array("q")
        self.path_col = array("q")
        self.prio_col = array("q")
        self.header_col = array("q")
        self.hop_col = array("q")
        #: generation stamp per slot; bumped on every release
        self.generation: List[int] = []
        #: class of the facade currently live in each slot, or None if free
        self.live_cls: List[Optional[type]] = []
        self._free: Dict[type, List["Packet"]] = {}
        #: pool misses — real ``__new__`` allocations (one column row each)
        self.constructed = 0
        #: fast-path revivals from a free list
        self.reused = 0
        #: successful releases
        self.freed = 0

    # --- allocation ---------------------------------------------------------

    def free_list(self, cls: type) -> List["Packet"]:
        """The free list of *cls* facades (created on first use).

        Endpoints hoist this list once and inline the pop/adopt fast path
        shown in the module docstring.
        """
        free = self._free.get(cls)
        if free is None:
            free = self._free[cls] = []
        return free

    def adopt(self, packet: "Packet") -> "Packet":
        """Bind a freshly ``__new__``-ed facade to a new slot.

        Called *before* the caller writes the packet's fields (the facade
        has no readable state yet), so the new slot's columns start as
        placeholders; :meth:`release` writes the real values.
        """
        handle = len(self.generation)
        self.generation.append(0)
        self.live_cls.append(type(packet))
        self.size_col.append(0)
        self.seqno_col.append(0)
        self.flow_col.append(0)
        self.path_col.append(0)
        self.prio_col.append(0)
        self.header_col.append(0)
        self.hop_col.append(0)
        packet._pool = self
        packet._handle = handle
        packet._gen = 0
        self.constructed += 1
        return packet

    def get(self, cls: type) -> "Packet":
        """Allocate a facade of *cls* (revive from the free list, else miss).

        The caller **must write every field** the protocol will read before
        letting the packet out of hand: a revived facade still carries the
        values of its previous life.
        """
        free = self._free.get(cls)
        if free:
            packet = free.pop()
            handle = packet._handle
            packet._gen = self.generation[handle]
            self.live_cls[handle] = cls
            self.reused += 1
            return packet
        packet = cls.__new__(cls)
        return self.adopt(packet)

    # --- release ------------------------------------------------------------

    def release(self, packet: "Packet") -> None:
        """Return *packet*'s slot to the free list.

        Raises :class:`PacketPoolError` when the facade's generation stamp
        no longer matches its slot — i.e. on a double free or a release
        through a stale handle.
        """
        handle = packet._handle
        generation = self.generation
        if packet._gen != generation[handle]:
            raise PacketPoolError(
                f"double free / stale handle: {type(packet).__name__} slot "
                f"{handle} generation {packet._gen} != {generation[handle]}"
            )
        generation[handle] += 1
        # audit columns: the slot's last on-wire state, readable without
        # touching (possibly poisoned) facade attributes
        self.size_col[handle] = packet.size
        self.seqno_col[handle] = packet.seqno
        self.flow_col[handle] = packet.flow_id
        self.path_col[handle] = packet.path_id
        self.prio_col[handle] = packet.priority
        self.header_col[handle] = 1 if packet.is_header_only else 0
        self.hop_col[handle] = packet.hop
        cls = type(packet)
        self.live_cls[handle] = None
        self.freed += 1
        if self.debug:
            packet.size = -1
            packet.seqno = -1
            packet.flow_id = -1
            packet.hop = -1
            packet.path_id = -1
            packet.route = None
        free = self._free.get(cls)
        if free is None:
            free = self._free[cls] = []
        free.append(packet)

    # --- introspection ------------------------------------------------------

    def __len__(self) -> int:
        """Total number of slots ever created (free or live)."""
        return len(self.generation)

    def live(self) -> int:
        """Slots currently allocated (not on any free list)."""
        return self.constructed + self.reused - self.freed

    def live_handles(self) -> List[Tuple[int, str]]:
        """``(handle, class name)`` of every live slot — the leak report."""
        return [
            (handle, cls.__name__)
            for handle, cls in enumerate(self.live_cls)
            if cls is not None
        ]

    def slot_state(self, handle: int) -> Dict[str, int]:
        """Columnar snapshot of one slot (last release, or placeholders)."""
        return {
            "size": self.size_col[handle],
            "seqno": self.seqno_col[handle],
            "flow_id": self.flow_col[handle],
            "path_id": self.path_col[handle],
            "priority": self.prio_col[handle],
            "is_header_only": self.header_col[handle],
            "hop": self.hop_col[handle],
            "generation": self.generation[handle],
        }

    def reserve(self, cls: type, count: int) -> None:
        """Preallocate *count* free slots (and facades) for *cls*.

        Lets setup code pay the construction cost up front so the measured
        region runs entirely on revivals.  Reserved slots start on the free
        list with ``generation == 1`` (born-freed).
        """
        free = self.free_list(cls)
        for _ in range(count):
            packet = cls.__new__(cls)
            handle = len(self.generation)
            self.generation.append(1)
            self.live_cls.append(None)
            self.size_col.append(0)
            self.seqno_col.append(0)
            self.flow_col.append(0)
            self.path_col.append(0)
            self.prio_col.append(0)
            self.header_col.append(0)
            self.hop_col.append(0)
            packet._pool = self
            packet._handle = handle
            packet._gen = 0  # stale vs generation 1: the slot is free
            free.append(packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PacketPool(slots={len(self.generation)}, live={self.live()}, "
            f"constructed={self.constructed}, reused={self.reused}, "
            f"freed={self.freed})"
        )
