"""Output-port queues: drop-tail, ECN marking, and PFC lossless queues.

Every switch port (and every host NIC) in the simulator is modelled as a
queue that serializes packets at the port's line rate and then hands them to
the pipe representing the cable.  Different experiments in the paper use
different queue disciplines:

* plain :class:`DropTailQueue` — MPTCP/TCP baselines and the pHost comparison;
* :class:`ECNQueue` — DCTCP and the ECN half of DCQCN (mark above a sharp
  threshold, the "K" parameter);
* :class:`LosslessQueue` — priority flow control (PFC) as used by DCQCN /
  RoCEv2: instead of dropping, a filling queue pauses the upstream ports that
  feed it, which is what causes the collateral damage studied in §6.1.1;
* the NDP trimming switch lives in :mod:`repro.core.switch` because it is the
  paper's contribution rather than a substrate.
"""

from __future__ import annotations

import random
import zlib
from collections import deque
from bisect import insort as _insort
from heapq import heappush as _heappush
from typing import Deque, Dict, Iterable, List, Optional

from repro.sim.eventlist import _WHEEL_MASK, _WHEEL_SHIFT, _WHEEL_SLOTS, EventList
from repro.sim.logger import QueueStats
from repro.sim.network import PacketSink
from repro.sim.packet import Packet
from repro.sim.pipe import Pipe
from repro.sim.units import SECOND, serialization_time_ps

#: picoseconds carried by one byte-worth of bits (numerator of the exact
#: serialization-time formula, hoisted out of the per-packet fast path)
_BITS_PS = 8 * SECOND

#: fraction of the buffer at which a PFC queue asks its upstream ports to pause
PAUSE_THRESHOLD_FRACTION = 0.75
#: fraction of the buffer at which a PFC queue lets paused upstream ports resume
RESUME_THRESHOLD_FRACTION = 0.40


class BaseQueue(PacketSink):
    """Common machinery for all output-port queues.

    Subclasses implement :meth:`receive_packet` (the admission policy) and can
    override :meth:`_select_next` (the scheduling policy).  The base class
    handles the store-and-forward service loop: one packet is serialized at a
    time, taking ``size * 8 / rate`` seconds, after which it is forwarded to
    the next element on its route.

    ``__slots__`` are declared for the hot attributes (slot descriptors beat
    instance-dict lookups in the per-packet service loop); subclasses outside
    this module may still add ad-hoc attributes because the abstract base
    carries no slots.
    """

    __slots__ = (
        "eventlist",
        "service_rate_bps",
        "max_queue_bytes",
        "name",
        "serialization_jitter_ps",
        "_jitter_rng",
        "stats",
        "queue_bytes",
        "_busy",
        "_paused",
        "_in_service",
        "_fifo",
        "_rate_half",
        "_ser_cache",
        "_complete_cb",
        "_has_departed_hook",
        "_plain_fifo",
    )

    def __init__(
        self,
        eventlist: EventList,
        service_rate_bps: int,
        max_queue_bytes: int,
        name: str = "queue",
        serialization_jitter_ps: int = 0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if service_rate_bps <= 0:
            raise ValueError(f"service rate must be positive, got {service_rate_bps}")
        if max_queue_bytes <= 0:
            raise ValueError(f"queue capacity must be positive, got {max_queue_bytes}")
        if serialization_jitter_ps < 0:
            raise ValueError("serialization jitter must be non-negative")
        self.eventlist = eventlist
        self.service_rate_bps = service_rate_bps
        self.max_queue_bytes = max_queue_bytes
        self.name = name
        # Optional per-packet transmission jitter.  Real NICs and switches do
        # not transmit with picosecond periodicity; a deterministic simulator
        # that does exhibits artificial phase effects (one of two synchronized
        # flows can permanently lose every buffer slot).  A few hundred
        # nanoseconds of jitter — far below a packet serialization time, so
        # FIFO order and throughput are unaffected — restores realistic
        # desynchronization where an experiment asks for it.
        self.serialization_jitter_ps = serialization_jitter_ps
        # seed from a stable digest of the name so runs are reproducible
        # across processes (str hash() is salted per interpreter run)
        self._jitter_rng = rng if rng is not None else random.Random(zlib.crc32(name.encode()))
        self.stats = QueueStats()
        self.queue_bytes = 0
        self._busy = False
        self._paused = False
        self._in_service: Optional[Packet] = None
        self._fifo: Deque[Packet] = deque()
        # hot-path constants: the service loop runs once per packet, so the
        # rounding half, a size -> serialization-time memo and the completion
        # callback are all hoisted out of it
        self._rate_half = service_rate_bps // 2
        self._ser_cache: Dict[int, int] = {}
        self._complete_cb = self._complete_service
        self._has_departed_hook = (
            type(self)._packet_departed is not BaseQueue._packet_departed
        )
        self._plain_fifo = type(self)._select_next is BaseQueue._select_next

    # --- introspection -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._fifo) + (1 if self._in_service is not None else 0)

    def backlog_bytes(self) -> int:
        """Bytes currently queued (including the packet in service)."""
        backlog = self.queue_bytes
        if self._in_service is not None:
            backlog += self._in_service.size
        return backlog

    def serialization_time(self, size_bytes: int) -> int:
        """Time (ps) to put *size_bytes* on the wire at this port's rate."""
        return serialization_time_ps(size_bytes, self.service_rate_bps)

    @property
    def paused(self) -> bool:
        """True while a downstream PFC queue has paused this port."""
        return self._paused

    # --- link state (fabric dynamics) ----------------------------------------

    def set_service_rate(self, rate_bps: int) -> None:
        """Re-rate the port mid-run (link degradation / renegotiation).

        Besides ``service_rate_bps`` itself, the serialization-time memo and
        the rounding half hoisted out of the service loop must be refreshed —
        mutating the rate attribute alone would keep serving every
        already-seen packet size at the old speed.  The packet currently
        being serialized (if any) completes at the rate it started at.
        """
        if rate_bps <= 0:
            raise ValueError(f"service rate must be positive, got {rate_bps}")
        self.service_rate_bps = rate_bps
        self._rate_half = rate_bps // 2
        self._ser_cache.clear()

    @property
    def severed(self) -> bool:
        """True while :meth:`sever` has taken this port's link down."""
        return "receive_packet" in self.__dict__

    def sever(self) -> None:
        """Take the link down: nothing admitted after this crosses the link.

        Installs a per-instance ``receive_packet`` dropper (zero cost for
        healthy links — the class method is untouched), purges the queued
        packets as drops, and abandons the packet being serialized; its
        completion event still fires but forwards nothing.  Packets that
        already left the queue — on the wire in the downstream pipe — are
        delivered: one propagation delay of traffic is physically in flight
        when a cable is cut.

        The pipes feeding this queue captured its ``receive_packet`` *bound
        method* when their in-flight packets entered them, so such packets
        bypass the instance dropper on arrival.  The port is therefore also
        held paused: bypassers are buffered, never serviced, and dropped by
        :meth:`restore` — no packet admitted after the cut ever crosses the
        link.  (A PFC ``resume`` from a downstream lossless peer landing
        inside the sever window could lift that hold; the failure
        experiments do not combine PFC with severed links.)
        """
        if self.severed:
            return
        self._purge_backlog()
        if self._in_service is not None:
            self.stats.record_drop(self._in_service.size)
            self._in_service.release()  # slot pool: dies with the link
            self._in_service = None  # _complete_service tolerates the gap
        self._paused = True  # directly: not a PFC pause, keep its stats clean
        stats = self.stats

        def _drop_on_dead_link(packet: Packet) -> None:
            stats.record_drop(packet.size)
            packet.release()  # slot pool: dies with the link

        self.receive_packet = _drop_on_dead_link  # type: ignore[method-assign]

    def restore(self) -> None:
        """Bring a severed link back up (undo :meth:`sever`)."""
        if not self.severed:
            return
        self._purge_backlog()  # bypass-admitted strays died with the link
        self.__dict__.pop("receive_packet", None)
        self._paused = False

    def _purge_backlog(self) -> None:
        """Drop every queued packet (link-down); multi-queue ports override."""
        fifo = self._fifo
        stats = self.stats
        while fifo:
            packet = fifo.popleft()
            stats.record_drop(packet.size)
            packet.release()  # slot pool: dies with the link
        self.queue_bytes = 0

    # --- admission (subclass responsibility) ---------------------------------

    def receive_packet(self, packet: Packet) -> None:
        raise NotImplementedError

    # --- service loop ---------------------------------------------------------

    def _enqueue(self, packet: Packet) -> None:
        self._fifo.append(packet)
        queue_bytes = self.queue_bytes = self.queue_bytes + packet.size
        stats = self.stats
        stats.packets_enqueued += 1
        if queue_bytes > stats.max_queue_bytes:
            stats.max_queue_bytes = queue_bytes
        if not self._busy and not self._paused:
            self._maybe_start_service()

    def _select_next(self) -> Optional[Packet]:
        """Pick the next packet to serialize; FIFO by default."""
        if not self._fifo:
            return None
        packet = self._fifo.popleft()
        self.queue_bytes -= packet.size
        return packet

    def _maybe_start_service(self) -> None:
        if self._busy or self._paused:
            return
        if self._plain_fifo:
            # inlined FIFO _select_next (the overwhelmingly common policy)
            fifo = self._fifo
            if not fifo:
                return
            packet = fifo.popleft()
            self.queue_bytes -= packet.size
        else:
            packet = self._select_next()
            if packet is None:
                return
        # body of _start_service, duplicated here to save a call frame on
        # the once-per-packet path (keep the two in sync)
        self._busy = True
        self._in_service = packet
        size = packet.size
        try:
            delay = self._ser_cache[size]
        except KeyError:
            delay = self._ser_cache[size] = (
                size * _BITS_PS + self._rate_half
            ) // self.service_rate_bps
        if self.serialization_jitter_ps:
            delay += self._jitter_rng.randint(0, self.serialization_jitter_ps)
        eventlist = self.eventlist
        when = eventlist._now + delay
        seq = eventlist._sequence = eventlist._sequence + 1
        pool = eventlist._entry_pool
        if pool:
            entry = pool.pop()
            entry[0] = when
            entry[1] = seq
            entry[2] = None
            entry[3] = 0
            entry[4] = self._complete_cb
            entry[5] = None
        else:
            eventlist.entry_allocs += 1
            entry = [when, seq, None, 0, self._complete_cb, None]
        delta = (when >> _WHEEL_SHIFT) - eventlist._cursor
        if delta <= 0:
            _insort(eventlist._cur_spill, entry)
            eventlist._wheel_count += 1
        elif delta < _WHEEL_SLOTS:
            eventlist._wheel[(when >> _WHEEL_SHIFT) & _WHEEL_MASK].append(entry)
            eventlist._wheel_count += 1
        else:
            _heappush(eventlist._far, entry)

    def _start_service(self, packet: Packet) -> None:
        """Begin serializing *packet* (caller has checked busy/paused)."""
        self._busy = True
        self._in_service = packet
        # exact serialization time, memoized per packet size (a port sees a
        # handful of distinct sizes: MTU, trimmed header, tail remainder)
        size = packet.size
        try:
            delay = self._ser_cache[size]
        except KeyError:
            delay = self._ser_cache[size] = (
                size * _BITS_PS + self._rate_half
            ) // self.service_rate_bps
        if self.serialization_jitter_ps:
            delay += self._jitter_rng.randint(0, self.serialization_jitter_ps)
        # inlined EventList._insert fast path (raw, non-cancellable entry)
        eventlist = self.eventlist
        when = eventlist._now + delay
        seq = eventlist._sequence = eventlist._sequence + 1
        pool = eventlist._entry_pool
        if pool:
            entry = pool.pop()
            entry[0] = when
            entry[1] = seq
            entry[2] = None
            entry[3] = 0
            entry[4] = self._complete_cb
            entry[5] = None
        else:
            eventlist.entry_allocs += 1
            entry = [when, seq, None, 0, self._complete_cb, None]
        delta = (when >> _WHEEL_SHIFT) - eventlist._cursor
        if delta <= 0:
            _insort(eventlist._cur_spill, entry)
            eventlist._wheel_count += 1
        elif delta < _WHEEL_SLOTS:
            eventlist._wheel[(when >> _WHEEL_SHIFT) & _WHEEL_MASK].append(entry)
            eventlist._wheel_count += 1
        else:
            _heappush(eventlist._far, entry)

    def _complete_service(self) -> None:
        # Batched drain: each loop iteration is one service completion.  The
        # first is the one the scheduler dispatched; subsequent iterations are
        # *fast-forwarded* completions — when the next packet's completion
        # time provably precedes every other pending event (strictly: a
        # timestamp tie falls back to the scheduler, which preserves the
        # baseline tie-breaking order), the drain advances the clock and
        # services it inline without a scheduler round-trip.
        eventlist = self.eventlist
        while True:
            packet = self._in_service
            self._in_service = None
            self._busy = False
            if packet is not None:
                stats = self.stats
                size = packet.size
                stats.packets_forwarded += 1
                stats.bytes_forwarded += size
                if not packet.is_header_only:
                    stats.data_bytes_forwarded += size
                if self._has_departed_hook:
                    self._packet_departed(packet)
                # inlined send_to_next_hop (once per serialized packet); when
                # the next element is a Pipe — as it is for every fabric
                # link — the pipe hop is fused in as well: count it and
                # schedule the delayed delivery at the element after the pipe
                # directly, exactly as Pipe.receive_packet would
                hop = packet.hop
                elements = packet.route.elements
                nxt = elements[hop]
                if type(nxt) is Pipe:
                    nxt.packets_carried += 1
                    nxt.bytes_carried += size
                    packet.hop = hop + 2
                    when = eventlist._now + nxt.delay_ps
                    seq = eventlist._sequence = eventlist._sequence + 1
                    pool = eventlist._entry_pool
                    if pool:
                        entry = pool.pop()
                        entry[0] = when
                        entry[1] = seq
                        entry[2] = None
                        entry[3] = 1
                        entry[4] = elements[hop + 1].receive_packet
                        entry[5] = packet
                    else:
                        eventlist.entry_allocs += 1
                        entry = [when, seq, None, 1,
                                 elements[hop + 1].receive_packet, packet]
                    delta = (when >> _WHEEL_SHIFT) - eventlist._cursor
                    if delta <= 0:
                        _insort(eventlist._cur_spill, entry)
                        eventlist._wheel_count += 1
                    elif delta < _WHEEL_SLOTS:
                        eventlist._wheel[(when >> _WHEEL_SHIFT) & _WHEEL_MASK].append(entry)
                        eventlist._wheel_count += 1
                    else:
                        _heappush(eventlist._far, entry)
                else:
                    packet.hop = hop + 1
                    nxt.receive_packet(packet)
            # start the next service; the re-check of _busy/_paused is not
            # redundant — forwarding above can re-enter this queue (it may
            # start service for a newly enqueued packet) or pause it via PFC
            if self._busy or self._paused:
                return
            if self._plain_fifo:
                fifo = self._fifo
                if not fifo:
                    return
                packet = fifo.popleft()
                self.queue_bytes -= packet.size
            else:
                packet = self._select_next()
                if packet is None:
                    return
            self._busy = True
            self._in_service = packet
            size = packet.size
            try:
                delay = self._ser_cache[size]
            except KeyError:
                delay = self._ser_cache[size] = (
                    size * _BITS_PS + self._rate_half
                ) // self.service_rate_bps
            if self.serialization_jitter_ps:
                delay += self._jitter_rng.randint(0, self.serialization_jitter_ps)
            when = eventlist._now + delay
            # fast-forward guard: the completion may run inline only if no
            # other pending event is due at or before `when` — wheel buckets
            # and the far heap are entirely beyond the cursor slot's end
            # (folded into _ff_bound with the until-limit and stopped flag),
            # and the published drain positions expose the batch/spill
            # frontier
            if when < eventlist._ff_bound:
                cur = eventlist._cur
                pos = eventlist._cur_pos
                if pos >= len(cur) or cur[pos][0] > when:
                    spill = eventlist._cur_spill
                    spos = eventlist._spill_pos
                    if spos >= len(spill) or spill[spos][0] > when:
                        eventlist._now = when
                        eventlist.events_executed += 1
                        continue
            # something intervenes (or the run is bounded): schedule normally
            seq = eventlist._sequence = eventlist._sequence + 1
            pool = eventlist._entry_pool
            if pool:
                entry = pool.pop()
                entry[0] = when
                entry[1] = seq
                entry[2] = None
                entry[3] = 0
                entry[4] = self._complete_cb
                entry[5] = None
            else:
                eventlist.entry_allocs += 1
                entry = [when, seq, None, 0, self._complete_cb, None]
            delta = (when >> _WHEEL_SHIFT) - eventlist._cursor
            if delta <= 0:
                _insort(eventlist._cur_spill, entry)
                eventlist._wheel_count += 1
            elif delta < _WHEEL_SLOTS:
                eventlist._wheel[(when >> _WHEEL_SHIFT) & _WHEEL_MASK].append(entry)
                eventlist._wheel_count += 1
            else:
                _heappush(eventlist._far, entry)
            return

    def _packet_departed(self, packet: Packet) -> None:
        """Hook called just before a packet is forwarded (PFC bookkeeping)."""

    # --- PFC pause/resume ------------------------------------------------------

    def pause(self) -> None:
        """Stop starting new transmissions (the in-flight packet completes)."""
        if not self._paused:
            self._paused = True
            self.stats.pause_events += 1

    def resume(self) -> None:
        """Resume transmissions after a PFC pause."""
        if self._paused:
            self._paused = False
            self._maybe_start_service()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.__class__.__name__}({self.name}, {self.backlog_bytes()}B queued)"


class DropTailQueue(BaseQueue):
    """A FIFO queue that drops arriving packets once the buffer is full."""

    __slots__ = ()

    def receive_packet(self, packet: Packet) -> None:
        size = packet.size
        if self.queue_bytes + size > self.max_queue_bytes:
            self.stats.record_drop(size)
            self._notify_drop(packet)
            packet.release()  # slot pool: a dropped packet dies here
            return
        if not self._busy and not self._fifo and not self._paused:
            # idle port: serve immediately, skipping the FIFO round-trip.
            # Bookkeeping matches _enqueue + _select_next exactly (including
            # the transient max_queue_bytes spike the FIFO pass would record).
            stats = self.stats
            stats.packets_enqueued += 1
            if size > stats.max_queue_bytes:
                stats.max_queue_bytes = size
            self._start_service(packet)
            return
        self._enqueue(packet)

    def _notify_drop(self, packet: Packet) -> None:
        """Hook for tests and derived queues that track individual drops."""


class TappedQueue(DropTailQueue):
    """A drop-tail queue with an admission-time fault tap.

    ``tap`` follows the :meth:`repro.sim.faults.FaultInjector.inspect`
    contract (``(verdict, extra_delay_ps)``).  Used as a host-NIC or port
    factory in conformance tests to model faults at a specific hop — e.g.
    "this NIC loses every k-th header".  A dropped packet is recorded in the
    queue's drop statistics exactly like a buffer overflow; a delayed packet
    is re-admitted after the extra delay; passed packets are admitted on the
    spot, preserving the untapped schedule bit-for-bit.
    """

    __slots__ = ("tap", "faults_dropped", "faults_delayed")

    def __init__(
        self,
        eventlist: EventList,
        service_rate_bps: int,
        max_queue_bytes: int,
        tap,
        name: str = "tapped-queue",
    ) -> None:
        super().__init__(eventlist, service_rate_bps, max_queue_bytes, name=name)
        self.tap = tap
        self.faults_dropped = 0
        self.faults_delayed = 0

    def receive_packet(self, packet: Packet) -> None:
        verdict, extra_ps = self.tap(packet)
        if verdict == "drop":
            self.faults_dropped += 1
            self.stats.record_drop(packet.size)
            self._notify_drop(packet)
            packet.release()  # slot pool: a dropped packet dies here
            return
        if verdict == "delay":
            self.faults_delayed += 1
            self.eventlist.schedule_raw_in(extra_ps, self._admit_delayed, (packet,))
            return
        DropTailQueue.receive_packet(self, packet)

    def _admit_delayed(self, packet: Packet) -> None:
        DropTailQueue.receive_packet(self, packet)


class ECNQueue(DropTailQueue):
    """Drop-tail queue that marks ECN-capable packets above a sharp threshold.

    This is the switch configuration DCTCP assumes: instantaneous queue
    occupancy above ``K`` causes the CE codepoint to be set.  Packets from
    non-ECN flows are unaffected.
    """

    __slots__ = ("marking_threshold_bytes",)

    def __init__(
        self,
        eventlist: EventList,
        service_rate_bps: int,
        max_queue_bytes: int,
        marking_threshold_bytes: int,
        name: str = "ecn-queue",
    ) -> None:
        super().__init__(eventlist, service_rate_bps, max_queue_bytes, name)
        if marking_threshold_bytes <= 0:
            raise ValueError(
                f"marking threshold must be positive, got {marking_threshold_bytes}"
            )
        self.marking_threshold_bytes = marking_threshold_bytes

    def receive_packet(self, packet: Packet) -> None:
        will_exceed = self.queue_bytes + packet.size > self.marking_threshold_bytes
        if will_exceed and packet.ecn_capable:
            packet.mark_ecn()
            self.stats.packets_marked += 1
        super().receive_packet(packet)


class LosslessQueue(BaseQueue):
    """A PFC (priority flow control) queue: never drops, pauses upstream instead.

    When the backlog crosses the pause threshold, every registered upstream
    queue is paused; when it drains below the resume threshold they are
    resumed.  Pausing an upstream port affects *all* traffic through that
    port, which is exactly the head-of-line blocking / collateral damage the
    paper attributes to lossless Ethernet.

    The queue also supports ECN marking so that DCQCN (ECN-based rate control
    running over a lossless fabric) can be modelled on top of it.
    """

    __slots__ = (
        "marking_threshold_bytes",
        "pause_threshold_bytes",
        "resume_threshold_bytes",
        "_upstream",
        "_upstream_paused",
        "overflow_events",
    )

    def __init__(
        self,
        eventlist: EventList,
        service_rate_bps: int,
        max_queue_bytes: int,
        name: str = "pfc-queue",
        marking_threshold_bytes: Optional[int] = None,
        pause_threshold_bytes: Optional[int] = None,
        resume_threshold_bytes: Optional[int] = None,
    ) -> None:
        super().__init__(eventlist, service_rate_bps, max_queue_bytes, name)
        self.marking_threshold_bytes = marking_threshold_bytes
        self.pause_threshold_bytes = (
            pause_threshold_bytes
            if pause_threshold_bytes is not None
            else int(max_queue_bytes * PAUSE_THRESHOLD_FRACTION)
        )
        self.resume_threshold_bytes = (
            resume_threshold_bytes
            if resume_threshold_bytes is not None
            else int(max_queue_bytes * RESUME_THRESHOLD_FRACTION)
        )
        if self.resume_threshold_bytes >= self.pause_threshold_bytes:
            raise ValueError("resume threshold must be below the pause threshold")
        self._upstream: List[BaseQueue] = []
        self._upstream_paused = False
        self.overflow_events = 0

    def register_upstream(self, *queues: BaseQueue) -> None:
        """Declare the queues whose output feeds this port (PFC peers)."""
        self._upstream.extend(queues)

    def upstream_queues(self) -> Iterable[BaseQueue]:
        """The queues this port will pause when it congests."""
        return tuple(self._upstream)

    def receive_packet(self, packet: Packet) -> None:
        if (
            self.marking_threshold_bytes is not None
            and packet.ecn_capable
            and self.queue_bytes + packet.size > self.marking_threshold_bytes
        ):
            packet.mark_ecn()
            self.stats.packets_marked += 1
        if self.queue_bytes + packet.size > self.max_queue_bytes:
            # PFC headroom should prevent this; record it rather than drop so
            # experiments can detect a mis-tuned configuration.
            self.overflow_events += 1
        self._enqueue(packet)
        self._update_pause_state()

    def _packet_departed(self, packet: Packet) -> None:
        self._update_pause_state()

    def _purge_backlog(self) -> None:
        # a purged PFC port must release its paused upstream peers, or they
        # would stay throttled by a link that no longer exists
        super()._purge_backlog()
        self._update_pause_state()

    def _update_pause_state(self) -> None:
        if not self._upstream_paused and self.queue_bytes >= self.pause_threshold_bytes:
            self._upstream_paused = True
            for queue in self._upstream:
                queue.pause()
        elif self._upstream_paused and self.queue_bytes <= self.resume_threshold_bytes:
            self._upstream_paused = False
            for queue in self._upstream:
                queue.resume()
