"""Discrete-event packet-level network simulation substrate.

This package provides the htsim-style simulation core that every transport
protocol in :mod:`repro` is built on:

* :mod:`repro.sim.units` — picosecond clock and unit helpers.
* :mod:`repro.sim.eventlist` — the deterministic event scheduler.
* :mod:`repro.sim.packet` — the base :class:`Packet` and :class:`Route`.
* :mod:`repro.sim.network` — the :class:`PacketSink` interface and endpoints.
* :mod:`repro.sim.pipe` — fixed-propagation-delay links.
* :mod:`repro.sim.queues` — drop-tail, ECN-marking and PFC (lossless) queues.
* :mod:`repro.sim.logger` — counters, flow records and time-series sampling.
* :mod:`repro.sim.faults` — deterministic fault injection (drop / trim /
  delay rules) for protocol-conformance testing.

The simulator models store-and-forward switches: each switch port is a queue
(serialization at the port's line rate) followed by a pipe (propagation
delay).  Packets carry an explicit route — an ordered list of sinks — chosen
by the sending host, which is what lets NDP do per-packet source-routed
multipath forwarding.
"""

from repro.sim.eventlist import EventList, Event, Timer
from repro.sim.packet import Packet, Route, PacketPriority
from repro.sim.network import PacketSink, NetworkEndpoint
from repro.sim.pipe import Pipe, TappedPipe
from repro.sim.faults import FaultInjector, FaultPoint, FaultRule
from repro.sim.queues import (
    BaseQueue,
    DropTailQueue,
    ECNQueue,
    LosslessQueue,
    TappedQueue,
    PAUSE_THRESHOLD_FRACTION,
    RESUME_THRESHOLD_FRACTION,
)
from repro.sim.logger import QueueStats, FlowRecord, TimeSeriesSampler
from repro.sim import units

__all__ = [
    "EventList",
    "Event",
    "Timer",
    "Packet",
    "Route",
    "PacketPriority",
    "PacketSink",
    "NetworkEndpoint",
    "Pipe",
    "TappedPipe",
    "FaultInjector",
    "FaultPoint",
    "FaultRule",
    "BaseQueue",
    "DropTailQueue",
    "ECNQueue",
    "LosslessQueue",
    "TappedQueue",
    "PAUSE_THRESHOLD_FRACTION",
    "RESUME_THRESHOLD_FRACTION",
    "QueueStats",
    "FlowRecord",
    "TimeSeriesSampler",
    "units",
]
