"""Statistics collection: queue counters, flow records and samplers.

These helpers deliberately stay out of the forwarding fast path: queues own a
:class:`QueueStats` object and bump plain integer counters; experiments that
need time series (for example the goodput plots of Figure 19) attach a
:class:`TimeSeriesSampler` which polls a callable at a fixed period.

:func:`describe_packet` is the logging-side debug renderer for flyweight
packets: it goes through the facade for live packets and through the pool's
audit columns for freed ones, never reading attributes of a stale handle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.sim.eventlist import EventList


def describe_packet(packet) -> str:
    """One-line debug rendering of *packet*, safe on freed flyweights.

    Live packets (pooled or not) render through their facade ``__repr__``.
    A *freed* flyweight — one whose generation stamp no longer matches its
    slot (see :mod:`repro.sim.pool`) — must never have its facade attributes
    read: the slot may already belong to another packet, or the facade may
    be debug-poisoned.  For those this helper reads the pool's *audit
    columns* instead, which hold the slot's last on-wire state and are
    always safe to read, so a log line written after the fact still says
    what the packet was.
    """
    pool = getattr(packet, "_pool", None)
    if pool is not None and packet._gen != pool.generation[packet._handle]:
        state = pool.slot_state(packet._handle)
        header = " hdr" if state["is_header_only"] else ""
        return (
            f"{type(packet).__name__}(FREED slot {packet._handle} "
            f"gen {state['generation']}; last on-wire: "
            f"flow={state['flow_id']}, seq={state['seqno']}, "
            f"{state['size']}B{header})"
        )
    return repr(packet)


@dataclass(slots=True)
class QueueStats:
    """Counters maintained by every queue in the simulator."""

    packets_enqueued: int = 0
    packets_forwarded: int = 0
    bytes_forwarded: int = 0
    data_bytes_forwarded: int = 0
    packets_dropped: int = 0
    bytes_dropped: int = 0
    packets_trimmed: int = 0
    packets_marked: int = 0
    packets_bounced: int = 0
    max_queue_bytes: int = 0
    pause_events: int = 0

    def record_forward(self, size: int, is_header_only: bool) -> None:
        """Record a packet leaving the queue."""
        self.packets_forwarded += 1
        self.bytes_forwarded += size
        if not is_header_only:
            self.data_bytes_forwarded += size

    def record_drop(self, size: int) -> None:
        """Record a packet dropped on arrival."""
        self.packets_dropped += 1
        self.bytes_dropped += size


@dataclass(slots=True)
class FlowRecord:
    """Lifetime record of a single transfer, filled in by protocol endpoints."""

    flow_id: int
    src: int
    dst: int
    flow_size_bytes: int
    start_time_ps: Optional[int] = None
    finish_time_ps: Optional[int] = None
    bytes_delivered: int = 0
    packets_delivered: int = 0
    headers_received: int = 0
    retransmissions: int = 0
    rtx_from_nack: int = 0
    rtx_from_bounce: int = 0
    rtx_from_timeout: int = 0
    #: receiver-side liveness: pull-retry rounds triggered by a stalled
    #: transfer (the pull_rto_ps watchdog re-emitting lost PULLs)
    pull_retries: int = 0
    #: sender-side liveness: last-resort retransmissions sent because the
    #: pull clock went silent with packets still queued for retransmission
    keepalive_retransmits: int = 0

    @property
    def completed(self) -> bool:
        """True once the whole transfer has been delivered."""
        return self.finish_time_ps is not None

    def completion_time_ps(self) -> int:
        """Flow completion time; raises if the flow has not finished."""
        if self.start_time_ps is None or self.finish_time_ps is None:
            raise ValueError(f"flow {self.flow_id} has not completed")
        return self.finish_time_ps - self.start_time_ps

    def throughput_bps(self) -> float:
        """Average goodput over the flow's lifetime in bits/second."""
        duration_ps = self.completion_time_ps()
        if duration_ps == 0:
            return float("inf")
        return self.bytes_delivered * 8 * 1_000_000_000_000 / duration_ps


class TimeSeriesSampler:
    """Periodically sample a callable and store ``(time, value)`` points.

    Used for goodput-versus-time plots (Figure 19) and queue occupancy
    traces.  The sampler reschedules itself until :meth:`stop` is called or
    the event list runs out of other work past ``stop_after``.
    """

    def __init__(
        self,
        eventlist: EventList,
        period_ps: int,
        probe: Callable[[], float],
        stop_after: Optional[int] = None,
    ) -> None:
        if period_ps <= 0:
            raise ValueError(f"sampling period must be positive, got {period_ps}")
        self.eventlist = eventlist
        self.period_ps = period_ps
        self.probe = probe
        self.stop_after = stop_after
        self.samples: List[Tuple[int, float]] = []
        self._running = False

    def start(self) -> None:
        """Begin sampling at the current simulated time."""
        self._running = True
        self._tick()

    def stop(self) -> None:
        """Stop sampling after the current tick."""
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        now = self.eventlist.now()
        if self.stop_after is not None and now > self.stop_after:
            self._running = False
            return
        self.samples.append((now, self.probe()))
        self.eventlist.schedule_in(self.period_ps, self._tick)


@dataclass
class RateEstimator:
    """Turns a monotonically increasing byte counter into interval rates.

    Feed it successive samples of a cumulative byte count and it returns the
    goodput (bits/second) over each sampling interval — the quantity plotted
    in Figure 19.
    """

    last_time_ps: int = 0
    last_bytes: int = 0
    rates: List[Tuple[int, float]] = field(default_factory=list)

    def update(self, time_ps: int, total_bytes: int) -> float:
        """Record a sample and return the rate since the previous sample."""
        delta_t = time_ps - self.last_time_ps
        delta_b = total_bytes - self.last_bytes
        rate = 0.0 if delta_t <= 0 else delta_b * 8 * 1_000_000_000_000 / delta_t
        self.rates.append((time_ps, rate))
        self.last_time_ps = time_ps
        self.last_bytes = total_bytes
        return rate
