"""Boundary-link halves for sharded simulation.

When a topology is partitioned across worker processes, each directed link
whose endpoints live in different shards is split into two halves:

* :class:`ShardEgressPipe` replaces the link's :class:`~repro.sim.pipe.Pipe`
  in the *sending* shard.  Instead of scheduling a local delivery it hands
  the departing packet to a capture callback, which marshals the hot packet
  fields into a primitive tuple (pool handles never cross processes) and
  releases the local slot.
* :class:`ShardIngressPipe` is the receiving half: after the window barrier
  the destination shard revives each marshalled entry into its own packet
  pool and schedules the delivery at the original arrival time, which the
  conservative lookahead guarantees is still in the shard's future.

Both halves are deliberately *distinct types* from :class:`Pipe`: the
queues' fused forwarding fast path only triggers on ``type(next) is Pipe``
(see :class:`~repro.sim.pipe.TappedPipe` for the same trick), so a boundary
pipe always receives the virtual :meth:`receive_packet` call.
"""

from __future__ import annotations

from typing import Callable, Tuple

from repro.sim.eventlist import EventList
from repro.sim.packet import Packet
from repro.sim.pipe import Pipe

#: capture(packet, next_hop, deliver_at_ps, link_seq) — marshals and releases
CaptureFn = Callable[[Packet, int, int, int], None]


class ShardEgressPipe(Pipe):
    """The sending half of a boundary link.

    Departing packets are timestamped with their remote arrival time
    (``now + delay_ps``, exactly what the replaced pipe would have used)
    and passed to *capture* together with the route index of the element
    after the pipe and a per-link departure sequence number.  The sequence
    number is a deterministic tiebreaker: two departures from the same
    link in the same picosecond marshal in serialization order, which is
    identical in every execution regardless of shard count.
    """

    __slots__ = ("capture", "departures")

    def __init__(
        self,
        eventlist: EventList,
        delay_ps: int,
        capture: CaptureFn,
        name: str = "shard-egress",
    ) -> None:
        super().__init__(eventlist, delay_ps, name=name)
        self.capture = capture
        self.departures = 0

    def receive_packet(self, packet: Packet) -> None:
        self.packets_carried += 1
        self.bytes_carried += packet.size
        link_seq = self.departures
        self.departures = link_seq + 1
        # packet.hop indexes the element after this pipe (both the fused
        # queue fast path and Pipe.receive_packet leave it there)
        self.capture(packet, packet.hop, self.eventlist._now + self.delay_ps, link_seq)


class ShardIngressPipe:
    """The receiving half of a boundary link.

    Lives outside any route: the shard worker revives marshalled entries
    into local packets, sorts them into the canonical cross-shard order,
    and calls :meth:`deliver` for each.  Delivery uses a raw scheduler
    entry at the marshalled arrival time — the window barrier guarantees
    ``deliver_at_ps >= now``, so the entry is always schedulable.
    """

    __slots__ = ("eventlist", "name", "packets_delivered")

    def __init__(self, eventlist: EventList, name: str = "shard-ingress") -> None:
        self.eventlist = eventlist
        self.name = name
        self.packets_delivered = 0

    def deliver(self, deliver_at_ps: int, packet: Packet) -> None:
        """Schedule *packet*'s arrival at its next route element."""
        now = self.eventlist._now
        if deliver_at_ps < now:
            raise RuntimeError(
                f"{self.name}: boundary packet would arrive in the past "
                f"({deliver_at_ps} < {now}); lookahead invariant violated"
            )
        hop = packet.hop
        sink = packet.route.elements[hop]
        packet.hop = hop + 1
        self.eventlist.schedule_raw(deliver_at_ps, sink.receive_packet, (packet,))
        self.packets_delivered += 1


def canonical_entry_key(entry: Tuple) -> Tuple:
    """Sort key pinning the cross-shard delivery order at exact-time ties.

    Marshalled entries begin ``(deliver_at_ps, flow_id, kind, seqno,
    path_id, is_retransmit, next_hop, link_seq, ...)`` — all intrinsic to
    the packet or its boundary link, none dependent on which shard
    produced the entry or on worker scheduling.  Sorting every window's
    ingress batch by this prefix before scheduling makes the receiving
    event list's tie order (and hence its digest) invariant to the shard
    count.
    """
    return entry[:8]
