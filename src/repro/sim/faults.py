"""Deterministic fault injection for protocol-conformance testing.

Simulation-based protocol validation needs to drive a transport through
adversarial loss scenarios — "drop the last two PULLs of flow 3", "trim
every 5th data packet", "delay all ACKs by 2 ms" — and then assert
completion invariants.  The :class:`FaultInjector` provides that as a
first-class, fully seeded layer:

* **Rules** (:class:`FaultRule`) select packets by class (``"pull"``,
  ``"ack"``, ``"nack"``, ``"data"``, ``"header"``), flow id and/or an
  arbitrary predicate, optionally skipping the first *n* matches, acting on
  every *k*-th match, capping the number of injections, or acting with a
  seeded probability.  The first rule that claims a packet wins.
* **Taps** are the attachment points.  :meth:`FaultInjector.tap` wraps a
  delivery target (normally a protocol endpoint) in a :class:`FaultPoint`;
  :class:`~repro.sim.pipe.TappedPipe` and
  :class:`~repro.sim.queues.TappedQueue` put the same hook mid-fabric.

Determinism is a hard requirement: the injector must not perturb the event
schedule of packets it leaves alone.  A :class:`FaultPoint` therefore
forwards passed packets *synchronously* — no event is inserted, no sequence
number is consumed — so a run with an injector installed but no matching
rule is bit-for-bit identical to a run without one (the conformance suite
asserts exactly this).  Only faulted packets touch the scheduler: a delayed
packet costs one raw entry, a dropped packet none.  Probabilistic rules use
the injector's own seeded :class:`random.Random`, never the simulation RNGs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.sim.eventlist import EventList
from repro.sim.network import PacketSink
from repro.sim.packet import Packet
from repro.sim.units import HEADER_BYTES

#: verdicts returned by :meth:`FaultInjector.inspect`
PASS = "pass"
DROP = "drop"
TRIM = "trim"
DELAY = "delay"

#: packet classes understood by rule matching
PACKET_CLASSES = ("data", "header", "pull", "ack", "nack", "control")

#: memo of control-packet type -> class name (type names never change)
_CONTROL_CLASS_CACHE: Dict[type, str] = {}


def classify(packet: Packet) -> str:
    """Map a packet to its fault class.

    Control packets are classified by type name (``"nack"`` before ``"ack"``
    — *NdpNack* contains the substring "ack"); data packets are ``"data"``
    until trimmed, ``"header"`` afterwards, so rules can target exactly the
    header-queue traffic.
    """
    if packet.is_control():
        kind = _CONTROL_CLASS_CACHE.get(type(packet))
        if kind is None:
            name = type(packet).__name__.lower()
            if "pull" in name:
                kind = "pull"
            elif "nack" in name:
                kind = "nack"
            elif "ack" in name:
                kind = "ack"
            else:
                kind = "control"
            _CONTROL_CLASS_CACHE[type(packet)] = kind
        return kind
    return "header" if packet.is_header_only else "data"


@dataclass
class FaultRule:
    """One fault-injection rule (see :class:`FaultInjector` for the API)."""

    action: str
    classes: Optional[frozenset] = None
    flow_id: Optional[int] = None
    predicate: Optional[Callable[[Packet], bool]] = None
    skip: int = 0
    every_kth: int = 1
    max_count: Optional[int] = None
    delay_ps: int = 0
    probability: float = 1.0
    #: packets that satisfied the selectors (before skip/every_kth gating)
    matched: int = 0
    #: faults actually injected by this rule
    injected: int = 0

    def __post_init__(self) -> None:
        if self.action not in (DROP, TRIM, DELAY):
            raise ValueError(f"unknown fault action {self.action!r}")
        if self.classes is not None:
            unknown = set(self.classes) - set(PACKET_CLASSES)
            if unknown:
                raise ValueError(f"unknown packet classes {sorted(unknown)}")
        if self.skip < 0:
            raise ValueError("skip must be non-negative")
        if self.every_kth < 1:
            raise ValueError("every_kth must be at least 1")
        if self.max_count is not None and self.max_count < 1:
            raise ValueError("max_count must be positive when given")
        if self.action == DELAY and self.delay_ps <= 0:
            raise ValueError("a delay rule needs a positive delay_ps")
        if not 0.0 < self.probability <= 1.0:
            raise ValueError("probability must be in (0, 1]")

    @property
    def exhausted(self) -> bool:
        """True once the rule injected its ``max_count`` faults."""
        return self.max_count is not None and self.injected >= self.max_count

    def claims(self, packet: Packet, packet_class: str, rng: random.Random) -> bool:
        """Decide (and count) whether this rule faults *packet*."""
        if self.exhausted:
            return False
        if self.action == TRIM and packet_class != "data":
            return False  # only untrimmed data can be trimmed; don't claim
        if self.classes is not None and packet_class not in self.classes:
            return False
        if self.flow_id is not None and packet.flow_id != self.flow_id:
            return False
        if self.predicate is not None and not self.predicate(packet):
            return False
        matched = self.matched = self.matched + 1
        if matched <= self.skip:
            return False
        if (matched - self.skip - 1) % self.every_kth:
            return False
        if self.probability < 1.0 and rng.random() >= self.probability:
            return False
        self.injected += 1
        return True


class FaultInjector:
    """A seeded registry of fault rules plus the taps that apply them."""

    def __init__(self, seed: int = 0, header_bytes: int = HEADER_BYTES) -> None:
        self.rng = random.Random(seed)
        self.header_bytes = header_bytes
        self.rules: List[FaultRule] = []
        self.enabled = True
        #: per-class counters of injected faults
        self.dropped: Dict[str, int] = {}
        self.trimmed: Dict[str, int] = {}
        self.delayed: Dict[str, int] = {}

    # --- rule construction ------------------------------------------------------

    def _rule(
        self,
        action: str,
        classes: Optional[object],
        flow_id: Optional[int],
        predicate: Optional[Callable[[Packet], bool]],
        **gating,
    ) -> FaultRule:
        """Build, register and return one rule (shared by drop/trim/delay).

        ``gating`` forwards the common keyword selectors — ``skip``,
        ``every_kth``, ``max_count``, ``probability`` (and ``delay_ps`` for
        delay rules); :class:`FaultRule` validates them.
        """
        rule = FaultRule(
            action,
            classes=frozenset(classes) if classes is not None else None,
            flow_id=flow_id,
            predicate=predicate,
            **gating,
        )
        self.rules.append(rule)
        return rule

    def drop(
        self,
        classes: Optional[object] = None,
        flow_id: Optional[int] = None,
        predicate: Optional[Callable[[Packet], bool]] = None,
        **gating,
    ) -> FaultRule:
        """Silently discard matching packets (a lossy link / queue drop)."""
        return self._rule(DROP, classes, flow_id, predicate, **gating)

    def trim(
        self,
        classes: Optional[object] = None,
        flow_id: Optional[int] = None,
        predicate: Optional[Callable[[Packet], bool]] = None,
        **gating,
    ) -> FaultRule:
        """Cut matching data packets to bare headers (a forced switch trim)."""
        return self._rule(TRIM, classes, flow_id, predicate, **gating)

    def delay(
        self,
        delay_ps: int,
        classes: Optional[object] = None,
        flow_id: Optional[int] = None,
        predicate: Optional[Callable[[Packet], bool]] = None,
        **gating,
    ) -> FaultRule:
        """Hold matching packets back for an extra *delay_ps* picoseconds."""
        return self._rule(DELAY, classes, flow_id, predicate, delay_ps=delay_ps, **gating)

    # --- application ------------------------------------------------------------

    def inspect(self, packet: Packet) -> Tuple[str, int]:
        """Apply the first claiming rule to *packet*.

        Returns ``(verdict, extra_delay_ps)``.  A TRIM verdict mutates the
        packet in place (it continues, as a header) and reports ``PASS`` to
        the caller, so taps only need to handle pass/drop/delay.
        """
        if not self.enabled or not self.rules:
            return (PASS, 0)
        packet_class = classify(packet)
        for rule in self.rules:
            if not rule.claims(packet, packet_class, self.rng):
                continue
            action = rule.action
            if action == DROP:
                self.dropped[packet_class] = self.dropped.get(packet_class, 0) + 1
                return (DROP, 0)
            if action == DELAY:
                self.delayed[packet_class] = self.delayed.get(packet_class, 0) + 1
                return (DELAY, rule.delay_ps)
            # TRIM (rules only claim untrimmed data): cut to a bare header
            packet.trim(self.header_bytes)
            self.trimmed[packet_class] = self.trimmed.get(packet_class, 0) + 1
            return (PASS, 0)
        return (PASS, 0)

    def injected_total(self) -> int:
        """Total faults injected across all rules."""
        return sum(rule.injected for rule in self.rules)

    def tap(self, target: PacketSink, eventlist: EventList) -> "FaultPoint":
        """Wrap *target* so every delivery to it passes through the injector."""
        return FaultPoint(self, target, eventlist)


class FaultPoint(PacketSink):
    """A route element that applies a :class:`FaultInjector` before delivery.

    Installed as the final element of a route in place of the protocol
    endpoint (see :meth:`repro.harness.ndp_network.NdpNetwork.create_flow`).
    Passed packets are handed to the real target in the same call — same
    simulated time, no scheduler entry — so untouched traffic is delivered
    exactly as it would be without the tap.
    """

    __slots__ = ("injector", "target", "eventlist", "name", "delivered", "dropped", "delayed")

    def __init__(self, injector: FaultInjector, target: PacketSink, eventlist: EventList) -> None:
        self.injector = injector
        self.target = target
        self.eventlist = eventlist
        self.name = f"fault-point:{getattr(target, 'name', target.__class__.__name__)}"
        self.delivered = 0
        self.dropped = 0
        self.delayed = 0

    def receive_packet(self, packet: Packet) -> None:
        verdict, extra_ps = self.injector.inspect(packet)
        if verdict == DROP:
            self.dropped += 1
            packet.release()  # slot pool: a dropped packet dies here
            return
        if verdict == DELAY:
            self.delayed += 1
            self.eventlist.schedule_raw_in(extra_ps, self.target.receive_packet, (packet,))
            return
        self.delivered += 1
        self.target.receive_packet(packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPoint({self.name}, {self.delivered} passed, {self.dropped} dropped)"
