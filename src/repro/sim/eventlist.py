"""Deterministic discrete-event scheduler.

The :class:`EventList` is the single source of simulated time.  Network
elements never sleep or poll; they schedule callbacks at absolute
(picosecond) timestamps and the event list executes them in order.  Ties are
broken by insertion order, which keeps runs bit-for-bit reproducible for a
given seed.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional


class Event:
    """A scheduled callback.

    Events are returned by :meth:`EventList.schedule` so callers can cancel
    them (for example a retransmission timer that is no longer needed).
    Cancellation is lazy: the entry stays in the heap but is skipped when it
    reaches the front.
    """

    __slots__ = ("time", "callback", "args", "cancelled")

    def __init__(self, time: int, callback: Callable[..., Any], args: tuple):
        self.time = time
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running (no-op if it already ran)."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time}, {getattr(self.callback, '__name__', self.callback)}, {state})"


class EventList:
    """Priority queue of simulation events keyed by picosecond timestamps."""

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Event]] = []
        self._now: int = 0
        self._sequence: int = 0
        self._stopped: bool = False
        self.events_executed: int = 0

    def now(self) -> int:
        """Current simulated time in picoseconds."""
        return self._now

    def schedule(self, when: int, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule *callback(*args)* at absolute time *when* (picoseconds).

        Scheduling in the past raises ``ValueError`` — that is always a bug in
        the caller, and silently clamping it would mask protocol errors.
        """
        if when < self._now:
            raise ValueError(
                f"cannot schedule event at {when} ps: current time is {self._now} ps"
            )
        event = Event(when, callback, args)
        self._sequence += 1
        heapq.heappush(self._heap, (when, self._sequence, event))
        return event

    def schedule_in(self, delay: int, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule *callback(*args)* after *delay* picoseconds."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule(self._now + delay, callback, *args)

    def stop(self) -> None:
        """Stop the run loop after the currently executing event returns."""
        self._stopped = True

    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._heap)

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Execute events in time order.

        Parameters
        ----------
        until:
            Optional absolute timestamp (picoseconds).  Events scheduled
            strictly after this time are left in the queue and the clock is
            advanced to *until* when the run completes.
        max_events:
            Optional safety limit on the number of callbacks executed.

        Returns
        -------
        int
            The simulated time at which the run stopped.
        """
        self._stopped = False
        executed = 0
        while self._heap and not self._stopped:
            when, _seq, event = self._heap[0]
            if until is not None and when > until:
                break
            heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = when
            event.callback(*event.args)
            executed += 1
            self.events_executed += 1
            if max_events is not None and executed >= max_events:
                break
        if until is not None and not self._stopped and self._now < until:
            self._now = until
        return self._now
