"""Deterministic discrete-event scheduler with a hybrid two-tier queue.

The :class:`EventList` is the single source of simulated time.  Network
elements never sleep or poll; they schedule callbacks at absolute
(picosecond) timestamps and the event list executes them in order.  Ties are
broken by insertion order, which keeps runs bit-for-bit reproducible for a
given seed.

Internally the scheduler keeps two tiers:

* a **timing wheel** of :data:`_WHEEL_SLOTS` buckets, each
  ``2**_WHEEL_SHIFT`` picoseconds wide, holding every event that falls
  within the wheel horizon (a few milliseconds — which covers
  serialization times, propagation delays, pull-pacer intervals and the
  NDP RTO).  Insertion into a future bucket is an O(1) ``list.append``;
* a conventional **far heap** for events beyond the horizon (watchdogs,
  experiment end markers).

The slot under the cursor is drained in batch: the bucket is sorted once
(C-speed timsort) and walked by index, so the common case costs no heap
sifting at all.  Events scheduled *into* the slot currently being drained
(e.g. a 64-byte control packet whose serialization time is shorter than one
slot) go to a small spill list that is merged on the fly.

All three structures store uniform **six-slot list** entries
``[when, seq, obj, gen, callback, arg]``, where ``seq`` is a global
insertion counter: merging the tiers by ``(when, seq)`` therefore reproduces
exactly the execution order of the original single-heap implementation.
Entries are *recycled*: consumed batches return their lists to a bounded
free pool (:data:`_ENTRY_POOL_CAP`) and the hot-path producers refill them
in place, so steady-state scheduling allocates nothing.  The
:attr:`EventList.entry_allocs` counter records pool misses (entries that
had to be newly allocated) and feeds the ``allocs_per_event`` benchmark
metric.  Lists, not tuples, because the containers mix recycled and fresh
entries and Python refuses to order a list against a tuple.

The ``obj``/``gen`` slots are overloaded by entry kind:

* **cancellable entries** (``obj`` is an :class:`Event` or :class:`Timer`)
  use ``gen`` as the generation stamp — a cancelled or re-armed entry is
  recognised by a generation mismatch and skipped.  When cancelled entries
  pile up, the scheduler eagerly evicts them (:meth:`EventList._compact`)
  instead of letting them linger until they surface.
* **raw entries** (``obj is None``) use ``gen`` as the *call arity*:
  ``0`` → ``callback()`` with ``arg`` unused, ``1`` → ``callback(arg)``
  with ``arg`` the single positional argument (the ``(callback, handle)``
  pair of the columnar packet core — no argument tuple exists at all),
  ``2`` → ``callback(*arg)`` with ``arg`` a tuple.

Hot-path producers (queues, pipes, pacers) use :meth:`EventList.schedule_raw`
/ :meth:`EventList.schedule_raw_in` (or call :meth:`EventList._insert`
directly from inside the ``sim``/``core`` packages), which enqueue a bare
callback without allocating an :class:`Event` handle; use the classic
:meth:`EventList.schedule` whenever the caller may need to cancel.

While a batch drains, :attr:`EventList._cur_pos` / :attr:`EventList._spill_pos`
are published *before every callback* and :attr:`EventList._ff_bound` folds
the cursor slot's end, the active ``until`` bound and the stopped flag into
one precomputed comparison.  Recurring-service callbacks (queue and
switch drains) use these to *fast-forward*: when the next completion of the
same service provably precedes every other pending event (strictly — a
timestamp tie always falls back to the scheduler, which preserves the
baseline tie order), the callback services it inline without scheduling at
all.  Such batched completions advance :attr:`EventList.events_executed`
so event counts stay comparable with the unbatched engine.

Watchdog-style timers (pull-retry, sender keepalive) are created with
``shadow=True``: they draw their tie-breaking sequence numbers from a
*shadow* counter starting at :data:`_SHADOW_SEQ_BASE` instead of the shared
insertion counter.  Arming, re-arming or cancelling a shadow timer therefore
cannot shift the ``(when, seq)`` order of any ordinary event — a liveness
mechanism that never fires leaves a seeded run bit-for-bit identical.  At a
timestamp tie a shadow entry always runs after every ordinary entry, which
is itself deterministic.

:meth:`EventList.run` disables the cyclic garbage collector for its
duration (restoring the caller's setting on exit): the hot path allocates
almost nothing once the entry pool and packet pool are warm, so gen-0
collections are pure overhead, and refcounting still reclaims everything
the simulator drops.
"""

from __future__ import annotations

import gc as _gc
from bisect import insort as _insort
from heapq import heapify as _heapify, heappop as _heappop, heappush as _heappush
from typing import Any, Callable, List, Optional

#: log2 of the wheel slot width: 2**23 ps ~ 8.4 us per slot (tuned on the
#: benchmarks/perf scenarios: one slot comfortably covers an MTU
#: serialization time plus a propagation delay, so most inserts are O(1)
#: appends, cursor advances stay rare, and — crucially for the batched
#: drains — back-to-back jumbo completions (7.2 us apart at 10 Gbps) can
#: land in the *same* slot and fast-forward instead of re-entering the
#: scheduler.  Narrower slots were tried and lost: 4x the advance/sort
#: calls and 4x the far-heap traffic for no batching at all at 9 kB MTU)
_WHEEL_SHIFT = 23
#: number of wheel slots; with the shift above the horizon is ~8.6 ms
_WHEEL_SLOTS = 1024
_WHEEL_MASK = _WHEEL_SLOTS - 1

#: sentinel bound so the run loop avoids per-event ``is None`` tests (small
#: enough to stay a cheap machine-word-ish comparison, ~146 years of sim time)
_NO_LIMIT = 1 << 62

#: compaction trigger: evict eagerly once this many cancelled entries linger
_COMPACT_MIN_STALE = 64

#: absolute staleness backstop: long-lived armed entries (liveness watchdogs,
#: one per endpoint) inflate the live count that the ratio trigger below is
#: measured against, which can starve compaction exactly when tombstones pile
#: up fastest; past this many lingering tombstones we evict regardless
_COMPACT_MAX_STALE = 1536

#: first sequence number of the shadow space used by ``shadow=True`` timers.
#: Far above anything the ordinary insertion counter can reach (10^14 events
#: would take years of wall-clock), so the two spaces can never collide and a
#: shadow entry deterministically runs *after* every ordinary entry scheduled
#: for the same picosecond.
_SHADOW_SEQ_BASE = 1 << 48

#: bound on the recycled-entry free pool.  Large enough to cover the working
#: set of a dense slot batch, small enough that a pathological burst cannot
#: pin unbounded garbage.
_ENTRY_POOL_CAP = 8192


def _fmt_args(args: tuple) -> str:
    """Render an argument tuple for the debug reprs.

    Flyweight packets are rendered through their facade ``__repr__`` (which
    is freed-slot safe — see ``sim/packet.py``); anything whose repr raises
    degrades to a placeholder instead of poisoning the debugging aid.
    """
    parts = []
    for a in args:
        try:
            parts.append(repr(a))
        except Exception:  # pragma: no cover - repr bugs in user callbacks
            parts.append(f"<unprintable {type(a).__name__}>")
    return ", ".join(parts)


class Event:
    """A scheduled callback.

    Events are returned by :meth:`EventList.schedule` so callers can cancel
    them (for example a retransmission timer that is no longer needed).
    Cancellation is O(1); the scheduler evicts cancelled entries eagerly once
    enough of them accumulate.
    """

    __slots__ = ("time", "callback", "args", "cancelled", "_gen", "_eventlist")

    def __init__(
        self,
        time: int,
        callback: Callable[..., Any],
        args: tuple,
        eventlist: Optional["EventList"] = None,
    ):
        self.time = time
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._gen = 0
        self._eventlist = eventlist

    def cancel(self) -> None:
        """Prevent the callback from running (no-op if it already ran)."""
        if self._gen == 0:  # still pending (execution bumps the generation)
            self.cancelled = True
            self._gen = 1
            if self._eventlist is not None:
                self._eventlist._note_stale()

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else ("done" if self._gen else "pending")
        name = getattr(self.callback, "__name__", None) or repr(self.callback)
        return f"Event(t={self.time}, {name}({_fmt_args(self.args)}), {state})"


class Timer:
    """A reusable, cancellable one-shot timer.

    Unlike :class:`Event`, a timer is allocated once and re-armed many
    times — re-arming or cancelling never allocates and never leaves more
    than a generation-stamped tombstone behind (evicted eagerly by the
    scheduler).  This is the primitive behind the senders' RTO management:
    arming a retransmission timer per packet used to push one heap entry per
    packet that lingered until it surfaced; a :class:`Timer` per sequence
    number keeps exactly one live entry and cancels in O(1).

    Passing ``shadow=True`` makes the timer draw its tie-breaking sequence
    numbers from the event list's shadow counter (see the module docstring):
    arming or cancelling it cannot perturb the execution order of ordinary
    events, which is required of the liveness watchdogs (pull-retry, sender
    keepalive) so that a run in which they never fire stays bit-identical to
    a run without them.
    """

    __slots__ = ("eventlist", "callback", "args", "when", "_gen", "_armed_gen", "_shadow")

    def __init__(
        self,
        eventlist: "EventList",
        callback: Callable[..., Any],
        *args: Any,
        shadow: bool = False,
    ):
        self.eventlist = eventlist
        self.callback = callback
        self.args = args
        self.when = -1
        self._gen = 0
        self._armed_gen = -1
        self._shadow = shadow

    @property
    def armed(self) -> bool:
        """True while the timer is scheduled and has not fired or been cancelled."""
        return self._gen == self._armed_gen

    def schedule_at(self, when: int) -> None:
        """(Re-)arm the timer at absolute time *when*, superseding any prior arm."""
        eventlist = self.eventlist
        if when < eventlist._now:
            raise ValueError(
                f"cannot schedule timer at {when} ps: current time is {eventlist._now} ps"
            )
        if self._gen == self._armed_gen:
            eventlist._note_stale()  # the superseded entry is now dead weight
        self.when = when
        gen = self._gen = self._gen + 1
        self._armed_gen = gen
        # inlined EventList._insert (re-arming is once per retransmission);
        # shadow timers consume shadow sequence numbers so they cannot shift
        # the tie-breaking order of ordinary events
        if self._shadow:
            seq = eventlist._shadow_sequence = eventlist._shadow_sequence + 1
        else:
            seq = eventlist._sequence = eventlist._sequence + 1
        pool = eventlist._entry_pool
        if pool:
            entry = pool.pop()
            entry[0] = when
            entry[1] = seq
            entry[2] = self
            entry[3] = gen
            entry[4] = self.callback
            entry[5] = self.args
        else:
            eventlist.entry_allocs += 1
            entry = [when, seq, self, gen, self.callback, self.args]
        delta = (when >> _WHEEL_SHIFT) - eventlist._cursor
        if delta <= 0:
            _insort(eventlist._cur_spill, entry)
            eventlist._wheel_count += 1
        elif delta < _WHEEL_SLOTS:
            eventlist._wheel[(when >> _WHEEL_SHIFT) & _WHEEL_MASK].append(entry)
            eventlist._wheel_count += 1
        else:
            _heappush(eventlist._far, entry)

    def schedule_in(self, delay: int) -> None:
        """(Re-)arm the timer *delay* picoseconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self.schedule_at(self.eventlist._now + delay)

    def cancel(self) -> None:
        """Disarm the timer (no-op if not armed)."""
        if self._gen == self._armed_gen:
            self._gen += 1
            self.eventlist._note_stale()

    def __repr__(self) -> str:
        state = f"armed@{self.when}" if self.armed else "idle"
        name = getattr(self.callback, "__name__", None) or repr(self.callback)
        return f"Timer({name}({_fmt_args(self.args)}), {state})"


#: entry layout shared by all tiers: ``[when, seq, obj, gen, callback, arg]``
#: (a recycled six-slot list; see the module docstring for the obj/gen
#: overloading between cancellable and raw entries)
_Entry = List[Any]


class EventList:
    """Two-tier priority queue of simulation events keyed by picoseconds."""

    __slots__ = (
        "_wheel",
        "_cursor",
        "_cur",
        "_cur_pos",
        "_cur_spill",
        "_spill_pos",
        "_far",
        "_wheel_count",
        "_now",
        "_sequence",
        "_shadow_sequence",
        "_stopped",
        "_stale",
        "_time_limit",
        "_ff_bound",
        "_entry_pool",
        "entry_allocs",
        "events_executed",
    )

    def __init__(self) -> None:
        self._wheel: List[List[_Entry]] = [[] for _ in range(_WHEEL_SLOTS)]
        self._cursor: int = 0  # wheel slot currently being drained
        self._cur: List[_Entry] = []  # sorted batch for the cursor slot
        self._cur_pos: int = 0
        # Entries landing in the slot currently being drained, kept as a
        # sorted list consumed by index: such inserts arrive in near-ascending
        # (when, seq) order, so insort is an O(1)-ish tail append and
        # consumption avoids heap sifting entirely.
        self._cur_spill: List[_Entry] = []
        self._spill_pos: int = 0
        self._far: List[_Entry] = []
        #: entries anywhere in the wheel tier (buckets + current batch + spill)
        self._wheel_count: int = 0
        self._now: int = 0
        self._sequence: int = 0
        self._shadow_sequence: int = _SHADOW_SEQ_BASE
        self._stopped: bool = False
        self._stale: int = 0
        #: active ``until`` bound of the running :meth:`run` call; consulted
        #: by fast-forwarding service callbacks so a batched completion never
        #: runs past the requested stop time
        self._time_limit: int = _NO_LIMIT
        #: fast-forward bound: a batched completion at ``when`` may run
        #: inline only if ``when < _ff_bound`` (and the drain frontiers
        #: agree).  Folds the cursor slot's end, the active ``until`` limit
        #: and the stopped flag into one precomputed comparison; maintained
        #: at :meth:`run` entry, in :meth:`_advance` and by :meth:`stop`.
        #: Zero while no run is active, so the guard can never pass.
        self._ff_bound: int = 0
        #: free pool of consumed six-slot entry lists (bounded)
        self._entry_pool: List[_Entry] = []
        #: entries newly allocated because the free pool was empty — the
        #: allocation half of the ``allocs_per_event`` benchmark metric
        self.entry_allocs: int = 0
        self.events_executed: int = 0

    def now(self) -> int:
        """Current simulated time in picoseconds."""
        return self._now

    # --- insertion --------------------------------------------------------------

    def _insert(
        self,
        when: int,
        obj: Optional[object],
        gen: Any,
        callback: Callable[..., Any],
        args: tuple,
    ) -> None:
        """Route one entry to the correct tier (see the module docstring).

        Callers inside the simulator's hot paths may invoke this directly
        with ``obj=None, gen=0`` (the :meth:`schedule_raw` contract) after
        ensuring ``when >= now``; the argument tuple is unpacked into the
        arity encoding here.
        """
        seq = self._sequence = self._sequence + 1
        if obj is None:
            n = len(args)
            if n == 1:
                gen = 1
                arg: Any = args[0]
            elif n == 0:
                gen = 0
                arg = None
            else:
                gen = 2
                arg = args
        else:
            arg = args
        pool = self._entry_pool
        if pool:
            entry = pool.pop()
            entry[0] = when
            entry[1] = seq
            entry[2] = obj
            entry[3] = gen
            entry[4] = callback
            entry[5] = arg
        else:
            self.entry_allocs += 1
            entry = [when, seq, obj, gen, callback, arg]
        delta = (when >> _WHEEL_SHIFT) - self._cursor
        if delta <= 0:
            # lands in the slot being drained: merge into the sorted spill
            _insort(self._cur_spill, entry)
            self._wheel_count += 1
        elif delta < _WHEEL_SLOTS:
            # future wheel slot: O(1) append, sorted lazily when drained
            self._wheel[(when >> _WHEEL_SHIFT) & _WHEEL_MASK].append(entry)
            self._wheel_count += 1
        else:
            _heappush(self._far, entry)

    def schedule(self, when: int, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule *callback(*args)* at absolute time *when* (picoseconds).

        Returns a cancellable :class:`Event` handle.  Scheduling in the past
        raises ``ValueError`` — that is always a bug in the caller, and
        silently clamping it would mask protocol errors.
        """
        if when < self._now:
            raise ValueError(
                f"cannot schedule event at {when} ps: current time is {self._now} ps"
            )
        event = Event(when, callback, args, self)
        self._insert(when, event, 0, callback, args)
        return event

    def schedule_in(self, delay: int, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule *callback(*args)* after *delay* picoseconds."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule(self._now + delay, callback, *args)

    def schedule_raw(self, when: int, callback: Callable[..., Any], args: tuple = ()) -> None:
        """Fast-path schedule: no :class:`Event` handle, not cancellable.

        Used by the per-packet hot paths (queue service completions, pipe
        deliveries, pacer ticks) where the callback always runs and the
        allocation of a handle per packet would be pure overhead.
        """
        if when < self._now:
            raise ValueError(
                f"cannot schedule event at {when} ps: current time is {self._now} ps"
            )
        self._insert(when, None, 0, callback, args)

    def schedule_raw_in(self, delay: int, callback: Callable[..., Any], args: tuple = ()) -> None:
        """Fast-path relative schedule (see :meth:`schedule_raw`)."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self._insert(self._now + delay, None, 0, callback, args)

    def new_timer(
        self, callback: Callable[..., Any], *args: Any, shadow: bool = False
    ) -> Timer:
        """Create a reusable :class:`Timer` bound to this event list.

        ``shadow=True`` yields a watchdog timer whose (re-)arming draws from
        the shadow sequence space and therefore cannot perturb the order of
        ordinary events (see the module docstring).
        """
        return Timer(self, callback, *args, shadow=shadow)

    # --- cancellation bookkeeping --------------------------------------------------

    def _note_stale(self) -> None:
        """Record one newly dead entry; eagerly evict once they dominate."""
        stale = self._stale = self._stale + 1
        if stale > _COMPACT_MIN_STALE and (
            stale * 2 > self._wheel_count + len(self._far) or stale > _COMPACT_MAX_STALE
        ):
            self._compact()

    def _compact(self) -> None:
        """Eagerly evict cancelled/superseded entries from the lingering tiers.

        Only the future wheel buckets and the far heap are filtered: entries
        in the slot currently being drained are gone within one slot width of
        simulated time anyway, and skipping them lets the run loop keep plain
        local views of its batch.  Evicted entry lists go back to the free
        pool — they are provably unreachable by any other tier.
        """
        pool = self._entry_pool
        wheel_removed = 0
        for bucket in self._wheel:
            if not bucket:
                continue
            kept = []
            for e in bucket:
                obj = e[2]
                if obj is None or obj._gen == e[3]:
                    kept.append(e)
                elif len(pool) < _ENTRY_POOL_CAP:
                    pool.append(e)
            if len(kept) != len(bucket):
                wheel_removed += len(bucket) - len(kept)
                bucket[:] = kept
        kept = []
        for e in self._far:
            obj = e[2]
            if obj is None or obj._gen == e[3]:
                kept.append(e)
            elif len(pool) < _ENTRY_POOL_CAP:
                pool.append(e)
        if len(kept) != len(self._far):
            _heapify(kept)
            self._far = kept
        self._wheel_count -= wheel_removed
        self._stale = 0

    # --- run loop ------------------------------------------------------------------

    def stop(self) -> None:
        """Stop the run loop after the currently executing event returns."""
        self._stopped = True
        self._ff_bound = 0  # no further fast-forwards either

    def pending_events(self) -> int:
        """Number of events still queued (cancelled entries may be counted
        until they are evicted)."""
        return self._wheel_count + len(self._far)

    def _advance(self) -> bool:
        """Move the cursor to the next slot holding entries and sort its batch.

        Only called when the current batch and spill are exhausted, which is
        the one point where every entry list in both is provably consumed —
        so this is also where they are recycled into the free pool.  (They
        must *not* be recycled at dispatch time: ``insort`` bisects over the
        spill's consumed prefix, and a recycled-and-refilled entry there
        would corrupt the ordering.)  Returns False when no events remain
        anywhere.
        """
        pool = self._entry_pool
        spill = self._cur_spill
        if spill:
            pool.extend(spill)
            spill.clear()  # fully consumed; drop the dead prefix
        self._spill_pos = 0
        cur = self._cur
        if cur:
            pool.extend(cur)
        if len(pool) > _ENTRY_POOL_CAP:
            del pool[_ENTRY_POOL_CAP:]  # lazy cap: cheaper than per-batch room math
        far = self._far
        if self._wheel_count == 0:
            if not far:
                self._cur = []
                self._cur_pos = 0
                return False
            self._cursor = far[0][0] >> _WHEEL_SHIFT
        else:
            cursor = self._cursor
            wheel = self._wheel
            limit = cursor + _WHEEL_SLOTS
            if far:
                far_slot = far[0][0] >> _WHEEL_SHIFT
                if far_slot < limit:
                    limit = far_slot
            slot = cursor + 1
            while slot < limit and not wheel[slot & _WHEEL_MASK]:
                slot += 1
            self._cursor = slot
        index = self._cursor & _WHEEL_MASK
        batch = self._wheel[index]
        self._wheel[index] = []
        slot_end = (self._cursor + 1) << _WHEEL_SHIFT
        limit = self._time_limit
        self._ff_bound = slot_end if slot_end <= limit else limit + 1
        while far and far[0][0] < slot_end:
            batch.append(_heappop(far))
            self._wheel_count += 1
        batch.sort()
        self._cur = batch
        self._cur_pos = 0
        return True

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Execute events in time order.

        Parameters
        ----------
        until:
            Optional absolute timestamp (picoseconds).  Events scheduled
            strictly after this time are left in the queue and the clock is
            advanced to *until* when the run completes.
        max_events:
            Optional safety limit on the number of callbacks *dispatched by
            the scheduler*.  Completions fast-forwarded inside a recurring
            service callback count toward :attr:`events_executed` but not
            toward this limit (they never re-enter the scheduler).

        Returns
        -------
        int
            The simulated time at which the run stopped.
        """
        self._stopped = False
        time_limit = _NO_LIMIT if until is None else until
        self._time_limit = time_limit
        # fast-forward bound for the (possibly resumed) cursor slot; kept
        # current by _advance afterwards
        slot_end = (self._cursor + 1) << _WHEEL_SHIFT
        self._ff_bound = slot_end if slot_end <= time_limit else time_limit + 1
        budget = _NO_LIMIT if max_events is None else max_events
        executed = 0
        counted = 0  # scheduler dispatches already added to events_executed
        base_executed = self.events_executed  # fast-forwards add here directly
        spill = self._cur_spill
        done = False
        gc_was_enabled = _gc.isenabled()
        if gc_was_enabled:
            _gc.disable()
        try:
            while not done:
                cur = self._cur
                pos = self._cur_pos
                size = len(cur)
                spos = self._spill_pos
                if pos >= size and spos >= len(spill):
                    if not self._advance():
                        break
                    cur = self._cur
                    pos = 0
                    size = len(cur)
                    spos = 0
                    if pos >= size and not spill:  # pragma: no cover - defensive
                        break
                try:
                    while True:
                        # peek at the earliest of (sorted batch, sorted spill)
                        if pos < size:
                            entry = cur[pos]
                            if spos < len(spill) and spill[spos] < entry:
                                entry = spill[spos]
                                spos += 1
                            else:
                                pos += 1
                        elif spos < len(spill):
                            entry = spill[spos]
                            spos += 1
                        else:
                            break  # slot exhausted: advance to the next one
                        # single unpack beats five subscripts on the hot path
                        when, _seq, obj, gen, callback, arg = entry
                        if when > time_limit:
                            # not consumed after all: step back where it came from
                            if pos and entry is cur[pos - 1]:
                                pos -= 1
                            else:
                                spos -= 1
                            done = True
                            break
                        self._wheel_count -= 1
                        if obj is not None:
                            if obj._gen != gen:
                                if self._stale:
                                    self._stale -= 1
                                continue  # cancelled or superseded: dropped here
                            obj._gen = gen + 1
                            self._now = when
                            # publish drain positions so service callbacks can
                            # fast-forward against the true pending frontier
                            self._cur_pos = pos
                            self._spill_pos = spos
                            if arg:
                                callback(*arg)
                            else:
                                callback()
                        else:
                            self._now = when
                            self._cur_pos = pos
                            self._spill_pos = spos
                            if gen == 1:
                                callback(arg)
                            elif gen == 0:
                                callback()
                            else:
                                callback(*arg)
                        executed += 1
                        if self._stopped or executed >= budget:
                            done = True
                            break
                finally:
                    # publish the drain positions and the executed count once
                    # per batch (zero-cost unless an exception unwinds
                    # mid-slot, where it prevents replays and keeps the count
                    # accurate)
                    self._cur_pos = pos
                    self._spill_pos = spos
                    base_executed = self.events_executed  # may have grown via fast-forward
                    self.events_executed = base_executed + (executed - counted)
                    counted = executed
        finally:
            self._ff_bound = 0  # fast-forwards are only legal mid-run
            if gc_was_enabled:
                _gc.enable()
        if until is not None and not self._stopped and self._now < until:
            self._now = until
        return self._now

    def run_until(self, when: int, max_events: Optional[int] = None) -> int:
        """Batch-execute every event up to and including *when* (see :meth:`run`)."""
        return self.run(until=when, max_events=max_events)

    def run_window(self, end_ps: int, max_events: Optional[int] = None) -> int:
        """Execute every event in the half-open window ``[now, end_ps)``.

        The conservative-time shard loop advances all shards window by
        window: events scheduled at exactly *end_ps* belong to the *next*
        window (they may be preceded by boundary traffic flushed at the
        barrier), so this runs strictly-before semantics — ``run(until=
        end_ps - 1)`` — and then parks the clock at *end_ps* so ingress
        arrivals at ``when >= end_ps`` remain schedulable.
        """
        if end_ps <= self._now:
            raise ValueError(
                f"window end {end_ps} not ahead of current time {self._now}"
            )
        self.run(until=end_ps - 1, max_events=max_events)
        if not self._stopped and self._now < end_ps:
            self._now = end_ps
        return self._now
